#!/usr/bin/env python
"""Regression gate over BENCH_query_serving.json.

Fails (exit 1) if the serving fast path regressed below the uncached
pipeline where the cache is the whole story: the memory backend's warm
hit path must be at least as fast as uncached serving at the
translation-bound point (``warm_over_uncached >= 1.0``).  PR 5 shipped
with 0.67x there — the plan cache made the memory backend *slower* —
and the compiled physical-plan layer exists to keep that from coming
back.

Usage: python scripts/check_serving_regression.py [path-to-json]
"""

import json
import sys


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_query_serving.json"
    with open(path) as handle:
        data = json.load(handle)

    point = data["serving"]["translation_bound"]["memory"]
    ratio = point["warm_over_uncached"]
    print(
        f"memory backend at translation_bound: warm_over_uncached={ratio} "
        f"(warm {point['warm_qps']} qps vs uncached {point['uncached_qps']} qps)"
    )
    if ratio is None or ratio < 1.0:
        print(
            "FAIL: warm plan-cache hits are slower than the uncached "
            "pipeline on the memory backend — the compiled-plan fast "
            "path has regressed",
            file=sys.stderr,
        )
        return 1
    print("OK: warm serving beats the uncached pipeline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
