#!/usr/bin/env python
"""Regression gates over the serving benchmarks.

Five JSON reports, five gates:

**BENCH_query_serving.json** — fails (exit 1) if the serving fast path
regressed below the uncached pipeline where the cache is the whole
story: the memory backend's warm hit path must be at least as fast as
uncached serving at the translation-bound point
(``warm_over_uncached >= 1.0``).  PR 5 shipped with 0.67x there — the
plan cache made the memory backend *slower* — and the compiled
physical-plan layer exists to keep that from coming back.

**BENCH_serving_concurrent.json** — the epoch-engine gates:

* ``torn_reads`` and ``torn_reads_served_counter`` must be 0 on every
  backend — a single response inconsistent with its epoch fingerprint
  is a correctness bug, not a regression;
* untouched-set plans must survive the churn
  (``untouched_plans_survived``);
* churn p99 latency must stay within FACTOR× of the concurrency
  baseline.  The baseline is ``max(query_only p99, single_warm p99 ×
  clients)`` rather than the raw single-threaded warm latency: on
  CPython, N reader threads time-slice one interpreter, so per-request
  p99 inflates roughly N× from scheduling alone, writer or no writer —
  gating on raw single-thread latency would fail even with the writer
  idle.  What the factor actually bounds is the *additional* tail the
  writer's publication windows add on top of thread scheduling.  FACTOR
  defaults to 2 and can be overridden with ``REPRO_CHURN_P99_FACTOR``.

**BENCH_incremental_writes.json** — the incremental-write (IVM) gates:

* every measured size must report ``equivalent: true`` — the
  incrementally-maintained store byte-identical to a whole-state
  lowering — and ``ivm_fallbacks == 0`` (a fallback means a delta shape
  the writeplan compiler should handle was silently re-materialized);
* at the 10^5-row tier, ``save_delta`` must beat the whole-state save
  by at least MIN_SPEEDUP× on every backend.  That is the whole point
  of the incremental write path: O(|delta|) instead of O(|state|) per
  save.  MIN_SPEEDUP defaults to 5 and can be overridden with
  ``REPRO_INCREMENTAL_MIN_SPEEDUP``.

**BENCH_validation.json** — the validation-scaling gates:

* a fresh cache over the warm persistent store must beat the cold
  compile by at least WARM_DISK_MIN_SPEEDUP× (default 5, override with
  ``REPRO_WARM_DISK_MIN_SPEEDUP``) — the whole point of the
  cross-process cache is that the second fleet member never pays the
  first one's compile;
* the cross-process child (a real subprocess sharing only the cache
  directory) is held to the same floor;
* at 4 workers the process executor must reach parallel efficiency
  >= 0.5 — speedup >= 2.0× over serial (override with
  ``REPRO_MULTICORE_MIN_EFFICIENCY``).  Auto-skipped when the recorded
  ``cpu_count`` is below 2: a single-core container cannot speed
  anything up by adding workers, and the sweep there documents the
  overhead floor instead.

**BENCH_result_cache.json** — the materialized result tier gates:

* ``stale_reads`` must be 0 at every size on every backend — a
  maintained entry that disagrees with re-execution is a correctness
  bug, full stop — and so must ``validation_failures`` (an entry served
  under the wrong model fingerprint);
* ``fallbacks`` must stay bounded (<= MAX_FALLBACKS, default 5): the
  chain workload's shapes are all maintainable, so a fallback means the
  read-side delta compiler stopped recognizing a shape it owns;
* at the 10^5-row tier, the maintained read rate must beat re-execution
  by at least RESULT_MIN_SPEEDUP× on at least one backend.  That is the
  tier's whole point: O(1) warm reads that survive writes instead of
  O(|state|) re-execution per read.  RESULT_MIN_SPEEDUP defaults to 3
  and can be overridden with ``REPRO_RESULT_CACHE_MIN_SPEEDUP``.

Usage::

    python scripts/check_serving_regression.py [query.json] [concurrent.json] \
        [incremental.json] [validation.json] [result_cache.json]
"""

import json
import os
import sys

DEFAULT_FACTOR = 2.0
DEFAULT_MIN_SPEEDUP = 5.0
GATED_SIZE = "100000"
DEFAULT_WARM_DISK_MIN_SPEEDUP = 5.0
DEFAULT_MULTICORE_MIN_EFFICIENCY = 0.5
MULTICORE_GATED_WORKERS = 4
DEFAULT_RESULT_MIN_SPEEDUP = 3.0
RESULT_MAX_FALLBACKS = 5


def check_query_serving(path: str) -> int:
    with open(path) as handle:
        data = json.load(handle)
    point = data["serving"]["translation_bound"]["memory"]
    ratio = point["warm_over_uncached"]
    print(
        f"memory backend at translation_bound: warm_over_uncached={ratio} "
        f"(warm {point['warm_qps']} qps vs uncached {point['uncached_qps']} qps)"
    )
    if ratio is None or ratio < 1.0:
        print(
            "FAIL: warm plan-cache hits are slower than the uncached "
            "pipeline on the memory backend — the compiled-plan fast "
            "path has regressed",
            file=sys.stderr,
        )
        return 1
    print("OK: warm serving beats the uncached pipeline")
    return 0


def check_concurrent(path: str) -> int:
    with open(path) as handle:
        data = json.load(handle)
    factor = float(os.environ.get("REPRO_CHURN_P99_FACTOR", DEFAULT_FACTOR))
    failures = 0
    for backend, result in data["backends"].items():
        torn = result["torn_reads"] + result["torn_reads_served_counter"]
        single_p99 = result["single_warm"]["p99_ms"]
        query_only_p99 = result["query_only"]["p99_ms"]
        churn_p99 = result["churn"]["p99_ms"]
        clients = result["clients"]
        baseline = max(query_only_p99, single_p99 * clients)
        budget = factor * baseline
        survived = result["plan_cache"]["untouched_plans_survived"]
        print(
            f"{backend}: torn={torn} churn_p99={churn_p99}ms "
            f"baseline={round(baseline, 3)}ms budget={round(budget, 3)}ms "
            f"(factor {factor}) retries={result['read_retries']} "
            f"serialized={result['serialized_reads']} "
            f"plans_survived={survived}"
        )
        if torn != 0:
            print(
                f"FAIL [{backend}]: {torn} torn read(s) — a response was "
                "not consistent with exactly one epoch fingerprint",
                file=sys.stderr,
            )
            failures += 1
        if not survived:
            print(
                f"FAIL [{backend}]: untouched-set plans did not survive "
                "the evolution churn — successor carry-over is broken",
                file=sys.stderr,
            )
            failures += 1
        if churn_p99 > budget:
            print(
                f"FAIL [{backend}]: churn p99 {churn_p99}ms exceeds "
                f"{factor}x the concurrency baseline {round(baseline, 3)}ms",
                file=sys.stderr,
            )
            failures += 1
    if failures:
        return 1
    print("OK: zero torn reads, plans survived, churn p99 within budget")
    return 0


def check_incremental(path: str) -> int:
    with open(path) as handle:
        data = json.load(handle)
    min_speedup = float(
        os.environ.get("REPRO_INCREMENTAL_MIN_SPEEDUP", DEFAULT_MIN_SPEEDUP)
    )
    failures = 0
    for backend, result in data["backends"].items():
        for size, point in result["sizes"].items():
            print(
                f"{backend} @ {size} rows: whole={point['whole_state_ms']}ms "
                f"incremental={point['incremental_ms']}ms "
                f"speedup={point['speedup']}x "
                f"equivalent={point['equivalent']} "
                f"fallbacks={point['ivm_fallbacks']}"
            )
            if not point["equivalent"]:
                print(
                    f"FAIL [{backend} @ {size}]: incremental store diverged "
                    "from the whole-state lowering — the IVM delta rules "
                    "are wrong",
                    file=sys.stderr,
                )
                failures += 1
            if point["ivm_fallbacks"]:
                print(
                    f"FAIL [{backend} @ {size}]: {point['ivm_fallbacks']} "
                    "IVM fallback(s) — a supported delta shape was "
                    "re-materialized whole",
                    file=sys.stderr,
                )
                failures += 1
        gated = result["sizes"].get(GATED_SIZE)
        if gated is None:
            print(
                f"({backend}: no {GATED_SIZE}-row tier; speedup gate skipped)"
            )
            continue
        if gated["speedup"] is None or gated["speedup"] < min_speedup:
            print(
                f"FAIL [{backend}]: save_delta speedup {gated['speedup']}x "
                f"at {GATED_SIZE} rows is below the {min_speedup}x floor — "
                "the incremental write path no longer pays for itself",
                file=sys.stderr,
            )
            failures += 1
    if failures:
        return 1
    print(
        f"OK: incremental saves equivalent, no fallbacks, >= {min_speedup}x "
        f"at {GATED_SIZE} rows"
    )
    return 0


def check_validation(path: str) -> int:
    with open(path) as handle:
        data = json.load(handle)
    min_speedup = float(
        os.environ.get(
            "REPRO_WARM_DISK_MIN_SPEEDUP", DEFAULT_WARM_DISK_MIN_SPEEDUP
        )
    )
    min_efficiency = float(
        os.environ.get(
            "REPRO_MULTICORE_MIN_EFFICIENCY", DEFAULT_MULTICORE_MIN_EFFICIENCY
        )
    )
    failures = 0

    cache = data["cache"]
    warm_disk = cache.get("speedup_warm_disk")
    print(
        f"cache hierarchy: cold={cache['cold']['elapsed_s']}s "
        f"warm_memory={cache['warm_memory']['elapsed_s']}s "
        f"warm_disk={cache['warm_disk']['elapsed_s']}s "
        f"(disk speedup {warm_disk}x, floor {min_speedup}x)"
    )
    if warm_disk is None or warm_disk < min_speedup:
        print(
            f"FAIL: warm-disk validation speedup {warm_disk}x is below the "
            f"{min_speedup}x floor — a fresh process re-pays the cold "
            "compile despite the shared persistent cache",
            file=sys.stderr,
        )
        failures += 1
    if cache["warm_disk"].get("l2_misses"):
        print(
            f"FAIL: warm-disk run had {cache['warm_disk']['l2_misses']} L2 "
            "miss(es) — the persistent store did not hold the full check "
            "set after a cold validation",
            file=sys.stderr,
        )
        failures += 1

    cross = data.get("cross_process", {})
    if "error" in cross:
        print(f"FAIL: cross-process child failed: {cross['error']}", file=sys.stderr)
        failures += 1
    elif cross:
        print(
            f"cross-process: parent_cold={cross['parent_cold_s']}s "
            f"child_warm={cross['child_warm_s']}s "
            f"(speedup {cross['speedup']}x, l2_hits={cross['child_l2_hits']})"
        )
        if cross["speedup"] is None or cross["speedup"] < min_speedup:
            print(
                f"FAIL: cross-process speedup {cross['speedup']}x is below "
                f"the {min_speedup}x floor",
                file=sys.stderr,
            )
            failures += 1
        if not cross["child_l2_hits"]:
            print(
                "FAIL: the subprocess recorded zero L2 hits — it is not "
                "reading the shared cache directory",
                file=sys.stderr,
            )
            failures += 1

    cpu_count = data.get("cpu_count") or 1
    speedups = data.get("speedup_vs_serial", {})
    at_gated = speedups.get(str(MULTICORE_GATED_WORKERS))
    if cpu_count < 2:
        print(
            f"(cpu_count={cpu_count}: multicore efficiency gate skipped — "
            f"recorded {MULTICORE_GATED_WORKERS}-worker speedup "
            f"{at_gated}x documents the overhead floor)"
        )
    else:
        usable = min(MULTICORE_GATED_WORKERS, cpu_count)
        floor = min_efficiency * usable
        print(
            f"multicore: {MULTICORE_GATED_WORKERS} workers on "
            f"{cpu_count} cpus -> speedup {at_gated}x (floor {floor}x = "
            f"{min_efficiency} efficiency over {usable} usable cores)"
        )
        if at_gated is None or at_gated < floor:
            print(
                f"FAIL: parallel validation speedup {at_gated}x at "
                f"{MULTICORE_GATED_WORKERS} workers is below {floor}x — "
                "the work-stealing scheduler is not paying for itself",
                file=sys.stderr,
            )
            failures += 1

    if failures:
        return 1
    print(
        f"OK: warm-disk and cross-process >= {min_speedup}x over cold"
        + ("" if cpu_count < 2 else ", multicore efficiency met")
    )
    return 0


def check_result_cache(path: str) -> int:
    with open(path) as handle:
        data = json.load(handle)
    min_speedup = float(
        os.environ.get(
            "REPRO_RESULT_CACHE_MIN_SPEEDUP", DEFAULT_RESULT_MIN_SPEEDUP
        )
    )
    failures = 0
    best_gated_speedup = None
    gated_seen = False
    for backend, result in data["backends"].items():
        for size, point in result["sizes"].items():
            stats = point["result_cache"]
            print(
                f"{backend} @ {size} rows: maintained="
                f"{point['maintained_read_qps']}qps reexec="
                f"{point['reexec_read_qps']}qps "
                f"speedup={point['read_speedup']}x "
                f"maintain={point['maintain_ms_per_delta']}ms/delta "
                f"stale={point['stale_reads']} "
                f"fallbacks={stats['fallbacks']} "
                f"validation_failures={stats['validation_failures']}"
            )
            if point["stale_reads"]:
                print(
                    f"FAIL [{backend} @ {size}]: {point['stale_reads']} "
                    "stale read(s) — a maintained entry disagreed with "
                    "re-execution after a write",
                    file=sys.stderr,
                )
                failures += 1
            if stats["validation_failures"]:
                print(
                    f"FAIL [{backend} @ {size}]: "
                    f"{stats['validation_failures']} fingerprint validation "
                    "failure(s) — an entry outlived its model",
                    file=sys.stderr,
                )
                failures += 1
            if stats["fallbacks"] > RESULT_MAX_FALLBACKS:
                print(
                    f"FAIL [{backend} @ {size}]: {stats['fallbacks']} "
                    f"fallback(s) exceed the {RESULT_MAX_FALLBACKS} bound — "
                    "the read-side delta compiler stopped recognizing a "
                    "maintainable shape",
                    file=sys.stderr,
                )
                failures += 1
            if size == GATED_SIZE:
                gated_seen = True
                speedup = point["read_speedup"]
                if speedup is not None and (
                    best_gated_speedup is None or speedup > best_gated_speedup
                ):
                    best_gated_speedup = speedup
    if not gated_seen:
        print(f"(no {GATED_SIZE}-row tier; result-cache speedup gate skipped)")
    elif best_gated_speedup is None or best_gated_speedup < min_speedup:
        print(
            f"FAIL: best maintained-read speedup {best_gated_speedup}x at "
            f"{GATED_SIZE} rows is below the {min_speedup}x floor — the "
            "result tier no longer pays for itself",
            file=sys.stderr,
        )
        failures += 1
    if failures:
        return 1
    print(
        f"OK: zero stale reads, fallbacks bounded"
        + (
            f", maintained reads >= {min_speedup}x at {GATED_SIZE} rows "
            f"(best {best_gated_speedup}x)"
            if gated_seen
            else ""
        )
    )
    return 0


def main() -> int:
    query_path = (
        sys.argv[1] if len(sys.argv) > 1 else "BENCH_query_serving.json"
    )
    concurrent_path = (
        sys.argv[2]
        if len(sys.argv) > 2
        else "BENCH_serving_concurrent.json"
    )
    incremental_path = (
        sys.argv[3]
        if len(sys.argv) > 3
        else "BENCH_incremental_writes.json"
    )
    validation_path = (
        sys.argv[4] if len(sys.argv) > 4 else "BENCH_validation.json"
    )
    result_cache_path = (
        sys.argv[5] if len(sys.argv) > 5 else "BENCH_result_cache.json"
    )
    status = check_query_serving(query_path)
    if os.path.exists(concurrent_path):
        status = check_concurrent(concurrent_path) or status
    else:
        print(f"({concurrent_path} not present; concurrent gates skipped)")
    if os.path.exists(incremental_path):
        status = check_incremental(incremental_path) or status
    else:
        print(f"({incremental_path} not present; incremental gates skipped)")
    if os.path.exists(validation_path):
        status = check_validation(validation_path) or status
    else:
        print(f"({validation_path} not present; validation gates skipped)")
    if os.path.exists(result_cache_path):
        status = check_result_cache(result_cache_path) or status
    else:
        print(
            f"({result_cache_path} not present; result-cache gates skipped)"
        )
    return status


if __name__ == "__main__":
    sys.exit(main())
