"""Unit tests: entity types, entity sets and client schemas."""

import pytest

from repro.edm import (
    Attribute,
    AssociationEnd,
    AssociationSet,
    ClientSchemaBuilder,
    EntitySet,
    EntityType,
    INT,
    Multiplicity,
    STRING,
)
from repro.edm.schema import ClientSchema
from repro.errors import SchemaError


def small_hierarchy() -> ClientSchema:
    """Person ← Employee ← Manager; Person ← Customer."""
    return (
        ClientSchemaBuilder()
        .entity("Person", key=[("Id", INT)], attrs=[("Name", STRING)])
        .entity("Employee", parent="Person", attrs=[("Dept", STRING)])
        .entity("Manager", parent="Employee", attrs=[("Level", INT)])
        .entity("Customer", parent="Person", attrs=[("Score", INT)])
        .entity_set("Persons", "Person")
        .build()
    )


class TestEntityType:
    def test_root_requires_key(self):
        with pytest.raises(SchemaError):
            EntityType("X", attributes=(Attribute("a"),))

    def test_key_must_be_own_attribute(self):
        with pytest.raises(SchemaError):
            EntityType("X", attributes=(Attribute("a"),), key=("b",))

    def test_key_attribute_not_nullable(self):
        with pytest.raises(SchemaError):
            EntityType("X", attributes=(Attribute("a", INT, True),), key=("a",))

    def test_derived_cannot_redeclare_key(self):
        with pytest.raises(SchemaError):
            EntityType("Y", parent="X", attributes=(Attribute("b", INT),), key=("b",))

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            EntityType(
                "X", attributes=(Attribute("a", INT), Attribute("a", INT)), key=("a",)
            )


class TestHierarchyNavigation:
    def test_ancestors_nearest_first(self):
        schema = small_hierarchy()
        assert schema.ancestors("Manager") == ("Employee", "Person")
        assert schema.ancestors("Person") == ()

    def test_descendants(self):
        schema = small_hierarchy()
        assert set(schema.descendants("Person")) == {"Employee", "Manager", "Customer"}
        assert schema.descendants("Manager") == ()

    def test_root_of(self):
        schema = small_hierarchy()
        assert schema.root_of("Manager") == "Person"
        assert schema.root_of("Person") == "Person"

    def test_types_strictly_between(self):
        schema = small_hierarchy()
        # p of Algorithm 1: proper ancestors of Manager below Person
        assert schema.types_strictly_between("Manager", "Person") == ("Employee",)
        # anchored at the parent: empty
        assert schema.types_strictly_between("Manager", "Employee") == ()
        # NIL anchor: every proper ancestor
        assert schema.types_strictly_between("Manager", None) == ("Employee", "Person")

    def test_types_strictly_between_bad_anchor(self):
        schema = small_hierarchy()
        with pytest.raises(SchemaError):
            schema.types_strictly_between("Manager", "Customer")

    def test_attributes_include_inherited(self):
        schema = small_hierarchy()
        assert schema.attribute_names_of("Manager") == ("Id", "Name", "Dept", "Level")

    def test_key_inherited(self):
        schema = small_hierarchy()
        assert schema.key_of("Manager") == ("Id",)

    def test_declaring_type(self):
        schema = small_hierarchy()
        assert schema.declaring_type("Manager", "Name") == "Person"
        assert schema.declaring_type("Manager", "Level") == "Manager"

    def test_concrete_types_skip_abstract(self):
        schema = (
            ClientSchemaBuilder()
            .entity("Shape", key=[("Id", INT)], abstract=True)
            .entity("Circle", parent="Shape", attrs=[("R", INT)])
            .entity_set("Shapes", "Shape")
            .build()
        )
        assert schema.concrete_types_of_set("Shapes") == ("Circle",)


class TestSchemaMutation:
    def test_duplicate_type_rejected(self):
        schema = small_hierarchy()
        with pytest.raises(SchemaError):
            schema.add_entity_type(EntityType("Person", key=("Id",),
                                              attributes=(Attribute("Id", INT),)))

    def test_unknown_parent_rejected(self):
        schema = small_hierarchy()
        with pytest.raises(SchemaError):
            schema.add_entity_type(EntityType("X", parent="Nope"))

    def test_attribute_shadowing_rejected(self):
        schema = small_hierarchy()
        with pytest.raises(SchemaError):
            schema.add_entity_type(
                EntityType("X", parent="Person", attributes=(Attribute("Name"),))
            )

    def test_drop_leaf(self):
        schema = small_hierarchy()
        schema.drop_entity_type("Manager")
        assert not schema.has_entity_type("Manager")
        assert schema.children_of("Employee") == ()

    def test_drop_non_leaf_rejected(self):
        schema = small_hierarchy()
        with pytest.raises(SchemaError):
            schema.drop_entity_type("Employee")

    def test_drop_with_association_rejected(self):
        schema = small_hierarchy()
        schema.add_association(
            AssociationSet(
                "A",
                AssociationEnd("Customer", Multiplicity.MANY),
                AssociationEnd("Manager", Multiplicity.ZERO_OR_ONE),
                "Persons",
                "Persons",
            )
        )
        with pytest.raises(SchemaError):
            schema.drop_entity_type("Manager")

    def test_add_attribute(self):
        schema = small_hierarchy()
        schema.add_attribute("Employee", Attribute("Title", STRING))
        assert "Title" in schema.attribute_names_of("Manager")
        assert "Title" not in schema.attribute_names_of("Customer")

    def test_add_attribute_descendant_clash_rejected(self):
        schema = small_hierarchy()
        with pytest.raises(SchemaError):
            schema.add_attribute("Employee", Attribute("Level"))

    def test_clone_is_independent(self):
        schema = small_hierarchy()
        copy = schema.clone()
        copy.add_attribute("Person", Attribute("Extra"))
        assert "Extra" not in schema.attribute_names_of("Person")
        assert "Extra" in copy.attribute_names_of("Person")


class TestEntitySets:
    def test_set_must_root_at_hierarchy_root(self):
        schema = small_hierarchy()
        with pytest.raises(SchemaError):
            schema.add_entity_set(EntitySet("Emps", "Employee"))

    def test_set_of_type(self):
        schema = small_hierarchy()
        assert schema.set_of_type("Manager").name == "Persons"


class TestAssociations:
    def test_self_association_needs_roles(self):
        with pytest.raises(SchemaError):
            AssociationSet(
                "Boss",
                AssociationEnd("Employee", Multiplicity.MANY),
                AssociationEnd("Employee", Multiplicity.ZERO_OR_ONE),
                "Persons",
                "Persons",
            )

    def test_self_association_with_roles(self):
        association = AssociationSet(
            "Boss",
            AssociationEnd("Employee", Multiplicity.MANY, role="worker"),
            AssociationEnd("Employee", Multiplicity.ZERO_OR_ONE, role="boss"),
            "Persons",
            "Persons",
        )
        assert association.end_for_role("boss").role == "boss"
        assert association.qualified_key_attrs(("Id",), ("Id",)) == (
            "worker.Id",
            "boss.Id",
        )

    def test_association_unknown_type_rejected(self):
        schema = small_hierarchy()
        with pytest.raises(SchemaError):
            schema.add_association(
                AssociationSet(
                    "A",
                    AssociationEnd("Nope", Multiplicity.MANY),
                    AssociationEnd("Person", Multiplicity.MANY),
                    "Persons",
                    "Persons",
                )
            )

    def test_association_type_outside_set_hierarchy_rejected(self):
        schema = (
            ClientSchemaBuilder()
            .entity("A", key=[("Id", INT)])
            .entity("B", key=[("Id", INT)])
            .entity_set("As", "A")
            .entity_set("Bs", "B")
            .build()
        )
        with pytest.raises(SchemaError):
            schema.add_association(
                AssociationSet(
                    "X",
                    AssociationEnd("A", Multiplicity.MANY),
                    AssociationEnd("B", Multiplicity.MANY),
                    "Bs",  # wrong set for A
                    "Bs",
                )
            )

    def test_multiplicity_at_most_one(self):
        assert Multiplicity.ONE.at_most_one()
        assert Multiplicity.ZERO_OR_ONE.at_most_one()
        assert not Multiplicity.MANY.at_most_one()
