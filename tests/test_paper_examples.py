"""End-to-end replay of the paper's worked examples (Sections 2-3).

Examples 1-7 evolve the Figure 1 model step by step; these tests check
that the incremental compiler produces the documented fragments and views
and that everything roundtrips, including equivalence with a full
compilation of the same mapping.
"""

from __future__ import annotations

import pytest

from repro.algebra import (
    IsNotNull,
    IsOf,
    IsOfOnly,
    Join,
    LeftOuterJoin,
    Or,
    Select,
    UnionAll,
)
from repro.algebra.constructors import EntityCtor, IfCtor
from repro.compiler import compile_mapping
from repro.edm import Attribute, INT, STRING
from repro.errors import ValidationError
from repro.incremental import AddEntity, CompiledModel, IncrementalCompiler
from repro.mapping import apply_update_views, check_roundtrip
from repro.relational import ForeignKey

from tests.conftest import customer_smo, employee_smo, figure1_state


class TestExample1And2:
    """AddEntity(Employee, Person, (Id, Department), Person, Emp, f_E)."""

    def test_new_fragment_phi2(self, stage1_compiled):
        model = IncrementalCompiler().apply(
            stage1_compiled, employee_smo(stage1_compiled)
        ).model
        phi2 = model.mapping.fragments[-1]
        assert phi2.client_source == "Persons"
        assert phi2.client_condition == IsOf("Employee")
        assert phi2.store_table == "Emp"
        assert phi2.attribute_map == (("Id", "Id"), ("Department", "Dept"))

    def test_phi1_unchanged(self, stage1_compiled):
        """ϕ1 has no IS OF (ONLY Person) atom, so it is not rewritten."""
        model = IncrementalCompiler().apply(
            stage1_compiled, employee_smo(stage1_compiled)
        ).model
        phi1 = model.mapping.fragments[0]
        assert phi1.client_condition == IsOf("Person")

    def test_employee_query_view_is_join(self, stage1_compiled):
        """Q2_Employee = Q1_Person ⋈ π_{Id, Dept AS Department}(Emp)."""
        model = IncrementalCompiler().apply(
            stage1_compiled, employee_smo(stage1_compiled)
        ).model
        view = model.views.query_view("Employee")
        assert isinstance(view.query, Join)
        assert isinstance(view.constructor, EntityCtor)
        assert view.constructor.type_name == "Employee"

    def test_person_query_view_is_louter(self, stage1_compiled):
        """Q2_Person = Q1_Person ⟕ π_{..., true AS tE}(Emp) with τ an
        if-then-else over tE (Example 2)."""
        model = IncrementalCompiler().apply(
            stage1_compiled, employee_smo(stage1_compiled)
        ).model
        view = model.views.query_view("Person")
        assert isinstance(view.query, LeftOuterJoin)
        assert isinstance(view.constructor, IfCtor)
        assert view.constructor.then_ctor.type_name == "Employee"
        assert view.constructor.else_ctor.constructed_types() == ("Person",)

    def test_validation_runs_fk_check(self, stage1_compiled):
        """Example 6: the Emp.Id → HR.Id check must run and pass."""
        smo = employee_smo(stage1_compiled)
        IncrementalCompiler().apply(stage1_compiled, smo)
        assert smo.validation_checks == 1


class TestExample4And5:
    """AddEntity(Customer, Person, ..., NIL, Client, f_C) — the TPC case."""

    @pytest.fixture
    def stage_after_customer(self, stage1_compiled):
        compiler = IncrementalCompiler()
        model = compiler.apply(stage1_compiled, employee_smo(stage1_compiled)).model
        return compiler.apply(model, customer_smo(model)).model

    def test_phi1_rewritten_to_only_or_employee(self, stage_after_customer):
        """Example 5: IS OF Person becomes IS OF (ONLY Person) ∨ IS OF
        Employee, excluding the new Customer entities."""
        phi1 = stage_after_customer.mapping.fragments[0]
        assert isinstance(phi1.client_condition, Or)
        operands = set(phi1.client_condition.operands)
        assert IsOfOnly("Person") in operands
        assert IsOf("Employee") in operands

    def test_customer_query_view_reads_client_only(self, stage_after_customer):
        """P = NIL: Q3_Customer is built from Client alone (line 5)."""
        view = stage_after_customer.views.query_view("Customer")
        assert not isinstance(view.query, (Join, LeftOuterJoin, UnionAll))

    def test_person_query_view_is_union(self, stage_after_customer):
        """Lines 17-19: Q3_Person = Q2_Person ∪ Qaux."""
        view = stage_after_customer.views.query_view("Person")
        assert isinstance(view.query, UnionAll)

    def test_person_constructor_matches_figure2(self, stage_after_customer):
        """τ3_Person: if t_C then Customer else if t_E then Employee else
        Person (Example 4 / Figure 2)."""
        ctor = stage_after_customer.views.query_view("Person").constructor
        assert isinstance(ctor, IfCtor)
        assert ctor.then_ctor.type_name == "Customer"
        inner = ctor.else_ctor
        assert isinstance(inner, IfCtor)
        assert inner.then_ctor.type_name == "Employee"
        assert inner.else_ctor.type_name == "Person"

    def test_employee_query_view_unchanged(self, stage1_compiled):
        compiler = IncrementalCompiler()
        model = compiler.apply(stage1_compiled, employee_smo(stage1_compiled)).model
        before = model.views.query_view("Employee")
        model = compiler.apply(model, customer_smo(model)).model
        assert model.views.query_view("Employee") is before

    def test_hr_update_view_condition_rewritten(self, stage_after_customer):
        """Example 4: Q3_HR selects IS OF (ONLY Person) ∨ IS OF Employee."""
        view = stage_after_customer.views.update_view("HR")
        selects = [n for n in view.query.walk() if isinstance(n, Select)]
        assert any(isinstance(s.condition, Or) for s in selects)


class TestExample7:
    """AddAssocFK(Supports, Customer, Employee, [* — 0..1], Client, f_S)."""

    def test_three_validation_scenarios_pass(self, incrementally_evolved):
        assert incrementally_evolved.client_schema.has_association("Supports")
        fragment = incrementally_evolved.mapping.fragment_for_association("Supports")
        assert fragment is not None
        assert fragment.store_table == "Client"
        assert fragment.store_condition == IsNotNull("Eid")

    def test_client_update_view_louter_joins_supports(self, incrementally_evolved):
        view = incrementally_evolved.views.update_view("Client")
        assert isinstance(view.query, LeftOuterJoin)

    def test_association_query_view(self, incrementally_evolved):
        view = incrementally_evolved.views.association_view("Supports")
        selects = [n for n in view.query.walk() if isinstance(n, Select)]
        assert any(s.condition == IsNotNull("Eid") for s in selects)


class TestEndToEndEquivalence:
    """The incremental views and the full compiler's views are equivalent."""

    def test_incremental_roundtrips(self, incrementally_evolved):
        state = figure1_state(incrementally_evolved.client_schema)
        report = check_roundtrip(
            incrementally_evolved.views, state, incrementally_evolved.store_schema
        )
        assert report.ok, str(report)

    def test_full_compile_of_evolved_mapping_roundtrips(self, incrementally_evolved):
        result = compile_mapping(incrementally_evolved.mapping.clone())
        state = figure1_state(incrementally_evolved.client_schema)
        report = check_roundtrip(
            result.views, state, incrementally_evolved.store_schema
        )
        assert report.ok, str(report)

    def test_same_store_state_from_both_compilers(self, incrementally_evolved):
        """V_incremental(c) == V_full(c): both compilers translate updates
        identically."""
        full = compile_mapping(incrementally_evolved.mapping.clone())
        state = figure1_state(incrementally_evolved.client_schema)
        store_incremental = apply_update_views(
            incrementally_evolved.views, state, incrementally_evolved.store_schema
        )
        store_full = apply_update_views(
            full.views, state, incrementally_evolved.store_schema
        )
        assert store_incremental.equals(store_full)

    def test_incremental_equals_stage4_reference(
        self, incrementally_evolved, stage4_mapping
    ):
        """The incrementally evolved fragments define the same mapping as
        the hand-written Σ4 of Figure 1: same store state for any client
        state (checked on a representative one)."""
        reference = compile_mapping(stage4_mapping)
        state = figure1_state(stage4_mapping.client_schema)
        store_reference = apply_update_views(
            reference.views, state, stage4_mapping.store_schema
        )
        state2 = figure1_state(incrementally_evolved.client_schema)
        store_incremental = apply_update_views(
            incrementally_evolved.views, state2, incrementally_evolved.store_schema
        )
        assert store_reference.equals(store_incremental)


class TestFigure6Rejection:
    """The TPC foreign-key violation scenario of Figure 6 must abort.

    E' and association A exist; A's endpoint keys live in table R with a
    foreign key to E''s key table S.  Adding E as TPC to a fresh table T
    moves E's keys out of S, so an E entity participating in A would
    dangle — validation check 1/2 of Section 3.1.4 must fail.
    """

    @pytest.fixture
    def base_model(self):
        from repro.algebra.conditions import TRUE
        from repro.edm import ClientSchemaBuilder
        from repro.mapping import Mapping, MappingFragment
        from repro.relational import Column, StoreSchema, Table

        schema = (
            ClientSchemaBuilder()
            .entity("EPrime", key=[("Id", INT)], attrs=[("Name", STRING)])
            .entity("Other", key=[("Oid", INT)])
            .entity_set("EPrimes", "EPrime")
            .entity_set("Others", "Other")
            .association("A", "Other", "EPrime", mult1="*", mult2="0..1")
            .build()
        )
        store = StoreSchema(
            [
                Table(
                    "S",
                    (Column("Id", INT, False), Column("Name", STRING)),
                    ("Id",),
                ),
                Table(
                    "R",
                    (
                        Column("Oid", INT, False),
                        Column("EKey", INT, True),
                    ),
                    ("Oid",),
                    (ForeignKey(("EKey",), "S", ("Id",)),),
                ),
            ]
        )
        fragments = [
            # E' entities into S
            MappingFragment(
                "EPrimes", False, IsOf("EPrime"), "S", TRUE,
                (("Id", "Id"), ("Name", "Name")),
            ),
            # Other entities into R
            MappingFragment(
                "Others", False, IsOf("Other"), "R", TRUE, (("Oid", "Oid"),),
            ),
            # association A into R's EKey foreign-key column
            MappingFragment(
                "A", True, TRUE, "R", IsNotNull("EKey"),
                (("Other.Oid", "Oid"), ("EPrime.Id", "EKey")),
            ),
        ]
        from repro.mapping import Mapping as M

        mapping = M(schema, store, fragments)
        result = compile_mapping(mapping)
        return CompiledModel(mapping, result.views)

    def test_tpc_addition_rejected(self, base_model):
        smo = AddEntity.tpc(
            base_model,
            "E",
            "EPrime",
            [Attribute("Extra", STRING)],
            "T",
            attr_map={"Id": "Id", "Name": "Name", "Extra": "Extra"},
        )
        with pytest.raises(ValidationError):
            IncrementalCompiler().apply(base_model, smo)

    def test_input_model_untouched_after_abort(self, base_model):
        smo = AddEntity.tpc(
            base_model,
            "E",
            "EPrime",
            [Attribute("Extra", STRING)],
            "T",
            attr_map={"Id": "Id", "Name": "Name", "Extra": "Extra"},
        )
        with pytest.raises(ValidationError):
            IncrementalCompiler().apply(base_model, smo)
        assert not base_model.client_schema.has_entity_type("E")
        assert not base_model.store_schema.has_table("T")
        assert len(base_model.mapping.fragments) == 3

    def test_tpt_addition_accepted(self, base_model):
        """The same evolution mapped TPT keeps E keys flowing into S, so
        it validates."""
        smo = AddEntity.tpt(
            base_model,
            "E",
            "EPrime",
            [Attribute("Extra", STRING)],
            "T",
            attr_map={"Id": "Id", "Extra": "Extra"},
            table_foreign_keys=[ForeignKey(("Id",), "S", ("Id",))],
        )
        evolved = IncrementalCompiler().apply(base_model, smo).model
        assert evolved.client_schema.has_entity_type("E")
