"""Tests: the query-view optimizer (Section 6's FOJ → LOJ/UNION ALL)."""

import pytest

from repro.algebra import LeftOuterJoin, Select, UnionAll
from repro.compiler import compile_mapping, optimize_views
from repro.mapping.equivalence import compare_views
from repro.workloads.hub_rim import hub_rim_mapping


class TestFigure2Shape:
    def test_foj_becomes_louter_and_union(self, stage4_mapping):
        result = compile_mapping(stage4_mapping)
        optimized = optimize_views(stage4_mapping, result.views)
        query = optimized.query_view("Person").query
        assert isinstance(query, Select)
        assert isinstance(query.source, UnionAll)
        louter_branch = query.source.branches[0]
        assert isinstance(louter_branch, LeftOuterJoin)

    def test_case_guards_minimized(self, stage4_mapping):
        """Figure 2: Employee's branch tests only its own flag; Person's
        tests its flag plus NOT Employee's."""
        result = compile_mapping(stage4_mapping)
        optimized = optimize_views(stage4_mapping, result.views)
        ctor = optimized.query_view("Person").constructor
        rendered = str(ctor)
        assert "_from1 = True" in rendered
        # Customer's branch needs no negatives (nothing extends it)
        first_branch = ctor.condition
        assert "NOT" not in str(first_branch)

    def test_optimized_views_equivalent(self, stage4_mapping):
        result = compile_mapping(stage4_mapping)
        optimized = optimize_views(stage4_mapping, result.views)
        comparison = compare_views(stage4_mapping, result.views, optimized)
        assert comparison.equivalent, str(comparison)


class TestWorkloadOptimization:
    @pytest.mark.parametrize("style", ["TPH", "TPT"])
    def test_hub_rim_equivalent(self, style):
        mapping = hub_rim_mapping(2, 2, style)
        result = compile_mapping(mapping)
        optimized = optimize_views(mapping, result.views)
        comparison = compare_views(mapping, result.views, optimized)
        assert comparison.equivalent, str(comparison)

    def test_tph_all_unions(self):
        """Pure TPH fragments are pairwise disjoint: the optimized set
        query is a UNION ALL with no outer joins at all."""
        mapping = hub_rim_mapping(1, 2, "TPH")
        result = compile_mapping(mapping, optimize=True)
        query = result.views.query_view("Hub1").query
        assert isinstance(query.source, UnionAll)
        assert not any(
            isinstance(node, LeftOuterJoin) for node in query.walk()
        )

    def test_compile_mapping_optimize_flag(self, stage4_mapping):
        raw = compile_mapping(stage4_mapping)
        opt = compile_mapping(stage4_mapping, optimize=True)
        raw_size = sum(1 for _ in raw.views.query_view("Person").query.walk())
        opt_size = sum(1 for _ in opt.views.query_view("Person").query.walk())
        assert opt_size <= raw_size

    def test_partitioned_mapping_equivalent(self):
        """AddEntityPart-style fragments (overlapping conditions) still
        optimize safely — overlap falls back to a full outer join."""
        from repro.algebra import Comparison, IsOf, TRUE, and_
        from repro.edm import ClientSchemaBuilder, INT, STRING
        from repro.mapping import Mapping, MappingFragment
        from repro.relational import Column, StoreSchema, Table

        schema = (
            ClientSchemaBuilder()
            .entity("R", key=[("id", INT)], attrs=[("v", INT), ("n", STRING)])
            .entity_set("Rs", "R")
            .build()
        )
        store = StoreSchema(
            [
                Table("Pos", (Column("id", INT, False), Column("v", INT)), ("id",)),
                Table("Neg", (Column("id", INT, False), Column("v", INT)), ("id",)),
                Table("Names", (Column("id", INT, False), Column("n", STRING)), ("id",)),
            ]
        )
        mapping = Mapping(
            schema, store,
            [
                MappingFragment("Rs", False,
                                and_(IsOf("R"), Comparison("v", ">=", 0)),
                                "Pos", TRUE, (("id", "id"), ("v", "v"))),
                MappingFragment("Rs", False,
                                and_(IsOf("R"), Comparison("v", "<", 0)),
                                "Neg", TRUE, (("id", "id"), ("v", "v"))),
                MappingFragment("Rs", False, IsOf("R"),
                                "Names", TRUE, (("id", "id"), ("n", "n"))),
            ],
        )
        result = compile_mapping(mapping)
        optimized = optimize_views(mapping, result.views)
        comparison = compare_views(mapping, result.views, optimized)
        assert comparison.equivalent, str(comparison)
