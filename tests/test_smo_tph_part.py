"""Unit tests: AddEntityTPH (Section 3.4) and AddEntityPart (Section 3.3)."""

import pytest

from repro.algebra import Comparison, IsNull, IsOf, IsOfOnly, TRUE, and_
from repro.compiler import compile_mapping
from repro.edm import (
    Attribute,
    ClientSchemaBuilder,
    ClientState,
    Entity,
    INT,
    STRING,
    enum_domain,
)
from repro.errors import SmoError, ValidationError
from repro.incremental import (
    AddEntityPart,
    AddEntityTPH,
    CompiledModel,
    IncrementalCompiler,
    Partition,
)
from repro.mapping import Mapping, MappingFragment, check_roundtrip
from repro.relational import Column, StoreSchema, Table


@pytest.fixture
def compiler():
    return IncrementalCompiler()


@pytest.fixture
def tph_base():
    """A one-type hierarchy already mapped TPH (with a Disc column)."""
    schema = (
        ClientSchemaBuilder()
        .entity("Vehicle", key=[("Id", INT)], attrs=[("Make", STRING)])
        .entity_set("Vehicles", "Vehicle")
        .build()
    )
    store = StoreSchema(
        [
            Table(
                "V",
                (Column("Id", INT, False), Column("Make", STRING),
                 Column("Disc", STRING, False)),
                ("Id",),
            )
        ]
    )
    mapping = Mapping(
        schema, store,
        [
            MappingFragment(
                "Vehicles", False, IsOf("Vehicle"), "V",
                Comparison("Disc", "=", "Vehicle"),
                (("Id", "Id"), ("Make", "Make")),
            )
        ],
    )
    return CompiledModel(mapping, compile_mapping(mapping).views)


@pytest.fixture
def flat_base():
    """A one-type hierarchy mapped 1:1 with *no* discriminator column."""
    schema = (
        ClientSchemaBuilder()
        .entity("Node", key=[("Id", INT)])
        .entity_set("Nodes", "Node")
        .build()
    )
    store = StoreSchema([Table("N", (Column("Id", INT, False),), ("Id",))])
    mapping = Mapping(
        schema, store,
        [MappingFragment("Nodes", False, IsOf("Node"), "N", TRUE, (("Id", "Id"),))],
    )
    return CompiledModel(mapping, compile_mapping(mapping).views)


class TestAddEntityTPH:
    def test_basic_addition(self, tph_base, compiler):
        smo = AddEntityTPH.create(
            tph_base, "Car", "Vehicle", [Attribute("Doors", INT)], "V", "Disc", "Car"
        )
        model = compiler.apply(tph_base, smo).model
        fragment = model.mapping.fragments_for_set("Vehicles")[-1]
        assert fragment.store_condition == Comparison("Disc", "=", "Car")
        # parent condition narrowed to ONLY
        parent_fragment = model.mapping.fragments_for_set("Vehicles")[0]
        assert parent_fragment.client_condition == IsOfOnly("Vehicle")

    def test_duplicate_discriminator_rejected(self, tph_base, compiler):
        model = compiler.apply(
            tph_base,
            AddEntityTPH.create(tph_base, "Car", "Vehicle", [], "V", "Disc", "Car"),
        ).model
        smo = AddEntityTPH.create(model, "Truck", "Vehicle", [], "V", "Disc", "Car")
        with pytest.raises(ValidationError) as err:
            compiler.apply(model, smo)
        assert err.value.check == "discriminator"

    def test_new_columns_created_nullable(self, tph_base, compiler):
        smo = AddEntityTPH.create(
            tph_base, "Car", "Vehicle", [Attribute("Doors", INT)], "V", "Disc", "Car"
        )
        model = compiler.apply(tph_base, smo).model
        assert model.store_schema.table("V").column("Doors").nullable

    def test_unmapped_table_rejected(self, tph_base, compiler):
        smo = AddEntityTPH.create(
            tph_base, "Car", "Vehicle", [], "Other", "Disc", "Car"
        )
        with pytest.raises(SmoError):
            compiler.apply(tph_base, smo)

    def test_inherited_attrs_must_reuse_columns(self, tph_base, compiler):
        smo = AddEntityTPH.create(
            tph_base, "Car", "Vehicle", [], "V", "Disc", "Car",
            attr_map={"Id": "Id", "Make": "Disc"},
        )
        with pytest.raises(SmoError):
            compiler.apply(tph_base, smo)

    def test_three_level_roundtrip(self, tph_base, compiler):
        model = compiler.apply(
            tph_base,
            AddEntityTPH.create(tph_base, "Car", "Vehicle",
                                [Attribute("Doors", INT)], "V", "Disc", "Car"),
        ).model
        model = compiler.apply(
            model,
            AddEntityTPH.create(model, "Sports", "Car",
                                [Attribute("Top", INT)], "V", "Disc", "Sports"),
        ).model
        state = ClientState(model.client_schema)
        state.add_entity("Vehicles", Entity.of("Vehicle", Id=1, Make="m"))
        state.add_entity("Vehicles", Entity.of("Car", Id=2, Make="m", Doors=4))
        state.add_entity(
            "Vehicles", Entity.of("Sports", Id=3, Make="m", Doors=2, Top=300)
        )
        assert check_roundtrip(model.views, state, model.store_schema).ok
        full = compile_mapping(model.mapping.clone())
        assert check_roundtrip(full.views, state, model.store_schema).ok


class TestTphConversion:
    """AddEntityTPH on a table with no discriminator converts it to TPH:
    the column is created, existing rows keep disc = NULL."""

    def test_conversion_narrows_parent_fragment(self, flat_base, compiler):
        smo = AddEntityTPH.create(
            flat_base, "Special", "Node", [Attribute("X", STRING)], "N", "Kind", "S"
        )
        model = compiler.apply(flat_base, smo).model
        parent_fragment = model.mapping.fragments_for_set("Nodes")[0]
        assert IsNull("Kind") in list(parent_fragment.store_condition.atoms())

    def test_conversion_roundtrips(self, flat_base, compiler):
        smo = AddEntityTPH.create(
            flat_base, "Special", "Node", [Attribute("X", STRING)], "N", "Kind", "S"
        )
        model = compiler.apply(flat_base, smo).model
        state = ClientState(model.client_schema)
        state.add_entity("Nodes", Entity.of("Node", Id=1))
        state.add_entity("Nodes", Entity.of("Special", Id=2, X="x"))
        assert check_roundtrip(model.views, state, model.store_schema).ok
        full = compile_mapping(model.mapping.clone())
        assert check_roundtrip(full.views, state, model.store_schema).ok

    def test_int_discriminator_domain(self, flat_base, compiler):
        smo = AddEntityTPH.create(
            flat_base, "Special", "Node", [], "N", "KindNum", 7
        )
        model = compiler.apply(flat_base, smo).model
        assert model.store_schema.table("N").column("KindNum").domain.base == "int"


class TestAddEntityPart:
    def test_partition_fragments_created(self, flat_base, compiler):
        smo = AddEntityPart(
            name="P", parent="Node",
            new_attributes=(Attribute("v", INT),),
            anchor="Node",
            partitions=(
                Partition.of(("Id", "v"), Comparison("v", ">=", 0), "Pos"),
                Partition.of(("Id", "v"), Comparison("v", "<", 0), "Neg"),
            ),
        )
        model = compiler.apply(flat_base, smo).model
        fragments = model.mapping.fragments_for_set("Nodes")
        assert len(fragments) == 3
        assert model.store_schema.has_table("Pos")
        assert model.store_schema.has_table("Neg")
        assert smo.kind == "AEP-2p"

    def test_overlapping_partitions_roundtrip(self, flat_base, compiler):
        """ψ_i may overlap: an entity stored in several tables (the
        Name-table pattern)."""
        smo = AddEntityPart(
            name="P", parent="Node",
            new_attributes=(Attribute("v", INT), Attribute("n", STRING)),
            anchor="Node",
            partitions=(
                Partition.of(("Id", "v"), Comparison("v", ">=", 0), "Pos"),
                Partition.of(("Id", "v"), Comparison("v", "<", 0), "Neg"),
                Partition.of(("Id", "n"), TRUE, "Names"),
            ),
        )
        model = compiler.apply(flat_base, smo).model
        state = ClientState(model.client_schema)
        state.add_entity("Nodes", Entity.of("P", Id=1, v=5, n="a"))
        state.add_entity("Nodes", Entity.of("P", Id=2, v=-5, n="b"))
        report = check_roundtrip(model.views, state, model.store_schema)
        assert report.ok, str(report)
        # row distribution is as mapped
        from repro.mapping import apply_update_views

        store = apply_update_views(model.views, state, model.store_schema)
        assert len(store.rows("Pos")) == 1
        assert len(store.rows("Neg")) == 1
        assert len(store.rows("Names")) == 2

    def test_incomplete_partition_rejected(self, flat_base, compiler):
        smo = AddEntityPart(
            name="P", parent="Node",
            new_attributes=(Attribute("v", INT),),
            anchor="Node",
            partitions=(
                Partition.of(("Id", "v"), Comparison("v", ">", 0), "Pos"),
                Partition.of(("Id", "v"), Comparison("v", "<", 0), "Neg"),
            ),
        )
        # v = 0 falls through both partitions
        with pytest.raises(ValidationError) as err:
            compiler.apply(flat_base, smo)
        assert err.value.check == "coverage"

    def test_unsatisfiable_partition_rejected(self, flat_base, compiler):
        smo = AddEntityPart(
            name="P", parent="Node",
            new_attributes=(Attribute("v", INT),),
            anchor="Node",
            partitions=(
                Partition.of(("Id", "v"), TRUE, "All"),
                Partition.of(
                    ("Id", "v"),
                    and_(Comparison("v", ">", 5), Comparison("v", "<", 3)),
                    "Never",
                ),
            ),
        )
        with pytest.raises(ValidationError) as err:
            compiler.apply(flat_base, smo)
        assert err.value.check == "partition-satisfiable"

    def test_pinned_attribute_reconstructed(self, flat_base, compiler):
        """Gender-style: the partitioning attribute is never stored."""
        smo = AddEntityPart(
            name="M", parent="Node",
            new_attributes=(Attribute("g", enum_domain("M", "F")),),
            anchor="Node",
            partitions=(
                Partition.of(("Id",), Comparison("g", "=", "M"), "Ms"),
                Partition.of(("Id",), Comparison("g", "=", "F"), "Fs"),
            ),
        )
        model = compiler.apply(flat_base, smo).model
        state = ClientState(model.client_schema)
        state.add_entity("Nodes", Entity.of("M", Id=1, g="M"))
        state.add_entity("Nodes", Entity.of("M", Id=2, g="F"))
        assert check_roundtrip(model.views, state, model.store_schema).ok

    def test_duplicate_tables_rejected(self, flat_base, compiler):
        smo = AddEntityPart(
            name="P", parent="Node",
            new_attributes=(Attribute("v", INT),),
            anchor="Node",
            partitions=(
                Partition.of(("Id", "v"), Comparison("v", ">=", 0), "Same"),
                Partition.of(("Id", "v"), Comparison("v", "<", 0), "Same"),
            ),
        )
        with pytest.raises(SmoError):
            compiler.apply(flat_base, smo)

    def test_single_trivial_partition_equals_add_entity(self, flat_base, compiler):
        """Γ = {(α, TRUE, T, f)} behaves exactly like AddEntity."""
        smo = AddEntityPart(
            name="P", parent="Node",
            new_attributes=(Attribute("v", INT),),
            anchor="Node",
            partitions=(Partition.of(("Id", "v"), TRUE, "OnlyT"),),
        )
        model = compiler.apply(flat_base, smo).model
        state = ClientState(model.client_schema)
        state.add_entity("Nodes", Entity.of("Node", Id=1))
        state.add_entity("Nodes", Entity.of("P", Id=2, v=9))
        assert check_roundtrip(model.views, state, model.store_schema).ok
