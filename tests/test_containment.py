"""Unit tests: condition spaces and the CQC-style containment checker."""

import pytest

from repro.algebra import (
    AssociationScan,
    Col,
    Comparison,
    IsNotNull,
    IsNull,
    IsOf,
    IsOfOnly,
    LeftOuterJoin,
    Not,
    ProjItem,
    Project,
    Select,
    SetScan,
    and_,
    or_,
)
from repro.budget import WorkBudget
from repro.containment import (
    ClientConditionSpace,
    StoreConditionSpace,
    check_containment,
    value_candidates,
)
from repro.containment.checker import canonical_client_states
from repro.edm import ClientSchemaBuilder, INT, STRING, enum_domain
from repro.errors import CompilationBudgetExceeded, EvaluationError
from repro.relational import Column, StoreSchema, Table


@pytest.fixture
def schema():
    return (
        ClientSchemaBuilder()
        .entity("P", key=[("Id", INT)], attrs=[("Age", INT), ("G", enum_domain("M", "F"))])
        .entity("E", parent="P", attrs=[("Dept", STRING)])
        .entity("C", parent="P", attrs=[("Score", INT)])
        .entity_set("Ps", "P")
        .association("L", "C", "E", mult1="*", mult2="0..1")
        .build()
    )


class TestValueCandidates:
    def test_int_boundaries(self):
        candidates = value_candidates(INT, False, [18])
        assert {17, 18, 19} <= set(candidates)
        assert None not in candidates

    def test_nullable_adds_none(self):
        assert None in value_candidates(INT, True, [1])

    def test_enum_uses_domain_values(self):
        candidates = value_candidates(enum_domain("M", "F"), False, ["M"])
        assert set(candidates) == {"F", "M"}

    def test_string_gets_fresh_value(self):
        candidates = value_candidates(STRING, False, ["x"])
        assert "x" in candidates and len(candidates) >= 2

    def test_gap_midpoint_included(self):
        candidates = value_candidates(INT, False, [0, 100])
        assert any(10 < c < 90 for c in candidates)


class TestClientConditionSpace:
    def test_satisfiable_type_condition(self, schema):
        space = ClientConditionSpace(schema, "Ps", [IsOf("E")])
        assert space.satisfiable(IsOf("E"))
        assert space.satisfiable(IsOfOnly("P"))
        assert not space.satisfiable(and_(IsOfOnly("P"), IsOf("E")))

    def test_implication_over_hierarchy(self, schema):
        space = ClientConditionSpace(schema, "Ps", [IsOf("E"), IsOf("P")])
        assert space.implies(IsOf("E"), IsOf("P"))
        assert not space.implies(IsOf("P"), IsOf("E"))

    def test_implication_with_attributes(self, schema):
        conditions = [Comparison("Age", ">=", 18), Comparison("Age", ">=", 21)]
        space = ClientConditionSpace(schema, "Ps", conditions)
        assert space.implies(Comparison("Age", ">=", 21), Comparison("Age", ">=", 18))
        assert not space.implies(Comparison("Age", ">=", 18), Comparison("Age", ">=", 21))

    def test_tautology_over_enum_domain(self, schema):
        space = ClientConditionSpace(
            schema, "Ps", [Comparison("G", "=", "M"), Comparison("G", "=", "F")]
        )
        assert space.tautology(or_(Comparison("G", "=", "M"), Comparison("G", "=", "F")))
        assert not space.tautology(Comparison("G", "=", "M"))

    def test_tautology_for_type(self, schema):
        space = ClientConditionSpace(
            schema, "Ps", [Comparison("Age", ">=", 18), Comparison("Age", "<", 18)]
        )
        taut = or_(Comparison("Age", ">=", 18), Comparison("Age", "<", 18))
        assert space.tautology_for_type("P", taut)
        assert not space.tautology_for_type("P", Comparison("Age", ">=", 18))

    def test_equivalent(self, schema):
        space = ClientConditionSpace(
            schema, "Ps", [Comparison("Age", "<", 18), Comparison("Age", ">=", 18)]
        )
        assert space.equivalent(
            Not(Comparison("Age", "<", 18)), Comparison("Age", ">=", 18)
        )

    def test_truth_vectors(self, schema):
        conditions = [IsOf("E"), IsOf("C")]
        space = ClientConditionSpace(schema, "Ps", conditions)
        vectors = set(space.truth_vectors(conditions))
        # E and C are disjoint subtrees: (T,T) unachievable
        assert vectors == {(False, False), (True, False), (False, True)}

    def test_budget_trips(self, schema):
        conditions = [Comparison("Age", "=", i) for i in range(8)]
        space = ClientConditionSpace(schema, "Ps", conditions)
        with pytest.raises(CompilationBudgetExceeded):
            space.truth_vectors(conditions, WorkBudget(max_steps=3))


class TestStoreConditionSpace:
    def _store(self):
        return StoreSchema(
            [
                Table(
                    "T",
                    (
                        Column("Id", INT, False),
                        Column("D", enum_domain("a", "b"), False),
                        Column("F1", INT, True),
                        Column("F2", INT, True),
                    ),
                    ("Id",),
                )
            ]
        )

    def test_discriminator_exclusive(self):
        store = self._store()
        conditions = [Comparison("D", "=", "a"), Comparison("D", "=", "b")]
        space = StoreConditionSpace(store, "T", conditions)
        vectors = set(space.truth_vectors(conditions))
        assert (True, True) not in vectors
        assert (True, False) in vectors and (False, True) in vectors

    def test_independent_not_nulls_give_all_vectors(self):
        """The exponential engine of Figure 4: k independent nullable
        columns achieve all 2^k truth vectors."""
        store = self._store()
        conditions = [IsNotNull("F1"), IsNotNull("F2")]
        space = StoreConditionSpace(store, "T", conditions)
        assert len(space.truth_vectors(conditions)) == 4

    def test_type_atoms_rejected_on_store_side(self):
        store = self._store()
        space = StoreConditionSpace(store, "T", [IsOf("X")])
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            space.satisfiable(IsOf("X"))

    def test_null_and_not_null_exclusive(self):
        store = self._store()
        space = StoreConditionSpace(store, "T", [IsNull("F1"), IsNotNull("F1")])
        assert not space.satisfiable(and_(IsNull("F1"), IsNotNull("F1")))


class TestCheckContainment:
    def test_subtype_containment(self, schema):
        lhs = Project(Select(SetScan("Ps"), IsOf("E")), (ProjItem("Id", Col("Id")),))
        rhs = Project(Select(SetScan("Ps"), IsOf("P")), (ProjItem("Id", Col("Id")),))
        assert check_containment(lhs, rhs, schema).holds

    def test_counterexample_produced(self, schema):
        lhs = Project(Select(SetScan("Ps"), IsOf("P")), (ProjItem("Id", Col("Id")),))
        rhs = Project(Select(SetScan("Ps"), IsOf("E")), (ProjItem("Id", Col("Id")),))
        result = check_containment(lhs, rhs, schema)
        assert not result.holds
        assert result.counterexample is not None
        assert result.missing_row is not None
        assert "FAILS" in result.explain()

    def test_attribute_condition_containment(self, schema):
        lhs = Project(
            Select(SetScan("Ps"), Comparison("Age", ">=", 21)),
            (ProjItem("Id", Col("Id")),),
        )
        rhs = Project(
            Select(SetScan("Ps"), Comparison("Age", ">=", 18)),
            (ProjItem("Id", Col("Id")),),
        )
        assert check_containment(lhs, rhs, schema).holds
        assert not check_containment(rhs, lhs, schema).holds

    def test_boundary_value_sensitivity(self, schema):
        """>= 18 vs > 18 differ exactly at the boundary value."""
        lhs = Project(
            Select(SetScan("Ps"), Comparison("Age", ">=", 18)),
            (ProjItem("Id", Col("Id")),),
        )
        rhs = Project(
            Select(SetScan("Ps"), Comparison("Age", ">", 18)),
            (ProjItem("Id", Col("Id")),),
        )
        result = check_containment(lhs, rhs, schema)
        assert not result.holds

    def test_association_membership(self, schema):
        """π keys of an association are contained in the participating
        types' key sets (associations reference existing entities)."""
        lhs = Project(AssociationScan("L"), (ProjItem("Id", Col("E.Id")),))
        rhs = Project(Select(SetScan("Ps"), IsOf("E")), (ProjItem("Id", Col("Id")),))
        assert check_containment(lhs, rhs, schema).holds

    def test_association_not_contained_in_sibling(self, schema):
        lhs = Project(AssociationScan("L"), (ProjItem("Id", Col("E.Id")),))
        rhs = Project(Select(SetScan("Ps"), IsOf("C")), (ProjItem("Id", Col("Id")),))
        assert not check_containment(lhs, rhs, schema).holds

    def test_louter_join_rhs(self, schema):
        """Containment into an update-view-shaped rhs with an outer join."""
        rhs_body = LeftOuterJoin(
            Project(
                Select(SetScan("Ps"), IsOf("C")),
                (ProjItem("Cid", Col("Id")),),
            ),
            Project(
                AssociationScan("L"),
                (ProjItem("Cid", Col("C.Id")), ProjItem("Eid", Col("E.Id"))),
            ),
            on=("Cid",),
        )
        lhs = Project(
            Select(SetScan("Ps"), IsOf("C")), (ProjItem("Cid", Col("Id")),)
        )
        rhs = Project(rhs_body, (ProjItem("Cid", Col("Cid")),))
        assert check_containment(lhs, rhs, schema).holds

    def test_misaligned_projections_rejected(self, schema):
        lhs = Project(SetScan("Ps"), (ProjItem("Id", Col("Id")),))
        rhs = Project(SetScan("Ps"), (ProjItem("Other", Col("Id")),))
        with pytest.raises(EvaluationError):
            check_containment(lhs, rhs, schema)

    def test_budget_enforced(self, schema):
        lhs = Project(Select(SetScan("Ps"), IsOf("E")), (ProjItem("Id", Col("Id")),))
        rhs = Project(Select(SetScan("Ps"), IsOf("P")), (ProjItem("Id", Col("Id")),))
        with pytest.raises(CompilationBudgetExceeded):
            check_containment(lhs, rhs, schema, WorkBudget(max_steps=2))


class TestCanonicalStates:
    def test_states_are_legal(self, schema):
        for state in canonical_client_states(schema, ["Ps"], ["L"]):
            for entity in state.entities("Ps"):
                pass  # add_entity already validated
        assert True

    def test_required_end_filtering(self):
        """With a required (1) end, states violating the lower bound are
        not generated."""
        schema = (
            ClientSchemaBuilder()
            .entity("A", key=[("Id", INT)])
            .entity("B", key=[("Id", INT)])
            .entity_set("As", "A")
            .entity_set("Bs", "B")
            .association("R", "A", "B", mult1="1", mult2="0..1")
            .build()
        )
        # end1 mult 1: every B needs exactly one A partner
        for state in canonical_client_states(schema, ["As", "Bs"], ["R"]):
            for b in state.entities("Bs"):
                assert state.associations("R"), "B without required partner generated"
