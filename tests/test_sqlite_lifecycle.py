"""SQLite backend connection lifecycle: idempotent close, the reader
pool's statement-cache hygiene, and cross-thread serving."""

from __future__ import annotations

import threading

import pytest

from repro.backend.pool import ConnectionPool, PoolClosed, PooledConnection
from repro.backend.sqlite import SqliteBackend
from repro.compiler import compile_mapping
from repro.incremental import CompiledModel
from repro.query import EntityQuery
from repro.session import OrmSession
from repro.workloads.paper_example import mapping_stage1


@pytest.fixture(scope="module")
def stage1_model() -> CompiledModel:
    mapping = mapping_stage1()
    return CompiledModel(mapping, compile_mapping(mapping).views)


def _populated(model: CompiledModel, pool_size: int = 0) -> OrmSession:
    # result_cache_budget=0: these tests exercise connection lifecycle and
    # pool sharing, so every query must actually reach the backend
    session = OrmSession.create(
        model, backend="sqlite", pool_size=pool_size, result_cache_budget=0
    )
    with session.edit() as state:
        from repro.edm import Entity

        state.add_entity("Persons", Entity.of("Person", Id=1, Name="ann"))
        state.add_entity("Persons", Entity.of("Person", Id=2, Name="bob"))
    return session


class TestClose:
    def test_close_is_idempotent(self, stage1_model):
        session = _populated(stage1_model)
        backend = session.backend
        backend.close()
        assert backend.closed
        backend.close()  # second close is a no-op, not an error
        assert backend.closed

    def test_close_with_pool_closes_idle_readers(self, stage1_model):
        session = _populated(stage1_model, pool_size=2)
        backend = session.backend
        session.query(EntityQuery("Persons"))  # provisions a pooled reader
        stats = backend._pool.stats()
        assert stats["created"] >= 1
        backend.close()
        assert backend._pool.closed
        with pytest.raises(PoolClosed):
            backend._pool.checkout()
        backend.close()

    def test_leased_connection_returned_after_close_is_closed(
        self, stage1_model
    ):
        session = _populated(stage1_model, pool_size=2)
        backend = session.backend
        leased = backend._pool.checkout()
        backend.close()
        backend._pool.checkin(leased)  # comes back to a closed pool
        assert backend._pool.stats()["created"] == 0
        with pytest.raises(Exception):
            leased.connection.execute("SELECT 1")


class TestPoolHygiene:
    def test_checkin_clears_statement_cache(self, stage1_model):
        session = _populated(stage1_model, pool_size=1)
        backend = session.backend
        session.query(EntityQuery("Persons"))
        leased = backend._pool.checkout()
        # the lease that served the query was checked back in with its
        # cursor cache scrubbed — no cursor crosses into this lease
        assert leased.statements.stats().entries == 0
        backend._pool.checkin(leased)
        backend.close()

    def test_pool_bounds_connection_count(self, stage1_model):
        session = _populated(stage1_model, pool_size=2)
        backend = session.backend
        first = backend._pool.checkout()
        second = backend._pool.checkout()
        assert backend._pool.stats()["created"] == 2
        done = threading.Event()
        acquired = []

        def blocked_checkout() -> None:
            leased = backend._pool.checkout()
            acquired.append(leased)
            done.set()

        thread = threading.Thread(target=blocked_checkout)
        thread.start()
        assert not done.wait(0.1)  # pool exhausted: the third waits
        backend._pool.checkin(first)
        assert done.wait(2.0)
        thread.join()
        backend._pool.checkin(second)
        backend._pool.checkin(acquired[0])
        assert backend._pool.stats()["created"] == 2
        backend.close()

    def test_factory_failure_releases_the_slot(self):
        attempts = []

        def factory() -> PooledConnection:
            attempts.append(1)
            raise RuntimeError("boom")

        pool = ConnectionPool(factory, lambda leased: None, max_size=1)
        with pytest.raises(RuntimeError):
            pool.checkout()
        # the failed creation must not leak the only slot
        with pytest.raises(RuntimeError):
            pool.checkout()
        assert len(attempts) == 2
        pool.close()


class TestCrossThreadServing:
    def test_pooled_readers_see_committed_writes(self, stage1_model):
        session = _populated(stage1_model, pool_size=4)
        query = EntityQuery("Persons")
        assert len(session.query(query)) == 2
        with session.edit() as state:
            from repro.edm import Entity

            state.add_entity("Persons", Entity.of("Person", Id=3, Name="cid"))
        results = {}

        def read(name: str) -> None:
            results[name] = len(session.query(query))

        threads = [
            threading.Thread(target=read, args=(f"t{i}",)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(count == 3 for count in results.values()), results
        session.engine.close()

    def test_many_threads_share_the_pool(self, stage1_model):
        session = _populated(stage1_model, pool_size=2)
        query = EntityQuery("Persons")
        errors = []

        def hammer() -> None:
            try:
                for _ in range(25):
                    assert len(session.query(query)) == 2
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors[0]
        stats = session.backend._pool.stats()
        assert stats["created"] <= 2
        assert stats["checkouts"] >= 8 * 25
        session.engine.close()

    def test_private_memory_database_cannot_pool(self, stage1_model):
        from repro.errors import SchemaError

        backend = SqliteBackend(stage1_model.store_schema)
        view = backend.read_view()
        assert backend._pool is None
        with view.acquire() as reader:
            assert reader is backend  # no pool: main connection, locked
        with pytest.raises(SchemaError):
            backend._make_reader()
        backend.close()
