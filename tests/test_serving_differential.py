"""Differential harness for the serving fast path: answers from cached
plans must be byte-identical to fresh unfolding, on both backends,
across workloads and after every SMO kind.

Reuses the workload matrix and SMO kinds of
:mod:`tests.test_backend_differential`; here the comparison is not
memory-vs-sqlite but cached-vs-uncached on *each* backend — a cached
plan that survives an invalidation boundary it should not have survived
shows up as a divergence from the freshly unfolded answer.
"""

import pytest

from tests.test_backend_differential import (
    SMO_KINDS,
    WORKLOADS,
    canon,
    compiled,
    dual_sessions,
    populate_both,
)
from repro.algebra import Comparison
from repro.query import EntityQuery
from repro.query.unfold import unfold


def _probe_queries(schema):
    """Whole-set scans plus key-equality probes for every entity set."""
    queries = []
    for entity_set in schema.entity_sets:
        queries.append(EntityQuery(entity_set.name))
        key = schema.key_of(entity_set.root_type)[0]
        for value in (1, 2):
            queries.append(
                EntityQuery(entity_set.name, Comparison(key, "=", value))
            )
    return queries


def _assert_cached_matches_fresh(session):
    """Every probe query answered twice from the session (second answer
    from a cached plan) must match a direct, uncached unfold."""
    model = session.model
    for query in _probe_queries(model.client_schema):
        fresh = canon(
            unfold(query, model.views, model.client_schema).run_on(
                session.backend
            )
        )
        assert canon(session.query(query)) == fresh
        assert canon(session.query(query)) == fresh, (
            f"warm cached answer diverges on {query.set_name}"
        )


@pytest.mark.parametrize(
    "factory", [f for _, f in WORKLOADS], ids=[name for name, _ in WORKLOADS]
)
def test_cached_answers_match_fresh_unfold(factory):
    model = compiled(factory())
    memory, sqlite = dual_sessions(model)
    try:
        populate_both(memory, sqlite, seed=23)
        for session in (memory, sqlite):
            _assert_cached_matches_fresh(session)
            assert session.plan_cache.stats().hits > 0
    finally:
        sqlite.backend.close()


@pytest.mark.parametrize(
    "base_factory,smo_factory,pop",
    [(b, s, p) for _, b, s, p in SMO_KINDS],
    ids=[kind for kind, _, _, _ in SMO_KINDS],
)
def test_no_stale_plan_served_after_smo(base_factory, smo_factory, pop):
    """Warm every plan, evolve, then require post-SMO answers to match a
    fresh unfold of the *evolved* model — a stale plan surviving the
    invalidation would diverge here."""
    model = base_factory()
    memory, sqlite = dual_sessions(model)
    try:
        state = pop(model)
        memory.save(state)
        sqlite.save(state)
        for session in (memory, sqlite):
            for query in _probe_queries(model.client_schema):
                session.query(query)  # build + cache plans pre-SMO
        smo = smo_factory(model)
        memory.evolve(smo)
        sqlite.evolve(smo)
        for session in (memory, sqlite):
            _assert_cached_matches_fresh(session)
    finally:
        sqlite.backend.close()


@pytest.mark.parametrize(
    "base_factory,smo_factory,pop",
    [(b, s, p) for _, b, s, p in SMO_KINDS],
    ids=[kind for kind, _, _, _ in SMO_KINDS],
)
def test_no_stale_plan_served_after_undo(base_factory, smo_factory, pop):
    model = base_factory()
    memory, sqlite = dual_sessions(model)
    try:
        state = pop(model)
        memory.save(state)
        sqlite.save(state)
        smo = smo_factory(model)
        memory.evolve(smo)
        sqlite.evolve(smo)
        for session in (memory, sqlite):
            for query in _probe_queries(session.model.client_schema):
                session.query(query)  # warm plans over the evolved model
        memory.undo()
        sqlite.undo()
        for session in (memory, sqlite):
            _assert_cached_matches_fresh(session)
    finally:
        sqlite.backend.close()
