"""Unit tests: client states (entities, associations, embedding)."""

import pytest

from repro.edm import ClientSchemaBuilder, ClientState, Entity, INT, STRING
from repro.errors import SchemaError

from tests.test_edm_schema import small_hierarchy


@pytest.fixture
def schema():
    schema = small_hierarchy()
    schema2 = schema.clone()
    return schema2


@pytest.fixture
def schema_with_assoc():
    return (
        ClientSchemaBuilder()
        .entity("Person", key=[("Id", INT)], attrs=[("Name", STRING)])
        .entity("Employee", parent="Person", attrs=[("Dept", STRING)])
        .entity("Customer", parent="Person", attrs=[("Score", INT)])
        .entity_set("Persons", "Person")
        .association("Supports", "Customer", "Employee", mult1="*", mult2="0..1")
        .build()
    )


class TestAddEntity:
    def test_basic(self, schema):
        state = ClientState(schema)
        state.add_entity("Persons", Entity.of("Person", Id=1, Name="a"))
        assert len(state.entities("Persons")) == 1

    def test_unknown_set_rejected(self, schema):
        state = ClientState(schema)
        with pytest.raises(SchemaError):
            state.add_entity("Nope", Entity.of("Person", Id=1, Name="a"))

    def test_type_outside_hierarchy_rejected(self, schema_with_assoc):
        state = ClientState(schema_with_assoc)
        with pytest.raises(SchemaError):
            state.add_entity("Persons", Entity.of("Table", Id=1))

    def test_missing_attribute_rejected(self, schema):
        state = ClientState(schema)
        with pytest.raises(SchemaError):
            state.add_entity("Persons", Entity.of("Person", Id=1))

    def test_extra_attribute_rejected(self, schema):
        state = ClientState(schema)
        with pytest.raises(SchemaError):
            state.add_entity("Persons", Entity.of("Person", Id=1, Name="a", X=2))

    def test_null_in_non_nullable_rejected(self, schema):
        state = ClientState(schema)
        with pytest.raises(SchemaError):
            state.add_entity("Persons", Entity.of("Person", Id=1, Name=None))

    def test_domain_violation_rejected(self, schema):
        state = ClientState(schema)
        with pytest.raises(SchemaError):
            state.add_entity("Persons", Entity.of("Person", Id="one", Name="a"))

    def test_duplicate_key_rejected_across_types(self, schema):
        state = ClientState(schema)
        state.add_entity("Persons", Entity.of("Person", Id=1, Name="a"))
        with pytest.raises(SchemaError):
            state.add_entity(
                "Persons", Entity.of("Employee", Id=1, Name="b", Dept="x")
            )


class TestAssociations:
    def _populated(self, schema_with_assoc):
        state = ClientState(schema_with_assoc)
        state.add_entity(
            "Persons", Entity.of("Employee", Id=1, Name="e", Dept="d")
        )
        state.add_entity(
            "Persons", Entity.of("Customer", Id=2, Name="c", Score=5)
        )
        state.add_entity(
            "Persons", Entity.of("Customer", Id=3, Name="c2", Score=6)
        )
        return state

    def test_add(self, schema_with_assoc):
        state = self._populated(schema_with_assoc)
        state.add_association("Supports", (2,), (1,))
        assert state.associations("Supports") == ((2, 1),)

    def test_missing_entities_rejected(self, schema_with_assoc):
        state = self._populated(schema_with_assoc)
        with pytest.raises(SchemaError):
            state.add_association("Supports", (99,), (1,))

    def test_wrong_end_type_rejected(self, schema_with_assoc):
        state = self._populated(schema_with_assoc)
        # entity 1 is an Employee, cannot play the Customer end
        with pytest.raises(SchemaError):
            state.add_association("Supports", (1,), (2,))

    def test_multiplicity_upper_bound_enforced(self, schema_with_assoc):
        state = self._populated(schema_with_assoc)
        state.add_association("Supports", (2,), (1,))
        # Customer 2 already supported by an employee (end2 is 0..1)
        with pytest.raises(SchemaError):
            state.add_association("Supports", (2,), (1,))

    def test_many_end_allows_sharing(self, schema_with_assoc):
        state = self._populated(schema_with_assoc)
        state.add_association("Supports", (2,), (1,))
        state.add_association("Supports", (3,), (1,))  # end1 is *, fine
        assert len(state.associations("Supports")) == 2


class TestComparisonAndEmbedding:
    def test_equals_ignores_insertion_order(self, schema):
        a = ClientState(schema)
        b = ClientState(schema)
        a.add_entity("Persons", Entity.of("Person", Id=1, Name="x"))
        a.add_entity("Persons", Entity.of("Person", Id=2, Name="y"))
        b.add_entity("Persons", Entity.of("Person", Id=2, Name="y"))
        b.add_entity("Persons", Entity.of("Person", Id=1, Name="x"))
        assert a.equals(b)

    def test_not_equals_on_value_change(self, schema):
        a = ClientState(schema)
        b = ClientState(schema)
        a.add_entity("Persons", Entity.of("Person", Id=1, Name="x"))
        b.add_entity("Persons", Entity.of("Person", Id=1, Name="Y"))
        assert not a.equals(b)

    def test_embed_into_evolved_schema(self, schema):
        """The paper's f(c): same contents, new components empty."""
        state = ClientState(schema)
        state.add_entity("Persons", Entity.of("Person", Id=1, Name="x"))
        evolved = schema.clone()
        from repro.edm import Attribute
        from repro.edm.entity import EntityType

        evolved.add_entity_type(
            EntityType("Robot", parent="Person", attributes=(Attribute("Os"),))
        )
        embedded = state.embed_into(evolved)
        assert embedded.entities("Persons") == state.entities("Persons")

    def test_embed_rejects_dropped_nonempty_component(self, schema_with_assoc):
        state = ClientState(schema_with_assoc)
        state.add_entity("Persons", Entity.of("Employee", Id=1, Name="e", Dept="d"))
        state.add_entity("Persons", Entity.of("Customer", Id=2, Name="c", Score=1))
        state.add_association("Supports", (2,), (1,))
        target = schema_with_assoc.clone()
        target.drop_association("Supports")
        with pytest.raises(SchemaError):
            state.embed_into(target)

    def test_entity_value_access(self):
        entity = Entity.of("T", a=1, b=None)
        assert entity["a"] == 1
        assert entity["b"] is None
        from repro.errors import EvaluationError

        with pytest.raises(EvaluationError):
            entity["missing"]

    def test_key_tuple(self):
        entity = Entity.of("T", a=1, b=2)
        assert entity.key_tuple(("b", "a")) == (2, 1)
