"""The epoch-based serving engine: swap protocol, pinned readers,
concurrent query/evolve/undo traffic, and plan survival across swaps.

The concurrent tests drive the acceptance scenario of the serving tier:
many reader threads hammering ``query`` while a writer churns
``evolve_many`` / ``undo`` batches, with every response required to be
consistent with exactly one published epoch fingerprint.
"""

from __future__ import annotations

import threading

import pytest

from repro.backend import create_backend
from repro.compiler import compile_mapping
from repro.edm import Attribute, Entity, STRING
from repro.incremental import AddProperty, CompiledModel
from repro.query import EntityQuery
from repro.session import OrmSession
from repro.workloads.chain import chain_mapping, entity_name, set_name

BACKENDS = ["memory", "sqlite"]
CHAIN_TYPES = 6


@pytest.fixture(scope="module")
def chain_compiled() -> CompiledModel:
    mapping = chain_mapping(CHAIN_TYPES)
    result = compile_mapping(mapping, validate=False)
    return CompiledModel(mapping, result.views)


def _chain_session(
    chain_compiled: CompiledModel, backend_name: str, pool_size: int = 0
) -> OrmSession:
    backend = create_backend(
        backend_name, chain_compiled.store_schema, pool_size=pool_size
    )
    session = OrmSession(chain_compiled, backend=backend)
    with session.edit() as state:
        for index in range(1, CHAIN_TYPES + 1):
            for row in range(3):
                state.add_entity(
                    set_name(index),
                    Entity.of(
                        entity_name(index),
                        Id=row,
                        EntityAtt2=f"a{row}",
                        EntityAtt3=f"b{row}",
                        EntityAtt4=f"c{row}",
                    ),
                )
    return session


def _churn_smo(model: CompiledModel) -> AddProperty:
    """One repeatable migration: widen Entity1's table by a nullable
    column (touched neighborhood = Entities1 only)."""
    return AddProperty(
        entity_name(1),
        Attribute("Tmp", STRING, nullable=True),
        "T1",
        "Tmp",
    )


class TestEpochSwap:
    def test_every_write_publishes_a_new_epoch(self, chain_compiled):
        session = _chain_session(chain_compiled, "memory")
        first = session.epoch
        session.evolve(_churn_smo(session.model))
        second = session.epoch
        assert second.epoch_id == first.epoch_id + 1
        assert second.fingerprint != first.fingerprint
        assert second.model is not first.model
        session.undo()
        third = session.epoch
        assert third.epoch_id == second.epoch_id + 1
        assert third.fingerprint == first.fingerprint

    def test_save_keeps_fingerprint_but_swaps_epoch(self, chain_compiled):
        session = _chain_session(chain_compiled, "memory")
        before = session.epoch
        with session.edit() as state:
            state.add_entity(
                set_name(2),
                Entity.of(
                    entity_name(2),
                    Id=99,
                    EntityAtt2="x",
                    EntityAtt3="y",
                    EntityAtt4="z",
                ),
            )
        after = session.epoch
        assert after.epoch_id > before.epoch_id
        assert after.fingerprint == before.fingerprint
        assert after.model is before.model

    def test_failed_write_leaves_old_epoch_standing(self, chain_compiled):
        from repro.errors import SmoError

        session = _chain_session(chain_compiled, "memory")
        epoch = session.epoch
        with pytest.raises(SmoError):
            session.evolve(
                AddProperty(
                    "NoSuchType",
                    Attribute("X", STRING, nullable=True),
                    "T1",
                    "X",
                )
            )
        assert session.epoch is epoch
        assert len(session.query(EntityQuery(set_name(1)))) == 3

    def test_replace_contents_resets_plan_cache(self, chain_compiled):
        session = _chain_session(chain_compiled, "memory")
        session.query(EntityQuery(set_name(1)))
        assert len(session.plan_cache) == 1
        session.store_state = session.backend.to_store_state()
        assert len(session.plan_cache) == 0


class TestPinnedReaders:
    """Snapshot readers stay on their epoch while writers move on."""

    def test_reader_pinned_on_old_epoch_during_undo(self, chain_compiled):
        session = _chain_session(chain_compiled, "memory")
        session.evolve(_churn_smo(session.model))
        pinned = session.epoch
        query = EntityQuery(set_name(1))
        before = session.engine.query_on(pinned, query)
        assert all("Tmp" in e.value_map for e in before)

        session.undo()
        assert session.epoch.epoch_id > pinned.epoch_id
        rolled_back = session.query(query)
        assert all("Tmp" not in e.value_map for e in rolled_back)
        # the pinned epoch still answers from its own world, identically
        after = session.engine.query_on(pinned, query)
        assert sorted(map(repr, after)) == sorted(map(repr, before))

    def test_every_epoch_in_a_chain_stays_consistent(self, chain_compiled):
        session = _chain_session(chain_compiled, "memory")
        query = EntityQuery(set_name(3))
        base = len(session.query(query))
        epochs = []
        for i in range(8):
            with session.edit() as state:
                state.add_entity(
                    set_name(3),
                    Entity.of(
                        entity_name(3),
                        Id=100 + i,
                        EntityAtt2="x",
                        EntityAtt3="y",
                        EntityAtt4="z",
                    ),
                )
            epochs.append((session.epoch, base + i + 1))
        for epoch, expected in epochs:
            assert len(session.engine.query_on(epoch, query)) == expected


@pytest.mark.parametrize("backend_name", BACKENDS)
class TestConcurrentTraffic:
    """Readers hammer the engine while a writer churns evolve/undo."""

    CLIENTS = 8
    BATCHES = 20

    def test_queries_race_evolution_without_torn_reads(
        self, chain_compiled, backend_name
    ):
        session = _chain_session(
            chain_compiled, backend_name, pool_size=self.CLIENTS
        )
        engine = session.engine
        touched = EntityQuery(set_name(1))
        untouched = EntityQuery(set_name(CHAIN_TYPES))

        # Precompute, per fingerprint, the answer a consistent response
        # must equal — structural fingerprints repeat across the churn.
        base_fp = engine.epoch.fingerprint
        expected = {
            base_fp: {
                "touched": sorted(map(repr, engine.query(touched))),
                "untouched": sorted(map(repr, engine.query(untouched))),
            }
        }
        engine.evolve(_churn_smo(engine.epoch.model))
        evolved_fp = engine.epoch.fingerprint
        expected[evolved_fp] = {
            "touched": sorted(map(repr, engine.query(touched))),
            "untouched": sorted(map(repr, engine.query(untouched))),
        }
        engine.undo()
        assert engine.epoch.fingerprint == base_fp
        assert expected[base_fp] != expected[evolved_fp]

        errors = []
        stop = threading.Event()

        def reader(query: EntityQuery, kind: str) -> None:
            while not stop.is_set():
                try:
                    rows, epoch = engine.query_with_epoch(query)
                except Exception as exc:  # noqa: BLE001 — the assertion
                    errors.append(exc)
                    return
                want = expected.get(epoch.fingerprint)
                if want is None:
                    errors.append(
                        AssertionError(
                            f"response on unknown epoch {epoch.fingerprint}"
                        )
                    )
                    return
                if sorted(map(repr, rows)) != want[kind]:
                    errors.append(
                        AssertionError(
                            f"torn {kind} read on epoch {epoch.epoch_id}"
                        )
                    )
                    return

        threads = [
            threading.Thread(
                target=reader,
                args=(touched, "touched")
                if i % 2
                else (untouched, "untouched"),
            )
            for i in range(self.CLIENTS)
        ]
        for thread in threads:
            thread.start()
        try:
            for _ in range(self.BATCHES):
                engine.evolve_many([_churn_smo(engine.epoch.model)])
                assert engine.epoch.fingerprint == evolved_fp
                engine.undo()
                assert engine.epoch.fingerprint == base_fp
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        try:
            assert not errors, errors[0]
            stats = engine.stats()
            assert stats.torn_reads_served == 0
            assert stats.epochs_published >= 2 * self.BATCHES
            if backend_name == "memory":
                # snapshot reads never need the retry machinery
                assert stats.read_retries == 0
                assert stats.serialized_reads == 0
        finally:
            engine.close()

    def test_untouched_set_plans_survive_the_swap(
        self, chain_compiled, backend_name
    ):
        """The neighborhood principle on the serving side: evolving
        Entity1 must not evict the plan for the last chain set."""
        session = _chain_session(chain_compiled, backend_name)
        engine = session.engine
        query = EntityQuery(set_name(CHAIN_TYPES), projection=("EntityAtt2",))
        session.query(query)
        misses_before = session.plan_cache.stats().misses

        engine.evolve_many([_churn_smo(engine.epoch.model)])
        hits_before = session.plan_cache.stats().hits
        session.query(query)
        after = session.plan_cache.stats()
        assert after.hits == hits_before + 1, (
            "the untouched set's plan should have survived the epoch swap"
        )
        assert after.misses == misses_before
        engine.close()
