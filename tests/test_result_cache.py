"""Differential suite for the materialized result tier.

The acceptance bar: a session serving from the result cache must be
*observationally identical* to one that re-executes every query — the
same answers (canonicalized by sorted repr), across the full workload
matrix, on both backends, through randomized conservative delta scripts
(including inverse-pair no-ops), after every SMO kind plus its undo, and
under concurrent read/write stress.  The reference session runs with
``result_cache_budget=0`` (tier disabled), so every divergence is a
maintenance bug, never a workload artifact.

Alongside the end-to-end checks, the operator-level delta rules get
focused unit coverage for the cases the workloads hit only by luck:
left-outer-join pad transitions (a join key's right match count crossing
0 ↔ positive) and the invalidate-on-write path for unmaintainable
shapes.
"""

from __future__ import annotations

import random
import threading

import pytest

from tests.test_backend_differential import (
    SMO_KINDS,
    WORKLOADS,
    canon,
    compiled,
)
from tests.test_ivm_differential import clone, random_script
from repro.algebra.conditions import Comparison
from repro.algebra.evaluate import StoreContext, evaluate_query_bag
from repro.algebra.queries import FullOuterJoin, LeftOuterJoin, TableScan
from repro.backend import MemoryBackend, SqliteBackend, create_backend
from repro.compiler import compile_mapping
from repro.edm import INT, STRING, Entity
from repro.errors import IvmError
from repro.incremental import CompiledModel
from repro.ivm import DeltaScript, EntityOp
from repro.query.dml import StoreDelta, TableDelta
from repro.query.language import EntityQuery
from repro.query.resultcache import _compile, _ReadRuntime
from repro.relational.instances import StoreState, row_from_mapping
from repro.relational.schema import Column, StoreSchema, Table
from repro.session import OrmSession
from repro.stategen import random_client_state
from repro.workloads.chain import chain_mapping, set_name
from repro.workloads.paper_example import mapping_stage3

BACKENDS = ["memory", "sqlite"]


def cached_and_reference(model: CompiledModel, backend: str):
    """Two sessions over the same backend kind: one with the result tier
    on, one with it disabled (the re-execution oracle)."""
    def build(budget):
        if backend == "memory":
            engine = MemoryBackend(StoreState(model.store_schema))
        else:
            engine = SqliteBackend(model.store_schema)
        return OrmSession(model, backend=engine, result_cache_budget=budget)

    return build(None), build(0)


def probe_queries(schema):
    """Whole-set scans plus one conditional probe per set — the fixed
    query mix every differential round replays (fixed so the cache gets
    real hit traffic rather than one-shot shapes)."""
    queries = []
    for entity_set in schema.entity_sets:
        queries.append(EntityQuery(entity_set.name))
        key = schema.key_of(entity_set.root_type)
        if len(key) == 1:
            attribute = schema.attribute_of(entity_set.root_type, key[0])
            if attribute.domain.base in ("int", "decimal"):
                queries.append(
                    EntityQuery(entity_set.name, Comparison(key[0], ">", 0))
                )
    return queries


def assert_answers_agree(cached: OrmSession, reference: OrmSession, queries):
    for query in queries:
        assert canon(cached.query(query)) == canon(reference.query(query)), (
            f"cached answer diverges on {query.set_name}"
        )


def result_stats(session: OrmSession):
    return session.engine.epoch.results.stats()


# ---------------------------------------------------------------------------
# Randomized scripts across the workload matrix, both backends
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize(
    "factory", [f for _, f in WORKLOADS], ids=[name for name, _ in WORKLOADS]
)
class TestMaintainedAnswersAreExact:
    def test_rounds_of_random_scripts(self, factory, backend):
        """Warm the tier, then three rounds of random mutations
        (inserts/updates/deletes/links/unlinks and inverse-pair no-ops):
        every maintained answer must match the re-execution oracle, and
        nothing may be served across a fingerprint mismatch."""
        model = compiled(factory())
        cached, reference = cached_and_reference(model, backend)
        try:
            seeded = random_client_state(
                model.client_schema, seed=5, entities_per_set=6
            )
            cached.save(seeded)
            reference.save(seeded)
            queries = probe_queries(model.client_schema)
            # two passes: populate, then hit
            assert_answers_agree(cached, reference, queries)
            assert_answers_agree(cached, reference, queries)
            warm = result_stats(cached)
            assert warm.hits > 0

            rng = random.Random(17)
            next_key = [300000]
            for _ in range(3):
                scratch = clone(reference.load())
                script = random_script(
                    model.client_schema, scratch, rng, next_key, n_ops=10
                )
                reference.save(scratch)
                cached.save_delta(script)
                assert_answers_agree(cached, reference, queries)
            final = result_stats(cached)
            assert final.validation_failures == 0
            # scripts that touched cached tables either maintained the
            # entries or (on a shape the rules cannot carry) dropped them
            assert final.maintained + final.invalidated + final.fallbacks > 0
        finally:
            cached.backend.close()
            reference.backend.close()

    def test_inverse_pair_scripts_leave_answers_intact(self, factory, backend):
        """A script of inverse pairs nets to zero client change; the
        cached answers must come through untouched (and undisturbed —
        an empty store delta publishes nothing, so entries keep serving
        as plain hits)."""
        model = compiled(factory())
        cached, reference = cached_and_reference(model, backend)
        try:
            seeded = random_client_state(
                model.client_schema, seed=3, entities_per_set=4
            )
            cached.save(seeded)
            reference.save(seeded)
            queries = probe_queries(model.client_schema)
            assert_answers_agree(cached, reference, queries)
            rng = random.Random(23)
            next_key = [400000]
            scratch = clone(cached.load())
            script = random_script(
                model.client_schema, scratch, rng, next_key, n_ops=4, kinds=(5,)
            )
            delta = cached.save_delta(script)
            assert delta.empty
            assert_answers_agree(cached, reference, queries)
            assert result_stats(cached).validation_failures == 0
        finally:
            cached.backend.close()
            reference.backend.close()


# ---------------------------------------------------------------------------
# After every SMO kind, and after its undo
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize(
    "base_factory,smo_factory,pop",
    [(b, s, p) for _, b, s, p in SMO_KINDS],
    ids=[kind for kind, _, _, _ in SMO_KINDS],
)
class TestResultsSurviveEvolution:
    def test_answers_exact_after_smo_and_undo(
        self, base_factory, smo_factory, pop, backend
    ):
        """Entries populated before an evolution must never leak stale
        answers across it: after the SMO (and again after undo) cached
        reads still match the oracle, and writes in the evolved schema
        keep maintaining correctly."""
        model = base_factory()
        cached, reference = cached_and_reference(model, backend)
        try:
            state = pop(model)
            cached.save(state)
            reference.save(state)
            queries = probe_queries(model.client_schema)
            assert_answers_agree(cached, reference, queries)
            assert_answers_agree(cached, reference, queries)  # warm hits

            smo = smo_factory(model)
            cached.evolve(smo)
            reference.evolve(smo)
            evolved_queries = probe_queries(cached.model.client_schema)
            assert_answers_agree(cached, reference, evolved_queries)

            # a post-evolution incremental save must maintain (or drop)
            # entries populated against the evolved model
            rng = random.Random(31)
            next_key = [500000]
            scratch = clone(reference.load())
            script = random_script(
                cached.model.client_schema, scratch, rng, next_key, n_ops=6
            )
            reference.save(scratch)
            cached.save_delta(script)
            assert_answers_agree(cached, reference, evolved_queries)

            cached.undo()
            reference.undo()
            restored_queries = probe_queries(cached.model.client_schema)
            assert_answers_agree(cached, reference, restored_queries)
            assert result_stats(cached).validation_failures == 0
        finally:
            cached.backend.close()
            reference.backend.close()


# ---------------------------------------------------------------------------
# Pad transitions: TPT deletes drive a LOJ right side through 0
# ---------------------------------------------------------------------------

class TestLojPadTransitions:
    def test_tpt_subtype_delete_and_reinsert(self):
        """Deleting an Employee removes its Emp row while the delta also
        removes the P row; re-inserting drives the match count 0 -> 1
        again.  Stage-3 TPT reconstruction views compile to *full* outer
        joins, which the read-side delta rules deliberately refuse to
        maintain — the tier must invalidate those entries on every write
        and keep serving byte-identical answers by re-execution."""
        model = compiled(mapping_stage3())
        cached, reference = cached_and_reference(model, "memory")
        try:
            for session in (cached, reference):
                with session.edit() as state:
                    state.add_entity(
                        "Persons", Entity.of("Person", Id=1, Name="ann")
                    )
                    state.add_entity(
                        "Persons",
                        Entity.of("Employee", Id=2, Name="bob", Department="hr"),
                    )
            queries = [
                EntityQuery("Persons"),
                EntityQuery("Persons", Comparison("Id", ">", 0)),
            ]
            assert_answers_agree(cached, reference, queries)
            assert_answers_agree(cached, reference, queries)

            # delete the Employee: Emp-side multiplicity 1 -> 0
            script = DeltaScript(
                (EntityOp("delete", "Persons", key=(2,)),)
            )
            cached.save_delta(script)
            with reference.edit() as state:
                state.remove_entity("Persons", (2,))
            assert_answers_agree(cached, reference, queries)

            # re-insert: 0 -> 1
            emp = Entity.of("Employee", Id=2, Name="bob", Department="ops")
            cached.save_delta(
                DeltaScript((EntityOp("insert", "Persons", entity=emp),))
            )
            with reference.edit() as state:
                state.add_entity("Persons", emp)
            assert_answers_agree(cached, reference, queries)
            stats = result_stats(cached)
            assert stats.validation_failures == 0
            # full-outer-join shapes are unmaintainable by design: every
            # write must drop the warm entries instead of patching them
            assert stats.invalidated > 0
        finally:
            cached.backend.close()
            reference.backend.close()

    def test_loj_delta_rule_pad_terms_directly(self):
        """White-box: the compiled ⟕ rule over two tables must emit the
        pad-transition terms so the maintained bag equals a fresh bag
        evaluation, for right-side deltas crossing 0 in both directions."""
        schema = StoreSchema(
            [
                Table("L", (Column("K", INT, False), Column("A", STRING)), ("K",)),
                Table("R", (Column("K", INT, False), Column("B", STRING)), ("K",)),
            ]
        )
        query = LeftOuterJoin(TableScan("L"), TableScan("R"), on=("K",))
        node = _compile(query, StoreContext(StoreState(schema)))

        def state_of(l_rows, r_rows):
            state = StoreState(schema)
            for row in l_rows:
                state.add_row("L", row_from_mapping(row))
            for row in r_rows:
                state.add_row("R", row_from_mapping(row))
            return state

        def bag(state):
            counts = {}
            for row in evaluate_query_bag(query, StoreContext(state)):
                key = tuple(sorted(row.items()))
                counts[key] = counts.get(key, 0) + 1
            return counts

        l_rows = [{"K": 1, "A": "x"}, {"K": 2, "A": "y"}]
        old = state_of(l_rows, [])
        new_r = [{"K": 1, "B": "p"}]
        new = state_of(l_rows, new_r)
        delta = StoreDelta(
            {"R": TableDelta("R", inserts=[row_from_mapping(new_r[0])])}
        )
        maintained = dict(bag(old))
        for sign, row in node.delta(_ReadRuntime(delta, new)):
            key = tuple(sorted(row.items()))
            maintained[key] = maintained.get(key, 0) + sign
        maintained = {k: c for k, c in maintained.items() if c}
        assert maintained == bag(new)  # 0 -> 1: pad row for K=1 retired

        # and back: deleting the R row must resurrect the pad row
        back_delta = StoreDelta(
            {"R": TableDelta("R", deletes=[row_from_mapping(new_r[0])])}
        )
        rewound = dict(bag(new))
        for sign, row in node.delta(_ReadRuntime(back_delta, old)):
            key = tuple(sorted(row.items()))
            rewound[key] = rewound.get(key, 0) + sign
        rewound = {k: c for k, c in rewound.items() if c}
        assert rewound == bag(old)

    def test_full_outer_join_is_not_maintainable(self):
        schema = StoreSchema(
            [
                Table("L", (Column("K", INT, False),), ("K",)),
                Table("R", (Column("K", INT, False),), ("K",)),
            ]
        )
        query = FullOuterJoin(TableScan("L"), TableScan("R"), on=("K",))
        with pytest.raises(IvmError):
            _compile(query, StoreContext(StoreState(schema)))


# ---------------------------------------------------------------------------
# Fallback, invalidation, and eviction behavior
# ---------------------------------------------------------------------------

class TestFallbackAndEviction:
    def test_disabled_tier_is_pure_reexecution(self):
        """budget=0: the tier stores nothing, serves nothing, and the
        session behaves exactly like the pre-tier engine."""
        model = compiled(mapping_stage3())
        session = OrmSession(model, result_cache_budget=0)
        session.save(
            random_client_state(model.client_schema, seed=9, entities_per_set=5)
        )
        queries = probe_queries(model.client_schema)
        first = [canon(session.query(q)) for q in queries]
        second = [canon(session.query(q)) for q in queries]
        assert first == second
        stats = result_stats(session)
        assert stats.hits == 0
        assert stats.entries == 0

    def test_unmaintainable_entry_serves_warm_then_dies_on_write(self):
        """An entry whose shape the delta rules cannot carry still serves
        reads, but any write touching its tables must invalidate it —
        never a stale answer, never an exception."""
        model = compiled(mapping_stage3())
        session = OrmSession(model)
        session.save(
            random_client_state(model.client_schema, seed=4, entities_per_set=4)
        )
        query = EntityQuery("Persons")
        session.query(query)
        session.query(query)
        cache = session.engine.epoch.results
        assert len(cache) >= 1
        # force every entry unmaintainable (the FOJ case, white-box)
        with cache._lock:
            for entry in cache._entries.values():
                entry.roots = None
        before = cache.stats()
        with session.edit_incremental() as state:
            # a real mutation: rewrite the first person
            person = state.entities("Persons")[0]
            key = model.client_schema.key_of(person.concrete_type)
            rewritten = Entity.of(
                person.concrete_type,
                **{**dict(person.values), "Name": "rewritten"},
            )
            state.update_entity("Persons", rewritten)
        after = result_stats(session)
        assert after.invalidated > before.invalidated
        assert after.maintained == before.maintained
        # and the next read re-executes correctly
        reference = OrmSession(model, result_cache_budget=0)
        reference.save(session.load().embed_into(model.client_schema))
        assert canon(session.query(query)) == canon(reference.query(query))

    def test_lru_evicts_by_cost_not_entry_count(self):
        """With a budget smaller than the hot set, total cost must stay
        under the budget while cheap entries keep fitting — one huge
        entry cannot masquerade as 'just one entry'."""
        mapping = chain_mapping(4)
        model = CompiledModel(
            mapping, compile_mapping(mapping, validate=False).views
        )
        session = OrmSession(model, result_cache_budget=120)
        with session.edit() as state:
            for index in range(1, 5):
                for row in range(10):
                    state.add_entity(
                        set_name(index),
                        Entity.of(
                            f"Entity{index}",
                            Id=row,
                            EntityAtt2="a",
                            EntityAtt3="b",
                            EntityAtt4="c",
                        ),
                    )
        for index in range(1, 5):
            session.query(EntityQuery(set_name(index)))
            # key probes are cheap (one row) and must survive pressure
            session.query(
                EntityQuery(set_name(index), Comparison("Id", "=", 1))
            )
        stats = result_stats(session)
        assert stats.cost <= 120
        assert stats.evictions > 0
        assert stats.entries >= 1

    def test_oversized_entry_is_never_stored(self):
        mapping = chain_mapping(4)
        model = CompiledModel(
            mapping, compile_mapping(mapping, validate=False).views
        )
        session = OrmSession(model, result_cache_budget=10)
        with session.edit() as state:
            for row in range(10):
                state.add_entity(
                    set_name(1),
                    Entity.of(
                        "Entity1",
                        Id=row,
                        EntityAtt2="a",
                        EntityAtt3="b",
                        EntityAtt4="c",
                    ),
                )
        query = EntityQuery(set_name(1))
        first = canon(session.query(query))
        assert canon(session.query(query)) == first
        stats = result_stats(session)
        assert stats.entries == 0  # 10 rows x 7 cols >> 10-cell budget
        assert stats.hits == 0


# ---------------------------------------------------------------------------
# Thread safety: concurrent readers vs an incremental writer
# ---------------------------------------------------------------------------

THREADS = 8
READ_ROUNDS = 40
WRITE_ROUNDS = 12


@pytest.mark.parametrize("backend", BACKENDS)
def test_concurrent_reads_through_writes_stay_exact(backend):
    """Many readers hammer the tier while a writer streams save_delta
    rounds: no exceptions, no stale serves, and the final answers equal
    the re-execution oracle."""
    mapping = chain_mapping(4)
    model = CompiledModel(
        mapping, compile_mapping(mapping, validate=False).views
    )
    backend_engine = create_backend(backend, model.store_schema)
    session = OrmSession(model, backend=backend_engine)
    per_set = 30
    with session.edit() as state:
        for index in range(1, 5):
            for row in range(per_set):
                state.add_entity(
                    set_name(index),
                    Entity.of(
                        f"Entity{index}",
                        Id=row,
                        EntityAtt2=f"a{row % 3}",
                        EntityAtt3=f"b{row}",
                        EntityAtt4="c",
                    ),
                )
    queries = [EntityQuery(set_name(index)) for index in range(1, 5)]
    errors: list = []
    stop = threading.Event()

    def reader(index: int) -> None:
        try:
            for round_number in range(READ_ROUNDS):
                query = queries[(index + round_number) % len(queries)]
                rows = session.query(query)
                assert len(rows) == per_set
        except Exception as exc:  # noqa: BLE001 — collected for assertion
            errors.append(exc)

    def writer() -> None:
        try:
            for round_number in range(WRITE_ROUNDS):
                index = (round_number % 4) + 1
                row = round_number % per_set
                entity = Entity.of(
                    f"Entity{index}",
                    Id=row,
                    EntityAtt2=f"w{round_number}",
                    EntityAtt3=f"b{row}",
                    EntityAtt4="c",
                )
                session.save_delta(
                    DeltaScript(
                        (EntityOp("update", set_name(index), entity=entity),)
                    )
                )
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)
        finally:
            stop.set()

    threads = [
        threading.Thread(target=reader, args=(i,)) for i in range(THREADS)
    ]
    write_thread = threading.Thread(target=writer)
    for thread in threads:
        thread.start()
    write_thread.start()
    for thread in threads:
        thread.join()
    write_thread.join()
    try:
        assert not errors, errors[0]
        assert result_stats(session).validation_failures == 0
        reference = OrmSession(
            model,
            backend=create_backend("memory", model.store_schema),
            result_cache_budget=0,
        )
        reference.save(session.load().embed_into(model.client_schema))
        for query in queries:
            assert canon(session.query(query)) == canon(reference.query(query))
    finally:
        session.backend.close()


def test_result_cache_successor_race_with_populations():
    """A writer taking successors while readers populate: every
    successor must be a coherent cache (cost equals the sum of its
    entries, counters monotone)."""
    mapping = chain_mapping(4)
    model = CompiledModel(
        mapping, compile_mapping(mapping, validate=False).views
    )
    session = OrmSession(model)
    with session.edit() as state:
        for index in range(1, 5):
            for row in range(5):
                state.add_entity(
                    set_name(index),
                    Entity.of(
                        f"Entity{index}",
                        Id=row,
                        EntityAtt2="a",
                        EntityAtt3="b",
                        EntityAtt4="c",
                    ),
                )
    cache = session.engine.epoch.results
    stop = threading.Event()
    successors: list = []
    errors: list = []

    fingerprint = session.epoch.fingerprint

    def snapshotter() -> None:
        try:
            for _ in range(20):
                successors.append(
                    cache.successor_for_tables((), fingerprint)
                )
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)
        finally:
            stop.set()

    def populator(index: int) -> None:
        try:
            round_number = 0
            while not stop.is_set() and round_number < 500:
                query = EntityQuery(
                    set_name(1 + (round_number + index) % 4),
                    Comparison("Id", "=", round_number % 5),
                )
                session.query(query)
                round_number += 1
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [threading.Thread(target=snapshotter)] + [
        threading.Thread(target=populator, args=(i,)) for i in range(4)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors[0]
    assert len(successors) == 20
    for successor in successors:
        with successor._lock:
            assert successor._cost == sum(
                entry.cost for entry in successor._entries.values()
            )
