"""Unit tests: the benchmark workload generators."""

import pytest

from repro.compiler import compile_mapping, generate_views
from repro.edm import ClientState, Entity
from repro.incremental import CompiledModel
from repro.mapping import check_roundtrip
from repro.workloads.chain import (
    chain_mapping,
    entity_name,
    first_assoc,
    second_assoc,
    set_name,
    table_name,
)
from repro.workloads.customer import _build_hierarchies, customer_mapping
from repro.workloads.hub_rim import hub_rim_mapping, type_count


class TestChainModel:
    def test_shape(self):
        mapping = chain_mapping(10)
        schema = mapping.client_schema
        assert len(schema.entity_types) == 10
        assert len(schema.entity_sets) == 10
        assert len(schema.associations) == 18  # 2 per adjacent pair
        assert len(mapping.store_schema.tables) == 10

    def test_figure8_attributes(self):
        mapping = chain_mapping(3)
        attrs = mapping.client_schema.attribute_names_of(entity_name(1))
        assert attrs == ("Id", "EntityAtt2", "EntityAtt3", "EntityAtt4")

    def test_one_to_one_table_mapping(self):
        mapping = chain_mapping(5)
        for index in range(1, 6):
            fragments = mapping.fragments_for_set(set_name(index))
            assert len(fragments) == 1
            assert fragments[0].store_table == table_name(index)

    def test_fk_relationship_per_association(self):
        mapping = chain_mapping(4)
        table = mapping.store_schema.table(table_name(1))
        targets = {fk.ref_table for fk in table.foreign_keys}
        assert targets == {table_name(2)}
        assert mapping.fragment_for_association(first_assoc(1)).store_table == table_name(1)
        assert mapping.fragment_for_association(second_assoc(1)).store_table == table_name(1)

    def test_compiles_and_roundtrips(self):
        mapping = chain_mapping(5)
        result = compile_mapping(mapping)
        state = ClientState(mapping.client_schema)
        for index in (1, 2):
            state.add_entity(
                set_name(index),
                Entity.of(entity_name(index), Id=index, EntityAtt2="a",
                          EntityAtt3="b", EntityAtt4="c"),
            )
        state.add_association(first_assoc(1), (1,), (2,))
        assert check_roundtrip(result.views, state, mapping.store_schema).ok


class TestHubRim:
    def test_type_count(self):
        assert type_count(4, 8) == 36  # the paper's 5-hour case

    def test_tph_single_table(self):
        mapping = hub_rim_mapping(2, 2, "TPH")
        assert len(mapping.store_schema.tables) == 1
        assert len(mapping.client_schema.entity_types) == 6

    def test_tph_discriminator_per_type(self):
        mapping = hub_rim_mapping(2, 1, "TPH")
        conditions = [
            str(f.store_condition)
            for f in mapping.entity_fragments()
        ]
        assert len(set(conditions)) == len(conditions)  # distinct values

    def test_tpt_one_table_per_type_plus_join_tables(self):
        mapping = hub_rim_mapping(2, 2, "TPT")
        # 6 entity tables + 4 join tables
        assert len(mapping.store_schema.tables) == 10

    def test_same_client_schema_both_styles(self):
        tph = hub_rim_mapping(2, 2, "TPH")
        tpt = hub_rim_mapping(2, 2, "TPT")
        assert {t.name for t in tph.client_schema.entity_types} == {
            t.name for t in tpt.client_schema.entity_types
        }

    def test_roundtrip_tph(self):
        mapping = hub_rim_mapping(2, 1, "TPH")
        result = compile_mapping(mapping)
        state = ClientState(mapping.client_schema)
        state.add_entity("Hubs", Entity.of("Hub1", Id=1, HubAtt1="h"))
        state.add_entity(
            "Hubs", Entity.of("Hub2", Id=2, HubAtt1="h", HubAtt2="g")
        )
        state.add_entity(
            "Hubs", Entity.of("Rim1_1", Id=3, HubAtt1="h", RimAtt1_1="r")
        )
        state.add_association("Link1_1", (1,), (3,))
        assert check_roundtrip(result.views, state, mapping.store_schema).ok

    def test_roundtrip_tpt(self):
        mapping = hub_rim_mapping(2, 1, "TPT")
        result = compile_mapping(mapping)
        state = ClientState(mapping.client_schema)
        state.add_entity("Hubs", Entity.of("Hub1", Id=1, HubAtt1="h"))
        state.add_entity(
            "Hubs", Entity.of("Rim2_1", Id=4, HubAtt1="h", HubAtt2="g", RimAtt2_1="r")
        )
        assert check_roundtrip(result.views, state, mapping.store_schema).ok

    def test_bad_parameters_rejected(self):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            hub_rim_mapping(0, 3)
        with pytest.raises(SchemaError):
            hub_rim_mapping(2, 2, "XXX")


class TestCustomerModel:
    def test_published_statistics_at_full_scale(self):
        mapping = customer_mapping(scale=1.0)
        schema = mapping.client_schema
        assert len(schema.entity_types) == 230
        hierarchies = _build_hierarchies(1.0, __import__("random").Random(7))
        non_trivial = [h for h in hierarchies if len(h.types) >= 2]
        assert len(non_trivial) == 18
        assert max(len(h.types) for h in hierarchies) == 95
        # deepest hierarchy has at most four levels
        max_depth = 0
        for h in hierarchies:
            for t in h.types:
                depth = 1
                cursor = t
                while h.parents[cursor] is not None:
                    cursor = h.parents[cursor]
                    depth += 1
                max_depth = max(max_depth, depth)
        assert max_depth == 4

    def test_deterministic(self):
        a = customer_mapping(scale=0.1, seed=3)
        b = customer_mapping(scale=0.1, seed=3)
        assert [str(f) for f in a.fragments] == [str(f) for f in b.fragments]
        c = customer_mapping(scale=0.1, seed=4)
        assert [str(f) for f in a.fragments] != [str(f) for f in c.fragments]

    def test_associations_in_non_junction_tables(self):
        mapping = customer_mapping(scale=0.2)
        for fragment in mapping.association_fragments():
            # the table also stores entity data — not a junction table
            entity_fragments = [
                f
                for f in mapping.fragments_for_table(fragment.store_table)
                if not f.is_association
            ]
            assert entity_fragments

    def test_mixed_styles(self):
        mapping = customer_mapping(scale=0.3)
        hierarchies = _build_hierarchies(0.3, __import__("random").Random(7))
        styles = {h.style for h in hierarchies if len(h.types) > 1}
        assert styles == {"TPT", "TPH"}

    def test_scaled_compiles(self):
        mapping = customer_mapping(scale=0.07)
        result = compile_mapping(mapping)
        assert result.report is not None

    def test_usable_as_compiled_model(self):
        mapping = customer_mapping(scale=0.07)
        model = CompiledModel(mapping, generate_views(mapping))
        assert model.views.query_views
