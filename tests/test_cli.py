"""Integration tests: the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.msl import FORMAT_VERSION, client_schema_to_json, save_model, store_schema_to_json
from repro.workloads.paper_example import client_schema_stage4, store_schema


@pytest.fixture
def mapping_document(tmp_path):
    """A not-yet-compiled document with Figure-5-syntax fragments."""
    document = {
        "format": FORMAT_VERSION,
        "clientSchema": client_schema_to_json(client_schema_stage4()),
        "storeSchema": store_schema_to_json(store_schema(4)),
        "fragments": """
            SELECT p.Id, p.Name
            FROM Persons p
            WHERE p IS OF (ONLY Person) OR p IS OF Employee
            =
            SELECT Id, Name
            FROM HR

            SELECT e.Id, e.Department
            FROM Persons e
            WHERE e IS OF Employee
            =
            SELECT Id, Dept
            FROM Emp

            SELECT c.Id, c.Name, c.CredScore, c.BillAddr
            FROM Persons c
            WHERE c IS OF Customer
            =
            SELECT Cid, Name, Score, Addr
            FROM Client

            SELECT s.Customer.Id, s.Employee.Id
            FROM Supports s
            =
            SELECT Cid, Eid
            FROM Client
            WHERE Eid IS NOT NULL
        """,
    }
    path = tmp_path / "model.json"
    path.write_text(json.dumps(document))
    return path


def test_compile_command(mapping_document, tmp_path, capsys):
    out = tmp_path / "compiled.json"
    assert main(["compile", str(mapping_document), "-o", str(out)]) == 0
    document = json.loads(out.read_text())
    assert document["views"]["queryViews"]


def test_compile_then_validate(mapping_document, tmp_path):
    out = tmp_path / "compiled.json"
    main(["compile", str(mapping_document), "-o", str(out)])
    assert main(["validate", str(out)]) == 0


def test_views_command(mapping_document, tmp_path, capsys):
    out = tmp_path / "compiled.json"
    main(["compile", str(mapping_document), "-o", str(out)])
    capsys.readouterr()
    assert main(["views", str(out), "Person"]) == 0
    text = capsys.readouterr().out
    assert "QueryView[Person]" in text
    assert main(["views", str(out), "Nope"]) == 1


def test_views_all(mapping_document, tmp_path, capsys):
    out = tmp_path / "compiled.json"
    main(["compile", str(mapping_document), "-o", str(out)])
    capsys.readouterr()
    assert main(["views", str(out)]) == 0
    text = capsys.readouterr().out
    assert "UpdateView[Client]" in text


def test_evolve_command(tmp_path, stage1_compiled):
    model_path = tmp_path / "model.json"
    model_path.write_text(json.dumps(save_model(stage1_compiled)))
    target_path = tmp_path / "target.json"
    target_path.write_text(
        json.dumps({"clientSchema": client_schema_to_json(client_schema_stage4())})
    )
    out = tmp_path / "evolved.json"
    code = main(
        [
            "evolve", str(model_path), str(target_path),
            "-o", str(out), "--style", "Customer=TPC",
        ]
    )
    assert code == 0
    document = json.loads(out.read_text())
    names = {t["name"] for t in document["clientSchema"]["entityTypes"]}
    assert {"Person", "Employee", "Customer"} <= names


def test_missing_file_reports_error(capsys):
    assert main(["validate", "/no/such/file.json"]) == 2


def test_uncompiled_document_rejected_by_views(mapping_document):
    assert main(["views", str(mapping_document)]) == 2
