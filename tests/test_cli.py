"""Integration tests: the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.msl import FORMAT_VERSION, client_schema_to_json, save_model, store_schema_to_json
from repro.workloads.paper_example import client_schema_stage4, store_schema


@pytest.fixture
def mapping_document(tmp_path):
    """A not-yet-compiled document with Figure-5-syntax fragments."""
    document = {
        "format": FORMAT_VERSION,
        "clientSchema": client_schema_to_json(client_schema_stage4()),
        "storeSchema": store_schema_to_json(store_schema(4)),
        "fragments": """
            SELECT p.Id, p.Name
            FROM Persons p
            WHERE p IS OF (ONLY Person) OR p IS OF Employee
            =
            SELECT Id, Name
            FROM HR

            SELECT e.Id, e.Department
            FROM Persons e
            WHERE e IS OF Employee
            =
            SELECT Id, Dept
            FROM Emp

            SELECT c.Id, c.Name, c.CredScore, c.BillAddr
            FROM Persons c
            WHERE c IS OF Customer
            =
            SELECT Cid, Name, Score, Addr
            FROM Client

            SELECT s.Customer.Id, s.Employee.Id
            FROM Supports s
            =
            SELECT Cid, Eid
            FROM Client
            WHERE Eid IS NOT NULL
        """,
    }
    path = tmp_path / "model.json"
    path.write_text(json.dumps(document))
    return path


def test_compile_command(mapping_document, tmp_path, capsys):
    out = tmp_path / "compiled.json"
    assert main(["compile", str(mapping_document), "-o", str(out)]) == 0
    document = json.loads(out.read_text())
    assert document["views"]["queryViews"]


def test_compile_then_validate(mapping_document, tmp_path):
    out = tmp_path / "compiled.json"
    main(["compile", str(mapping_document), "-o", str(out)])
    assert main(["validate", str(out)]) == 0


def test_validate_stats(mapping_document, tmp_path, capsys):
    out = tmp_path / "compiled.json"
    main(["compile", str(mapping_document), "-o", str(out)])
    assert main(["validate", str(out), "--stats"]) == 0
    printed = capsys.readouterr().out
    assert "containment fast path:" in printed
    assert "symbolic discharged" in printed
    assert "slowest checks:" in printed


def test_validate_no_symbolic(mapping_document, tmp_path, capsys):
    out = tmp_path / "compiled.json"
    main(["compile", str(mapping_document), "-o", str(out)])
    assert main(["validate", str(out), "--no-symbolic", "--stats"]) == 0
    printed = capsys.readouterr().out
    assert "symbolic discharged : 0/" in printed


def test_views_command(mapping_document, tmp_path, capsys):
    out = tmp_path / "compiled.json"
    main(["compile", str(mapping_document), "-o", str(out)])
    capsys.readouterr()
    assert main(["views", str(out), "Person"]) == 0
    text = capsys.readouterr().out
    assert "QueryView[Person]" in text
    assert main(["views", str(out), "Nope"]) == 1


def test_views_all(mapping_document, tmp_path, capsys):
    out = tmp_path / "compiled.json"
    main(["compile", str(mapping_document), "-o", str(out)])
    capsys.readouterr()
    assert main(["views", str(out)]) == 0
    text = capsys.readouterr().out
    assert "UpdateView[Client]" in text


def test_evolve_command(tmp_path, stage1_compiled):
    model_path = tmp_path / "model.json"
    model_path.write_text(json.dumps(save_model(stage1_compiled)))
    target_path = tmp_path / "target.json"
    target_path.write_text(
        json.dumps({"clientSchema": client_schema_to_json(client_schema_stage4())})
    )
    out = tmp_path / "evolved.json"
    code = main(
        [
            "evolve", str(model_path), str(target_path),
            "-o", str(out), "--style", "Customer=TPC",
        ]
    )
    assert code == 0
    document = json.loads(out.read_text())
    names = {t["name"] for t in document["clientSchema"]["entityTypes"]}
    assert {"Person", "Employee", "Customer"} <= names


def test_missing_file_reports_error(capsys):
    assert main(["validate", "/no/such/file.json"]) == 2


def test_uncompiled_document_rejected_by_views(mapping_document):
    assert main(["views", str(mapping_document)]) == 2


# ---------------------------------------------------------------------------
# Backend-aware verbs: query, ddl, evolve --db
# ---------------------------------------------------------------------------

@pytest.fixture
def compiled_model_path(mapping_document, tmp_path):
    out = tmp_path / "compiled.json"
    main(["compile", str(mapping_document), "-o", str(out)])
    return out


def _populated_db(compiled_model_path, tmp_path):
    """A SQLite file holding the Figure 1 data for the compiled model."""
    from tests.conftest import figure1_state
    from repro.msl import load_model
    from repro.session import OrmSession

    model = load_model(json.loads(compiled_model_path.read_text()))
    db_path = str(tmp_path / "app.db")
    session = OrmSession.create(model, backend="sqlite", db_path=db_path)
    session.save(figure1_state(model.client_schema))
    session.backend.close()
    return db_path


def test_ddl_prints_schema_script(compiled_model_path, capsys):
    assert main(["ddl", str(compiled_model_path)]) == 0
    text = capsys.readouterr().out
    assert text.count("CREATE TABLE") >= 3
    assert '"HR"' in text
    assert "PRIMARY KEY" in text


def test_ddl_with_target_prints_migration_script(tmp_path, stage1_compiled, capsys):
    model_path = tmp_path / "model.json"
    model_path.write_text(json.dumps(save_model(stage1_compiled)))
    target_path = tmp_path / "target.json"
    target_path.write_text(
        json.dumps({"clientSchema": client_schema_to_json(client_schema_stage4())})
    )
    code = main(
        [
            "ddl", str(model_path), "--target", str(target_path),
            "--style", "Customer=TPC",
        ]
    )
    assert code == 0
    text = capsys.readouterr().out
    assert text.startswith("BEGIN;")
    assert "CREATE TABLE" in text
    assert text.rstrip().endswith("COMMIT;")


def test_query_runs_on_sqlite_db(compiled_model_path, tmp_path, capsys):
    db_path = _populated_db(compiled_model_path, tmp_path)
    capsys.readouterr()
    code = main(
        [
            "query", str(compiled_model_path), "Persons",
            "--where", "Id>1", "--db", db_path,
        ]
    )
    assert code == 0
    captured = capsys.readouterr()
    assert "3 result(s)" in captured.err
    assert "Employee" in captured.out


def test_query_projection_and_string_literal(compiled_model_path, tmp_path, capsys):
    db_path = _populated_db(compiled_model_path, tmp_path)
    capsys.readouterr()
    code = main(
        [
            "query", str(compiled_model_path), "Persons",
            "--where", "Name='ann'", "--project", "Id,Name",
            "--db", db_path,
        ]
    )
    assert code == 0
    captured = capsys.readouterr()
    assert "1 result(s)" in captured.err
    assert "'ann'" in captured.out


def test_query_explain_prints_generated_sql(compiled_model_path, capsys):
    code = main(
        [
            "query", str(compiled_model_path), "Persons",
            "--explain", "--backend", "sqlite",
        ]
    )
    assert code == 0
    text = capsys.readouterr().out
    assert "SELECT" in text
    assert "-- constructs" in text


def test_query_explain_memory_prints_entity_sql(compiled_model_path, capsys):
    code = main(
        [
            "query", str(compiled_model_path), "Persons",
            "--explain", "--backend", "memory",
        ]
    )
    assert code == 0
    assert "UNION ALL" in capsys.readouterr().out


def test_query_bad_where_reports_error(compiled_model_path, capsys):
    code = main(
        ["query", str(compiled_model_path), "Persons", "--where", "!!!"]
    )
    assert code == 2
    assert "cannot parse" in capsys.readouterr().err


def test_db_without_sqlite_backend_rejected(compiled_model_path, capsys):
    code = main(
        [
            "query", str(compiled_model_path), "Persons",
            "--backend", "memory", "--db", "x.db",
        ]
    )
    assert code == 2
    assert "--db requires" in capsys.readouterr().err


def test_evolve_migrates_sqlite_data(tmp_path, stage1_compiled, capsys):
    from repro.edm import Entity
    from repro.session import OrmSession

    model_path = tmp_path / "model.json"
    model_path.write_text(json.dumps(save_model(stage1_compiled)))
    db_path = str(tmp_path / "app.db")
    session = OrmSession.create(stage1_compiled, backend="sqlite", db_path=db_path)
    with session.edit() as state:
        state.add_entity("Persons", Entity.of("Person", Id=1, Name="ann"))
        state.add_entity("Persons", Entity.of("Person", Id=2, Name="bob"))
    session.backend.close()

    target_path = tmp_path / "target.json"
    target_path.write_text(
        json.dumps({"clientSchema": client_schema_to_json(client_schema_stage4())})
    )
    out = tmp_path / "evolved.json"
    code = main(
        [
            "evolve", str(model_path), str(target_path),
            "-o", str(out), "--style", "Customer=TPC",
            "--batch", "--db", db_path,
        ]
    )
    assert code == 0
    assert "migrated store" in capsys.readouterr().err
    # the data survived the schema evolution inside the database file
    capsys.readouterr()
    assert main(["query", str(out), "Persons", "--db", db_path]) == 0
    captured = capsys.readouterr()
    assert "2 result(s)" in captured.err


def test_plan_with_backend_previews_migration(tmp_path, stage1_compiled, capsys):
    model_path = tmp_path / "model.json"
    model_path.write_text(json.dumps(save_model(stage1_compiled)))
    target_path = tmp_path / "target.json"
    target_path.write_text(
        json.dumps({"clientSchema": client_schema_to_json(client_schema_stage4())})
    )
    code = main(
        [
            "plan", str(model_path), str(target_path),
            "--style", "Customer=TPC", "--backend", "sqlite",
        ]
    )
    assert code == 0
    assert "MigrationScript" in capsys.readouterr().out


def test_query_repeat_and_stats(compiled_model_path, tmp_path, capsys):
    db_path = _populated_db(compiled_model_path, tmp_path)
    capsys.readouterr()
    code = main(
        [
            "query", str(compiled_model_path), "Persons",
            "--where", "Id>1", "--repeat", "5", "--stats", "--db", db_path,
        ]
    )
    assert code == 0
    captured = capsys.readouterr()
    assert "3 result(s) x 5 repeat(s)" in captured.err
    assert "plan cache" in captured.err
    assert "hits=4" in captured.err
    assert "statement cache" in captured.err


def test_stats_verb_prints_cache_counters(compiled_model_path, tmp_path, capsys):
    db_path = _populated_db(compiled_model_path, tmp_path)
    capsys.readouterr()
    assert main(["stats", str(compiled_model_path), "--db", db_path]) == 0
    printed = capsys.readouterr().out
    assert "plan cache" in printed
    assert "statement cache" in printed
    assert "validation cache" in printed


def test_stats_verb_on_memory_backend(compiled_model_path, capsys):
    assert main(["stats", str(compiled_model_path), "--backend", "memory"]) == 0
    printed = capsys.readouterr().out
    assert "serving on memory" in printed
    assert "statement cache" not in printed


def test_cache_warm_stats_clear_roundtrip(compiled_model_path, tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    assert main(
        ["cache", "warm", str(compiled_model_path), "--cache-dir", cache_dir]
    ) == 0
    captured = capsys.readouterr()
    assert "warmed:" in captured.out

    assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
    printed = capsys.readouterr().out
    assert "PersistentCacheStats" in printed
    assert "entries=0" not in printed  # warm populated the store

    # a fresh validate through the same directory is served from disk
    assert main(
        ["validate", str(compiled_model_path), "--cache-dir", cache_dir]
    ) == 0
    assert "l2=" in capsys.readouterr().out

    assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
    capsys.readouterr()
    assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
    assert "entries=0" in capsys.readouterr().out


def test_cache_warm_requires_model(tmp_path, capsys):
    code = main(["cache", "warm", "--cache-dir", str(tmp_path / "c")])
    assert code == 2
    assert "MODEL" in capsys.readouterr().err


def test_cache_requires_a_directory(monkeypatch, capsys):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    code = main(["cache", "stats"])
    assert code == 2
    assert "cache directory" in capsys.readouterr().err
