"""Tests: query translation by view unfolding (Section 1.1).

The contract: for any client state c and any client query q,
``run(unfold(q), V(c)) == execute_on_client(q, c)`` — answering object
queries from the relational data alone.
"""

import pytest
from hypothesis import given, settings

from repro.algebra import Comparison, IsOf, IsOfOnly, and_, or_
from repro.compiler import compile_mapping, optimize_views
from repro.edm import ClientState, Entity
from repro.mapping import apply_update_views
from repro.query import EntityQuery, execute_on_client, execute_on_store, unfold
from repro.stategen import random_client_state
from repro.workloads.paper_example import mapping_stage4

from tests.test_property_based import conditions, figure1_states


@pytest.fixture(scope="module")
def setup():
    mapping = mapping_stage4()
    views = compile_mapping(mapping).views
    return mapping, views


def _both(query, state, mapping, views):
    client = execute_on_client(query, state)
    store = apply_update_views(views, state, mapping.store_schema)
    translated = execute_on_store(query, views, store, mapping.client_schema)
    return client, translated


def _as_set(results):
    out = set()
    for item in results:
        if isinstance(item, dict):
            out.add(tuple(sorted(item.items())))
        else:
            out.add(item)
    return out


class TestBasicTranslation:
    def test_whole_set(self, setup):
        mapping, views = setup
        state = random_client_state(mapping.client_schema, seed=1)
        client, translated = _both(EntityQuery("Persons"), state, mapping, views)
        assert _as_set(client) == _as_set(translated)

    def test_type_filter(self, setup):
        mapping, views = setup
        state = random_client_state(mapping.client_schema, seed=2)
        query = EntityQuery("Persons", IsOf("Employee"))
        client, translated = _both(query, state, mapping, views)
        assert _as_set(client) == _as_set(translated)
        assert all(e.concrete_type == "Employee" for e in translated)

    def test_only_filter(self, setup):
        mapping, views = setup
        state = random_client_state(mapping.client_schema, seed=3)
        query = EntityQuery("Persons", IsOfOnly("Person"))
        client, translated = _both(query, state, mapping, views)
        assert _as_set(client) == _as_set(translated)

    def test_attribute_filter(self, setup):
        mapping, views = setup
        state = random_client_state(mapping.client_schema, seed=4)
        query = EntityQuery(
            "Persons", and_(IsOf("Customer"), Comparison("CredScore", ">=", 500))
        )
        client, translated = _both(query, state, mapping, views)
        assert _as_set(client) == _as_set(translated)

    def test_projection_pads_subtype_attrs(self, setup):
        mapping, views = setup
        state = ClientState(mapping.client_schema)
        state.add_entity("Persons", Entity.of("Person", Id=1, Name="a"))
        state.add_entity(
            "Persons", Entity.of("Employee", Id=2, Name="b", Department="d")
        )
        query = EntityQuery("Persons", IsOf("Person"), projection=("Id", "Department"))
        client, translated = _both(query, state, mapping, views)
        assert _as_set(client) == _as_set(translated)
        assert {None, "d"} == {row["Department"] for row in translated}

    def test_branch_pruning(self, setup):
        """A Customer-only query unfolds to a single branch."""
        mapping, views = setup
        unfolded = unfold(
            EntityQuery("Persons", IsOf("Customer")), views, mapping.client_schema
        )
        assert len(unfolded.branches) == 1
        assert unfolded.branches[0].concrete_type == "Customer"

    def test_contradictory_query_unfolds_empty(self, setup):
        mapping, views = setup
        unfolded = unfold(
            EntityQuery("Persons", and_(IsOfOnly("Person"), IsOf("Employee"))),
            views,
            mapping.client_schema,
        )
        assert unfolded.branches == ()
        assert "empty" in unfolded.to_sql()

    def test_to_sql_renders(self, setup):
        mapping, views = setup
        unfolded = unfold(
            EntityQuery("Persons", IsOf("Employee")), views, mapping.client_schema
        )
        assert "constructs Employee" in unfolded.to_sql()


class TestOptimizedViewsTranslation:
    def test_translation_through_optimized_views(self, setup):
        mapping, _ = setup
        views = optimize_views(mapping, compile_mapping(mapping).views)
        state = random_client_state(mapping.client_schema, seed=5)
        query = EntityQuery("Persons", or_(IsOfOnly("Person"), IsOf("Customer")))
        client = execute_on_client(query, state)
        store = apply_update_views(views, state, mapping.store_schema)
        translated = execute_on_store(query, views, store, mapping.client_schema)
        assert _as_set(client) == _as_set(translated)


class TestTranslationProperty:
    @settings(max_examples=50, deadline=None)
    @given(condition=conditions(), state=figure1_states())
    def test_equivalence_on_random_queries_and_states(self, setup, condition, state):
        mapping, views = setup
        query = EntityQuery("Persons", condition)
        client = execute_on_client(query, state)
        store = apply_update_views(views, state, mapping.store_schema)
        translated = execute_on_store(query, views, store, mapping.client_schema)
        assert _as_set(client) == _as_set(translated), str(condition)
