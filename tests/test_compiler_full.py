"""Integration tests: the full mapping compiler (analysis, viewgen,
validation) on valid and deliberately broken mappings."""

import pytest

from repro.algebra import Comparison, IsOf, IsOfOnly, TRUE, or_
from repro.budget import WorkBudget
from repro.compiler import (
    SetAnalysis,
    build_update_view,
    check_coverage,
    check_disambiguation,
    compile_mapping,
    generate_views,
)
from repro.edm import ClientSchemaBuilder, INT, STRING
from repro.errors import (
    CompilationBudgetExceeded,
    MappingError,
    ValidationError,
)
from repro.mapping import Mapping, MappingFragment, check_roundtrip
from repro.relational import Column, ForeignKey, StoreSchema, Table
from repro.workloads.paper_example import mapping_stage3

from tests.conftest import figure1_state


class TestAnalysis:
    def test_cells_and_signatures_stage4(self, stage4_mapping):
        analysis = SetAnalysis(stage4_mapping, "Persons")
        # fragment order: phi1' (HR), phi2 (Emp), phi3 (Client)
        by_type = {c.concrete_type: c for c in analysis.all_cells()}
        assert by_type["Person"].signature == frozenset({0})
        assert by_type["Employee"].signature == frozenset({0, 1})
        assert by_type["Customer"].signature == frozenset({2})

    def test_coverage_passes(self, stage4_mapping):
        analysis = SetAnalysis(stage4_mapping, "Persons")
        check_coverage(analysis)
        check_disambiguation(analysis)

    def test_coverage_detects_unmapped_attribute(self):
        """A fragment set that never stores Employee.Department loses data."""
        mapping = mapping_stage3()
        mapping.replace_fragments([mapping.fragments[0], mapping.fragments[2]])
        analysis = SetAnalysis(mapping, "Persons")
        with pytest.raises(ValidationError) as err:
            check_coverage(analysis)
        assert err.value.check == "coverage"
        assert "Department" in str(err.value)

    def test_disambiguation_detects_identical_signatures(self):
        """Two sibling types mapped by identical fragments cannot be told
        apart when reading the store."""
        schema = (
            ClientSchemaBuilder()
            .entity("P", key=[("Id", INT)])
            .entity("A", parent="P")
            .entity("B", parent="P")
            .entity_set("Ps", "P")
            .build()
        )
        store = StoreSchema(
            [
                Table("T", (Column("Id", INT, False),), ("Id",)),
                Table("T2", (Column("Id", INT, False),), ("Id",)),
            ]
        )
        # A and B both activate exactly the T2 fragment: identical
        # signatures, distinct types — ambiguous.
        mapping = Mapping(
            schema,
            store,
            [
                MappingFragment("Ps", False, IsOfOnly("P"), "T", TRUE, (("Id", "Id"),)),
                MappingFragment("Ps", False, or_(IsOfOnly("A"), IsOfOnly("B")),
                                "T2", TRUE, (("Id", "Id"),)),
            ],
        )
        analysis = SetAnalysis(mapping, "Ps")
        with pytest.raises(ValidationError) as err:
            check_disambiguation(analysis)
        assert err.value.check == "disambiguation"

    def test_uncovered_type_rejected(self):
        """Entities matching no fragment cannot be stored at all."""
        schema = (
            ClientSchemaBuilder()
            .entity("P", key=[("Id", INT)])
            .entity("A", parent="P")
            .entity_set("Ps", "P")
            .build()
        )
        store = StoreSchema([Table("T", (Column("Id", INT, False),), ("Id",))])
        mapping = Mapping(
            schema, store,
            [MappingFragment("Ps", False, IsOfOnly("P"), "T", TRUE, (("Id", "Id"),))],
        )
        analysis = SetAnalysis(mapping, "Ps")
        with pytest.raises(ValidationError):
            check_disambiguation(analysis)


class TestViewGeneration:
    def test_update_view_pads_unmapped_columns(self, stage4_mapping):
        view = build_update_view(stage4_mapping, "HR")
        assert view.table_name == "HR"

    def test_update_view_requires_fragments(self, stage4_mapping):
        with pytest.raises(MappingError):
            build_update_view(stage4_mapping, "NoSuchTable")

    def test_tph_discriminator_pinned_in_update_view(self):
        """The TPH discriminator constant is written back by update views."""
        from repro.workloads.hub_rim import hub_rim_mapping

        mapping = hub_rim_mapping(1, 1, "TPH")
        views = generate_views(mapping)
        view = views.update_view("Big")
        rendered = view.to_sql()
        assert "'Hub1' AS Disc" in rendered

    def test_uninvertible_store_condition_rejected(self):
        schema = (
            ClientSchemaBuilder()
            .entity("P", key=[("Id", INT)])
            .entity_set("Ps", "P")
            .build()
        )
        store = StoreSchema(
            [Table("T", (Column("Id", INT, False), Column("V", INT, True)), ("Id",))]
        )
        mapping = Mapping(
            schema, store,
            [MappingFragment("Ps", False, IsOf("P"), "T",
                             Comparison("V", ">", 5), (("Id", "Id"),))],
        )
        with pytest.raises(MappingError):
            generate_views(mapping)

    def test_query_views_for_all_types(self, stage4_mapping):
        views = generate_views(stage4_mapping)
        assert set(views.query_views) == {"Person", "Employee", "Customer"}
        assert set(views.association_views) == {"Supports"}
        assert set(views.update_views) == {"HR", "Emp", "Client"}


class TestFullCompilation:
    def test_stage4_compiles_and_roundtrips(self, stage4_mapping):
        result = compile_mapping(stage4_mapping)
        state = figure1_state(stage4_mapping.client_schema)
        assert check_roundtrip(result.views, state, stage4_mapping.store_schema).ok

    def test_validation_can_be_skipped(self, stage4_mapping):
        result = compile_mapping(stage4_mapping, validate=False)
        assert result.report is None
        assert result.views.query_views

    def test_budget_enforced(self):
        from repro.workloads.hub_rim import hub_rim_mapping

        mapping = hub_rim_mapping(2, 4, "TPH")
        with pytest.raises(CompilationBudgetExceeded):
            compile_mapping(mapping, budget=WorkBudget(max_steps=500))

    def test_fk_violation_detected(self):
        """TPC sibling bypassing the parent table violates the FK from the
        child table (a full-compile-level Figure 6)."""
        schema = (
            ClientSchemaBuilder()
            .entity("P", key=[("Id", INT)], attrs=[("N", STRING)])
            .entity("E", parent="P", attrs=[("D", STRING)])
            .entity_set("Ps", "P")
            .build()
        )
        store = StoreSchema(
            [
                Table("Root", (Column("Id", INT, False), Column("N", STRING)), ("Id",)),
                Table(
                    "Sub",
                    (Column("Id", INT, False), Column("D", STRING)),
                    ("Id",),
                    (ForeignKey(("Id",), "Root", ("Id",)),),
                ),
            ]
        )
        # E mapped TPC into Sub (keys NOT flowing into Root) while Sub has
        # a foreign key into Root: invalid.
        mapping = Mapping(
            schema,
            store,
            [
                MappingFragment("Ps", False, IsOfOnly("P"), "Root", TRUE,
                                (("Id", "Id"), ("N", "N"))),
                MappingFragment("Ps", False, IsOf("E"), "Sub", TRUE,
                                (("Id", "Id"), ("D", "D"))),
            ],
        )
        # E.N is not covered by any fragment -> make Sub store it too?
        # keep N mapped through Root for ONLY P; E entities lose N -> the
        # coverage check fires first. Map N in Sub as well so the FK check
        # is what fails.
        mapping.replace_fragments(
            [
                MappingFragment("Ps", False, IsOfOnly("P"), "Root", TRUE,
                                (("Id", "Id"), ("N", "N"))),
                MappingFragment("Ps", False, IsOf("E"), "Sub", TRUE,
                                (("Id", "Id"), ("D", "D"), ("N", "D2"))),
            ]
        )
        store2 = StoreSchema(
            [
                Table("Root", (Column("Id", INT, False), Column("N", STRING)), ("Id",)),
                Table(
                    "Sub",
                    (
                        Column("Id", INT, False),
                        Column("D", STRING),
                        Column("D2", STRING),
                    ),
                    ("Id",),
                    (ForeignKey(("Id",), "Root", ("Id",)),),
                ),
            ]
        )
        mapping = Mapping(schema, store2, mapping.fragments)
        with pytest.raises(ValidationError) as err:
            compile_mapping(mapping)
        assert err.value.check in ("fk-preservation", "roundtrip")

    def test_workloads_all_compile(self):
        from repro.workloads import chain_mapping, customer_mapping, hub_rim_mapping

        for mapping in (
            chain_mapping(6),
            hub_rim_mapping(2, 2, "TPH"),
            hub_rim_mapping(2, 2, "TPT"),
            customer_mapping(scale=0.05),
        ):
            result = compile_mapping(mapping)
            assert result.report is not None

    def test_validation_report_counts(self, stage4_mapping):
        result = compile_mapping(stage4_mapping)
        report = result.report
        assert report.coverage_checks >= 3
        assert report.containment_checks >= 2
        assert report.roundtrip_states > 0
        assert report.store_cells >= 3
