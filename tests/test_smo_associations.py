"""Unit tests: AddAssociationFK (Section 3.2), AddAssociationJT,
DropAssociation."""

import pytest

from repro.algebra import IsNotNull
from repro.compiler import compile_mapping
from repro.edm import ClientState, Entity, Multiplicity
from repro.errors import SmoError, ValidationError
from repro.incremental import (
    AddAssociationFK,
    AddAssociationJT,
    CompiledModel,
    DropAssociation,
    IncrementalCompiler,
)
from repro.mapping import check_roundtrip
from repro.relational import ForeignKey
from repro.workloads.paper_example import mapping_stage3

from tests.conftest import figure1_state, supports_smo


@pytest.fixture
def compiler():
    return IncrementalCompiler()


@pytest.fixture
def stage3_compiled():
    mapping = mapping_stage3()
    return CompiledModel(mapping, compile_mapping(mapping).views)


class TestAddAssociationFKPreconditions:
    def test_existing_association_rejected(self, incrementally_evolved, compiler):
        smo = supports_smo(incrementally_evolved)
        with pytest.raises(SmoError):
            compiler.apply(incrementally_evolved, smo)

    def test_many_many_rejected(self, stage3_compiled, compiler):
        smo = AddAssociationFK.create(
            stage3_compiled, "S", "Customer", "Employee", "Client",
            {"Customer.Id": "Cid", "Employee.Id": "Eid"},
            mult1="*", mult2="*",
        )
        with pytest.raises(SmoError):
            compiler.apply(stage3_compiled, smo)

    def test_unmapped_table_rejected(self, stage3_compiled, compiler):
        smo = AddAssociationFK.create(
            stage3_compiled, "S", "Customer", "Employee", "Fresh",
            {"Customer.Id": "Cid", "Employee.Id": "Eid"},
        )
        with pytest.raises(SmoError):
            compiler.apply(stage3_compiled, smo)

    def test_f_pk1_must_be_table_key(self, stage3_compiled, compiler):
        smo = AddAssociationFK.create(
            stage3_compiled, "S", "Customer", "Employee", "Client",
            {"Customer.Id": "Name", "Employee.Id": "Eid"},
        )
        with pytest.raises(SmoError):
            compiler.apply(stage3_compiled, smo)

    def test_non_nullable_fk_column_rejected(self, compiler):
        """An existing non-nullable, unmapped column cannot encode an
        optional association (absence is NULL)."""
        from repro.algebra import IsOf, TRUE
        from repro.edm import ClientSchemaBuilder, INT
        from repro.mapping import Mapping, MappingFragment
        from repro.relational import Column, StoreSchema, Table

        schema = (
            ClientSchemaBuilder()
            .entity("A", key=[("Id", INT)])
            .entity("B", key=[("Id", INT)])
            .entity_set("As", "A")
            .entity_set("Bs", "B")
            .build()
        )
        store = StoreSchema(
            [
                Table("TA", (Column("Id", INT, False),
                             Column("Req", INT, False)), ("Id",)),
                Table("TB", (Column("Id", INT, False),), ("Id",)),
            ]
        )
        mapping = Mapping(
            schema, store,
            [
                MappingFragment("As", False, IsOf("A"), "TA", TRUE, (("Id", "Id"),)),
                MappingFragment("Bs", False, IsOf("B"), "TB", TRUE, (("Id", "Id"),)),
            ],
        )
        # Req is unmapped but non-nullable: viewgen pads it with NULL, so
        # the base mapping itself is invalid; skip validation to build it.
        model = CompiledModel(mapping, compile_mapping(mapping, validate=False).views)
        smo = AddAssociationFK.create(
            model, "S", "A", "B", "TA", {"A.Id": "Id", "B.Id": "Req"},
        )
        with pytest.raises(SmoError):
            compiler.apply(model, smo)


class TestAddAssociationFKSemantics:
    def test_check1_used_column_rejected(self, stage3_compiled, compiler):
        """Check 1 of Section 3.2: f(PK2) columns must be fresh.  Score
        already stores CredScore data."""
        smo = AddAssociationFK.create(
            stage3_compiled, "S", "Customer", "Employee", "Client",
            {"Customer.Id": "Cid", "Employee.Id": "Score"},
        )
        with pytest.raises(ValidationError) as err:
            compiler.apply(stage3_compiled, smo)
        assert err.value.check == "assoc-column-fresh"

    def test_fragment_and_views_created(self, stage3_compiled, compiler):
        smo = supports_smo(stage3_compiled)
        model = compiler.apply(stage3_compiled, smo).model
        fragment = model.mapping.fragment_for_association("Supports")
        assert fragment.store_condition == IsNotNull("Eid")
        assert "Supports" in model.views.association_views
        assert smo.validation_checks >= 2  # checks 2 and 3 ran

    def test_roundtrip_with_and_without_links(self, stage3_compiled, compiler):
        model = compiler.apply(stage3_compiled, supports_smo(stage3_compiled)).model
        state = figure1_state(model.client_schema)
        assert check_roundtrip(model.views, state, model.store_schema).ok

    def test_multiplicities_recorded(self, stage3_compiled, compiler):
        model = compiler.apply(stage3_compiled, supports_smo(stage3_compiled)).model
        association = model.client_schema.association("Supports")
        assert association.end1.multiplicity is Multiplicity.MANY
        assert association.end2.multiplicity is Multiplicity.ZERO_OR_ONE


class TestAddAssociationJT:
    def test_many_to_many(self, stage3_compiled, compiler):
        smo = AddAssociationJT.create(
            stage3_compiled, "Knows", "Customer", "Employee", "KnowsJT",
            {"Customer.Id": "CustId", "Employee.Id": "EmpId"},
            mult1="*", mult2="*",
            table_foreign_keys=[
                ForeignKey(("CustId",), "Client", ("Cid",)),
                ForeignKey(("EmpId",), "Emp", ("Id",)),
            ],
        )
        model = compiler.apply(stage3_compiled, smo).model
        table = model.store_schema.table("KnowsJT")
        assert set(table.primary_key) == {"CustId", "EmpId"}
        assert smo.validation_checks == 2  # one per end's FK

        state = ClientState(model.client_schema)
        state.add_entity("Persons", Entity.of("Customer", Id=1, Name="c",
                                              CredScore=1, BillAddr="x"))
        state.add_entity("Persons", Entity.of("Customer", Id=2, Name="d",
                                              CredScore=2, BillAddr="y"))
        state.add_entity("Persons", Entity.of("Employee", Id=3, Name="e",
                                              Department="z"))
        state.add_association("Knows", (1,), (3,))
        state.add_association("Knows", (2,), (3,))
        assert check_roundtrip(model.views, state, model.store_schema).ok

    def test_mapped_table_rejected(self, stage3_compiled, compiler):
        smo = AddAssociationJT.create(
            stage3_compiled, "Knows", "Customer", "Employee", "Client",
            {"Customer.Id": "CustId", "Employee.Id": "EmpId"},
        )
        with pytest.raises(SmoError):
            compiler.apply(stage3_compiled, smo)

    def test_dangling_fk_target_rejected(self, stage3_compiled, compiler):
        smo = AddAssociationJT.create(
            stage3_compiled, "Knows", "Customer", "Employee", "KnowsJT",
            {"Customer.Id": "CustId", "Employee.Id": "EmpId"},
            table_foreign_keys=[ForeignKey(("CustId",), "Unmapped", ("X",))],
        )
        with pytest.raises(Exception):
            compiler.apply(stage3_compiled, smo)


class TestDropAssociation:
    def test_fk_mapped_drop_restores_padding(self, incrementally_evolved, compiler):
        model = compiler.apply(incrementally_evolved, DropAssociation("Supports")).model
        assert not model.client_schema.has_association("Supports")
        assert model.mapping.fragment_for_association("Supports") is None
        assert "Supports" not in model.views.association_views
        # Client's update view no longer reads the association
        from repro.algebra import scanned_names

        assert "Supports" not in scanned_names(model.views.update_view("Client").query)

        state = ClientState(model.client_schema)
        state.add_entity("Persons", Entity.of("Customer", Id=1, Name="c",
                                              CredScore=1, BillAddr="x"))
        assert check_roundtrip(model.views, state, model.store_schema).ok

    def test_unknown_association_rejected(self, stage3_compiled, compiler):
        with pytest.raises(SmoError):
            compiler.apply(stage3_compiled, DropAssociation("Nope"))

    def test_join_table_drop_removes_update_view(self, stage3_compiled, compiler):
        smo = AddAssociationJT.create(
            stage3_compiled, "Knows", "Customer", "Employee", "KnowsJT",
            {"Customer.Id": "CustId", "Employee.Id": "EmpId"},
            table_foreign_keys=[
                ForeignKey(("CustId",), "Client", ("Cid",)),
                ForeignKey(("EmpId",), "Emp", ("Id",)),
            ],
        )
        model = compiler.apply(stage3_compiled, smo).model
        model = compiler.apply(model, DropAssociation("Knows")).model
        assert not model.views.has_update_view("KnowsJT")
        assert model.store_schema.has_table("KnowsJT")  # data kept
