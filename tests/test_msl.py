"""Unit tests: model persistence (save/load round-trips, resume sessions)."""

import json

import pytest

from repro.edm import Attribute
from repro.errors import MappingError
from repro.incremental import CompiledModel, IncrementalCompiler
from repro.mapping import check_roundtrip
from repro.msl import (
    condition_from_json,
    condition_to_json,
    constructor_from_json,
    constructor_to_json,
    dumps_model,
    load_model,
    loads_model,
    query_from_json,
    query_to_json,
    save_model,
)

from tests.conftest import employee_smo, figure1_state


class TestAstRoundtrips:
    def test_conditions(self, stage4_compiled):
        for fragment in stage4_compiled.mapping.fragments:
            for condition in (fragment.client_condition, fragment.store_condition):
                data = condition_to_json(condition)
                json.dumps(data)  # must be JSON-serializable
                assert condition_from_json(data) == condition

    def test_queries_and_constructors(self, stage4_compiled):
        views = stage4_compiled.views
        for view in list(views.query_views.values()) + list(
            views.update_views.values()
        ):
            q = query_to_json(view.query)
            json.dumps(q)
            assert query_from_json(q) == view.query
            c = constructor_to_json(view.constructor)
            json.dumps(c)
            assert constructor_from_json(c) == view.constructor


class TestModelRoundtrip:
    def test_save_load_identity(self, stage4_compiled):
        document = save_model(stage4_compiled)
        restored = load_model(document)
        assert [str(f) for f in restored.mapping.fragments] == [
            str(f) for f in stage4_compiled.mapping.fragments
        ]
        assert set(restored.views.query_views) == set(
            stage4_compiled.views.query_views
        )

    def test_restored_views_still_roundtrip(self, stage4_compiled):
        restored = loads_model(dumps_model(stage4_compiled))
        state = figure1_state(restored.client_schema)
        assert check_roundtrip(restored.views, state, restored.store_schema).ok

    def test_resume_incremental_session(self, stage4_compiled):
        """Persist, reload, continue evolving — the Figure 7 workflow."""
        restored = loads_model(dumps_model(stage4_compiled))
        smo_factory = __import__(
            "repro.bench.smo_suite", fromlist=["ae_tpt"]
        ).ae_tpt("Employee")
        result = IncrementalCompiler().apply(restored, smo_factory(restored))
        assert result.model.client_schema.descendants("Employee")

    def test_format_version_checked(self, stage4_compiled):
        document = save_model(stage4_compiled)
        document["format"] = 99
        with pytest.raises(MappingError):
            load_model(document)

    def test_incrementally_evolved_model_persists(self, incrementally_evolved):
        restored = loads_model(dumps_model(incrementally_evolved))
        state = figure1_state(restored.client_schema)
        assert check_roundtrip(restored.views, state, restored.store_schema).ok

    def test_deep_hierarchy_parent_ordering(self, stage1_compiled):
        """Deserialization tolerates types listed child-before-parent."""
        compiler = IncrementalCompiler()
        model = compiler.apply(stage1_compiled, employee_smo(stage1_compiled)).model
        document = save_model(model)
        document["clientSchema"]["entityTypes"].reverse()
        restored = load_model(document)
        assert restored.client_schema.has_entity_type("Employee")

    def test_enum_domains_survive(self, stage1_compiled):
        from repro.edm import enum_domain
        from repro.incremental import AddEntityPart, Partition
        from repro.algebra import Comparison

        smo = AddEntityPart(
            name="G", parent="Person",
            new_attributes=(Attribute("g", enum_domain("M", "F")),),
            anchor="Person",
            partitions=(
                Partition.of(("Id",), Comparison("g", "=", "M"), "Ms"),
                Partition.of(("Id",), Comparison("g", "=", "F"), "Fs"),
            ),
        )
        model = IncrementalCompiler().apply(stage1_compiled, smo).model
        restored = loads_model(dumps_model(model))
        attribute = restored.client_schema.attribute_of("G", "g")
        assert attribute.domain.values == frozenset({"M", "F"})


class TestWorkloadPersistence:
    """Serialization round-trips across mapping styles and random models."""

    @pytest.mark.parametrize("seed", [0, 3, 7])
    def test_random_mappings_roundtrip(self, seed):
        from repro.compiler import generate_views
        from repro.incremental import CompiledModel
        from repro.workloads.randomgen import random_mapping

        mapping = random_mapping(seed=seed)
        model = CompiledModel(mapping, generate_views(mapping))
        restored = loads_model(dumps_model(model))
        assert [str(f) for f in restored.mapping.fragments] == [
            str(f) for f in mapping.fragments
        ]
        from repro.mapping import check_roundtrip
        from repro.stategen import random_client_state

        state = random_client_state(restored.client_schema, seed=1,
                                    entities_per_set=3)
        assert check_roundtrip(restored.views, state, restored.store_schema).ok

    def test_hub_rim_tph_roundtrip(self):
        from repro.compiler import generate_views
        from repro.incremental import CompiledModel
        from repro.workloads.hub_rim import hub_rim_mapping

        mapping = hub_rim_mapping(2, 2, "TPH")
        model = CompiledModel(mapping, generate_views(mapping))
        restored = loads_model(dumps_model(model))
        # joins with explicit `on` survive
        view = restored.views.query_views["Hub1"]
        assert view.query == model.views.query_views["Hub1"].query
