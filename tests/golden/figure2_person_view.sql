QueryView[Person] =
SELECT VALUE
  CASE
    WHEN _from2 = True THEN Customer(Id, Name, CredScore, BillAddr)
    WHEN _from1 = True THEN Employee(Id, Name, Department)
    ELSE Person(Id, Name)
  END
FROM (
  SELECT *
  FROM
    (
      (
        SELECT Id, Name, True AS _from0
        FROM
          HR
      ) NATURAL LEFT OUTER JOIN (
        SELECT Id, Dept AS Department, True AS _from1
        FROM
          Emp
      )
    )
    UNION ALL
    (
      SELECT Cid AS Id, Name, Score AS CredScore, Addr AS BillAddr, True AS _from2
      FROM
        Client
    )
  WHERE (_from2 = True OR _from1 = True OR (_from0 = True AND NOT (_from1 = True)))
)
