"""Multi-thread stress for the serving caches.

The epoch engine promises lock-free reads, which means the PlanCache and
ValidationCache bookkeeping (LRU order, hit/miss/eviction counters,
shape index) must tolerate many threads planning, hitting and evicting
at once without corruption — and the ``successor`` snapshot taken by a
writer must be consistent while readers keep inserting.
"""

from __future__ import annotations

import threading

import pytest

from repro.algebra.conditions import Comparison
from repro.compiler import compile_mapping
from repro.containment.cache import ValidationCache
from repro.incremental import CompiledModel
from repro.query import EntityQuery
from repro.query.plancache import PlanCache
from repro.workloads.chain import chain_mapping, set_name

THREADS = 8
ROUNDS = 50
CHAIN_TYPES = 6


@pytest.fixture(scope="module")
def chain_model() -> CompiledModel:
    mapping = chain_mapping(CHAIN_TYPES)
    return CompiledModel(mapping, compile_mapping(mapping, validate=False).views)


def _run_threads(worker) -> list:
    errors: list = []

    def wrapped(index: int) -> None:
        try:
            worker(index)
        except Exception as exc:  # noqa: BLE001 — collected for assertion
            errors.append(exc)

    threads = [
        threading.Thread(target=wrapped, args=(i,)) for i in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return errors


class TestPlanCacheThreadSafety:
    def test_concurrent_plan_for_counts_every_request(self, chain_model):
        cache = PlanCache()
        queries = [
            EntityQuery(set_name(1 + (i % CHAIN_TYPES)))
            for i in range(CHAIN_TYPES)
        ]

        def worker(index: int) -> None:
            for round_number in range(ROUNDS):
                query = queries[(index + round_number) % len(queries)]
                plan, values = cache.plan_for(chain_model, query)
                assert plan is not None
                assert values == ()

        errors = _run_threads(worker)
        assert not errors, errors[0]
        stats = cache.stats()
        assert stats.hits + stats.misses == THREADS * ROUNDS
        assert stats.entries == CHAIN_TYPES
        # duplicate compilations on a miss race are tolerated, but the
        # cache must not under-count distinct shapes
        assert stats.misses >= CHAIN_TYPES

    def test_concurrent_eviction_pressure_stays_bounded(self, chain_model):
        cache = PlanCache(max_plans=2)
        conditions = [Comparison("Id", "=", value) for value in range(5)]

        def worker(index: int) -> None:
            for round_number in range(ROUNDS):
                chosen = (index + round_number) % CHAIN_TYPES
                query = EntityQuery(
                    set_name(1 + chosen),
                    conditions[round_number % len(conditions)],
                )
                cache.plan_for(chain_model, query)

        errors = _run_threads(worker)
        assert not errors, errors[0]
        stats = cache.stats()
        assert stats.entries <= 2
        assert stats.evictions > 0
        assert stats.hits + stats.misses == THREADS * ROUNDS

    def test_successor_snapshot_during_concurrent_inserts(self, chain_model):
        cache = PlanCache()
        stop = threading.Event()
        successors: list = []

        def inserter(index: int) -> None:
            if index == 0:
                # one thread repeatedly takes successor snapshots
                for _ in range(20):
                    successors.append(cache.successor())
                stop.set()
                return
            round_number = 0
            while not stop.is_set():
                query = EntityQuery(
                    set_name(1 + (round_number % CHAIN_TYPES)),
                    Comparison("Id", "=", round_number % 7),
                )
                cache.plan_for(chain_model, query)
                round_number += 1

        errors = _run_threads(inserter)
        assert not errors, errors[0]
        assert len(successors) == 20
        for successor in successors:
            # a successor is a coherent cache: counters carried over and
            # every entry resolvable
            stats = successor.stats()
            assert stats.entries == len(successor)
            assert stats.hits + stats.misses >= 0


class TestValidationCacheThreadSafety:
    def test_get_or_compute_from_many_threads(self):
        cache = ValidationCache()
        computed = []
        lock = threading.Lock()

        def compute_for(key: str):
            def compute():
                with lock:
                    computed.append(key)
                return f"value-{key}"

            return compute

        def worker(index: int) -> None:
            for round_number in range(ROUNDS):
                key = f"k{(index + round_number) % 10}"
                value = cache.get_or_compute("test", key, compute_for(key))
                assert value == f"value-{key}"

        errors = _run_threads(worker)
        assert not errors, errors[0]
        stats = cache.stats()
        assert stats.hits + stats.misses == THREADS * ROUNDS
        assert len(cache) == 10

    def test_eviction_under_concurrent_load(self):
        cache = ValidationCache(max_entries=4)

        def worker(index: int) -> None:
            for round_number in range(ROUNDS):
                key = f"k{(index * ROUNDS + round_number) % 16}"
                cache.get_or_compute("test", key, lambda k=key: f"v-{k}")

        errors = _run_threads(worker)
        assert not errors, errors[0]
        assert len(cache) <= 4
        assert cache.stats().evictions > 0

    def test_transactions_race_inserts(self):
        cache = ValidationCache()

        def worker(index: int) -> None:
            for round_number in range(ROUNDS):
                transaction = cache.begin_transaction()
                cache.get_or_compute(
                    "txn", f"{index}-{round_number}", lambda: round_number
                )
                if round_number % 2:
                    cache.commit(transaction)
                else:
                    cache.rollback(transaction)

        errors = _run_threads(worker)
        assert not errors, errors[0]
        # rolled-back insertions are gone, committed ones are present
        assert 0 < len(cache) <= THREADS * ROUNDS
