"""Unit tests: the SMO framework (Figure 7 pipeline), abort semantics,
budgets, and the roundtrip oracle's failure diagnostics."""

import pytest

from repro.budget import UnlimitedBudget, WorkBudget, ensure_budget
from repro.edm import Attribute, STRING
from repro.errors import CompilationBudgetExceeded, ValidationError
from repro.incremental import AddEntity, IncrementalCompiler, IncrementalResult
from repro.mapping import check_roundtrip

from tests.conftest import employee_smo, figure1_state


class TestPipeline:
    def test_apply_returns_new_model(self, stage1_compiled):
        compiler = IncrementalCompiler()
        result = compiler.apply(stage1_compiled, employee_smo(stage1_compiled))
        assert result.model is not stage1_compiled
        assert not stage1_compiled.client_schema.has_entity_type("Employee")
        assert result.model.client_schema.has_entity_type("Employee")

    def test_apply_all_chains(self, stage1_compiled):
        compiler = IncrementalCompiler()
        results = compiler.apply_all(
            stage1_compiled,
            [employee_smo(stage1_compiled)],
        )
        assert len(results) == 1
        assert isinstance(results[0], IncrementalResult)
        assert results[0].elapsed > 0

    def test_result_str(self, stage1_compiled):
        compiler = IncrementalCompiler()
        result = compiler.apply(stage1_compiled, employee_smo(stage1_compiled))
        assert "ms" in str(result)

    def test_budget_propagates_to_validation(self, stage1_compiled):
        compiler = IncrementalCompiler(budget=WorkBudget(max_steps=1))
        with pytest.raises(CompilationBudgetExceeded):
            compiler.apply(stage1_compiled, employee_smo(stage1_compiled))
        # and the input model is untouched even on budget aborts
        assert not stage1_compiled.client_schema.has_entity_type("Employee")


class TestBudget:
    def test_step_budget(self):
        budget = WorkBudget(max_steps=10)
        for _ in range(10):
            budget.tick()
        with pytest.raises(CompilationBudgetExceeded):
            budget.tick()

    def test_unlimited_budget_never_trips(self):
        budget = UnlimitedBudget()
        budget.tick(10**9)
        assert budget.steps == 10**9

    def test_ensure_budget(self):
        assert isinstance(ensure_budget(None), UnlimitedBudget)
        concrete = WorkBudget(max_steps=5)
        assert ensure_budget(concrete) is concrete

    def test_elapsed_grows(self):
        budget = WorkBudget()
        assert budget.elapsed >= 0


class TestCompiledModel:
    def test_clone_deep_enough(self, stage4_compiled):
        copy = stage4_compiled.clone()
        copy.mapping.replace_fragments([])
        copy.views.drop_query_view("Person")
        assert stage4_compiled.mapping.fragments
        assert "Person" in stage4_compiled.views.query_views

    def test_str(self, stage4_compiled):
        text = str(stage4_compiled)
        assert "fragments" in text and "query views" in text


class TestCompiledViewsContainer:
    def test_lookup_errors(self, stage4_compiled):
        from repro.errors import MappingError

        views = stage4_compiled.views
        with pytest.raises(MappingError):
            views.query_view("Nope")
        with pytest.raises(MappingError):
            views.update_view("Nope")
        with pytest.raises(MappingError):
            views.association_view("Nope")

    def test_to_sql_renders_everything(self, stage4_compiled):
        text = stage4_compiled.views.to_sql()
        assert "QueryView[Person]" in text
        assert "UpdateView[Client]" in text
        assert "QueryView[Supports]" in text

    def test_drop_is_idempotent(self, stage4_compiled):
        views = stage4_compiled.views.clone()
        views.drop_query_view("Person")
        views.drop_query_view("Person")
        assert "Person" not in views.query_views


class TestRoundtripDiagnostics:
    def test_missing_update_view_reported(self, stage4_compiled):
        views = stage4_compiled.views.clone()
        views.drop_update_view("Client")
        state = figure1_state(stage4_compiled.client_schema)
        report = check_roundtrip(views, state, stage4_compiled.store_schema)
        assert not report.ok
        # losing Client data means customers and the association disappear
        assert "lost" in report.error or "failed" in report.error

    def test_inconsistent_store_reported(self, stage4_compiled):
        """Dropping the Emp update view leaves Client.Eid dangling."""
        views = stage4_compiled.views.clone()
        views.drop_update_view("Emp")
        state = figure1_state(stage4_compiled.client_schema)
        report = check_roundtrip(views, state, stage4_compiled.store_schema)
        assert not report.ok
        assert report.store_violations

    def test_report_str(self, stage4_compiled):
        state = figure1_state(stage4_compiled.client_schema)
        report = check_roundtrip(
            stage4_compiled.views, state, stage4_compiled.store_schema
        )
        assert str(report) == "roundtrip OK"


class TestValidationFailureRollback:
    def test_partial_work_discarded(self, incrementally_evolved):
        """A failing SMO must leave no trace: schemas, fragments, views."""
        from repro.incremental import AddEntity

        before_fragments = list(incrementally_evolved.mapping.fragments)
        before_tables = {t.name for t in incrementally_evolved.store_schema.tables}
        smo = AddEntity.tpc(
            incrementally_evolved,
            "Vip",
            "Customer",
            [Attribute("Tier", STRING)],
            "VipT",
        )
        # TPC under Customer while Supports stores Customer keys in Client:
        # the Figure 6 violation.
        with pytest.raises(ValidationError):
            IncrementalCompiler().apply(incrementally_evolved, smo)
        assert list(incrementally_evolved.mapping.fragments) == before_fragments
        assert {t.name for t in incrementally_evolved.store_schema.tables} == before_tables
        assert not incrementally_evolved.client_schema.has_entity_type("Vip")
