"""Integration tests: the ORM session facade (query / save / evolve with
data migration)."""

import pytest

from repro.algebra import Comparison, IsOf, and_
from repro.compiler import compile_mapping
from repro.edm import Attribute, ClientState, Entity, INT, STRING
from repro.errors import ValidationError
from repro.incremental import AddEntity, AddEntityTPH, CompiledModel
from repro.query import EntityQuery
from repro.relational import ForeignKey
from repro.session import OrmSession
from repro.workloads.paper_example import mapping_stage1, mapping_stage4


@pytest.fixture
def session():
    mapping = mapping_stage4()
    model = CompiledModel(mapping, compile_mapping(mapping).views)
    return OrmSession.create(model)


def _populate(session):
    with session.edit() as state:
        state.add_entity("Persons", Entity.of("Person", Id=1, Name="ann"))
        state.add_entity(
            "Persons", Entity.of("Employee", Id=2, Name="bob", Department="hr")
        )
        state.add_entity(
            "Persons",
            Entity.of("Customer", Id=3, Name="cid", CredScore=9, BillAddr="x"),
        )
        state.add_association("Supports", (3,), (2,))


class TestReadWrite:
    def test_edit_and_load(self, session):
        _populate(session)
        state = session.load()
        assert len(state.entities("Persons")) == 3
        assert state.associations("Supports") == ((3, 2),)

    def test_query_through_unfolding(self, session):
        _populate(session)
        employees = session.query(EntityQuery("Persons", IsOf("Employee")))
        assert [e.concrete_type for e in employees] == ["Employee"]

    def test_query_with_projection(self, session):
        _populate(session)
        rows = session.query(
            EntityQuery(
                "Persons",
                and_(IsOf("Customer"), Comparison("CredScore", ">", 1)),
                projection=("Id", "BillAddr"),
            )
        )
        assert rows == [{"Id": 3, "BillAddr": "x"}]

    def test_explain(self, session):
        _populate(session)
        plan = session.explain(EntityQuery("Persons", IsOf("Customer")))
        assert "constructs Customer" in plan

    def test_save_returns_minimal_delta(self, session):
        _populate(session)
        state = session.load()
        delta = session.save(state)
        assert delta.empty  # nothing changed

    def test_save_rejects_constraint_violations(self, session):
        """A store-inconsistent target state is refused atomically."""
        _populate(session)
        before = session.store_state
        broken = ClientState(session.model.client_schema)
        # Customer supported by a missing employee cannot be expressed at
        # the client level (association add checks existence), so break it
        # at the store level instead: drop the Emp update view's output by
        # saving a state whose Employee vanished but association remains —
        # also impossible client-side. Constraint checking is therefore
        # exercised through a raw store check:
        from repro.relational import check_all

        assert not check_all(before)

    def test_incremental_saves(self, session):
        _populate(session)
        with session.edit() as state:
            state.add_entity("Persons", Entity.of("Person", Id=7, Name="gil"))
        people = session.query(EntityQuery("Persons"))
        assert len(people) == 4


class TestEvolutionWithMigration:
    def test_add_entity_preserves_data(self, session):
        _populate(session)
        smo = AddEntity.tpt(
            session.model, "Manager", "Employee", [Attribute("Level", INT)], "Mgr",
            table_foreign_keys=[ForeignKey(("Id",), "Emp", ("Id",))],
        )
        delta = session.evolve(smo)
        assert delta.empty  # pre-existing data is untouched (soundness)
        assert len(session.query(EntityQuery("Persons"))) == 3
        with session.edit() as state:
            state.add_entity(
                "Persons",
                Entity.of("Manager", Id=8, Name="mia", Department="hr", Level=3),
            )
        managers = session.query(EntityQuery("Persons", IsOf("Manager")))
        assert len(managers) == 1

    def test_tph_conversion_migrates_rows(self):
        """Converting a table to TPH rewrites it (discriminator column);
        existing rows stay readable (disc = NULL) and new-type rows land
        with their discriminator."""
        mapping = mapping_stage1()
        model = CompiledModel(mapping, compile_mapping(mapping).views)
        session = OrmSession.create(model)
        with session.edit() as state:
            state.add_entity("Persons", Entity.of("Person", Id=1, Name="ann"))
        smo = AddEntityTPH.create(
            session.model, "Robot", "Person", [Attribute("Os", STRING)],
            "HR", "Kind", "Robot",
        )
        session.evolve(smo)
        with session.edit() as state:
            state.add_entity(
                "Persons", Entity.of("Robot", Id=2, Name="r2", Os="lin")
            )
        rows = {dict(r)["Id"]: dict(r) for r in session.store_state.rows("HR")}
        assert rows[1]["Kind"] is None
        assert rows[2]["Kind"] == "Robot"
        people = session.query(EntityQuery("Persons"))
        assert {e.concrete_type for e in people} == {"Person", "Robot"}

    def test_rejected_smo_leaves_session_intact(self, session):
        _populate(session)
        smo = AddEntity.tpc(
            session.model, "Vip", "Customer", [Attribute("Tier", STRING)], "VipT"
        )
        with pytest.raises(ValidationError):
            session.evolve(smo)  # the Figure 6 violation
        # session still fully usable
        assert len(session.query(EntityQuery("Persons"))) == 3
        assert not session.model.client_schema.has_entity_type("Vip")
