"""The persistent cross-process validation cache (containment/persist).

Covers the L2 contract end to end: warm-from-disk within a process,
warm-from-disk across *processes* (a subprocess sharing the same
``REPRO_CACHE_DIR``), corruption and version-skew degrading to a cold
miss instead of a crash, transaction semantics (rejected candidates
never persisted), counterexample pools surviving reopen, and verdict
identity — cold and warm-disk validations must agree exactly on every
workload.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.compiler import compile_mapping, validate_mapping
from repro.containment.cache import ValidationCache
from repro.containment.persist import (
    CACHE_DIR_ENV,
    PersistentCacheStore,
    cache_dir_from_env,
)
from repro.edm import Attribute, INT
from repro.incremental import AddEntity, CompiledModel
from repro.session import OrmSession
from repro.workloads.chain import chain_mapping
from repro.workloads.customer import customer_mapping
from repro.workloads.hub_rim import hub_rim_mapping
from repro.workloads.paper_example import mapping_stage4
from repro.workloads.randomgen import random_mapping


def _compiled(mapping):
    return mapping, compile_mapping(mapping, validate=False).views


def _verdict(report):
    """The semantic content of a report — what was checked and passed —
    excluding runtime artifacts (timings, cache counters, worker count).
    """
    return (
        report.coverage_checks,
        report.store_cells,
        report.containment_checks,
        report.roundtrip_states,
    )


class TestWarmFromDisk:
    def test_fresh_cache_over_same_store_hits_l2(self, tmp_path):
        mapping, views = _compiled(hub_rim_mapping(2, 2, "TPH"))
        c1 = ValidationCache(store=PersistentCacheStore(str(tmp_path)))
        cold = validate_mapping(mapping, views, cache=c1)
        assert cold.l2_misses > 0 and cold.l2_hits == 0
        c1.close()

        # a new in-memory cache (a "new process") over the same directory
        c2 = ValidationCache(store=PersistentCacheStore(str(tmp_path)))
        warm = validate_mapping(mapping, views, cache=c2)
        assert warm.l2_hits > 0
        assert warm.l2_misses == 0
        assert _verdict(warm) == _verdict(cold)
        c2.close()

    def test_l2_promotes_into_l1(self, tmp_path):
        store = PersistentCacheStore(str(tmp_path))
        store.put("ns", "k", 41)
        cache = ValidationCache(store=store)
        assert cache.get_or_compute("ns", "k", lambda: 0) == 41
        assert cache.l2_hits == 1
        # second read is an L1 hit, not another disk probe
        assert cache.get_or_compute("ns", "k", lambda: 0) == 41
        assert cache.l2_hits == 1
        assert cache.hits == 2
        cache.close()

    def test_session_cache_dir_plumbs_through(self, tmp_path):
        mapping = hub_rim_mapping(2, 2, "TPH")
        model = CompiledModel(mapping, compile_mapping(mapping).views)
        s1 = OrmSession.create(model, cache_dir=str(tmp_path))
        cold = s1.validate()
        s1.engine.close()
        s2 = OrmSession.create(model, cache_dir=str(tmp_path))
        warm = s2.validate()
        assert warm.l2_hits > 0
        assert _verdict(warm) == _verdict(cold)
        stats = s2.serving_stats()
        assert stats.validation is not None
        assert stats.validation.l2_hits > 0
        s2.engine.close()

    def test_env_var_names_the_directory(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path))
        assert cache_dir_from_env() == str(tmp_path)
        mapping = hub_rim_mapping(1, 2, "TPH")
        model = CompiledModel(mapping, compile_mapping(mapping).views)
        session = OrmSession.create(model)  # picks the env var up itself
        session.validate()
        assert session.validation_cache.store is not None
        session.engine.close()
        assert os.path.exists(os.path.join(str(tmp_path), "validation_cache.sqlite"))


_CHILD_SCRIPT = """
import json, os, sys
from repro.compiler import compile_mapping, validate_mapping
from repro.containment.cache import ValidationCache
from repro.containment.persist import PersistentCacheStore
from repro.workloads.hub_rim import hub_rim_mapping

mapping = hub_rim_mapping(2, 2, "TPH")
views = compile_mapping(mapping, validate=False).views
cache = ValidationCache(store=PersistentCacheStore(os.environ["REPRO_CACHE_DIR"]))
report = validate_mapping(mapping, views, cache=cache)
cache.close()
print(json.dumps({
    "l2_hits": report.l2_hits,
    "l2_misses": report.l2_misses,
    "verdict": [report.coverage_checks, report.store_cells,
                report.containment_checks, report.roundtrip_states],
}))
"""


class TestCrossProcess:
    def test_subprocess_warms_from_shared_directory(self, tmp_path):
        """A different OS process validating the same model against the
        same REPRO_CACHE_DIR serves every check from L2 and reaches a
        byte-identical verdict."""
        mapping, views = _compiled(hub_rim_mapping(2, 2, "TPH"))
        cache = ValidationCache(store=PersistentCacheStore(str(tmp_path)))
        cold = validate_mapping(mapping, views, cache=cache)
        cache.close()

        env = dict(os.environ)
        env["REPRO_CACHE_DIR"] = str(tmp_path)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        out = subprocess.run(
            [sys.executable, "-c", _CHILD_SCRIPT],
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert out.returncode == 0, out.stderr
        child = json.loads(out.stdout)
        assert child["l2_hits"] > 0
        assert child["l2_misses"] == 0
        assert tuple(child["verdict"]) == _verdict(cold)


class TestCorruptionAndSkew:
    def test_corrupted_file_degrades_to_cold_miss(self, tmp_path):
        store = PersistentCacheStore(str(tmp_path))
        store.put("ns", "k", "cached")
        store.close()  # release the handle before corrupting the file
        with open(store.path, "wb") as handle:
            handle.write(b"this is not a sqlite database at all")

        reopened = PersistentCacheStore(str(tmp_path))
        cache = ValidationCache(store=reopened)
        # never crashes; the poisoned entry is simply gone
        assert cache.get_or_compute("ns", "k", lambda: "recomputed") == "recomputed"
        assert cache.l2_hits == 0
        cache.close()

    def test_truncated_file_degrades_to_cold_miss(self, tmp_path):
        store = PersistentCacheStore(str(tmp_path))
        store.put("ns", "k", "cached")
        store.close()
        with open(store.path, "r+b") as handle:
            handle.truncate(100)

        reopened = PersistentCacheStore(str(tmp_path))
        found, _ = reopened.get("ns", "k")
        assert not found
        reopened.close()

    def test_version_tag_mismatch_wipes_the_file(self, tmp_path):
        store = PersistentCacheStore(str(tmp_path))
        store.put("ns", "k", "old-format")
        # simulate a file written by a different repro version
        store._conn.execute("UPDATE meta SET value = 'other-tag' WHERE key = 'tag'")
        store._conn.commit()
        store.close()

        reopened = PersistentCacheStore(str(tmp_path))
        found, _ = reopened.get("ns", "k")
        assert not found  # stale format never read
        assert reopened.stats().entries == 0
        reopened.close()

    def test_unwritable_directory_disables_not_crashes(self, tmp_path):
        blocked = tmp_path / "file-not-dir"
        blocked.write_text("occupied")
        store = PersistentCacheStore(str(blocked))
        assert store.errors > 0
        found, _ = store.get("ns", "k")
        assert not found
        store.put("ns", "k", 1)  # no-op, no raise
        store.close()


class TestTransactions:
    def test_rollback_keeps_rejected_entries_off_disk(self, tmp_path):
        store = PersistentCacheStore(str(tmp_path))
        cache = ValidationCache(store=store)
        txn = cache.begin_transaction()
        cache.get_or_compute("ns", "candidate", lambda: "speculative")
        cache.rollback(txn)
        assert store.stats().entries == 0
        # and the L1 entry is gone too
        assert cache.get_or_compute("ns", "candidate", lambda: "fresh") == "fresh"
        cache.close()

    def test_commit_flushes_pending_entries(self, tmp_path):
        store = PersistentCacheStore(str(tmp_path))
        cache = ValidationCache(store=store)
        txn = cache.begin_transaction()
        cache.get_or_compute("ns", "accepted", lambda: "durable")
        assert store.stats().entries == 0  # deferred while speculative
        cache.commit(txn)
        assert store.stats().entries == 1
        found, value = store.get("ns", "accepted")
        assert found and value == "durable"
        cache.close()

    def test_nested_transactions_flush_only_at_outermost_commit(self, tmp_path):
        store = PersistentCacheStore(str(tmp_path))
        cache = ValidationCache(store=store)
        outer = cache.begin_transaction()
        inner = cache.begin_transaction()
        cache.get_or_compute("ns", "deep", lambda: 7)
        cache.commit(inner)
        assert store.stats().entries == 0  # still inside the outer txn
        cache.commit(outer)
        assert store.stats().entries == 1
        cache.close()

    def test_session_evolve_persists_accepted_batch_entries(self, tmp_path):
        mapping = mapping_stage4()
        model = CompiledModel(mapping, compile_mapping(mapping).views)
        session = OrmSession.create(model, cache_dir=str(tmp_path))
        before = session.validation_cache.store.stats().entries
        session.evolve(
            AddEntity.tpt(
                session.model, "Sub1", "Person", [Attribute("A1", INT)], "Sub1T"
            )
        )
        after = session.validation_cache.store.stats().entries
        assert after > before  # committed batch flushed to disk
        session.engine.close()


class TestCounterexamples:
    def test_pool_survives_reopen(self, tmp_path):
        store = PersistentCacheStore(str(tmp_path))
        cache = ValidationCache(store=store)
        cache.record_counterexample("ce-key", ("T",), ("x",), ("state",))
        record = (("T",), ("x",), ("state",))
        cache.close()

        cache2 = ValidationCache(store=PersistentCacheStore(str(tmp_path)))
        assert record in list(cache2.counterexamples("ce-key"))
        cache2.close()

    def test_pool_bounded_per_key_on_disk(self, tmp_path):
        store = PersistentCacheStore(str(tmp_path))
        cache = ValidationCache(store=store)
        bound = cache.COUNTEREXAMPLES_PER_KEY
        for i in range(bound + 5):
            cache.record_counterexample("k", ("T",), ("x",), (i,))
        assert store.stats().counterexamples <= bound
        cache.close()

    def test_recorded_inside_rollback_still_persists(self, tmp_path):
        """Counterexamples are genuine evidence even when found while
        validating a rejected candidate — they are never rolled back."""
        store = PersistentCacheStore(str(tmp_path))
        cache = ValidationCache(store=store)
        txn = cache.begin_transaction()
        cache.record_counterexample("evidence", ("T",), ("x",), ("bad",))
        cache.rollback(txn)
        assert store.stats().counterexamples == 1
        cache.close()


# the six differential workloads: cold and warm-disk must agree exactly
WORKLOADS = [
    ("paper-stage4", lambda: mapping_stage4()),
    ("hub-rim-tph", lambda: hub_rim_mapping(2, 2, "TPH")),
    ("hub-rim-tpt", lambda: hub_rim_mapping(2, 2, "TPT")),
    ("chain-8", lambda: chain_mapping(8)),
    ("customer-0.05", lambda: customer_mapping(0.05)),
    ("random-3", lambda: random_mapping(seed=3)),
]


class TestVerdictIdentity:
    @pytest.mark.parametrize(
        "name,build", WORKLOADS, ids=[name for name, _ in WORKLOADS]
    )
    def test_cold_and_warm_disk_verdicts_identical(self, tmp_path, name, build):
        mapping, views = _compiled(build())
        cold = validate_mapping(mapping, views)  # no cache at all

        store_cache = ValidationCache(store=PersistentCacheStore(str(tmp_path)))
        through = validate_mapping(mapping, views, cache=store_cache)
        store_cache.close()

        warm_cache = ValidationCache(store=PersistentCacheStore(str(tmp_path)))
        warm = validate_mapping(mapping, views, cache=warm_cache)
        warm_cache.close()

        assert _verdict(through) == _verdict(cold)
        assert _verdict(warm) == _verdict(cold)
        assert warm.l2_hits > 0


class TestDeltaScope:
    def test_delta_scope_rechecks_less_than_full(self):
        mapping = mapping_stage4()
        model = CompiledModel(mapping, compile_mapping(mapping).views)
        session = OrmSession.create(model)
        full = session.validate()
        session.evolve(
            AddEntity.tpt(
                session.model, "Sub1", "Person", [Attribute("A1", INT)], "Sub1T"
            )
        )
        delta_report = session.validate(scope="delta")
        # the neighborhood of one TPT subtype is a strict subset of the
        # evolved model's full check DAG
        full_after = session.validate(scope="full")
        assert delta_report.store_cells <= full_after.store_cells
        assert (
            delta_report.coverage_checks + delta_report.containment_checks
            < full_after.coverage_checks + full_after.containment_checks
        )
        assert full.coverage_checks > 0
        session.engine.close()

    def test_accumulator_resets_after_successful_validate(self):
        mapping = mapping_stage4()
        model = CompiledModel(mapping, compile_mapping(mapping).views)
        session = OrmSession.create(model)
        session.evolve(
            AddEntity.tpt(
                session.model, "Sub1", "Person", [Attribute("A1", INT)], "Sub1T"
            )
        )
        assert len(session.engine.unvalidated_delta.ops) > 0
        session.validate(scope="delta")
        assert len(session.engine.unvalidated_delta.ops) == 0
        # an empty composed delta validates nothing at all
        empty = session.validate(scope="delta")
        assert _verdict(empty) == (0, 0, 0, 0)
        session.engine.close()

    def test_undo_composes_inverse_into_scope(self):
        mapping = mapping_stage4()
        model = CompiledModel(mapping, compile_mapping(mapping).views)
        session = OrmSession.create(model)
        session.validate()
        session.evolve(
            AddEntity.tpt(
                session.model, "Sub2", "Person", [Attribute("A2", INT)], "Sub2T"
            )
        )
        ops_after_evolve = len(session.engine.unvalidated_delta.ops)
        session.undo()
        # the inverse is appended, not cancelled structurally — the
        # touched neighborhood still covers the round-tripped region
        assert len(session.engine.unvalidated_delta.ops) > ops_after_evolve
        report = session.validate(scope="delta")
        assert report.coverage_checks > 0
        session.engine.close()

    def test_unknown_scope_rejected(self):
        mapping = mapping_stage4()
        model = CompiledModel(mapping, compile_mapping(mapping).views)
        session = OrmSession.create(model)
        with pytest.raises(ValueError, match="unknown validation scope"):
            session.validate(scope="partial")
        session.engine.close()
