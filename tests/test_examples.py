"""Smoke tests: every example script runs to completion and prints the
expected landmarks."""

import runpy
import sys



def _run(path: str, capsys, argv=None) -> str:
    old_argv = sys.argv
    sys.argv = [path] + (argv or [])
    try:
        runpy.run_path(path, run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = _run("examples/quickstart.py", capsys)
    assert "roundtrip OK" in out
    assert "QueryView[Person]" in out
    assert "UNION ALL" in out  # the Figure 2 shape


def test_schema_evolution_session(capsys):
    out = _run("examples/schema_evolution_session.py", capsys, argv=["0.1"])
    assert "incrementally" in out
    assert "speedup" in out
    assert "REJECTED" not in out


def test_model_diff_workflow(capsys):
    out = _run("examples/model_diff_workflow.py", capsys)
    assert "roundtrip OK" in out
    assert "AE-TPT" in out or "inferred" in out


def test_partitioned_storage(capsys):
    out = _run("examples/partitioned_storage.py", capsys)
    assert "tautology" in out
    assert "rejected as expected" in out
    assert out.count("roundtrip OK") >= 2


def test_orm_application(capsys):
    out = _run("examples/orm_application.py", capsys)
    assert "roundtrip OK" in out
    assert "bugs tracked" in out
    assert "big task" in out


def test_reconstruct_mapping(capsys):
    out = _run("examples/reconstruct_mapping.py", capsys)
    assert "recovered SMO sequence" in out
    assert "views equivalent" in out
    assert "refused" in out
