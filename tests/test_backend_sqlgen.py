"""Unit tests: the view-algebra -> SQL compiler, the DDL generator, and
the migration planner.

The in-memory evaluator is the reference semantics; every compiled query
here is executed by a real SQLite engine and must return exactly the
evaluator's rows — including the places where SQL would naturally
diverge (three-valued logic under NOT, bools stored as 0/1, missing
columns, NULL join keys).
"""

import pytest

from repro.algebra import (
    Col,
    Comparison,
    Const,
    FullOuterJoin,
    IsNotNull,
    IsNull,
    IsOf,
    Join,
    LeftOuterJoin,
    Not,
    Or,
    Project,
    ProjItem,
    Select,
    StoreContext,
    TableScan,
    UnionAll,
    and_,
    evaluate_query,
    items_from_names,
)
from repro.backend import (
    MigrationScript,
    SqliteBackend,
    compile_query,
    create_table_sql,
    drop_table_sql,
    plan_migration,
    schema_ddl_text,
)
from repro.backend.ddl import creation_order, drop_order
from repro.backend.sqlgen import (
    SqlCompiler,
    decode_value,
    delta_statements,
    quote,
    script_text,
)
from repro.edm.types import BOOL, Domain, INT, STRING
from repro.errors import EvaluationError
from repro.query.dml import diff_store_states
from repro.relational import Column, ForeignKey, StoreSchema, StoreState, Table


@pytest.fixture
def schema():
    return StoreSchema(
        [
            Table(
                "People",
                (
                    Column("Id", INT, False),
                    Column("Name", STRING),
                    Column("Active", BOOL),
                    Column("Score", INT),
                ),
                ("Id",),
            ),
            Table(
                "Orders",
                (
                    Column("Oid", INT, False),
                    Column("Id", INT),
                    Column("Item", STRING),
                ),
                ("Oid",),
                (ForeignKey(("Id",), "People", ("Id",)),),
            ),
        ]
    )


@pytest.fixture
def state(schema):
    state = StoreState(schema)
    state.add_row("People", dict(Id=1, Name="ann", Active=True, Score=10))
    state.add_row("People", dict(Id=2, Name="bob", Active=False, Score=None))
    state.add_row("People", dict(Id=3, Name=None, Active=None, Score=7))
    state.add_row("Orders", dict(Oid=100, Id=1, Item="x"))
    state.add_row("Orders", dict(Oid=101, Id=1, Item="y"))
    state.add_row("Orders", dict(Oid=102, Id=None, Item="z"))
    return state


@pytest.fixture
def backend(schema, state):
    backend = SqliteBackend(schema)
    backend.replace_contents(state)
    yield backend
    backend.close()


def canon(rows):
    # sort by repr: values may mix None, bools and ints
    return sorted((tuple(sorted(r.items())) for r in rows), key=repr)


def assert_same_answer(query, backend, state):
    """The engine's answer must equal the interpreter's, value-identically."""
    expected = evaluate_query(query, StoreContext(state))
    actual = backend.run_query(query)
    assert canon(actual) == canon(expected)


class TestQueryCompilation:
    def test_table_scan(self, backend, state):
        assert_same_answer(TableScan("People"), backend, state)

    def test_bools_round_trip_as_python_bools(self, backend):
        rows = backend.run_query(TableScan("People"))
        actives = {r["Id"]: r["Active"] for r in rows}
        assert actives[1] is True
        assert actives[2] is False
        assert actives[3] is None

    @pytest.mark.parametrize(
        "condition",
        [
            Comparison("Score", ">", 5),
            Comparison("Name", "=", "ann"),
            Comparison("Name", "!=", "ann"),
            Not(Comparison("Score", ">", 5)),  # NULL score: 2VL, not UNKNOWN
            Not(Comparison("Name", "=", "ann")),
            IsNull("Score"),
            IsNotNull("Name"),
            Or((Comparison("Score", ">", 100), IsNull("Name"))),
            and_(Comparison("Active", "=", True), Comparison("Score", ">=", 10)),
            Comparison("Name", "!=", None),
            Comparison("Name", "=", None),
            Comparison("Missing", "=", 1),  # missing column folds to FALSE
            Not(Comparison("Missing", "=", 1)),
            IsNull("Missing"),
        ],
        ids=lambda c: str(c),
    )
    def test_conditions_match_two_valued_evaluator(self, condition, backend, state):
        assert_same_answer(Select(TableScan("People"), condition), backend, state)

    def test_projection_with_constants(self, backend, state):
        query = Project(
            TableScan("People"),
            (
                ProjItem("K", Col("Id")),
                ProjItem("Tag", Const("p")),
                ProjItem("Flag", Const(True)),
            ),
        )
        assert_same_answer(query, backend, state)
        # the constant True decodes back to a Python bool
        assert all(r["Flag"] is True for r in backend.run_query(query))

    def test_projection_missing_column_raises(self, schema):
        query = Project(TableScan("People"), items_from_names(("Nope",)))
        with pytest.raises(EvaluationError, match="missing column"):
            compile_query(query, schema)

    def test_natural_join_null_keys_never_match(self, backend, state):
        # Orders row 102 has Id=NULL: it must not join (and People row 3
        # joins nothing — inner join drops it)
        query = Join(TableScan("Orders"), TableScan("People"), on=("Id",))
        assert_same_answer(query, backend, state)
        ids = {r["Oid"] for r in backend.run_query(query)}
        assert ids == {100, 101}

    def test_left_outer_join_pads_right_side(self, backend, state):
        query = LeftOuterJoin(TableScan("Orders"), TableScan("People"), on=("Id",))
        assert_same_answer(query, backend, state)
        rows = {r["Oid"]: r for r in backend.run_query(query)}
        assert rows[102]["Name"] is None

    def test_full_outer_join(self, backend, state):
        query = FullOuterJoin(TableScan("Orders"), TableScan("People"), on=("Id",))
        assert_same_answer(query, backend, state)
        rows = backend.run_query(query)
        # People 2 and 3 have no orders: they surface with Oid NULL
        unmatched = {r["Id"] for r in rows if r["Oid"] is None}
        assert unmatched == {2, 3}

    def test_join_coalesces_shared_non_join_columns(self, schema, backend, state):
        # project both sides so they share "Name" without joining on it
        left = Project(
            TableScan("People"),
            (ProjItem("Id", Col("Id")), ProjItem("Name", Col("Name"))),
        )
        right = Project(
            TableScan("People"),
            (ProjItem("Id", Col("Id")), ProjItem("Name", Const("fixed"))),
        )
        query = Join(left, right, on=("Id",))
        assert_same_answer(query, backend, state)
        rows = {r["Id"]: r for r in backend.run_query(query)}
        # row 3's NULL name coalesces to the right side's constant
        assert rows[3]["Name"] == "fixed"
        assert rows[1]["Name"] == "ann"

    def test_union_all_pads_to_column_union(self, backend, state):
        left = Project(
            TableScan("People"), (ProjItem("Id", Col("Id")), ProjItem("A", Col("Name")))
        )
        right = Project(
            TableScan("Orders"), (ProjItem("Id", Col("Oid")), ProjItem("B", Col("Item")))
        )
        query = UnionAll((left, right))
        assert_same_answer(query, backend, state)
        for row in backend.run_query(query):
            assert set(row) == {"Id", "A", "B"}

    def test_select_over_join_over_union(self, backend, state):
        inner = UnionAll(
            (
                Project(TableScan("People"), items_from_names(("Id", "Score"))),
                Project(TableScan("Orders"), items_from_names(("Id", "Item"))),
            )
        )
        query = Select(
            Join(inner, TableScan("People"), on=("Id",)),
            Comparison("Score", ">", 5),
        )
        assert_same_answer(query, backend, state)

    def test_set_semantics_deduplicate(self, backend, state):
        # projecting Orders down to Id makes rows 100/101 collide
        query = Project(TableScan("Orders"), items_from_names(("Id",)))
        assert_same_answer(query, backend, state)
        assert len(backend.run_query(query)) == 2  # {1, None}

    def test_is_of_atoms_cannot_compile(self, schema):
        query = Select(TableScan("People"), IsOf("Person"))
        with pytest.raises(EvaluationError, match="IS OF"):
            compile_query(query, schema)

    def test_parameters_not_inlined(self, schema):
        compiled = compile_query(
            Select(TableScan("People"), Comparison("Name", "=", "o'hara")), schema
        )
        assert "o'hara" not in compiled.text
        assert "o'hara" in compiled.params

    def test_decode_value_bool_only(self):
        assert decode_value(1, "bool") is True
        assert decode_value(0, "bool") is False
        assert decode_value(1, "int") == 1
        assert decode_value(None, "bool") is None


class TestDdl:
    def test_create_table_with_pk_fk_not_null(self, schema):
        sql = create_table_sql(schema.table("Orders"))
        assert '"Oid" INTEGER NOT NULL' in sql
        assert 'PRIMARY KEY ("Oid")' in sql
        assert 'FOREIGN KEY ("Id") REFERENCES "People" ("Id")' in sql

    def test_finite_domain_becomes_check_constraint(self):
        gender = Domain("string", frozenset({"M", "F"}))
        table = Table(
            "T", (Column("Id", INT, False), Column("G", gender)), ("Id",)
        )
        sql = create_table_sql(table)
        assert "CHECK" in sql
        assert "'F'" in sql and "'M'" in sql

    def test_creation_order_respects_foreign_keys(self, schema):
        ordered = [t.name for t in creation_order(schema.tables)]
        assert ordered.index("People") < ordered.index("Orders")
        reversed_ = [t.name for t in drop_order(schema.tables)]
        assert reversed_.index("Orders") < reversed_.index("People")

    def test_schema_ddl_is_executable(self, schema, state):
        backend = SqliteBackend(schema)  # __init__ runs the generated DDL
        try:
            assert backend.row_count() == 0
            text = schema_ddl_text(schema)
            assert text.count("CREATE TABLE") == 2
        finally:
            backend.close()

    def test_drop_table_sql(self):
        assert drop_table_sql("A b") == 'DROP TABLE "A b"'

    def test_quote_escapes_embedded_quotes(self):
        assert quote('we"ird') == '"we""ird"'


class TestMigrationPlanner:
    def _widened(self, schema):
        """People gains a nullable column; Orders is unchanged."""
        people = schema.table("People")
        widened = Table(
            "People",
            people.columns + (Column("Extra", STRING),),
            people.primary_key,
            people.foreign_keys,
        )
        return StoreSchema([widened, schema.table("Orders")])

    def test_add_column_becomes_rebuild(self, schema, state):
        new_schema = self._widened(schema)
        target = StoreState(new_schema)
        for row in state.rows("People"):
            target.add_row("People", dict(row, Extra=None))
        for row in state.rows("Orders"):
            target.add_row("Orders", row)
        script = plan_migration(schema, new_schema, state, target)
        kinds = [step.kind for step in script.steps]
        assert kinds == ["create", "copy", "drop", "rename"]
        assert "__migrate__People" in script.steps[0].statement.text
        # NULL-padding the new column is the INSERT..SELECT itself: no
        # residual DML remains
        assert not script.dml_steps()

    def test_drop_and_create_tables(self, schema, state):
        extra = Table("Log", (Column("Id", INT, False),), ("Id",))
        new_schema = StoreSchema([schema.table("People"), extra])
        target = StoreState(new_schema)
        for row in state.rows("People"):
            target.add_row("People", row)
        script = plan_migration(schema, new_schema, state, target)
        drops = [s for s in script.steps if s.kind == "drop"]
        creates = [s for s in script.steps if s.kind == "create"]
        assert any("Orders" in s.statement.text for s in drops)
        assert any("Log" in s.statement.text for s in creates)

    def test_residual_dml_reaches_target(self, schema, state):
        # same schema, different rows: the whole migration is DML
        target = StoreState(schema)
        target.add_row("People", dict(Id=1, Name="ANN", Active=True, Score=10))
        target.add_row("People", dict(Id=9, Name="new", Active=False, Score=1))
        script = plan_migration(schema, schema, state, target)
        kinds = {step.kind for step in script.steps}
        assert kinds <= {"delete", "update", "insert"}
        assert script.dml_steps() == script.steps

    def test_sqlite_executes_script_to_exact_target(self, schema, state):
        """Acceptance: running the planned script on a real database lands
        on precisely the view-computed target state."""
        new_schema = self._widened(schema)
        target = StoreState(new_schema)
        for row in state.rows("People"):
            target.add_row("People", dict(row, Extra="pad"))
        target.add_row("Orders", dict(Oid=103, Id=1, Item="w"))
        for row in state.rows("Orders"):
            target.add_row("Orders", row)
        script = plan_migration(schema, new_schema, state, target)
        backend = SqliteBackend(schema)
        try:
            backend.replace_contents(state)
            backend.migrate(script, new_schema, target)
            assert backend.to_store_state().equals(target)
            assert backend.schema is new_schema
        finally:
            backend.close()

    def test_empty_migration_is_empty(self, schema, state):
        script = plan_migration(schema, schema, state, state)
        assert script.is_empty
        assert script.to_sql() == "BEGIN;\nCOMMIT;"

    def test_to_sql_frames_a_transaction(self, schema, state):
        target = StoreState(schema)
        script = plan_migration(schema, schema, state, target)
        text = script.to_sql()
        assert text.startswith("BEGIN;")
        assert text.endswith("COMMIT;")
        assert isinstance(script, MigrationScript)
        assert "steps" in script.summary() or "step" in script.summary()


class TestDmlStatements:
    def test_delta_statement_order_and_params(self, schema, state):
        target = StoreState(schema)
        target.add_row("People", dict(Id=1, Name="ann2", Active=True, Score=10))
        target.add_row("Orders", dict(Oid=100, Id=1, Item="x"))
        delta = diff_store_states(state, target)
        statements = delta_statements(delta, schema)
        verbs = [s.text.split()[0] for s in statements]
        # all deletes strictly before updates before inserts
        assert verbs == sorted(verbs, key=["DELETE", "UPDATE", "INSERT"].index)
        update = next(s for s in statements if s.text.startswith("UPDATE"))
        assert 'WHERE "Id" = ?' in update.text

    def test_delete_matches_null_values(self, schema, state):
        target = StoreState(schema)
        delta = diff_store_states(state, target)
        deletes = [
            s for s in delta_statements(delta, schema) if s.text.startswith("DELETE")
        ]
        assert all("IS ?" in s.text for s in deletes)

    def test_script_text_inlines_literals(self, schema, state):
        target = StoreState(schema)
        delta = diff_store_states(state, target)
        text = script_text(delta_statements(delta, schema))
        assert "?" not in text
        assert "'ann'" in text

    def test_compiler_reusable_across_compiles(self, schema):
        compiler = SqlCompiler(schema)
        first = compiler.compile(
            Select(TableScan("People"), Comparison("Id", "=", 1))
        )
        second = compiler.compile(TableScan("Orders"))
        assert first.params == (1,)
        assert second.params == ()
