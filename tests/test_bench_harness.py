"""Unit tests: the benchmark harness (measurement, censoring, rendering)."""


from repro.bench.harness import (
    Measurement,
    env_flag,
    env_float,
    env_int,
    measure,
    print_matrix,
    print_table,
    speedup_summary,
)
from repro.errors import CompilationBudgetExceeded, SmoError, ValidationError


class TestMeasure:
    def test_records_minimum_of_repeats(self):
        calls = []

        def fn(budget):
            calls.append(1)

        result = measure("x", fn, repeats=3)
        assert len(calls) == 3
        assert result.seconds is not None
        assert len(result.extra["times"]) == 3
        assert result.seconds == min(result.extra["times"])

    def test_budget_censoring(self):
        def fn(budget):
            budget.tick(10**9)

        # the budget's wall-clock check strides; force with tiny max_seconds
        def slow(budget):
            raise CompilationBudgetExceeded("out of budget")

        result = measure("x", slow, budget_seconds=0.001)
        assert result.censored
        assert ">" in result.cell()

    def test_validation_failure_still_timed(self):
        """The paper's AddEntityTPC rows: a rejected SMO is a timed run."""

        def fn(budget):
            raise ValidationError("nope")

        result = measure("x", fn, repeats=2)
        assert result.validation_failed
        assert result.seconds is not None
        assert result.cell().endswith("!")

    def test_other_errors_recorded(self):
        def fn(budget):
            raise SmoError("bad input")

        result = measure("x", fn)
        assert result.error
        assert result.cell() == "err"

    def test_params_kept(self):
        result = measure("x", lambda b: None, n=3, style="TPT")
        assert result.params == {"n": 3, "style": "TPT"}


class TestRendering:
    def test_cell_formats(self):
        assert Measurement("a", seconds=0.0012).cell() == "1.2ms"
        assert Measurement("a", seconds=2.5).cell() == "2.5s"
        assert Measurement("a", seconds=250.0).cell() == "250s"
        assert Measurement("a").cell() == "-"
        assert (
            Measurement("a", censored=True, budget_seconds=20.0).cell() == ">20s"
        )

    def test_print_table(self):
        lines = []
        print_table(
            "t",
            [Measurement("alpha", seconds=0.01, params={"k": 1})],
            out=lines.append,
        )
        assert any("alpha" in line for line in lines)

    def test_print_matrix(self):
        lines = []
        cells = {(1, 1): Measurement("x", seconds=0.5)}
        print_matrix("m", [1], [1, 2], cells, out=lines.append)
        assert any("500.0ms" in line for line in lines)
        assert any("-" in line for line in lines)  # missing cell

    def test_speedup_summary(self):
        lines = []
        full = Measurement("Full", seconds=10.0)
        speedup_summary(
            full, [Measurement("AE", seconds=0.01)], out=lines.append
        )
        assert any("1,000x" in line for line in lines)

    def test_speedup_summary_censored_baseline(self):
        lines = []
        full = Measurement("Full", censored=True, budget_seconds=100.0)
        speedup_summary(full, [Measurement("AE", seconds=0.1)], out=lines.append)
        assert any(">" in line for line in lines)


class TestEnvKnobs:
    def test_env_flag(self, monkeypatch):
        monkeypatch.setenv("X_FLAG", "1")
        assert env_flag("X_FLAG")
        monkeypatch.setenv("X_FLAG", "false")
        assert not env_flag("X_FLAG")
        monkeypatch.delenv("X_FLAG")
        assert not env_flag("X_FLAG")
        assert env_flag("X_FLAG", default=True)

    def test_env_float_and_int(self, monkeypatch):
        monkeypatch.setenv("X_F", "2.5")
        assert env_float("X_F", 1.0) == 2.5
        monkeypatch.setenv("X_F", "junk")
        assert env_float("X_F", 1.0) == 1.0
        monkeypatch.setenv("X_I", "7")
        assert env_int("X_I", 3) == 7
        monkeypatch.setenv("X_I", "junk")
        assert env_int("X_I", 3) == 3
