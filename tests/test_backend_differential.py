"""Differential harness: the memory and SQLite backends must be
observationally identical.

Every scenario drives two sessions — one per backend — through the same
seeded workload and asserts byte-identical observations at each step:
the same store snapshots, the same query answers (sorted by repr), the
same post-migration states.  Coverage spans the paper's running example,
hub-and-rim (TPH and TPT), the customer-scale generator, random
mappings, and all eight SMO kinds.
"""

import pytest

from tests.conftest import customer_smo, employee_smo, supports_smo
from repro.algebra import Comparison, IsNotNull, IsOf, TRUE
from repro.backend import MemoryBackend, SqliteBackend
from repro.compiler import compile_mapping
from repro.edm import Attribute, ClientSchemaBuilder, ClientState, Entity, INT, STRING
from repro.incremental import (
    AddAssociationJT,
    AddEntityPart,
    AddEntityTPH,
    AddProperty,
    CompiledModel,
    DropAssociation,
    DropEntity,
    Partition,
    RefactorAssociationToInheritance,
)
from repro.mapping import Mapping, MappingFragment
from repro.query import EntityQuery
from repro.relational import Column, ForeignKey, StoreSchema, StoreState, Table
from repro.session import OrmSession
from repro.stategen import random_client_state
from repro.workloads import customer_mapping, hub_rim_mapping
from repro.workloads.paper_example import mapping_stage1, mapping_stage3, mapping_stage4
from repro.workloads.randomgen import random_mapping


def compiled(mapping: Mapping) -> CompiledModel:
    return CompiledModel(mapping, compile_mapping(mapping).views)


def dual_sessions(model: CompiledModel):
    memory = OrmSession(model, backend=MemoryBackend(StoreState(model.store_schema)))
    sqlite = OrmSession(model, backend=SqliteBackend(model.store_schema))
    return memory, sqlite


def populate_both(memory, sqlite, seed=0, entities_per_set=5):
    state = random_client_state(
        memory.model.client_schema, seed=seed, entities_per_set=entities_per_set
    )
    memory.save(state)
    sqlite.save(state)
    return state


def canon(results):
    return sorted(repr(r) for r in results)


def assert_equivalent(memory, sqlite):
    """Snapshots and every whole-set query answer must coincide."""
    assert sqlite.backend.snapshot() == memory.backend.snapshot()
    assert sqlite.model.fingerprint() == memory.model.fingerprint()
    for entity_set in memory.model.client_schema.entity_sets:
        query = EntityQuery(entity_set.name)
        assert canon(sqlite.query(query)) == canon(memory.query(query)), (
            f"query answers diverge on {entity_set.name}"
        )


WORKLOADS = [
    ("paper-stage4", lambda: mapping_stage4()),
    ("hub-rim-tph", lambda: hub_rim_mapping(2, 2, "TPH")),
    ("hub-rim-tpt", lambda: hub_rim_mapping(2, 2, "TPT")),
    ("customer", lambda: customer_mapping(scale=0.05)),
    ("random-0", lambda: random_mapping(seed=0)),
    ("random-3", lambda: random_mapping(seed=3)),
]


@pytest.mark.parametrize(
    "factory", [f for _, f in WORKLOADS], ids=[name for name, _ in WORKLOADS]
)
class TestWorkloadEquivalence:
    def test_populate_and_query(self, factory):
        model = compiled(factory())
        memory, sqlite = dual_sessions(model)
        try:
            populate_both(memory, sqlite, seed=11)
            assert_equivalent(memory, sqlite)
        finally:
            sqlite.backend.close()

    def test_incremental_edits_stay_in_lockstep(self, factory):
        model = compiled(factory())
        memory, sqlite = dual_sessions(model)
        try:
            populate_both(memory, sqlite, seed=1)
            # a second, different state diffs against the first: deletes,
            # updates and inserts all travel through apply_delta
            replacement = random_client_state(
                model.client_schema, seed=2, entities_per_set=3
            )
            memory.save(replacement)
            sqlite.save(replacement)
            assert_equivalent(memory, sqlite)
        finally:
            sqlite.backend.close()


# ---------------------------------------------------------------------------
# All eight SMO kinds, each as (base model factory, smo factory)
# ---------------------------------------------------------------------------

def tph_base_model() -> CompiledModel:
    schema = (
        ClientSchemaBuilder()
        .entity("Vehicle", key=[("Id", INT)], attrs=[("Make", STRING)])
        .entity_set("Vehicles", "Vehicle")
        .build()
    )
    store = StoreSchema(
        [
            Table(
                "V",
                (Column("Id", INT, False), Column("Make", STRING),
                 Column("Disc", STRING, False)),
                ("Id",),
            )
        ]
    )
    mapping = Mapping(
        schema, store,
        [
            MappingFragment(
                "Vehicles", False, IsOf("Vehicle"), "V",
                Comparison("Disc", "=", "Vehicle"),
                (("Id", "Id"), ("Make", "Make")),
            )
        ],
    )
    return compiled(mapping)


def flat_base_model() -> CompiledModel:
    schema = (
        ClientSchemaBuilder()
        .entity("Node", key=[("Id", INT)])
        .entity_set("Nodes", "Node")
        .build()
    )
    store = StoreSchema([Table("N", (Column("Id", INT, False),), ("Id",))])
    mapping = Mapping(
        schema, store,
        [MappingFragment("Nodes", False, IsOf("Node"), "N", TRUE, (("Id", "Id"),))],
    )
    return compiled(mapping)


def holds_model() -> CompiledModel:
    schema = (
        ClientSchemaBuilder()
        .entity("Person2", key=[("Id", INT)], attrs=[("Name", STRING)])
        .entity("Passport", key=[("Pno", INT)], attrs=[("Country", STRING)])
        .entity_set("P2s", "Person2")
        .entity_set("Passports", "Passport")
        .association("Holds", "Person2", "Passport", mult1="1", mult2="0..1")
        .build()
    )
    store = StoreSchema(
        [
            Table("P2", (Column("Id", INT, False), Column("Name", STRING)), ("Id",)),
            Table(
                "Pass",
                (Column("Pno", INT, False), Column("Country", STRING),
                 Column("OwnerId", INT, True)),
                ("Pno",),
                (ForeignKey(("OwnerId",), "P2", ("Id",)),),
            ),
        ]
    )
    mapping = Mapping(
        schema, store,
        [
            MappingFragment("P2s", False, IsOf("Person2"), "P2", TRUE,
                            (("Id", "Id"), ("Name", "Name"))),
            MappingFragment("Passports", False, IsOf("Passport"), "Pass", TRUE,
                            (("Pno", "Pno"), ("Country", "Country"))),
            MappingFragment("Holds", True, TRUE, "Pass", IsNotNull("OwnerId"),
                            (("Passport.Pno", "Pno"), ("Person2.Id", "OwnerId"))),
        ],
    )
    return compiled(mapping)


def stage1_model() -> CompiledModel:
    return compiled(mapping_stage1())


def stage3_model() -> CompiledModel:
    return compiled(mapping_stage3())


def _random_pop(model: CompiledModel) -> ClientState:
    return random_client_state(model.client_schema, seed=7, entities_per_set=5)


def _no_customers_pop(model: CompiledModel) -> ClientState:
    """Drop-Entity(Customer) can only migrate data with no Customers."""
    state = ClientState(model.client_schema)
    state.add_entity("Persons", Entity.of("Person", Id=1, Name="ann"))
    state.add_entity(
        "Persons", Entity.of("Employee", Id=2, Name="bob", Department="hr")
    )
    return state


def _no_holds_pop(model: CompiledModel) -> ClientState:
    """Drop-Association(Holds) needs the association empty."""
    state = ClientState(model.client_schema)
    state.add_entity("P2s", Entity.of("Person2", Id=1, Name="ann"))
    state.add_entity("P2s", Entity.of("Person2", Id=2, Name="bob"))
    state.add_entity("Passports", Entity.of("Passport", Pno=10, Country="fr"))
    return state


def _no_passports_pop(model: CompiledModel) -> ClientState:
    """The refactor drops the Passports set; it must be empty."""
    state = ClientState(model.client_schema)
    state.add_entity("P2s", Entity.of("Person2", Id=1, Name="ann"))
    state.add_entity("P2s", Entity.of("Person2", Id=2, Name="bob"))
    return state


SMO_KINDS = [
    ("ae-tpt", stage1_model, employee_smo, _random_pop),
    ("ae-tpc", stage1_model, customer_smo, _random_pop),
    (
        "ae-tph",
        tph_base_model,
        lambda m: AddEntityTPH.create(m, "Car", "Vehicle", [], "V", "Disc", "Car"),
        _random_pop,
    ),
    (
        "aep",
        flat_base_model,
        lambda m: AddEntityPart(
            name="P", parent="Node",
            new_attributes=(Attribute("v", INT),),
            anchor="Node",
            partitions=(
                Partition.of(("Id", "v"), Comparison("v", ">=", 0), "Pos"),
                Partition.of(("Id", "v"), Comparison("v", "<", 0), "Neg"),
            ),
        ),
        _random_pop,
    ),
    (
        "ap",
        stage3_model,
        lambda m: AddProperty(
            "Employee", Attribute("Title", STRING, nullable=True), "Emp", "Title"
        ),
        _random_pop,
    ),
    ("aa-fk", stage3_model, supports_smo, _random_pop),
    (
        "aa-jt",
        stage3_model,
        lambda m: AddAssociationJT.create(
            m, "Knows", "Customer", "Employee", "KnowsJT",
            {"Customer.Id": "CustId", "Employee.Id": "EmpId"},
            mult1="*", mult2="*",
            table_foreign_keys=[
                ForeignKey(("CustId",), "Client", ("Cid",)),
                ForeignKey(("EmpId",), "Emp", ("Id",)),
            ],
        ),
        _random_pop,
    ),
    ("de", stage3_model, lambda m: DropEntity("Customer"), _no_customers_pop),
    ("da", holds_model, lambda m: DropAssociation("Holds"), _no_holds_pop),
    (
        "rf",
        holds_model,
        lambda m: RefactorAssociationToInheritance("Holds"),
        _no_passports_pop,
    ),
]


@pytest.mark.parametrize(
    "base_factory,smo_factory,pop",
    [(b, s, p) for _, b, s, p in SMO_KINDS],
    ids=[kind for kind, _, _, _ in SMO_KINDS],
)
class TestSmoMigrationEquivalence:
    def test_post_migration_states_identical(self, base_factory, smo_factory, pop):
        """Acceptance: each SMO kind migrates both backends to the same
        schema and the same bytes, and queries agree afterwards."""
        model = base_factory()
        memory, sqlite = dual_sessions(model)
        try:
            state = pop(model)
            memory.save(state)
            sqlite.save(state)
            assert_equivalent(memory, sqlite)
            smo = smo_factory(model)
            memory.evolve(smo)
            sqlite.evolve(smo)
            assert_equivalent(memory, sqlite)
        finally:
            sqlite.backend.close()

    def test_undo_restores_both_to_same_state(self, base_factory, smo_factory, pop):
        model = base_factory()
        memory, sqlite = dual_sessions(model)
        try:
            state = pop(model)
            memory.save(state)
            sqlite.save(state)
            before = memory.backend.snapshot()
            smo = smo_factory(model)
            memory.evolve(smo)
            sqlite.evolve(smo)
            memory.undo()
            sqlite.undo()
            assert memory.backend.snapshot() == before
            assert_equivalent(memory, sqlite)
        finally:
            sqlite.backend.close()


class TestBatchedEvolutionEquivalence:
    def test_paper_example_batch(self):
        """Examples 1-7 as one batch on both engines."""
        model = stage1_model()
        memory, sqlite = dual_sessions(model)
        try:
            populate_both(memory, sqlite, seed=3)
            smos = [employee_smo(model)]
            memory.evolve_many(smos)
            sqlite.evolve_many(smos)
            smos2 = [customer_smo(memory.model), supports_smo(memory.model)]
            memory.evolve_many(smos2)
            sqlite.evolve_many(smos2)
            assert_equivalent(memory, sqlite)
            # and unwind both batches
            memory.undo()
            sqlite.undo()
            memory.undo()
            sqlite.undo()
            assert_equivalent(memory, sqlite)
        finally:
            sqlite.backend.close()

    def test_conditional_queries_agree_after_evolution(self):
        model = stage3_model()
        memory, sqlite = dual_sessions(model)
        try:
            populate_both(memory, sqlite, seed=5)
            smo = AddProperty(
                "Employee", Attribute("Title", STRING, nullable=True), "Emp", "Title"
            )
            memory.evolve(smo)
            sqlite.evolve(smo)
            for query in (
                EntityQuery("Persons", IsOf("Employee")),
                EntityQuery("Persons", Comparison("Id", ">", 1)),
                EntityQuery("Persons", projection=("Id", "Name", "Title")),
            ):
                assert canon(sqlite.query(query)) == canon(memory.query(query))
        finally:
            sqlite.backend.close()
