"""Differential tests for the layered symbolic containment fast path.

The one property everything else rests on: for any containment check, the
symbolic engine (branch subsumption over bitset truth vectors, plus
counterexample replay) must return *exactly* the verdict brute-force state
enumeration returns.  These tests sweep random condition pairs and every
foreign-key check of the real workload mappings through both paths,
verify counterexample validity on failures, and pin down the replay and
budget behaviour of the fast path.
"""

import random

import pytest

from repro.algebra import (
    Col,
    Comparison,
    IsNotNull,
    IsNull,
    IsOf,
    IsOfOnly,
    Not,
    ProjItem,
    Project,
    Select,
    and_,
    or_,
)
from repro.algebra.conditions import TRUE
from repro.algebra.evaluate import ClientContext, evaluate_query
from repro.algebra.queries import SetScan
from repro.budget import WorkBudget
from repro.compiler import compile_mapping
from repro.compiler.validation import _produced_columns
from repro.containment import ValidationCache, check_containment
from repro.edm import ClientSchemaBuilder, INT, STRING, enum_domain
from repro.errors import CompilationBudgetExceeded
from repro.workloads import customer_mapping, hub_rim_mapping
from repro.workloads.paper_example import mapping_stage4


# ---------------------------------------------------------------------------
# Random single-set queries over a small inheritance hierarchy
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def schema():
    return (
        ClientSchemaBuilder()
        .entity(
            "P",
            key=[("Id", INT)],
            attrs=[("Age", INT), ("G", enum_domain("M", "F"))],
        )
        .entity("E", parent="P", attrs=[("Dept", STRING)])
        .entity("C", parent="P", attrs=[("Score", INT)])
        .entity_set("Ps", "P")
        .build()
    )


def _random_atom(rng):
    kind = rng.randrange(8)
    if kind == 0:
        return Comparison("Age", rng.choice(["=", "!=", "<", "<=", ">", ">="]),
                          rng.choice([18, 30, 65]))
    if kind == 1:
        return Comparison("G", rng.choice(["=", "!="]), rng.choice(["M", "F"]))
    if kind == 2:
        return Comparison("Score", rng.choice(["<", ">="]), rng.choice([0, 10]))
    if kind == 3:
        return Comparison("Dept", "=", rng.choice(["HR", "R&D"]))
    if kind == 4:
        return rng.choice([IsNull("Dept"), IsNotNull("Dept")])
    if kind == 5:
        return IsOf(rng.choice(["P", "E", "C"]))
    if kind == 6:
        return IsOfOnly(rng.choice(["P", "E", "C"]))
    return rng.choice([TRUE, IsNotNull("Age"), IsNull("Score")])


def _random_condition(rng, depth=0):
    roll = rng.random()
    if depth >= 3 or roll < 0.5:
        return _random_atom(rng)
    if roll < 0.72:
        return and_(_random_condition(rng, depth + 1), _random_condition(rng, depth + 1))
    if roll < 0.92:
        return or_(_random_condition(rng, depth + 1), _random_condition(rng, depth + 1))
    return Not(_random_condition(rng, depth + 1))


def _key_query(condition):
    return Project(
        Select(SetScan("Ps"), condition), (ProjItem("Id", Col("Id")),)
    )


def _assert_counterexample_valid(q1, q2, result):
    """The reported failing state must actually exhibit the missing row."""
    context = ClientContext(result.counterexample)
    rows1 = [tuple(sorted(row.items())) for row in evaluate_query(q1, context)]
    rows2 = {tuple(sorted(row.items())) for row in evaluate_query(q2, context)}
    missing = tuple(sorted(result.missing_row.items()))
    assert missing in rows1
    assert missing not in rows2


class TestRandomDifferential:
    @pytest.mark.parametrize("seed", range(40))
    def test_symbolic_agrees_with_enumeration(self, schema, seed):
        rng = random.Random(seed)
        q1 = _key_query(_random_condition(rng))
        q2 = _key_query(_random_condition(rng))
        symbolic = check_containment(q1, q2, schema, symbolic=True)
        brute = check_containment(q1, q2, schema, symbolic=False)
        assert symbolic.holds == brute.holds, (
            f"seed {seed}: symbolic={symbolic.holds} brute={brute.holds}"
        )
        if symbolic.discharged:
            assert symbolic.holds
            assert symbolic.states_checked == 0
        assert symbolic.states_checked <= brute.states_checked
        if not symbolic.holds:
            _assert_counterexample_valid(q1, q2, symbolic)
            _assert_counterexample_valid(q1, q2, brute)

    def test_reflexive_containment_discharges(self, schema):
        rng = random.Random(99)
        for _ in range(10):
            q = _key_query(_random_condition(rng))
            result = check_containment(q, q, schema, symbolic=True)
            assert result.holds
            assert result.discharged
            assert result.states_checked == 0

    def test_weakening_discharges(self, schema):
        """Q with a strictly stronger condition is always contained."""
        strong = _key_query(and_(Comparison("Age", ">", 30), IsOf("E")))
        weak = _key_query(Comparison("Age", ">", 30))
        result = check_containment(strong, weak, schema, symbolic=True)
        assert result.holds and result.discharged
        # ... and the reverse direction genuinely fails, on both paths.
        reverse_sym = check_containment(weak, strong, schema, symbolic=True)
        reverse_brute = check_containment(weak, strong, schema, symbolic=False)
        assert not reverse_sym.holds and not reverse_brute.holds
        _assert_counterexample_valid(weak, strong, reverse_sym)


# ---------------------------------------------------------------------------
# Every foreign-key check of the real workloads, both paths
# ---------------------------------------------------------------------------

def _fk_query_pairs(mapping, views):
    """The (lhs, rhs) containment queries of every non-vacuous FK check,
    built exactly as ``check_foreign_key_preserved`` builds them."""
    pairs = []
    for table_name in mapping.mapped_tables():
        table = mapping.store_schema.table(table_name)
        for index, fk in enumerate(table.foreign_keys):
            update_view = views.update_view(table_name)
            if not set(fk.columns) <= set(_produced_columns(update_view.query)):
                continue
            not_null = and_(*[IsNotNull(column) for column in fk.columns])
            lhs = Project(
                Select(update_view.query, not_null),
                tuple(
                    ProjItem(gamma, Col(beta))
                    for beta, gamma in zip(fk.columns, fk.ref_columns)
                ),
            )
            rhs = Project(
                views.update_view(fk.ref_table).query,
                tuple(ProjItem(gamma, Col(gamma)) for gamma in fk.ref_columns),
            )
            pairs.append((f"{table_name}[{index}]", lhs, rhs))
    return pairs


WORKLOADS = {
    "figure1": lambda: mapping_stage4(),
    "hub_rim_tph": lambda: hub_rim_mapping(2, 2, "TPH"),
    "hub_rim_tpt": lambda: hub_rim_mapping(2, 2, "TPT"),
    "customer": lambda: customer_mapping(scale=0.07),
}


class TestWorkloadDifferential:
    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    def test_every_fk_check_agrees(self, workload):
        mapping = WORKLOADS[workload]()
        views = compile_mapping(mapping, validate=False).views
        pairs = _fk_query_pairs(mapping, views)
        assert pairs, f"workload {workload} has no FK containment checks"
        symbolic_states = 0
        brute_states = 0
        discharged = 0
        for name, lhs, rhs in pairs:
            symbolic = check_containment(lhs, rhs, mapping.client_schema,
                                         symbolic=True)
            brute = check_containment(lhs, rhs, mapping.client_schema,
                                      symbolic=False)
            assert symbolic.holds == brute.holds, f"{workload}:{name}"
            assert symbolic.states_checked <= brute.states_checked, (
                f"{workload}:{name}"
            )
            symbolic_states += symbolic.states_checked
            brute_states += brute.states_checked
            discharged += int(symbolic.discharged)
        if workload in ("hub_rim_tpt", "customer"):
            # These carry intra-hierarchy FKs whose update views flatten to
            # select/project branches, which the symbolic layer settles
            # outright; enumeration work strictly shrinks.  (TPH and the
            # figure-1 mapping route every FK through joins, where the
            # engine must fall back to the enumerator with identical work.)
            assert discharged > 0, f"{workload}: no symbolic discharges"
            assert symbolic_states < brute_states, f"{workload}"


# ---------------------------------------------------------------------------
# Counterexample replay and budget behaviour of the fast path
# ---------------------------------------------------------------------------

class TestReplayAndBudget:
    def test_replay_fails_fast_after_rollback(self, schema):
        weak = _key_query(TRUE)
        strong = _key_query(Comparison("Age", ">", 30))
        cache = ValidationCache()

        transaction = cache.begin_transaction()
        first = check_containment(weak, strong, schema, cache=cache)
        assert not first.holds and first.replayed == 0
        assert cache.counterexample_count() >= 1
        # A rollback (aborted SMO) evicts the memoised verdict but keeps
        # the failing state, so the retry replays it in O(1) states.
        cache.rollback(transaction)
        second = check_containment(weak, strong, schema, cache=cache)
        assert not second.holds
        assert second.replayed >= 1
        assert second.states_checked <= first.states_checked
        _assert_counterexample_valid(weak, strong, second)

    def test_recent_pool_seeds_other_checks(self, schema):
        """A state that broke one check is screened first by sibling checks."""
        cache = ValidationCache()
        q_all = _key_query(TRUE)
        first = check_containment(
            q_all, _key_query(Comparison("Age", ">", 30)), schema, cache=cache
        )
        assert not first.holds
        second = check_containment(
            q_all, _key_query(Comparison("Age", ">", 65)), schema, cache=cache
        )
        assert not second.holds
        assert second.replayed >= 1

    def test_symbolic_path_respects_budget(self, schema):
        rng = random.Random(7)
        q1 = _key_query(_random_condition(rng))
        q2 = _key_query(_random_condition(rng))
        with pytest.raises(CompilationBudgetExceeded):
            check_containment(
                q1, q2, schema, budget=WorkBudget(max_steps=3), symbolic=True
            )

    def test_symbolic_flag_splits_the_cache_key(self, schema):
        cache = ValidationCache()
        q = _key_query(Comparison("Age", ">", 18))
        check_containment(q, q, schema, cache=cache, symbolic=True)
        misses = cache.misses
        check_containment(q, q, schema, cache=cache, symbolic=False)
        assert cache.misses == misses + 1  # not served from the symbolic entry
        check_containment(q, q, schema, cache=cache, symbolic=True)
        assert cache.misses == misses + 1  # …but the symbolic entry is warm
