"""Compiler fuzzing: random mappings × random states × both compilers.

The strongest correctness sweep in the suite: for seeded random
SMO-expressible mappings, (1) the full compiler validates and its views
roundtrip random states, (2) the view optimizer preserves semantics,
(3) the reconstruction replay is equivalent to the original.
"""

import pytest

from repro.compiler import compile_mapping, optimize_views
from repro.mapping import check_roundtrip
from repro.mapping.equivalence import compare_views
from repro.modef import verify_reconstruction
from repro.stategen import random_client_state
from repro.workloads.randomgen import random_mapping

SEEDS = list(range(10))


@pytest.mark.parametrize("seed", SEEDS)
def test_random_mapping_compiles_and_roundtrips(seed):
    mapping = random_mapping(seed=seed)
    result = compile_mapping(mapping)
    assert result.report is not None
    for state_seed in range(3):
        state = random_client_state(
            mapping.client_schema, seed=state_seed, entities_per_set=4
        )
        report = check_roundtrip(result.views, state, mapping.store_schema)
        assert report.ok, f"mapping seed {seed}, state seed {state_seed}: {report}"


@pytest.mark.parametrize("seed", SEEDS[:5])
def test_random_mapping_optimizer_preserves_semantics(seed):
    mapping = random_mapping(seed=seed)
    views = compile_mapping(mapping).views
    optimized = optimize_views(mapping, views)
    comparison = compare_views(mapping, views, optimized)
    assert comparison.equivalent, f"seed {seed}: {comparison}"


@pytest.mark.parametrize("seed", SEEDS[:5])
def test_random_mapping_reconstruction(seed):
    mapping = random_mapping(seed=seed)
    verify_reconstruction(mapping)


def test_generator_determinism():
    a = random_mapping(seed=3)
    b = random_mapping(seed=3)
    assert [str(f) for f in a.fragments] == [str(f) for f in b.fragments]


def test_generator_variety():
    styles = set()
    for seed in range(12):
        mapping = random_mapping(seed=seed)
        for fragment in mapping.entity_fragments():
            if "D = " in str(fragment.store_condition):
                styles.add("TPH")
        if any(f.is_association and str(f.store_condition) == "TRUE"
               for f in mapping.fragments):
            styles.add("JT")
        if any(f.is_association and "IS NOT NULL" in str(f.store_condition)
               for f in mapping.fragments):
            styles.add("FK")
    assert {"TPH", "JT", "FK"} <= styles
