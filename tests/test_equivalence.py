"""Tests: the Section 6 claim — incremental views are equivalent to full
compilation's views (semantically; shapes may differ)."""

import pytest

from repro.compiler import compile_mapping
from repro.mapping.equivalence import compare_views, structural_sizes


class TestFigure1Equivalence:
    def test_incremental_equals_full(self, incrementally_evolved):
        full = compile_mapping(incrementally_evolved.mapping.clone())
        comparison = compare_views(
            incrementally_evolved.mapping,
            incrementally_evolved.views,
            full.views,
        )
        assert comparison.equivalent, str(comparison)
        assert comparison.states_checked > 0

    def test_structural_similarity_reported(self, incrementally_evolved):
        full = compile_mapping(incrementally_evolved.mapping.clone())
        sizes = structural_sizes(incrementally_evolved.views, full.views)
        assert "query:Person" in sizes
        # both shapes are small multiples of each other
        for name, (a, b) in sizes.items():
            assert a > 0 and b > 0

    def test_mismatch_detected(self, incrementally_evolved, stage4_compiled):
        """Deliberately broken views are flagged with a counterexample."""
        broken = stage4_compiled.views.clone()
        broken.drop_update_view("Emp")
        comparison = compare_views(
            stage4_compiled.mapping, stage4_compiled.views, broken
        )
        assert not comparison.equivalent
        assert comparison.counterexample is not None
        assert "differently" in str(comparison) or "failed" in str(comparison)


class TestWorkloadEquivalence:
    @pytest.mark.parametrize("style", ["TPH", "TPT"])
    def test_hub_rim_smo_vs_full(self, style):
        """Apply an SMO to a hub-rim model; the evolved incremental views
        must be equivalent to full-compiling the evolved mapping."""
        from repro.bench.smo_suite import ae_tpt
        from repro.incremental import CompiledModel, IncrementalCompiler
        from repro.workloads.hub_rim import hub_rim_mapping

        mapping = hub_rim_mapping(2, 1, style)
        model = CompiledModel(mapping, compile_mapping(mapping).views)
        result = IncrementalCompiler().apply(model, ae_tpt("Hub2")(model))
        evolved = result.model
        full = compile_mapping(evolved.mapping.clone())
        comparison = compare_views(evolved.mapping, evolved.views, full.views)
        assert comparison.equivalent, str(comparison)

    def test_chain_smo_vs_full(self):
        from repro.bench.smo_suite import aa_fk
        from repro.incremental import CompiledModel, IncrementalCompiler
        from repro.workloads.chain import chain_mapping, entity_name

        mapping = chain_mapping(6)
        model = CompiledModel(mapping, compile_mapping(mapping).views)
        result = IncrementalCompiler().apply(
            model, aa_fk(entity_name(2), entity_name(5))(model)
        )
        evolved = result.model
        full = compile_mapping(evolved.mapping.clone())
        comparison = compare_views(evolved.mapping, evolved.views, full.views)
        assert comparison.equivalent, str(comparison)
