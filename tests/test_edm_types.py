"""Unit tests: domains and attributes (repro.edm.types)."""

import pytest

from repro.edm.types import (
    Attribute,
    BOOL,
    Domain,
    INT,
    STRING,
    enum_domain,
)
from repro.errors import SchemaError


class TestDomain:
    def test_unknown_base_type_rejected(self):
        with pytest.raises(SchemaError):
            Domain("float128")

    def test_empty_restriction_rejected(self):
        with pytest.raises(SchemaError):
            Domain("string", frozenset())

    def test_unrestricted_contains_values_of_base(self):
        assert INT.contains(42)
        assert not INT.contains("42")
        assert STRING.contains("x")
        assert not STRING.contains(1)

    def test_none_is_never_contained(self):
        assert not INT.contains(None)
        assert not enum_domain("a").contains(None)

    def test_bool_domain(self):
        assert BOOL.contains(True)
        assert not BOOL.contains("True")

    def test_enum_restriction(self):
        gender = enum_domain("M", "F")
        assert gender.contains("M")
        assert not gender.contains("X")

    def test_subdomain_reflexive(self):
        assert INT.is_subdomain_of(INT)
        assert enum_domain("M", "F").is_subdomain_of(enum_domain("M", "F"))

    def test_enum_is_subdomain_of_unrestricted(self):
        assert enum_domain("M", "F").is_subdomain_of(STRING)

    def test_unrestricted_not_subdomain_of_enum(self):
        assert not STRING.is_subdomain_of(enum_domain("M", "F"))

    def test_enum_subset(self):
        assert enum_domain("M").is_subdomain_of(enum_domain("M", "F"))
        assert not enum_domain("M", "X").is_subdomain_of(enum_domain("M", "F"))

    def test_different_bases_never_subdomains(self):
        assert not INT.is_subdomain_of(STRING)

    def test_sample_values_within_domain(self):
        for domain in (INT, STRING, BOOL, enum_domain(1, 2, base="int")):
            for value in domain.sample_values():
                assert domain.contains(value)

    def test_str_rendering(self):
        assert str(INT) == "int"
        assert "M" in str(enum_domain("M", "F"))


class TestAttribute:
    def test_valid_names(self):
        Attribute("Name")
        Attribute("a_b_c", INT)

    def test_invalid_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("")
        with pytest.raises(SchemaError):
            Attribute("has space")

    def test_defaults(self):
        attribute = Attribute("Name")
        assert attribute.domain == STRING
        assert not attribute.nullable

    def test_nullable_rendering(self):
        assert str(Attribute("x", INT, True)).endswith("?")
