"""The multi-tenant session service and its HTTP facade.

In-process tests drive :class:`SessionService` directly; the HTTP tests
run a real ``ThreadingHTTPServer`` on an ephemeral port and exercise the
wire protocol end to end, including concurrent queries racing an online
evolution.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.compiler import compile_mapping
from repro.incremental import CompiledModel
from repro.msl import client_schema_to_json, save_model
from repro.service import SessionService, UnknownTenant
from repro.service.http import make_server
from repro.workloads.paper_example import mapping_stage1, mapping_stage2


@pytest.fixture(scope="module")
def stage1_document():
    mapping = mapping_stage1()
    model = CompiledModel(mapping, compile_mapping(mapping).views)
    return save_model(model)


@pytest.fixture(scope="module")
def stage2_target():
    return {
        "clientSchema": client_schema_to_json(
            mapping_stage2().client_schema
        )
    }


def _ann():
    return {
        "merge": True,
        "state": {
            "entities": {
                "Persons": [
                    {"type": "Person", "values": {"Id": 1, "Name": "ann"}}
                ]
            }
        },
    }


class TestSessionService:
    def test_tenant_lifecycle(self, stage1_document):
        service = SessionService(default_backend="memory")
        assert service.tenants() == []
        created = service.create_tenant("acme", stage1_document)
        assert created["backend"] == "memory"
        assert service.tenants() == ["acme"]
        dropped = service.drop_tenant("acme")
        assert dropped["dropped"] is True
        with pytest.raises(UnknownTenant):
            service.query("acme", {"set": "Persons"})
        service.close()

    def test_tenants_are_isolated(self, stage1_document, stage2_target):
        service = SessionService()
        service.create_tenant("a", stage1_document)
        service.create_tenant("b", stage1_document)
        service.save("a", _ann())
        evolved = service.evolve("b", {"target": stage2_target})
        assert evolved["applied"]

        a = service.query("a", {"set": "Persons"})
        b = service.query("b", {"set": "Persons"})
        assert a["count"] == 1
        assert b["count"] == 0
        # tenant B moved to a different model; A's fingerprint is intact
        assert a["fingerprint"] != b["fingerprint"]
        stats_a = service.stats("a")
        assert stats_a["epoch"]["epochs_published"] == 2  # create + save
        service.close()

    def test_save_query_evolve_undo_roundtrip(
        self, stage1_document, stage2_target
    ):
        service = SessionService()
        service.create_tenant("t", stage1_document)
        base_fp = service.save("t", _ann())["fingerprint"]

        evolved = service.evolve("t", {"target": stage2_target})
        assert evolved["fingerprint"] != base_fp
        assert evolved["delta_ops"] > 0
        rows = service.query("t", {"set": "Persons", "where": "Id=1"})
        assert rows["rows"] == [
            {"type": "Person", "values": {"Id": 1, "Name": "ann"}}
        ]
        assert rows["fingerprint"] == evolved["fingerprint"]

        undone = service.undo("t")
        assert undone["fingerprint"] == base_fp
        assert service.query("t", {"set": "Persons"})["count"] == 1
        service.close()

    def test_load_returns_wire_state(self, stage1_document):
        service = SessionService()
        service.create_tenant("t", stage1_document)
        service.save("t", _ann())
        loaded = service.load("t")
        assert loaded["state"]["entities"]["Persons"] == [
            {"type": "Person", "values": {"Id": 1, "Name": "ann"}}
        ]
        service.close()

    def test_sqlite_tenant_with_pool(self, stage1_document):
        service = SessionService(default_backend="sqlite", pool_size=2)
        created = service.create_tenant("t", stage1_document)
        assert created["backend"] == "sqlite"
        service.save("t", _ann())
        rows = service.query("t", {"set": "Persons", "project": ["Name"]})
        assert rows["rows"] == [{"Name": "ann"}]
        stats = service.stats("t")
        assert stats["backend"] == "sqlite"
        assert stats["statements"] is not None
        service.close()

    def test_db_dir_creates_per_tenant_files(self, stage1_document, tmp_path):
        from repro.errors import SchemaError

        db_dir = tmp_path / "dbs"  # does not exist yet
        service = SessionService(
            default_backend="sqlite", db_dir=str(db_dir), pool_size=2
        )
        service.create_tenant("acme", stage1_document)
        service.save("acme", _ann())
        assert (db_dir / "acme.db").exists()
        assert service.query("acme", {"set": "Persons"})["count"] == 1
        with pytest.raises(SchemaError):
            service.create_tenant("../evil", stage1_document)
        service.close()

    def test_replacing_a_tenant_closes_the_old_session(self, stage1_document):
        service = SessionService(default_backend="sqlite")
        service.create_tenant("t", stage1_document)
        old_backend = service.session("t").backend
        service.create_tenant("t", stage1_document)
        assert old_backend.closed
        assert not service.session("t").backend.closed
        service.close()


class _Client:
    def __init__(self, host: str, port: int) -> None:
        self.base = f"http://{host}:{port}"

    def call(self, method: str, path: str, payload=None):
        data = (
            json.dumps(payload).encode("utf-8")
            if payload is not None
            else None
        )
        request = urllib.request.Request(
            self.base + path, data=data, method=method
        )
        request.add_header("Content-Type", "application/json")
        try:
            with urllib.request.urlopen(request) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())


@pytest.fixture
def http_service():
    service = SessionService()
    server = make_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield service, _Client(host, port)
    finally:
        server.shutdown()
        server.server_close()
        service.close()


class TestHttpFacade:
    def test_health_and_routing(self, http_service, stage1_document):
        _, client = http_service
        status, body = client.call("GET", "/health")
        assert status == 200 and body["ok"] is True
        status, _ = client.call("GET", "/nope")
        assert status == 404
        status, _ = client.call("POST", "/tenants/ghost/query", {"set": "X"})
        assert status == 404

    def test_full_roundtrip_over_http(
        self, http_service, stage1_document, stage2_target
    ):
        _, client = http_service
        status, created = client.call(
            "PUT", "/tenants/acme", {"model": stage1_document}
        )
        assert status == 200
        client.call("POST", "/tenants/acme/save", _ann())
        status, rows = client.call(
            "POST", "/tenants/acme/query", {"set": "Persons", "where": "Id=1"}
        )
        assert status == 200 and rows["count"] == 1
        status, evolved = client.call(
            "POST", "/tenants/acme/evolve", {"target": stage2_target}
        )
        assert status == 200
        assert evolved["fingerprint"] != created["fingerprint"]
        status, undone = client.call("POST", "/tenants/acme/undo")
        assert status == 200
        assert undone["fingerprint"] == created["fingerprint"]
        status, stats = client.call("GET", "/tenants/acme/stats")
        assert status == 200
        assert stats["epoch"]["torn_reads_served"] == 0
        status, dropped = client.call("DELETE", "/tenants/acme")
        assert status == 200 and dropped["dropped"] is True

    def test_malformed_payloads_are_400(self, http_service, stage1_document):
        _, client = http_service
        client.call("PUT", "/tenants/t", {"model": stage1_document})
        status, body = client.call("POST", "/tenants/t/query", {})
        assert status == 400 and "set" in body["error"]
        status, body = client.call(
            "POST", "/tenants/t/query", {"set": "Persons", "where": "???"}
        )
        assert status == 400
        status, body = client.call("POST", "/tenants/t/save", {})
        assert status == 400
        status, body = client.call("POST", "/tenants/t/evolve", {})
        assert status == 400

    def test_concurrent_http_queries_during_evolution(
        self, http_service, stage1_document, stage2_target
    ):
        """Acceptance slice: HTTP readers race an online evolve/undo loop;
        every response must be consistent with a published fingerprint."""
        service, client = http_service
        client.call("PUT", "/tenants/t", {"model": stage1_document})
        client.call("POST", "/tenants/t/save", _ann())
        fingerprints = set()
        status, first = client.call("POST", "/tenants/t/query", {"set": "Persons"})
        fingerprints.add(first["fingerprint"])

        errors = []
        stop = threading.Event()

        def reader() -> None:
            while not stop.is_set():
                status, body = client.call(
                    "POST", "/tenants/t/query", {"set": "Persons"}
                )
                if status != 200 or body["count"] != 1:
                    errors.append((status, body))
                    return

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(5):
                status, evolved = client.call(
                    "POST", "/tenants/t/evolve", {"target": stage2_target}
                )
                assert status == 200
                fingerprints.add(evolved["fingerprint"])
                status, _ = client.call("POST", "/tenants/t/undo")
                assert status == 200
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert not errors, errors[0]
        stats = service.stats("t")
        assert stats["epoch"]["torn_reads_served"] == 0
        assert len(fingerprints) == 2
