"""Tests: the Section 6 open problem — regenerate a mapping as SMOs.

For SMO-expressible mappings, `reconstruct` must produce a base + SMO
sequence whose incremental replay is semantically equivalent to a full
compilation of the original mapping.
"""

import pytest

from repro.modef import reconstruct, replay, verify_reconstruction
from repro.workloads import chain_mapping, customer_mapping, hub_rim_mapping
from repro.workloads.paper_example import mapping_stage4


class TestReconstruction:
    def test_figure1_recovers_the_example_sequence(self):
        mapping = mapping_stage4()
        base, smos = reconstruct(mapping)
        kinds = [type(s).__name__ for s in smos]
        assert kinds == ["AddEntity", "AddEntity", "AddAssociationFK"]
        names = [getattr(s, "name", "") for s in smos]
        assert names == ["Employee", "Customer", "Supports"]
        # Customer classified TPC (α = att(E) ⇒ anchor None)
        assert smos[1].anchor is None
        # Employee classified TPT-style (anchored at Person)
        assert smos[0].anchor == "Person"
        verify_reconstruction(mapping)

    def test_chain(self):
        verify_reconstruction(chain_mapping(6))

    @pytest.mark.parametrize("style", ["TPH", "TPT"])
    def test_hub_rim(self, style):
        verify_reconstruction(hub_rim_mapping(2, 2, style))

    def test_customer(self):
        verify_reconstruction(customer_mapping(scale=0.07))

    def test_tph_types_become_add_entity_tph(self):
        mapping = hub_rim_mapping(2, 1, "TPH")
        _, smos = reconstruct(mapping)
        from repro.incremental import AddEntityTPH

        tph_smos = [s for s in smos if isinstance(s, AddEntityTPH)]
        assert len(tph_smos) == 3  # Hub2, Rim1_1, Rim2_1

    def test_replayed_model_is_usable(self):
        mapping = mapping_stage4()
        base, smos = reconstruct(mapping)
        model = replay(base, smos)
        from repro.mapping import check_roundtrip
        from repro.stategen import random_client_state

        state = random_client_state(model.client_schema, seed=3)
        assert check_roundtrip(model.views, state, model.store_schema).ok


class TestOrderSensitivity:
    def test_entity_order_constraints(self):
        """Section 6 asks whether SMO order matters: parents must precede
        children and associations their endpoints, but *within* those
        constraints, permutations commute (same semantics)."""
        mapping = mapping_stage4()
        base, smos = reconstruct(mapping)
        # swap Employee and Customer additions (independent siblings)
        reordered = [smos[1], smos[0], smos[2]]
        model_a = replay(base, smos)
        model_b = replay(base.clone(), reordered)
        from repro.mapping.equivalence import compare_views

        comparison = compare_views(model_a.mapping, model_a.views, model_b.views)
        assert comparison.equivalent, str(comparison)

    def test_invalid_order_fails_preconditions(self):
        """An association before its endpoint type exists must be refused
        (one answer to 'do some sequences complete while others do not?')."""
        mapping = mapping_stage4()
        base, smos = reconstruct(mapping)
        bad_order = [smos[2], smos[0], smos[1]]  # Supports first
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            replay(base, bad_order)
