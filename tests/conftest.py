"""Shared fixtures: the paper's running example at each evolution stage."""

from __future__ import annotations

import pytest

from repro.compiler import compile_mapping
from repro.edm import Attribute, ClientState, Entity, INT, STRING
from repro.incremental import (
    AddAssociationFK,
    AddEntity,
    CompiledModel,
    IncrementalCompiler,
)
from repro.relational import ForeignKey
from repro.workloads.paper_example import (
    mapping_stage1,
    mapping_stage2,
    mapping_stage3,
    mapping_stage4,
)


@pytest.fixture
def stage1_mapping():
    return mapping_stage1()


@pytest.fixture
def stage2_mapping():
    return mapping_stage2()


@pytest.fixture
def stage3_mapping():
    return mapping_stage3()


@pytest.fixture
def stage4_mapping():
    return mapping_stage4()


@pytest.fixture
def stage4_compiled(stage4_mapping):
    """Fully compiled Figure 1 model."""
    result = compile_mapping(stage4_mapping)
    return CompiledModel(stage4_mapping, result.views)


@pytest.fixture
def stage1_compiled(stage1_mapping):
    result = compile_mapping(stage1_mapping)
    return CompiledModel(stage1_mapping, result.views)


def employee_smo(model: CompiledModel) -> AddEntity:
    """Example 1's SMO: AddEntity(Employee, Person, (Id, Department),
    Person, Emp, f_E)."""
    return AddEntity.tpt(
        model,
        "Employee",
        "Person",
        [Attribute("Department", STRING)],
        "Emp",
        attr_map={"Id": "Id", "Department": "Dept"},
        table_foreign_keys=[ForeignKey(("Id",), "HR", ("Id",))],
    )


def customer_smo(model: CompiledModel) -> AddEntity:
    """Example 4's SMO: AddEntity(Customer, Person, (Id, Name, CredScore,
    BillAddr), NIL, Client, f_C)."""
    return AddEntity.tpc(
        model,
        "Customer",
        "Person",
        [Attribute("CredScore", INT), Attribute("BillAddr", STRING)],
        "Client",
        attr_map={"Id": "Cid", "Name": "Name", "CredScore": "Score", "BillAddr": "Addr"},
    )


def supports_smo(model: CompiledModel) -> AddAssociationFK:
    """Example 7's SMO: AddAssocFK(Supports, Customer, Employee,
    [* — 0..1], Client, f_S)."""
    return AddAssociationFK.create(
        model,
        "Supports",
        "Customer",
        "Employee",
        "Client",
        {"Customer.Id": "Cid", "Employee.Id": "Eid"},
        mult1="*",
        mult2="0..1",
        new_foreign_keys=[ForeignKey(("Eid",), "Emp", ("Id",))],
    )


@pytest.fixture
def incrementally_evolved(stage1_compiled):
    """Stage-1 model evolved through Examples 1-7 by the incremental
    compiler: AddEntity(Employee) → AddEntity(Customer) → AddAssocFK."""
    compiler = IncrementalCompiler()
    model = stage1_compiled
    model = compiler.apply(model, employee_smo(model)).model
    model = compiler.apply(model, customer_smo(model)).model
    model = compiler.apply(model, supports_smo(model)).model
    return model


def figure1_state(schema) -> ClientState:
    """A representative client state over the Figure 1 schema."""
    state = ClientState(schema)
    state.add_entity("Persons", Entity.of("Person", Id=1, Name="ann"))
    state.add_entity(
        "Persons", Entity.of("Employee", Id=2, Name="bob", Department="HR")
    )
    state.add_entity(
        "Persons",
        Entity.of("Customer", Id=3, Name="cid", CredScore=700, BillAddr="x"),
    )
    state.add_entity(
        "Persons",
        Entity.of("Customer", Id=4, Name="dee", CredScore=650, BillAddr="y"),
    )
    state.add_association("Supports", (3,), (2,))
    return state
