"""Unit tests: view-unfolding internals and remaining edge paths."""

import pytest

from repro.algebra import (
    Col,
    Comparison,
    Const,
    FALSE,
    IsNull,
    IsNotNull,
    IsOf,
    Not,
    TRUE,
    and_,
)
from repro.algebra.constructors import EntityCtor, IfCtor
from repro.query.unfold import _ctor_branches, _specialize_condition
from repro.workloads.paper_example import client_schema_stage4


def _leaf(name):
    return EntityCtor.identity(name, ["Id"])


class TestCtorBranches:
    def test_single_leaf(self):
        branches = _ctor_branches(_leaf("A"))
        assert len(branches) == 1
        assert branches[0][0] == TRUE

    def test_chain_first_match_semantics(self):
        chain = IfCtor(
            Comparison("t1", "=", True),
            _leaf("A"),
            IfCtor(Comparison("t2", "=", True), _leaf("B"), _leaf("C")),
        )
        branches = _ctor_branches(chain)
        assert [leaf.type_name for _, leaf in branches] == ["A", "B", "C"]
        # B's path negates A's condition; C's negates both
        assert "NOT" in str(branches[1][0])
        assert str(branches[2][0]).count("NOT") == 2

    def test_nested_then_side(self):
        inner = IfCtor(Comparison("u", "=", True), _leaf("X"), _leaf("Y"))
        chain = IfCtor(Comparison("t", "=", True), inner, _leaf("Z"))
        branches = _ctor_branches(chain)
        assert [leaf.type_name for _, leaf in branches] == ["X", "Y", "Z"]


class TestSpecializeCondition:
    @pytest.fixture
    def schema(self):
        return client_schema_stage4()

    def test_type_atoms_fold(self, schema):
        assignments = {"Id": Col("Id")}
        c = _specialize_condition(IsOf("Person"), schema, "Employee", assignments)
        assert c is TRUE
        c = _specialize_condition(IsOf("Customer"), schema, "Employee", assignments)
        assert c is FALSE

    def test_foreign_attribute_folds_false(self, schema):
        c = _specialize_condition(
            Comparison("CredScore", ">", 1), schema, "Employee", {"Id": Col("Id")}
        )
        assert c is FALSE

    def test_pinned_constant_folds(self, schema):
        assignments = {"Id": Col("Id"), "Name": Const("fixed")}
        c = _specialize_condition(
            Comparison("Name", "=", "fixed"), schema, "Person", assignments
        )
        assert c is TRUE
        c = _specialize_condition(
            Comparison("Name", "=", "other"), schema, "Person", assignments
        )
        assert c is FALSE

    def test_pinned_null_tests(self, schema):
        assignments = {"Id": Col("Id"), "Name": Const(None)}
        assert _specialize_condition(IsNull("Name"), schema, "Person", assignments) is TRUE
        assert (
            _specialize_condition(IsNotNull("Name"), schema, "Person", assignments)
            is FALSE
        )

    def test_column_renaming(self, schema):
        assignments = {"Id": Col("Id"), "Name": Col("HRName")}
        c = _specialize_condition(
            Comparison("Name", "=", "x"), schema, "Person", assignments
        )
        assert c == Comparison("HRName", "=", "x")

    def test_negation_of_foreign_attribute(self, schema):
        """NOT over a missing-attribute atom: atom folds FALSE, NOT gives
        TRUE — matching the client-side missing-attribute semantics."""
        c = _specialize_condition(
            Not(Comparison("CredScore", ">", 1)), schema, "Employee",
            {"Id": Col("Id")},
        )
        assert c is TRUE

    def test_compound_simplification(self, schema):
        c = _specialize_condition(
            and_(IsOf("Person"), Comparison("Department", "=", "hr")),
            schema,
            "Employee",
            {"Id": Col("Id"), "Department": Col("Dept")},
        )
        assert c == Comparison("Dept", "=", "hr")


class TestChecksHelpers:
    def test_fk_check_vacuous_when_columns_unproduced(self, stage4_compiled):
        """β columns the update view never produces ⇒ 0 checks run."""
        from repro.incremental.checks import check_fk_preserved
        from repro.relational import ForeignKey

        from repro.mapping.views import UpdateView
        from repro.algebra import Project, ProjItem, Col, SetScan

        slim = stage4_compiled.clone()
        view = slim.views.update_view("HR")
        reduced = UpdateView(
            "HR",
            Project(SetScan("Persons"), (ProjItem("Id", Col("Id")),)),
            view.constructor,
        )
        slim.views.set_update_view(reduced)
        count = check_fk_preserved(
            slim, "HR", ForeignKey(("Name",), "Emp", ("Id",)), None
        )
        assert count == 0
