"""Unit tests: full-validation internals (store cells, FK checks,
roundtrip spot-check scoping) and viewgen helpers."""

import pytest

from repro.algebra import Comparison, IsNotNull, IsOf, TRUE
from repro.compiler import (
    SetAnalysis,
    check_all_foreign_keys,
    check_store_cells,
    generate_views,
    roundtrip_spotcheck,
)
from repro.compiler.viewgen import (
    branch_condition,
    build_set_query,
    flag_name,
    fragment_contribution,
    store_condition_pins,
)
from repro.edm import ClientSchemaBuilder, INT, enum_domain
from repro.errors import MappingError, ValidationError
from repro.mapping import Mapping, MappingFragment
from repro.relational import Column, ForeignKey, StoreSchema, Table
from repro.workloads.hub_rim import hub_rim_mapping


class TestStoreCells:
    def test_cell_count_exponential_in_fk_columns(self):
        """The hub-and-rim engine: with M rim types the Big table has M+1
        mutually exclusive discriminator conditions (M+2 regions counting
        "none") and M independent nullable FK conditions — exactly
        (M+2)·2^M achievable cells, doubling per added association."""
        for m in (1, 2, 3):
            mapping = hub_rim_mapping(1, m, "TPH")
            count = check_store_cells(mapping, "Big", {})
            assert count == (m + 2) * 2 ** m

    def test_unachievable_client_cell_rejected(self):
        """A fragment whose store condition can never hold (conflicting
        pins) strands its client cell."""
        schema = (
            ClientSchemaBuilder()
            .entity("P", key=[("Id", INT)])
            .entity_set("Ps", "P")
            .build()
        )
        store = StoreSchema(
            [
                Table(
                    "T",
                    (Column("Id", INT, False),
                     Column("D", enum_domain("a"), False)),
                    ("Id",),
                )
            ]
        )
        mapping = Mapping(
            schema, store,
            [
                MappingFragment(
                    "Ps", False, IsOf("P"), "T",
                    Comparison("D", "=", "zz"),  # outside D's domain {a}
                    (("Id", "Id"),),
                )
            ],
        )
        with pytest.raises(ValidationError) as err:
            check_store_cells(mapping, "T", {})
        assert err.value.check == "store-cells"


class TestForeignKeyChecks:
    def test_all_fks_checked(self, stage4_mapping):
        views = generate_views(stage4_mapping)
        assert check_all_foreign_keys(stage4_mapping, views) == 2

    def test_selected_tables_only(self, stage4_mapping):
        views = generate_views(stage4_mapping)
        assert check_all_foreign_keys(stage4_mapping, views, tables=["HR"]) == 0
        assert check_all_foreign_keys(stage4_mapping, views, tables=["Emp"]) == 1

    def test_fk_into_unmapped_table_rejected(self):
        schema = (
            ClientSchemaBuilder()
            .entity("P", key=[("Id", INT)])
            .entity_set("Ps", "P")
            .build()
        )
        store = StoreSchema(
            [
                Table(
                    "T",
                    (Column("Id", INT, False),),
                    ("Id",),
                    (ForeignKey(("Id",), "Ghost", ("G",)),),
                ),
                Table("Ghost", (Column("G", INT, False),), ("G",)),
            ]
        )
        mapping = Mapping(
            schema, store,
            [MappingFragment("Ps", False, IsOf("P"), "T", TRUE, (("Id", "Id"),))],
        )
        views = generate_views(mapping)
        with pytest.raises(ValidationError) as err:
            check_all_foreign_keys(mapping, views)
        assert err.value.check == "fk-preservation"


class TestRoundtripSpotcheckScoping:
    def test_selected_sets_only(self, stage4_mapping):
        views = generate_views(stage4_mapping)
        states = roundtrip_spotcheck(
            stage4_mapping, views, set_names=["Persons"]
        )
        assert states > 0

    def test_detects_broken_views(self, stage4_mapping):
        views = generate_views(stage4_mapping)
        views.drop_update_view("Emp")
        with pytest.raises(ValidationError) as err:
            roundtrip_spotcheck(stage4_mapping, views)
        assert err.value.check == "roundtrip"


class TestViewgenHelpers:
    def test_fragment_contribution_flags(self, stage4_mapping):
        fragment = stage4_mapping.fragments[1]  # Employee / Emp
        contribution = fragment_contribution(fragment, 1)
        from repro.algebra import Project

        assert isinstance(contribution, Project)
        assert flag_name(1) in contribution.output_names

    def test_build_set_query_joins_on_key(self, stage4_mapping):
        from repro.algebra import FullOuterJoin

        query = build_set_query(stage4_mapping.entity_fragments(), ("Id",))
        assert isinstance(query, FullOuterJoin)
        assert query.on == ("Id",)

    def test_branch_condition_complete(self):
        condition = branch_condition(frozenset({0, 2}), 3)
        rendered = str(condition)
        assert "_from0" in rendered and "_from1" in rendered and "_from2" in rendered
        assert rendered.count("NOT") == 1

    def test_store_condition_pins_equality(self):
        fragment = MappingFragment(
            "Ps", False, IsOf("P"), "T", Comparison("D", "=", "x"), (("Id", "Id"),)
        )
        mapping = None  # pins don't need the mapping for equalities
        pins = store_condition_pins(fragment, mapping)
        assert pins == {"D": "x"}

    def test_store_condition_pins_is_null(self):
        from repro.algebra import IsNull

        fragment = MappingFragment(
            "Ps", False, IsOf("P"), "T", IsNull("D"), (("Id", "Id"),)
        )
        pins = store_condition_pins(fragment, None)
        assert pins == {"D": None}

    def test_uninvertible_condition_raises(self):
        fragment = MappingFragment(
            "Ps", False, IsOf("P"), "T", Comparison("D", ">", 5), (("Id", "Id"),)
        )
        with pytest.raises(MappingError):
            store_condition_pins(fragment, None)

    def test_not_null_on_mapped_column_ok(self):
        fragment = MappingFragment(
            "A", True, TRUE, "T", IsNotNull("fk"),
            (("x.Id", "Id"), ("y.Id", "fk")),
        )
        assert store_condition_pins(fragment, None) == {}


class TestSetAnalysisInternals:
    def test_cells_cached(self, stage4_mapping):
        analysis = SetAnalysis(stage4_mapping, "Persons")
        first = analysis.cells_for_type("Employee")
        second = analysis.cells_for_type("Employee")
        assert first is second

    def test_applicable_fragment_indices(self, stage4_mapping):
        analysis = SetAnalysis(stage4_mapping, "Persons")
        assert analysis.applicable_fragment_indices("Customer") == frozenset({2})
        assert analysis.applicable_fragment_indices("Employee") == frozenset({0, 1})

    def test_covered_attributes(self, stage4_mapping):
        analysis = SetAnalysis(stage4_mapping, "Persons")
        cell = analysis.cells_for_type("Customer")[0]
        coverage = analysis.covered_attributes(cell)
        assert coverage["CredScore"] == "CredScore"
        assert all(v is not None for v in coverage.values())

    def test_pinned_value_detects_constant(self):
        from repro.algebra import and_
        from repro.compiler.analysis import is_unpinned

        schema = (
            ClientSchemaBuilder()
            .entity("P", key=[("Id", INT)],
                    attrs=[("g", enum_domain("M", "F"))])
            .entity_set("Ps", "P")
            .build()
        )
        store = StoreSchema([
            Table("Ms", (Column("Id", INT, False),), ("Id",)),
            Table("Fs", (Column("Id", INT, False),), ("Id",)),
        ])
        mapping = Mapping(
            schema, store,
            [
                MappingFragment("Ps", False,
                                and_(IsOf("P"), Comparison("g", "=", "M")),
                                "Ms", TRUE, (("Id", "Id"),)),
                MappingFragment("Ps", False,
                                and_(IsOf("P"), Comparison("g", "=", "F")),
                                "Fs", TRUE, (("Id", "Id"),)),
            ],
        )
        analysis = SetAnalysis(mapping, "Ps")
        cells = analysis.cells_for_type("P")
        values = {analysis.pinned_value(c, "g") for c in cells}
        assert values == {"M", "F"}
