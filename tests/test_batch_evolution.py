"""Integration tests: batched evolution, the session journal, and undo.

Covers the transactional surface the delta layer gives the session:

* ``evolve_many`` — one batch, one union-neighborhood validation, one
  journal entry; the acceptance criterion that a batch schedules
  *strictly fewer* checks than the same SMOs applied one at a time;
* ``undo`` — inverse-delta model restore plus store-state snapshot;
* abort atomicity — a failing batch leaves model, data, journal *and*
  the session's validation cache exactly as they were.
"""

import pytest

from repro.compiler import compile_mapping
from repro.edm import Attribute, Entity, INT, STRING
from repro.errors import SmoError, ValidationError
from repro.incremental import AddEntity, AddProperty, CompiledModel, DropEntity
from repro.query import EntityQuery
from repro.relational import ForeignKey
from repro.session import OrmSession
from repro.workloads.paper_example import mapping_stage3, mapping_stage4


def stage3_session():
    mapping = mapping_stage3()
    model = CompiledModel(mapping, compile_mapping(mapping).views)
    return OrmSession.create(model)


@pytest.fixture
def session():
    mapping = mapping_stage4()
    model = CompiledModel(mapping, compile_mapping(mapping).views)
    return OrmSession.create(model)


def _populate(session):
    with session.edit() as state:
        state.add_entity("Persons", Entity.of("Person", Id=1, Name="ann"))
        state.add_entity(
            "Persons", Entity.of("Employee", Id=2, Name="bob", Department="hr")
        )


def subtype_smo(model, index):
    """A TPT subtype of Person with its own attribute and fresh table."""
    return AddEntity.tpt(
        model,
        f"Sub{index}",
        "Person",
        [Attribute(f"A{index}", INT)],
        f"Sub{index}T",
        table_foreign_keys=[ForeignKey(("Id",), "HR", ("Id",))],
    )


class TestEvolveMany:
    def test_batch_applies_all_and_journals_once(self, session):
        _populate(session)
        smos = [
            subtype_smo(session.model, 1),
            AddProperty(
                "Employee", Attribute("Title", STRING, nullable=True), "Emp", "Title"
            ),
        ]
        delta = session.evolve_many(smos)
        # pre-existing data untouched (soundness): no rows appear or
        # vanish; the only physical change is NULL-padding the widened rows
        for table_delta in delta.tables.values():
            assert not table_delta.inserts
            assert not table_delta.deletes
        assert session.model.client_schema.has_entity_type("Sub1")
        assert session.model.store_schema.table("Emp").has_column("Title")
        assert len(session.query(EntityQuery("Persons"))) == 2
        # exactly one journal entry for the whole batch
        assert len(session.journal) == 1
        entry = session.journal[-1]
        assert len(entry.smos) == 2
        assert entry.scheduled_checks > 0
        assert not entry.delta.is_empty

    def test_single_evolve_is_journaled_batch_of_one(self, session):
        _populate(session)
        session.evolve(subtype_smo(session.model, 1))
        assert len(session.journal) == 1
        assert session.journal[-1].label.startswith("AE-TPT")

    def test_batch_schedules_strictly_fewer_checks_than_sequential(self):
        """The acceptance criterion: 5 non-overlapping SMOs → one batched
        neighborhood validation does strictly less scheduler work than 5
        sequential ones."""
        sequential = stage3_session()
        for index in range(1, 6):
            sequential.evolve(subtype_smo(sequential.model, index))
        sequential_checks = sum(e.scheduled_checks for e in sequential.journal)

        batched = stage3_session()
        batched.evolve_many([subtype_smo(batched.model, i) for i in range(1, 6)])
        batched_checks = batched.journal[-1].scheduled_checks

        assert len(sequential.journal) == 5
        assert batched_checks > 0
        assert batched_checks < sequential_checks
        # both roads lead to the same model
        assert (
            batched.model.fingerprint() == sequential.model.fingerprint()
        )


class TestUndo:
    def test_undo_restores_model_and_data(self, session):
        _populate(session)
        baseline = session.model.fingerprint()
        rows_before = session.store_state.row_count()

        session.evolve(subtype_smo(session.model, 1))
        with session.edit() as state:
            state.add_entity(
                "Persons", Entity.of("Sub1", Id=7, Name="sue", A1=1)
            )
        assert session.store_state.row_count() > rows_before

        entry = session.undo()
        assert entry.label.startswith("AE-TPT")
        assert session.model.fingerprint() == baseline
        assert session.store_state.row_count() == rows_before
        assert not session.journal
        # the restored session is fully usable
        assert len(session.query(EntityQuery("Persons"))) == 2

    def test_undo_unwinds_a_batch_at_once(self, session):
        _populate(session)
        baseline = session.model.fingerprint()
        session.evolve_many(
            [
                subtype_smo(session.model, 1),
                AddProperty(
                    "Employee", Attribute("Title", STRING, nullable=True),
                    "Emp", "Title",
                ),
            ]
        )
        session.undo()
        assert session.model.fingerprint() == baseline
        assert not session.model.client_schema.has_entity_type("Sub1")

    def test_undo_stack_is_lifo(self, session):
        _populate(session)
        fp0 = session.model.fingerprint()
        session.evolve(subtype_smo(session.model, 1))
        fp1 = session.model.fingerprint()
        session.evolve(subtype_smo(session.model, 2))

        session.undo()
        assert session.model.fingerprint() == fp1
        session.undo()
        assert session.model.fingerprint() == fp0

    def test_undo_empty_journal_raises(self, session):
        with pytest.raises(SmoError, match="journal is empty"):
            session.undo()


class TestAbortAtomicity:
    def test_failed_batch_leaves_session_intact(self, session):
        _populate(session)
        baseline = session.model.fingerprint()
        store_before = session.store_state
        # second SMO aborts: Sub1T is already claimed by the first
        smos = [
            subtype_smo(session.model, 1),
            AddEntity.tpt(
                session.model, "Clash", "Person", [Attribute("B", INT)],
                "Sub1T",
                table_foreign_keys=[ForeignKey(("Id",), "HR", ("Id",))],
            ),
        ]
        with pytest.raises(SmoError):
            session.evolve_many(smos)
        assert session.model.fingerprint() == baseline
        assert session.store_state is store_before
        assert not session.journal

    def test_failed_evolve_purges_candidate_cache_entries(self, session):
        """Satellite regression: a validation abort must not leave cache
        entries fingerprinted against the rejected candidate model."""
        _populate(session)
        # warm the cache against the *current* model
        session.validate()
        entries_before = len(session.validation_cache)
        misses_before = session.cache_stats().misses

        def vip_smo():
            return AddEntity.tpc(
                session.model, "Vip", "Customer",
                [Attribute("Tier", STRING)], "VipT",
            )

        with pytest.raises(ValidationError):
            session.evolve(vip_smo())  # the Figure 6 violation
        # every entry inserted while compiling the rejected model is gone
        assert len(session.validation_cache) == entries_before
        misses_after_first = session.cache_stats().misses
        assert misses_after_first > misses_before  # the attempt did work

        # an identical retry recomputes (nothing poisoned, nothing reused
        # from the rejected candidate) and fails the same way
        with pytest.raises(ValidationError):
            session.evolve(vip_smo())
        assert len(session.validation_cache) == entries_before
        assert session.cache_stats().misses > misses_after_first

        # and the session still accepts a valid evolution afterwards
        session.evolve(subtype_smo(session.model, 9))
        assert session.model.client_schema.has_entity_type("Sub9")

    def test_failed_plan_keeps_journal_and_model(self, session):
        _populate(session)
        baseline = session.model.fingerprint()
        plan = session.plan([DropEntity("Person")])
        assert not plan.ok
        assert session.model.fingerprint() == baseline
        assert not session.journal

    def test_plan_then_evolve_many_roundtrip(self, session):
        """The documented workflow: inspect the plan, then commit it."""
        _populate(session)
        smos = [subtype_smo(session.model, 1)]
        plan = session.plan(smos)
        assert plan.ok
        assert session.model.fingerprint() != 0  # still a live model
        session.evolve_many(smos)
        assert set(session.journal[-1].check_names) == set(plan.check_names)
