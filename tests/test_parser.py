"""Unit tests: the Entity-SQL fragment parser (Figure 5 syntax)."""

import pytest

from repro.algebra import Comparison, IsNotNull, IsOf, IsOfOnly, Or, TRUE
from repro.algebra.parser import parse_fragment, parse_fragments
from repro.compiler import compile_mapping
from repro.errors import MappingError
from repro.mapping import Mapping
from repro.workloads.paper_example import client_schema_stage4, store_schema

FIGURE5_FIRST = """
SELECT p.Id, p.Name
FROM Persons p
WHERE p IS OF Person
=
SELECT Id, Name
FROM HR
"""

FIGURE5_SECOND = """
SELECT e.Id, e.Department
FROM Persons e
WHERE e IS OF Employee
=
SELECT Id, Dept
FROM Emp
"""


class TestParseFragment:
    def test_figure5_first_fragment(self):
        fragment = parse_fragment(FIGURE5_FIRST)
        assert fragment.client_source == "Persons"
        assert fragment.client_condition == IsOf("Person")
        assert fragment.store_table == "HR"
        assert fragment.store_condition == TRUE
        assert fragment.attribute_map == (("Id", "Id"), ("Name", "Name"))

    def test_figure5_second_fragment_renames(self):
        fragment = parse_fragment(FIGURE5_SECOND)
        assert fragment.attribute_map == (("Id", "Id"), ("Department", "Dept"))

    def test_only_syntax(self):
        fragment = parse_fragment(
            "SELECT p.Id FROM Persons p WHERE p IS OF (ONLY Person) = "
            "SELECT Id FROM HR"
        )
        assert fragment.client_condition == IsOfOnly("Person")

    def test_or_and_combination(self):
        fragment = parse_fragment(
            "SELECT p.Id FROM Persons p "
            "WHERE p IS OF (ONLY Person) OR p IS OF Employee AND p.Id > 3 = "
            "SELECT Id FROM HR"
        )
        assert isinstance(fragment.client_condition, Or)

    def test_parenthesised_condition(self):
        fragment = parse_fragment(
            "SELECT p.Id FROM Persons p WHERE (p IS OF Person) = "
            "SELECT Id FROM HR"
        )
        assert fragment.client_condition == IsOf("Person")

    def test_comparison_literals(self):
        fragment = parse_fragment(
            "SELECT p.Id FROM Persons p WHERE p.CredScore >= 700 = "
            "SELECT Cid FROM Client"
        )
        assert fragment.client_condition == Comparison("CredScore", ">=", 700)

    def test_string_literal_with_quote(self):
        fragment = parse_fragment(
            "SELECT p.Id FROM Persons p WHERE p.Name = 'O''Hara' = "
            "SELECT Id FROM HR"
        )
        assert fragment.client_condition == Comparison("Name", "=", "O'Hara")

    def test_null_tests(self):
        fragment = parse_fragment(
            "SELECT c.Cid FROM Client c WHERE c.Eid IS NOT NULL = "
            "SELECT Cid FROM Client WHERE Eid IS NOT NULL"
        )
        assert fragment.store_condition == IsNotNull("Eid")

    def test_store_side_condition(self):
        fragment = parse_fragment(
            "SELECT v.Id FROM Vehicles v WHERE v IS OF Car = "
            "SELECT Id FROM V WHERE Disc = 'Car'"
        )
        assert fragment.store_condition == Comparison("Disc", "=", "Car")

    def test_neq_spelling_variants(self):
        f1 = parse_fragment(
            "SELECT p.Id FROM Ps p WHERE p.X <> 1 = SELECT Id FROM T"
        )
        f2 = parse_fragment(
            "SELECT p.Id FROM Ps p WHERE p.X != 1 = SELECT Id FROM T"
        )
        assert f1.client_condition == f2.client_condition == Comparison("X", "!=", 1)

    def test_arity_mismatch_rejected(self):
        with pytest.raises(MappingError):
            parse_fragment("SELECT p.Id, p.Name FROM Ps p = SELECT Id FROM T")

    def test_is_of_on_store_side_rejected(self):
        with pytest.raises(MappingError):
            parse_fragment(
                "SELECT p.Id FROM Ps p = SELECT Id FROM T WHERE IS OF X"
            )

    def test_missing_equals_rejected(self):
        with pytest.raises(MappingError):
            parse_fragment("SELECT p.Id FROM Ps p")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(MappingError):
            parse_fragment("SELECT p.Id FROM Ps p = SELECT Id FROM T extra stuff")

    def test_garbage_tokens_rejected(self):
        with pytest.raises(MappingError):
            parse_fragment("SELECT p.Id FROM Ps p = SELECT Id FROM T WHERE @")


class TestParseFragments:
    FULL_MAPPING = """
    -- the Figure 1 mapping, in Figure 5 syntax
    SELECT p.Id, p.Name
    FROM Persons p
    WHERE p IS OF (ONLY Person) OR p IS OF Employee
    =
    SELECT Id, Name
    FROM HR

    SELECT e.Id, e.Department
    FROM Persons e
    WHERE e IS OF Employee
    =
    SELECT Id, Dept
    FROM Emp

    SELECT c.Id, c.Name, c.CredScore, c.BillAddr
    FROM Persons c
    WHERE c IS OF Customer
    =
    SELECT Cid, Name, Score, Addr
    FROM Client

    SELECT s.Customer.Id, s.Employee.Id
    FROM Supports s
    =
    SELECT Cid, Eid
    FROM Client
    WHERE Eid IS NOT NULL
    """

    def test_blocks_split_on_blank_lines(self):
        fragments = parse_fragments(self.FULL_MAPPING)
        assert len(fragments) == 4

    def test_association_detected_by_qualified_attrs(self):
        fragments = parse_fragments(self.FULL_MAPPING)
        assert [f.is_association for f in fragments] == [False, False, False, True]

    def test_parsed_mapping_compiles_and_validates(self):
        """The textual Figure 1 mapping is exactly Σ4: it full-compiles."""
        fragments = parse_fragments(self.FULL_MAPPING)
        mapping = Mapping(client_schema_stage4(), store_schema(4), fragments)
        result = compile_mapping(mapping)
        assert result.report is not None

    def test_comments_ignored(self):
        fragments = parse_fragments(
            "-- comment only\n" + FIGURE5_FIRST
        )
        assert len(fragments) == 1
