"""Unit tests: the AddEntity SMO (Section 3.1) beyond the paper replay."""

import pytest

from repro.algebra import UnionAll
from repro.compiler import compile_mapping
from repro.edm import Attribute, ClientState, Entity, INT, STRING
from repro.errors import SmoError
from repro.incremental import AddEntity, IncrementalCompiler
from repro.mapping import check_roundtrip
from repro.relational import Column, ForeignKey, Table

from tests.conftest import employee_smo


@pytest.fixture
def compiler():
    return IncrementalCompiler()


@pytest.fixture
def base(stage1_compiled):
    return stage1_compiled


class TestPreconditions:
    def test_existing_type_rejected(self, base):
        smo = AddEntity.tpt(base, "Person", "Person", [], "X")
        with pytest.raises(SmoError):
            IncrementalCompiler().apply(base, smo)

    def test_unknown_parent_rejected(self, base):
        from repro.errors import SchemaError

        # the factory already consults the parent's key
        with pytest.raises((SmoError, SchemaError)):
            AddEntity.tpt(base, "E", "Nope", [], "X")

    def test_mapped_table_rejected(self, base):
        """T must not be mentioned in any mapping fragment."""
        smo = AddEntity.tpt(
            base, "E", "Person", [Attribute("X", STRING)], "HR",
            attr_map={"Id": "Id", "X": "Name"},
        )
        with pytest.raises(SmoError):
            IncrementalCompiler().apply(base, smo)

    def test_alpha_must_contain_key(self, base):
        smo = AddEntity(
            name="E", parent="Person", new_attributes=(Attribute("X", STRING),),
            alpha=("X",), anchor="Person", table="T",
            attr_map=(("X", "X"),),
        )
        with pytest.raises(SmoError):
            IncrementalCompiler().apply(base, smo)

    def test_alpha_union_anchor_must_cover(self, base):
        """α ∪ att(P) = att(E) is required (Section 3.1)."""
        smo = AddEntity(
            name="E", parent="Person",
            new_attributes=(Attribute("X", STRING), Attribute("Y", STRING)),
            alpha=("Id", "X"), anchor=None, table="T",
            attr_map=(("Id", "Id"), ("X", "X")),
        )
        with pytest.raises(SmoError):
            IncrementalCompiler().apply(base, smo)

    def test_shadowing_attribute_rejected(self, base):
        smo = AddEntity.tpt(
            base, "E", "Person", [Attribute("Name", STRING)], "T"
        )
        with pytest.raises(SmoError):
            IncrementalCompiler().apply(base, smo)

    def test_existing_table_key_mismatch_rejected(self, base):
        base.store_schema.add_table(
            Table("Pre", (Column("K", INT, False), Column("X", STRING)), ("K",))
        )
        smo = AddEntity.tpt(
            base, "E", "Person", [Attribute("X", STRING)], "Pre",
            attr_map={"Id": "X", "X": "K"},
        )
        with pytest.raises(SmoError):
            IncrementalCompiler().apply(base, smo)

    def test_existing_table_unmapped_nonnullable_rejected(self, base):
        base.store_schema.add_table(
            Table(
                "Pre2",
                (Column("Id", INT, False), Column("X", STRING),
                 Column("Req", STRING, False)),
                ("Id",),
            )
        )
        smo = AddEntity.tpt(
            base, "E", "Person", [Attribute("X", STRING)], "Pre2",
            attr_map={"Id": "Id", "X": "X"},
        )
        with pytest.raises(SmoError):
            IncrementalCompiler().apply(base, smo)

    def test_domain_containment_on_existing_table(self, base):
        base.store_schema.add_table(
            Table("Pre3", (Column("Id", INT, False), Column("X", INT, True)), ("Id",))
        )
        smo = AddEntity.tpt(
            base, "E", "Person", [Attribute("X", STRING)], "Pre3",
            attr_map={"Id": "Id", "X": "X"},
        )
        with pytest.raises(SmoError):
            IncrementalCompiler().apply(base, smo)


class TestFactories:
    def test_tpt_alpha(self, base):
        smo = AddEntity.tpt(base, "E", "Person", [Attribute("D", STRING)], "T")
        assert set(smo.alpha) == {"Id", "D"}
        assert smo.anchor == "Person"
        assert smo.kind == "AE-TPT"

    def test_tpc_alpha(self, base):
        smo = AddEntity.tpc(base, "E", "Person", [Attribute("D", STRING)], "T")
        assert set(smo.alpha) == {"Id", "Name", "D"}
        assert smo.anchor is None
        assert smo.kind == "AE-TPC"

    def test_attr_map_must_cover_alpha(self, base):
        with pytest.raises(SmoError):
            AddEntity.tpt(base, "E", "Person", [Attribute("D", STRING)], "T",
                          attr_map={"Id": "Id"})


class TestTableCreation:
    def test_table_created_with_pk_and_fks(self, base, compiler):
        smo = employee_smo(base)
        model = compiler.apply(base, smo).model
        table = model.store_schema.table("Emp")
        assert table.primary_key == ("Id",)
        assert table.foreign_keys[0].ref_table == "HR"
        assert not table.column("Id").nullable

    def test_nullable_attribute_gives_nullable_column(self, base, compiler):
        smo = AddEntity.tpt(
            base, "E", "Person", [Attribute("D", STRING, nullable=True)], "T"
        )
        model = compiler.apply(base, smo).model
        assert model.store_schema.table("T").column("D").nullable


class TestDeepHierarchies:
    def test_grandchild_tpt(self, base, compiler):
        """AddEntity twice: Person ← Employee ← Manager, all TPT."""
        model = compiler.apply(base, employee_smo(base)).model
        smo = AddEntity.tpt(
            model, "Manager", "Employee", [Attribute("Level", INT)], "Mgr",
            table_foreign_keys=[ForeignKey(("Id",), "Emp", ("Id",))],
        )
        model = compiler.apply(model, smo).model

        state = ClientState(model.client_schema)
        state.add_entity("Persons", Entity.of("Person", Id=1, Name="a"))
        state.add_entity(
            "Persons", Entity.of("Employee", Id=2, Name="b", Department="d")
        )
        state.add_entity(
            "Persons",
            Entity.of("Manager", Id=3, Name="c", Department="d", Level=4),
        )
        assert check_roundtrip(model.views, state, model.store_schema).ok

    def test_grandchild_anchored_at_root(self, base, compiler):
        """P can be a non-parent ancestor: Manager's α covers everything
        but att(Person); Employee's part (Department) must be in α."""
        model = compiler.apply(base, employee_smo(base)).model
        smo = AddEntity(
            name="Manager", parent="Employee",
            new_attributes=(Attribute("Level", INT),),
            alpha=("Id", "Department", "Level"),
            anchor="Person",
            table="MgrWide",
            attr_map=(("Id", "Id"), ("Department", "Department"), ("Level", "Level")),
        )
        model = compiler.apply(model, smo).model
        # between set = {Employee}: its update view was rewritten
        state = ClientState(model.client_schema)
        state.add_entity("Persons", Entity.of("Person", Id=1, Name="a"))
        state.add_entity(
            "Persons", Entity.of("Employee", Id=2, Name="b", Department="d")
        )
        state.add_entity(
            "Persons",
            Entity.of("Manager", Id=3, Name="c", Department="dd", Level=4),
        )
        assert check_roundtrip(model.views, state, model.store_schema).ok
        # full recompilation of the evolved mapping agrees
        full = compile_mapping(model.mapping.clone())
        assert check_roundtrip(full.views, state, model.store_schema).ok

    def test_query_view_shapes(self, base, compiler):
        model = compiler.apply(base, employee_smo(base)).model
        smo = AddEntity.tpc(
            model, "Contractor", "Employee",
            [Attribute("Agency", STRING)], "Contr",
        )
        model = compiler.apply(model, smo).model
        # anchor NIL: both Person and Employee are in p — unions
        assert isinstance(model.views.query_view("Person").query, UnionAll)
        assert isinstance(model.views.query_view("Employee").query, UnionAll)

    def test_soundness_restriction(self, base, compiler):
        """For every pre-change state c: V'(f(c)) coincides with V(c) on
        shared tables — the Section 2.3 soundness restriction."""
        from repro.mapping import apply_update_views

        state = ClientState(base.client_schema)
        state.add_entity("Persons", Entity.of("Person", Id=1, Name="a"))
        before = apply_update_views(base.views, state, base.store_schema)

        model = compiler.apply(base, employee_smo(base)).model
        embedded = state.embed_into(model.client_schema)
        after = apply_update_views(model.views, embedded, model.store_schema)
        assert after.rows("HR") == before.rows("HR")
        assert after.rows("Emp") == ()


class TestValidationCounts:
    def test_tpt_runs_fk_check(self, base, compiler):
        smo = employee_smo(base)
        compiler.apply(base, smo)
        assert smo.validation_checks == 1

    def test_tpc_without_associations_runs_none(self, base, compiler):
        smo = AddEntity.tpc(base, "C", "Person", [Attribute("S", INT)], "CT")
        compiler.apply(base, smo)
        assert smo.validation_checks == 0
