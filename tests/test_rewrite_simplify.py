"""Unit tests: the Algorithm-2 condition rewrites and simplification."""

import pytest

from repro.algebra import (
    FALSE,
    IsNull,
    IsOf,
    IsOfOnly,
    Not,
    Or,
    Select,
    SetScan,
    TRUE,
    and_,
    or_,
    rewrite_query,
    simplify,
    widen_only_condition,
)
from repro.algebra.conditions import Comparison
from repro.algebra.rewrite import (
    exclude_new_entity_condition,
    narrow_table_scans,
)
from repro.edm import ClientSchemaBuilder, INT


@pytest.fixture
def deep_schema():
    """Root ← Mid ← Low, plus Side under Mid (ch_p material)."""
    return (
        ClientSchemaBuilder()
        .entity("Root", key=[("Id", INT)])
        .entity("Mid", parent="Root")
        .entity("Low", parent="Mid")
        .entity("Side", parent="Mid")
        .entity_set("Roots", "Root")
        .build()
    )


class TestWidenOnly:
    def test_rewrites_matching_only(self):
        t = widen_only_condition("P", "E")
        c = IsOfOnly("P").transform(t)
        assert c == or_(IsOfOnly("P"), IsOf("E"))

    def test_leaves_others_alone(self):
        t = widen_only_condition("P", "E")
        assert IsOfOnly("Q").transform(t) == IsOfOnly("Q")
        assert IsOf("P").transform(t) == IsOf("P")

    def test_nested(self):
        t = widen_only_condition("P", "E")
        c = and_(IsOfOnly("P"), IsNull("a")).transform(t)
        assert IsOf("E") in list(c.atoms())


class TestExcludeNewEntity:
    def test_example5_shape(self, deep_schema):
        """Adding E under Root (P=NIL): IS OF Mid must become
        IS OF (ONLY Mid) ∨ IS OF Low ∨ IS OF Side when only Mid ∈ p."""
        # p = proper ancestors of the new type below NIL; emulate p={Mid}
        t = exclude_new_entity_condition(deep_schema, ["Mid"], "Newbie")
        c = IsOf("Mid").transform(t)
        atoms = set(c.atoms())
        assert IsOfOnly("Mid") in atoms
        assert IsOf("Low") in atoms
        assert IsOf("Side") in atoms

    def test_descendants_in_p_expand(self, deep_schema):
        """With p = {Root, Mid}: IS OF Root expands over both, children
        outside p (Low, Side) via IS OF."""
        t = exclude_new_entity_condition(deep_schema, ["Root", "Mid"], "Newbie")
        c = IsOf("Root").transform(t)
        atoms = set(c.atoms())
        assert IsOfOnly("Root") in atoms
        assert IsOfOnly("Mid") in atoms
        assert IsOf("Low") in atoms and IsOf("Side") in atoms

    def test_new_type_excluded_from_children(self, deep_schema):
        schema = deep_schema.clone()
        from repro.edm.entity import EntityType

        schema.add_entity_type(EntityType("Newbie", parent="Mid"))
        t = exclude_new_entity_condition(schema, ["Mid"], "Newbie")
        c = IsOf("Mid").transform(t)
        assert IsOf("Newbie") not in set(c.atoms())

    def test_types_outside_p_untouched(self, deep_schema):
        t = exclude_new_entity_condition(deep_schema, ["Mid"], "Newbie")
        assert IsOf("Root").transform(t) == IsOf("Root")


class TestQueryRewrite:
    def test_rewrite_query_applies_to_selects(self):
        q = Select(SetScan("Roots"), IsOfOnly("P"))
        q2 = rewrite_query(q, widen_only_condition("P", "E"))
        assert IsOf("E") in set(q2.condition.atoms())

    def test_narrow_table_scans(self):
        from repro.algebra import Project, TableScan, items_from_names

        q = Project(TableScan("T"), items_from_names(["a"]))
        q2 = narrow_table_scans(q, "T", IsNull("disc"))
        assert isinstance(q2.source, Select)
        assert q2.source.condition == IsNull("disc")
        # other tables untouched
        q3 = narrow_table_scans(q, "Other", IsNull("disc"))
        assert q3.source == TableScan("T")


class TestSimplify:
    def test_or_false_removed(self):
        c = Or((IsOfOnly("P"), FALSE))
        assert simplify(c) == IsOfOnly("P")

    def test_and_true_removed(self):
        from repro.algebra.conditions import And

        c = And((IsOfOnly("P"), TRUE))
        assert simplify(c) == IsOfOnly("P")

    def test_dominating_constants(self):
        from repro.algebra.conditions import And, Or

        assert simplify(And((IsOf("X"), FALSE))) is FALSE
        assert simplify(Or((IsOf("X"), TRUE))) is TRUE

    def test_double_negation(self):
        assert simplify(Not(Not(IsOf("X")))) == IsOf("X")

    def test_not_constants(self):
        assert simplify(Not(TRUE)) is FALSE
        assert simplify(Not(FALSE)) is TRUE

    def test_duplicate_operands_removed(self):
        from repro.algebra.conditions import Or

        c = Or((IsOf("X"), IsOf("X")))
        assert simplify(c) == IsOf("X")

    def test_atoms_unchanged(self):
        atom = Comparison("a", "<", 3)
        assert simplify(atom) is atom
