"""Unit tests: mapping fragments, well-formedness, instance semantics."""

import pytest

from repro.algebra import IsOf, TRUE
from repro.edm import ClientState
from repro.errors import MappingError
from repro.mapping import (
    MappingFragment,
    fragment_satisfied,
    in_mapping,
    unsatisfied_fragments,
)
from repro.mapping.roundtrip import apply_update_views
from repro.relational import StoreState
from repro.workloads.paper_example import (
    fragment_phi1,
    mapping_stage2,
    mapping_stage4,
)

from tests.conftest import figure1_state


class TestFragmentBasics:
    def test_alpha_beta(self):
        phi1 = fragment_phi1()
        assert phi1.alpha == ("Id", "Name")
        assert phi1.beta == ("Id", "Name")

    def test_maps_attr_column(self):
        phi1 = fragment_phi1()
        assert phi1.maps_attr("Name") == "Name"
        assert phi1.maps_attr("Nope") is None
        assert phi1.maps_column("Id") == "Id"

    def test_queries_have_aligned_outputs(self):
        """Both sides of the equation project the client attribute names."""
        from repro.algebra import ClientContext, StoreContext, evaluate_query

        mapping = mapping_stage4()
        state = figure1_state(mapping.client_schema)
        for fragment in mapping.fragments:
            rows = evaluate_query(fragment.client_query(), ClientContext(state))
            if rows:
                assert set(rows[0]) == set(fragment.alpha)


class TestWellFormedness:
    def test_stage4_is_well_formed(self):
        mapping_stage4().check_well_formed()

    def test_missing_table_rejected(self):
        mapping = mapping_stage2()
        mapping.add_fragment(
            MappingFragment("Persons", False, IsOf("Person"), "Nope", TRUE,
                            (("Id", "Id"),))
        )
        with pytest.raises(MappingError):
            mapping.check_well_formed()

    def test_missing_column_rejected(self):
        mapping = mapping_stage2()
        mapping.add_fragment(
            MappingFragment("Persons", False, IsOf("Person"), "HR", TRUE,
                            (("Id", "Id"), ("Name", "Zz")))
        )
        with pytest.raises(MappingError):
            mapping.check_well_formed()

    def test_key_must_be_projected_client_side(self):
        mapping = mapping_stage2()
        mapping.add_fragment(
            MappingFragment("Persons", False, IsOf("Person"), "HR", TRUE,
                            (("Name", "Name"), ("Id", "Id")))
        )
        mapping.check_well_formed()  # order is irrelevant, key present
        mapping.replace_fragments(
            [MappingFragment("Persons", False, IsOf("Person"), "HR", TRUE,
                             (("Name", "Id"),))]
        )
        with pytest.raises(MappingError):
            mapping.check_well_formed()

    def test_table_key_must_be_covered(self):
        mapping = mapping_stage2()
        # Id -> Name leaves the HR primary key column unmapped
        mapping.replace_fragments(
            [MappingFragment("Persons", False, IsOf("Person"), "HR", TRUE,
                             (("Id", "Name"),))]
        )
        with pytest.raises(MappingError):
            mapping.check_well_formed()

    def test_non_1to1_attribute_map_rejected(self):
        mapping = mapping_stage2()
        mapping.replace_fragments(
            [MappingFragment("Persons", False, IsOf("Person"), "HR", TRUE,
                             (("Id", "Id"), ("Name", "Id")))]
        )
        with pytest.raises(MappingError):
            mapping.check_well_formed()

    def test_type_outside_hierarchy_rejected(self):
        mapping = mapping_stage2()
        mapping.add_fragment(
            MappingFragment("Persons", False, IsOf("Martian"), "HR", TRUE,
                            (("Id", "Id"), ("Name", "Name")))
        )
        with pytest.raises(MappingError):
            mapping.check_well_formed()

    def test_association_mentioned_twice_rejected(self):
        mapping = mapping_stage4()
        fragment = mapping.fragment_for_association("Supports")
        mapping.add_fragment(fragment)
        with pytest.raises(MappingError):
            mapping.check_well_formed()

    def test_association_must_project_both_keys(self):
        mapping = mapping_stage4()
        fragment = mapping.fragment_for_association("Supports")
        broken = MappingFragment(
            fragment.client_source, True, fragment.client_condition,
            fragment.store_table, fragment.store_condition,
            (("Customer.Id", "Cid"),),
        )
        mapping.replace_fragments(
            [f for f in mapping.fragments if not f.is_association] + [broken]
        )
        with pytest.raises(MappingError):
            mapping.check_well_formed()

    def test_domain_containment_enforced(self):
        """dom(A) ⊆ dom(f(A)): an int attribute cannot map to a string col."""
        mapping = mapping_stage4()
        broken = MappingFragment(
            "Persons", False, IsOf("Customer"), "Client", TRUE,
            (("Id", "Cid"), ("Name", "Name"), ("CredScore", "Addr"),
             ("BillAddr", "Score")),
        )
        mapping.replace_fragments(mapping.fragments[:2] + [broken])
        with pytest.raises(MappingError):
            mapping.check_well_formed()


class TestLookupIndex:
    def test_fragments_for_table(self):
        mapping = mapping_stage4()
        assert len(mapping.fragments_for_table("Client")) == 2  # entity + assoc

    def test_fragments_for_set(self):
        mapping = mapping_stage4()
        assert len(mapping.fragments_for_set("Persons")) == 3

    def test_index_invalidation_on_mutation(self):
        mapping = mapping_stage4()
        before = mapping.mapped_tables()
        mapping.add_fragment(
            MappingFragment("Persons", False, IsOf("Person"), "HR", TRUE,
                            (("Id", "Id"), ("Name", "Name")))
        )
        assert mapping.mapped_tables() == before  # same tables, new fragment
        assert len(mapping.fragments_for_table("HR")) == 2

    def test_column_is_mapped(self):
        mapping = mapping_stage4()
        assert mapping.column_is_mapped("Client", "Cid")
        assert mapping.column_is_mapped("Client", "Eid")  # via store condition
        assert not mapping.column_is_mapped("HR", "Zz")


class TestInstanceSemantics:
    def test_pair_in_mapping(self, stage4_compiled):
        mapping = stage4_compiled.mapping
        state = figure1_state(mapping.client_schema)
        store = apply_update_views(stage4_compiled.views, state, mapping.store_schema)
        assert in_mapping(mapping, state, store)

    def test_pair_not_in_mapping_when_row_missing(self, stage4_compiled):
        mapping = stage4_compiled.mapping
        state = figure1_state(mapping.client_schema)
        store = StoreState(mapping.store_schema)  # empty store
        bad = unsatisfied_fragments(mapping, state, store)
        assert bad  # every populated fragment equation is violated

    def test_fragment_satisfied_is_per_fragment(self, stage4_compiled):
        mapping = stage4_compiled.mapping
        state = figure1_state(mapping.client_schema)
        store = apply_update_views(stage4_compiled.views, state, mapping.store_schema)
        for fragment in mapping.fragments:
            assert fragment_satisfied(fragment, state, store)

    def test_empty_states_trivially_in_mapping(self, stage4_compiled):
        mapping = stage4_compiled.mapping
        assert in_mapping(
            mapping,
            ClientState(mapping.client_schema),
            StoreState(mapping.store_schema),
        )
