"""Unit tests: query AST and its evaluation over states.

Covers the semantics view generation depends on: natural vs explicit-on
joins, NULL join keys, COALESCE of shared non-join columns, outer join
padding, UNION ALL padding, set-semantics dedup, heterogeneous set scans.
"""

import pytest

from repro.algebra import (
    AssociationScan,
    ClientContext,
    Col,
    Const,
    FullOuterJoin,
    IsOf,
    IsOfOnly,
    Join,
    LeftOuterJoin,
    ProjItem,
    Project,
    Select,
    SetScan,
    StoreContext,
    TableScan,
    UnionAll,
    evaluate_query,
    items_from_names,
    leaf_sources,
    output_columns,
    project_select,
    scanned_names,
    union_all,
)
from repro.edm import ClientSchemaBuilder, ClientState, Entity, INT, STRING
from repro.errors import EvaluationError
from repro.relational import Column, StoreSchema, StoreState, Table


@pytest.fixture
def client():
    schema = (
        ClientSchemaBuilder()
        .entity("P", key=[("Id", INT)], attrs=[("Name", STRING)])
        .entity("E", parent="P", attrs=[("Dept", STRING)])
        .entity_set("Ps", "P")
        .association("L", "P", "E", mult1="*", mult2="0..1", role1="src", role2="dst")
        .build()
    )
    state = ClientState(schema)
    state.add_entity("Ps", Entity.of("P", Id=1, Name="a"))
    state.add_entity("Ps", Entity.of("E", Id=2, Name="b", Dept="d"))
    state.add_association("L", (1,), (2,))
    return ClientContext(state)


@pytest.fixture
def store():
    schema = StoreSchema(
        [
            Table("A", (Column("k", INT, False), Column("x", STRING, True)), ("k",)),
            Table("B", (Column("k", INT, False), Column("y", STRING, True)), ("k",)),
        ]
    )
    state = StoreState(schema)
    state.add_row("A", {"k": 1, "x": "x1"})
    state.add_row("A", {"k": 2, "x": "x2"})
    state.add_row("B", {"k": 2, "y": "y2"})
    state.add_row("B", {"k": 3, "y": "y3"})
    return StoreContext(state)


class TestScans:
    def test_set_scan_heterogeneous(self, client):
        rows = evaluate_query(SetScan("Ps"), client)
        assert len(rows) == 2
        # the E row carries Dept, the P row does not
        keys = {frozenset(k for k in r if not k.startswith("__")) for r in rows}
        assert frozenset({"Id", "Name"}) in keys
        assert frozenset({"Id", "Name", "Dept"}) in keys

    def test_association_scan_role_qualified(self, client):
        rows = evaluate_query(AssociationScan("L"), client)
        assert rows == [{"src.Id": 1, "dst.Id": 2}]

    def test_table_scan(self, store):
        assert len(evaluate_query(TableScan("A"), store)) == 2

    def test_client_context_rejects_table_scan(self, client):
        with pytest.raises(EvaluationError):
            evaluate_query(TableScan("A"), client)

    def test_store_context_rejects_set_scan(self, store):
        with pytest.raises(EvaluationError):
            evaluate_query(SetScan("Ps"), store)


class TestSelectProject:
    def test_select_with_type_condition(self, client):
        rows = evaluate_query(Select(SetScan("Ps"), IsOf("E")), client)
        assert len(rows) == 1

    def test_select_only(self, client):
        rows = evaluate_query(Select(SetScan("Ps"), IsOfOnly("P")), client)
        assert len(rows) == 1 and rows[0]["Id"] == 1

    def test_project_renames_and_constants(self, store):
        q = Project(
            TableScan("A"),
            (ProjItem("kk", Col("k")), ProjItem("flag", Const(True))),
        )
        rows = evaluate_query(q, store)
        assert all(set(r) == {"kk", "flag"} and r["flag"] is True for r in rows)

    def test_project_missing_column_raises(self, store):
        q = Project(TableScan("A"), (ProjItem("z", Col("nope")),))
        with pytest.raises(EvaluationError):
            evaluate_query(q, store)

    def test_duplicate_outputs_rejected(self):
        with pytest.raises(EvaluationError):
            Project(TableScan("A"), (ProjItem("z", Col("a")), ProjItem("z", Col("b"))))

    def test_project_select_builder(self, store):
        from repro.algebra import TRUE

        q = project_select(TableScan("A"), TRUE, items_from_names(["k"]))
        assert isinstance(q, Project)
        assert not isinstance(q.source, Select)  # TRUE select elided


class TestJoins:
    def test_natural_inner(self, store):
        rows = evaluate_query(Join(TableScan("A"), TableScan("B")), store)
        assert rows == [{"k": 2, "x": "x2", "y": "y2"}]

    def test_left_outer_pads(self, store):
        rows = evaluate_query(LeftOuterJoin(TableScan("A"), TableScan("B")), store)
        by_k = {r["k"]: r for r in rows}
        assert by_k[1]["y"] is None
        assert by_k[2]["y"] == "y2"

    def test_full_outer_pads_both(self, store):
        rows = evaluate_query(FullOuterJoin(TableScan("A"), TableScan("B")), store)
        by_k = {r["k"]: r for r in rows}
        assert set(by_k) == {1, 2, 3}
        assert by_k[3]["x"] is None

    def test_null_join_keys_never_match(self, store):
        # add a NULL-keyed... keys are non-null; test via projected column
        qa = Project(TableScan("A"), (ProjItem("j", Col("x")), ProjItem("k", Col("k"))))
        qb = Project(TableScan("B"), (ProjItem("j", Col("y")), ProjItem("kb", Col("k"))))
        rows = evaluate_query(Join(qa, qb, on=("j",)), store)
        assert rows == []  # x values never equal y values

    def test_explicit_on_coalesces_shared(self, store):
        """Shared non-join columns merge by COALESCE(left, right)."""
        qa = Project(
            TableScan("A"),
            (ProjItem("k", Col("k")), ProjItem("v", Const(None))),
        )
        qb = Project(
            TableScan("B"),
            (ProjItem("k", Col("k")), ProjItem("v", Col("y"))),
        )
        rows = evaluate_query(Join(qa, qb, on=("k",)), store)
        assert rows == [{"k": 2, "v": "y2"}]

    def test_explicit_on_missing_column_rejected(self, store):
        with pytest.raises(EvaluationError):
            evaluate_query(Join(TableScan("A"), TableScan("B"), on=("zz",)), store)


class TestUnionAll:
    def test_pads_missing_columns(self, store):
        q = UnionAll(
            (
                Project(TableScan("A"), items_from_names(["k", "x"])),
                Project(TableScan("B"), items_from_names(["k", "y"])),
            )
        )
        rows = evaluate_query(q, store)
        assert all(set(r) == {"k", "x", "y"} for r in rows)
        assert len(rows) == 4

    def test_dedup_set_semantics(self, store):
        q = UnionAll(
            (
                Project(TableScan("A"), items_from_names(["k"])),
                Project(TableScan("A"), items_from_names(["k"])),
            )
        )
        assert len(evaluate_query(q, store)) == 2

    def test_needs_two_branches(self):
        with pytest.raises(EvaluationError):
            UnionAll((TableScan("A"),))

    def test_union_all_builder_single(self):
        q = union_all([TableScan("A")])
        assert isinstance(q, TableScan)


class TestIntrospection:
    def test_output_columns(self, store):
        q = LeftOuterJoin(TableScan("A"), TableScan("B"))
        assert output_columns(q, store) == ("k", "x", "y")

    def test_leaf_sources_and_names(self):
        q = Join(Select(SetScan("Ps"), IsOf("E")), AssociationScan("L"))
        assert len(leaf_sources(q)) == 2
        assert scanned_names(q) == ("Ps", "L")

    def test_walk_covers_tree(self, store):
        q = Project(Select(TableScan("A"), IsOf("X")), items_from_names(["k"]))
        kinds = [type(n).__name__ for n in q.walk()]
        assert kinds == ["Project", "Select", "TableScan"]

    def test_transform_conditions(self):
        from repro.algebra import FALSE, TrueCond

        q = Select(TableScan("A"), IsOf("X"))

        def erase(node):
            if node == IsOf("X"):
                return FALSE
            return node

        q2 = q.transform_conditions(erase)
        assert q2.condition is FALSE
        assert q.condition == IsOf("X")
