"""Fuzz tests: random legal states roundtrip on every workload mapping.

The general state generator plus the empirical roundtrip oracle give a
schema-agnostic correctness sweep: for each workload (paper example,
chain, hub-and-rim TPH/TPT, customer) and many seeds, compiled views must
satisfy Q(V(c)) = c.
"""

import pytest

from repro.compiler import compile_mapping
from repro.mapping import check_roundtrip
from repro.stategen import random_client_state
from repro.workloads import chain_mapping, customer_mapping, hub_rim_mapping
from repro.workloads.paper_example import mapping_stage4


def _roundtrip_many(mapping, views, seeds, set_names=None, entities_per_set=6):
    for seed in seeds:
        state = random_client_state(
            mapping.client_schema, seed=seed, entities_per_set=entities_per_set,
            set_names=set_names,
        )
        report = check_roundtrip(views, state, mapping.store_schema)
        assert report.ok, f"seed {seed}: {report}"


class TestFuzzRoundtrips:
    def test_figure1(self):
        mapping = mapping_stage4()
        views = compile_mapping(mapping).views
        _roundtrip_many(mapping, views, range(12))

    def test_figure1_optimized_views(self):
        mapping = mapping_stage4()
        result = compile_mapping(mapping, optimize=True)
        _roundtrip_many(mapping, result.views, range(12))

    def test_chain(self):
        mapping = chain_mapping(8)
        views = compile_mapping(mapping).views
        _roundtrip_many(mapping, views, range(6), entities_per_set=3)

    @pytest.mark.parametrize("style", ["TPH", "TPT"])
    def test_hub_rim(self, style):
        mapping = hub_rim_mapping(2, 2, style)
        views = compile_mapping(mapping).views
        _roundtrip_many(mapping, views, range(6))

    def test_customer(self):
        mapping = customer_mapping(scale=0.07)
        views = compile_mapping(mapping).views
        _roundtrip_many(mapping, views, range(3), entities_per_set=2)

    def test_incrementally_evolved(self, incrementally_evolved):
        _roundtrip_many(
            incrementally_evolved.mapping,
            incrementally_evolved.views,
            range(12),
        )


class TestGeneratorProperties:
    def test_deterministic(self):
        mapping = mapping_stage4()
        a = random_client_state(mapping.client_schema, seed=5)
        b = random_client_state(mapping.client_schema, seed=5)
        assert a.equals(b)

    def test_different_seeds_differ(self):
        mapping = mapping_stage4()
        a = random_client_state(mapping.client_schema, seed=5)
        b = random_client_state(mapping.client_schema, seed=6)
        assert not a.equals(b)

    def test_every_set_populated(self):
        mapping = chain_mapping(4)
        state = random_client_state(mapping.client_schema, seed=1,
                                    entities_per_set=2)
        for entity_set in mapping.client_schema.entity_sets:
            assert state.entities(entity_set.name)

    def test_set_selection(self):
        mapping = chain_mapping(4)
        state = random_client_state(
            mapping.client_schema, seed=1, set_names=["Entities1"]
        )
        assert state.entities("Entities1")
        assert not state.entities("Entities2")
