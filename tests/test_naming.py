"""Unit tests: the shared naming/flag/attr-map helpers of the SMO modules."""

import pytest

from repro.compiler import compile_mapping
from repro.edm import Attribute, ClientSchemaBuilder, INT, STRING
from repro.edm.association import Multiplicity
from repro.errors import SmoError
from repro.incremental import CompiledModel
from repro.incremental.naming import (
    attr_to_column,
    build_entity_table,
    build_join_table,
    entity_flag,
    partition_flag,
    qualified_keys,
    qualify,
    resolve_attr_map,
    resolve_multiplicity,
    role_names,
)
from repro.workloads.paper_example import mapping_stage3


@pytest.fixture
def schema():
    return (
        ClientSchemaBuilder()
        .entity("Person", key=[("Id", INT)], attrs=[("Name", STRING)])
        .entity("Tag", key=[("Tid", INT)])
        .entity_set("Persons", "Person")
        .entity_set("Tags", "Tag")
        .build()
    )


class TestFlags:
    def test_entity_flag(self):
        assert entity_flag("Employee") == "_tEmployee"

    def test_partition_flag(self):
        assert partition_flag("P", 0) == "_tP_0"
        assert partition_flag("P", 2) == "_tP_2"

    def test_flags_disjoint_per_type(self):
        assert entity_flag("A") != entity_flag("B")
        assert partition_flag("A", 0) != partition_flag("A", 1)


class TestAttrToColumn:
    def test_lookup(self):
        assert attr_to_column((("Id", "Cid"), ("Name", "N")), "Name") == "N"

    def test_missing_raises_with_context(self):
        with pytest.raises(SmoError, match="of AE-TPT"):
            attr_to_column((("Id", "Cid"),), "Name", "AE-TPT(x)")

    def test_missing_raises_without_context(self):
        with pytest.raises(SmoError):
            attr_to_column((), "Name")


class TestResolveAttrMap:
    def test_none_is_identity(self):
        assert resolve_attr_map(("Id", "Name"), None) == (
            ("Id", "Id"),
            ("Name", "Name"),
        )

    def test_ordered_by_alpha(self):
        resolved = resolve_attr_map(("Name", "Id"), {"Id": "I", "Name": "N"})
        assert resolved == (("Name", "N"), ("Id", "I"))

    def test_missing_attribute_rejected(self):
        with pytest.raises(SmoError, match="does not cover"):
            resolve_attr_map(("Id", "Name"), {"Id": "I"})


class TestRolesAndKeys:
    def test_default_roles_are_type_names(self):
        assert role_names("Customer", "Employee") == ("Customer", "Employee")

    def test_explicit_roles_win(self):
        assert role_names("C", "E", role1="buyer", role2=None) == ("buyer", "E")

    def test_qualify(self):
        assert qualify("Customer", ("Id",)) == ("Customer.Id",)

    def test_qualified_keys(self, schema):
        key1, key2 = qualified_keys(schema, "Person", "Tag")
        assert key1 == ("Person.Id",)
        assert key2 == ("Tag.Tid",)


class TestResolveMultiplicity:
    def test_passthrough(self):
        assert resolve_multiplicity(Multiplicity.ONE) is Multiplicity.ONE

    def test_string_spellings(self):
        assert resolve_multiplicity("*") is Multiplicity.MANY
        assert resolve_multiplicity("0..1") is Multiplicity.ZERO_OR_ONE

    def test_unknown_spelling(self):
        with pytest.raises(KeyError):
            resolve_multiplicity("2..3")


class TestBuildEntityTable:
    def test_columns_key_and_nullability(self, schema):
        table = build_entity_table(
            schema, "Person", "T", (("Id", "PId"), ("Name", "PName"))
        )
        assert table.name == "T"
        assert table.primary_key == ("PId",)
        assert not table.column("PId").nullable
        # non-key attributes keep their declared nullability
        assert table.column("PName").nullable == schema.attribute_of(
            "Person", "Name"
        ).nullable

    def test_key_not_in_map_rejected(self, schema):
        with pytest.raises(SmoError):
            build_entity_table(schema, "Person", "T", (("Name", "N"),))


class TestBuildJoinTable:
    def test_pk_is_both_keys_and_columns_not_null(self, schema):
        table = build_join_table(
            schema,
            "JT",
            "Person",
            "Tag",
            ("Person.Id",),
            ("Tag.Tid",),
            (("Person.Id", "pid"), ("Tag.Tid", "tid")),
        )
        assert set(table.primary_key) == {"pid", "tid"}
        assert not table.column("pid").nullable
        assert not table.column("tid").nullable


class TestSmoDelegation:
    """The SMO modules resolve f through the shared helpers."""

    def test_add_entity_reexports_flag(self):
        from repro.incremental.add_entity import entity_flag as reexported

        assert reexported is entity_flag

    def test_tpt_tables_built_through_helper(self):
        from repro.edm import Attribute
        from repro.incremental import AddEntity, IncrementalCompiler
        from repro.relational import ForeignKey

        mapping = mapping_stage3()
        model = CompiledModel(mapping, compile_mapping(mapping).views)
        smo = AddEntity.tpt(
            model,
            "Manager",
            "Employee",
            [Attribute("Level", INT)],
            "Mg",
            table_foreign_keys=[ForeignKey(("Id",), "Emp", ("Id",))],
        )
        evolved = IncrementalCompiler().apply(model, smo).model
        table = evolved.store_schema.table("Mg")
        assert table.primary_key == ("Id",)
        assert not table.column("Id").nullable
