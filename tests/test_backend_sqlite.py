"""Integration tests: an :class:`OrmSession` running on the SQLite
backend end-to-end — query, SaveChanges, batched evolution, undo — plus
the backend's transactional guarantees (a failed delta or migration
leaves the database byte-identical) and native PK/FK enforcement.
"""

import pytest

from tests.conftest import figure1_state
from repro.backend import (
    BACKEND_ENV,
    MemoryBackend,
    SqliteBackend,
    create_backend,
    default_backend_name,
)
from repro.compiler import compile_mapping
from repro.edm import Attribute, Entity, INT, STRING
from repro.errors import SchemaError, SmoError, ValidationError
from repro.incremental import AddEntity, AddProperty, CompiledModel
from repro.query import EntityQuery
from repro.query.dml import StoreDelta, TableDelta
from repro.relational import ForeignKey, StoreState
from repro.relational.instances import make_row
from repro.session import OrmSession
from repro.workloads.paper_example import mapping_stage4


@pytest.fixture
def model():
    mapping = mapping_stage4()
    return CompiledModel(mapping, compile_mapping(mapping).views)


@pytest.fixture
def session(model):
    session = OrmSession.create(model, backend="sqlite")
    yield session
    session.backend.close()


def _populate(session):
    session.save(figure1_state(session.model.client_schema))


def canon(results):
    return sorted(repr(r) for r in results)


class TestSessionOnSqlite:
    def test_create_picks_sqlite(self, session):
        assert session.backend.name == "sqlite"
        assert isinstance(session.backend, SqliteBackend)

    def test_save_then_load_roundtrips(self, session, model):
        _populate(session)
        loaded = session.load()
        assert loaded.equals(figure1_state(model.client_schema))

    def test_query_matches_memory_backend(self, session, model):
        """Acceptance: identical query answers on either engine."""
        _populate(session)
        memory = OrmSession.create(model, backend="memory")
        _populate(memory)
        for condition_query in (
            EntityQuery("Persons"),
            EntityQuery("Persons", projection=("Id", "Name")),
        ):
            assert canon(session.query(condition_query)) == canon(
                memory.query(condition_query)
            )

    def test_incremental_save_is_minimal_delta(self, session):
        _populate(session)
        with session.edit() as state:
            state.add_entity("Persons", Entity.of("Person", Id=9, Name="zoe"))
        # second save: only the new person's row travels
        assert session.backend.row_count() == 6

    def test_evolve_many_and_query(self, session):
        _populate(session)
        smos = [
            AddEntity.tpt(
                session.model, "Sub1", "Person", [Attribute("A1", INT)],
                "Sub1T",
                table_foreign_keys=[ForeignKey(("Id",), "HR", ("Id",))],
            ),
            AddProperty(
                "Employee", Attribute("Title", STRING, nullable=True),
                "Emp", "Title",
            ),
        ]
        session.evolve_many(smos)
        assert session.backend.schema.has_table("Sub1T")
        assert session.backend.schema.table("Emp").has_column("Title")
        with session.edit() as state:
            state.add_entity(
                "Persons", Entity.of("Sub1", Id=7, Name="sue", A1=1)
            )
        assert len(session.query(EntityQuery("Persons"))) == 5
        assert len(session.journal) == 1

    def test_undo_restores_schema_and_data(self, session):
        _populate(session)
        baseline = session.model.fingerprint()
        snapshot = session.backend.snapshot()
        session.evolve(
            AddEntity.tpt(
                session.model, "Sub1", "Person", [Attribute("A1", INT)],
                "Sub1T",
                table_foreign_keys=[ForeignKey(("Id",), "HR", ("Id",))],
            )
        )
        assert session.backend.schema.has_table("Sub1T")
        session.undo()
        assert session.model.fingerprint() == baseline
        assert session.backend.snapshot() == snapshot
        assert not session.backend.schema.has_table("Sub1T")
        # the restored session is fully usable
        assert len(session.query(EntityQuery("Persons"))) == 4

    def test_store_state_identity_is_cached(self, session):
        _populate(session)
        assert session.store_state is session.store_state
        before = session.store_state
        with session.edit() as state:
            state.add_entity("Persons", Entity.of("Person", Id=9, Name="zoe"))
        assert session.store_state is not before  # writes invalidate


class TestTransactionality:
    def test_failed_delta_leaves_database_unchanged(self, session):
        _populate(session)
        snapshot = session.backend.snapshot()
        # a delta whose insert collides with an existing primary key
        bad = StoreDelta(
            tables={
                "HR": TableDelta(
                    "HR", inserts=[make_row(Id=1, Name="dup")]
                )
            }
        )
        with pytest.raises(ValidationError, match="store constraints"):
            session.backend.apply_delta(bad)
        assert session.backend.snapshot() == snapshot

    def test_native_fk_rejection(self, session):
        _populate(session)
        snapshot = session.backend.snapshot()
        dangling = StoreDelta(
            tables={
                "Emp": TableDelta(
                    "Emp",
                    inserts=[make_row(Id=99, Dept="ghost")],  # no HR row 99
                )
            }
        )
        with pytest.raises(ValidationError, match="store constraints"):
            session.backend.apply_delta(dangling)
        assert session.backend.snapshot() == snapshot

    def test_failed_migration_batch_leaves_store_unchanged(self, session):
        """Acceptance criterion: abort atomicity on the SQLite store."""
        _populate(session)
        baseline = session.model.fingerprint()
        snapshot = session.backend.snapshot()
        store_before = session.store_state
        smos = [
            AddEntity.tpt(
                session.model, "Sub1", "Person", [Attribute("A1", INT)],
                "Sub1T",
                table_foreign_keys=[ForeignKey(("Id",), "HR", ("Id",))],
            ),
            AddEntity.tpt(  # clashes: Sub1T already claimed
                session.model, "Clash", "Person", [Attribute("B", INT)],
                "Sub1T",
                table_foreign_keys=[ForeignKey(("Id",), "HR", ("Id",))],
            ),
        ]
        with pytest.raises(SmoError):
            session.evolve_many(smos)
        assert session.model.fingerprint() == baseline
        assert session.backend.snapshot() == snapshot
        assert session.store_state is store_before  # cache untouched too
        assert not session.journal

    def test_failed_migration_script_rolls_back(self, session, model):
        """A migration that dangles a foreign key rolls back wholesale."""
        _populate(session)
        snapshot = session.backend.snapshot()
        schema = session.backend.schema
        state = session.store_state
        # target drops an HR row that Emp still references
        target = StoreState(schema)
        for table in state.populated_tables():
            for row in state.rows(table.name):
                if table.name == "HR" and dict(row)["Id"] == 2:
                    continue
                target.add_row(table.name, row)
        from repro.backend import plan_migration

        script = plan_migration(schema, schema, state, target)
        with pytest.raises(ValidationError, match="migration"):
            session.backend.migrate(script, schema, target)
        assert session.backend.snapshot() == snapshot

    def test_save_constraint_violation_error_matches_memory(self, session, model):
        """Same error surface on either engine for a violating delta."""
        _populate(session)
        memory = OrmSession.create(model, backend="memory")
        _populate(memory)
        bad = StoreDelta(
            tables={
                "HR": TableDelta("HR", inserts=[make_row(Id=1, Name="dup")])
            }
        )

        def violate(target_session):
            with pytest.raises(ValidationError) as excinfo:
                target_session.backend.apply_delta(bad)
            return excinfo.value

        sqlite_error = violate(session)
        memory_error = violate(memory)
        assert str(sqlite_error).startswith("update would violate store constraints")
        assert str(memory_error).startswith("update would violate store constraints")
        assert sqlite_error.check == memory_error.check == "save-changes"
        # neither applied anything
        assert session.backend.snapshot() == memory.backend.snapshot()


class TestBackendSelection:
    def test_env_default_is_memory(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert default_backend_name() == "memory"

    def test_env_selects_sqlite(self, monkeypatch, model):
        monkeypatch.setenv(BACKEND_ENV, "sqlite")
        session = OrmSession.create(model)
        try:
            assert session.backend.name == "sqlite"
        finally:
            session.backend.close()

    def test_env_rejects_unknown(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "oracle")
        with pytest.raises(SchemaError, match="unknown backend"):
            default_backend_name()

    def test_explicit_name_beats_env(self, monkeypatch, model):
        monkeypatch.setenv(BACKEND_ENV, "sqlite")
        session = OrmSession.create(model, backend="memory")
        assert isinstance(session.backend, MemoryBackend)

    def test_create_backend_seeds_initial_state(self, model):
        state = StoreState(model.store_schema)
        state.add_row("HR", make_row(Id=1, Name="ann"))
        backend = create_backend("sqlite", model.store_schema, store_state=state)
        try:
            assert backend.row_count() == 1
        finally:
            backend.close()

    def test_db_path_persists_to_disk(self, model, tmp_path):
        path = str(tmp_path / "store.db")
        session = OrmSession.create(model, backend="sqlite", db_path=path)
        _populate(session)
        session.backend.close()

        reopened = SqliteBackend(model.store_schema, db_path=path)
        try:
            assert reopened.row_count() == 5
        finally:
            reopened.close()

    def test_bare_store_state_wraps_memory_backend(self, model):
        # the historical constructor still works
        session = OrmSession(model, StoreState(model.store_schema))
        assert isinstance(session.backend, MemoryBackend)

    def test_state_and_backend_are_exclusive(self, model):
        with pytest.raises(SmoError, match="not both"):
            OrmSession(
                model,
                store_state=StoreState(model.store_schema),
                backend=MemoryBackend(StoreState(model.store_schema)),
            )
