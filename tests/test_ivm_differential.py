"""Differential property suite for the incremental write path (IVM).

The acceptance bar for :mod:`repro.ivm`: an incremental save must be
*observationally identical* to the whole-state save it replaces — the
same store snapshots (byte-for-byte), the same epoch fingerprints, the
same query answers.  This suite drives randomized mutation scripts
(including no-op and inverse pairs, which must collapse to publishing
nothing) through both paths in lockstep across the full workload matrix,
on both backends, and after every SMO kind plus its undo.

Script generation is conservative by construction: every generated op is
simulated on a scratch state first, so scripts are always *legal* (both
paths would accept them) and the comparison is about fidelity, never
about matching error behavior.
"""

import random

import pytest

from tests.test_backend_differential import SMO_KINDS, WORKLOADS, compiled
from repro.backend import MemoryBackend, SqliteBackend
from repro.edm.instances import ClientState
from repro.errors import SchemaError
from repro.ivm import AssociationOp, DeltaScript, EntityOp
from repro.query.language import EntityQuery
from repro.relational.instances import StoreState
from repro.session import OrmSession
from repro.stategen import random_client_state, random_entity

BACKENDS = ["memory", "sqlite"]


def make_session(model, backend: str) -> OrmSession:
    if backend == "memory":
        return OrmSession(model, backend=MemoryBackend(StoreState(model.store_schema)))
    return OrmSession(model, backend=SqliteBackend(model.store_schema))


def clone(state: ClientState) -> ClientState:
    return state.embed_into(state.schema)


# ---------------------------------------------------------------------------
# Conservative random scripts: every op is pre-simulated on a scratch state
# ---------------------------------------------------------------------------

def _required_sets(schema):
    """Sets where an *unpaired* entity can violate a required association
    end at save time; inserts skip these."""
    required = set()
    for assoc in schema.associations:
        if assoc.end2.multiplicity.value == "1":
            required.add(assoc.entity_set1)
        if assoc.end1.multiplicity.value == "1":
            required.add(assoc.entity_set2)
    return required


def _is_referenced(schema, state, set_name, entity) -> bool:
    key = entity.key_tuple(schema.key_of(entity.concrete_type))
    for assoc in schema.associations:
        lineage = schema.ancestors_or_self(entity.concrete_type)
        if assoc.entity_set1 == set_name and assoc.end1.entity_type in lineage:
            if state.associations_with_end(assoc.name, 0, key):
                return True
        if assoc.entity_set2 == set_name and assoc.end2.entity_type in lineage:
            if state.associations_with_end(assoc.name, 1, key):
                return True
    return False


def _fresh_key(schema, concrete_type, next_key):
    key_values = {}
    for key_attr in schema.key_of(concrete_type):
        attribute = schema.attribute_of(concrete_type, key_attr)
        if attribute.domain.base in ("int", "decimal"):
            key_values[key_attr] = next_key[0]
        else:
            key_values[key_attr] = f"nk{next_key[0]}"
        next_key[0] += 1
    return key_values


def _attempt_op(schema, scratch, rng, next_key, kind):
    """One random mutation of *kind*, applied to *scratch* and returned
    as wire ops; None (or SchemaError, caught by the caller) = skip."""
    sets = [s.name for s in schema.entity_sets]
    assocs = [a.name for a in schema.associations]
    if not sets:
        return None

    if kind == 0:  # insert a fresh entity
        set_name = rng.choice(sets)
        if set_name in _required_sets(schema):
            return None
        concrete = schema.concrete_types_of_set(set_name)
        if not concrete:
            return None
        concrete_type = rng.choice(concrete)
        entity = random_entity(
            schema, concrete_type, _fresh_key(schema, concrete_type, next_key), rng
        )
        scratch.add_entity(set_name, entity)
        return [EntityOp("insert", set_name, entity=entity)]

    if kind == 1:  # rewrite a random entity's non-key attributes
        set_name = rng.choice(sets)
        entities = scratch.entities(set_name)
        if not entities:
            return None
        entity = rng.choice(entities)
        key = schema.key_of(entity.concrete_type)
        values = dict(entity.values)
        replacement = random_entity(
            schema, entity.concrete_type, {k: values[k] for k in key}, rng
        )
        scratch.update_entity(set_name, replacement)
        return [EntityOp("update", set_name, entity=replacement)]

    if kind == 2:  # delete an unreferenced entity
        set_name = rng.choice(sets)
        candidates = [
            e
            for e in scratch.entities(set_name)
            if not _is_referenced(schema, scratch, set_name, e)
        ]
        if not candidates or set_name in _required_sets(schema):
            return None
        entity = rng.choice(candidates)
        key = entity.key_tuple(schema.key_of(entity.concrete_type))
        scratch.remove_entity(set_name, key)
        return [EntityOp("delete", set_name, key=key)]

    if kind == 3:  # link two compatible entities
        if not assocs:
            return None
        assoc_name = rng.choice(assocs)
        assoc = schema.association(assoc_name)
        ends = []
        for end, set_name in (
            (assoc.end1, assoc.entity_set1),
            (assoc.end2, assoc.entity_set2),
        ):
            candidates = [
                e
                for e in scratch.entities(set_name)
                if end.entity_type in schema.ancestors_or_self(e.concrete_type)
            ]
            if not candidates:
                return None
            ends.append(rng.choice(candidates))
        key1 = ends[0].key_tuple(schema.key_of(ends[0].concrete_type))
        key2 = ends[1].key_tuple(schema.key_of(ends[1].concrete_type))
        scratch.add_association(assoc_name, key1, key2)  # may raise: dup/mult
        return [AssociationOp("insert", assoc_name, key1=key1, key2=key2)]

    if kind == 4:  # unlink a pair (only where neither end is required)
        if not assocs:
            return None
        assoc_name = rng.choice(assocs)
        assoc = schema.association(assoc_name)
        if "1" in (assoc.end1.multiplicity.value, assoc.end2.multiplicity.value):
            return None
        pairs = scratch.associations(assoc_name)
        if not pairs:
            return None
        width = len(schema.key_of(assoc.end1.entity_type))
        pair = rng.choice(pairs)
        key1, key2 = pair[:width], pair[width:]
        scratch.remove_association(assoc_name, key1, key2)
        return [AssociationOp("delete", assoc_name, key1=key1, key2=key2)]

    # kind == 5: an inverse pair — a fresh entity inserted then deleted.
    # Net client change is zero; the recorder must collapse it away.
    set_name = rng.choice(sets)
    concrete = schema.concrete_types_of_set(set_name)
    if not concrete:
        return None
    concrete_type = rng.choice(concrete)
    entity = random_entity(
        schema, concrete_type, _fresh_key(schema, concrete_type, next_key), rng
    )
    key = entity.key_tuple(schema.key_of(concrete_type))
    scratch.add_entity(set_name, entity)
    scratch.remove_entity(set_name, key)
    return [
        EntityOp("insert", set_name, entity=entity),
        EntityOp("delete", set_name, key=key),
    ]


def random_script(
    schema, scratch, rng, next_key, n_ops=10, kinds=range(6)
) -> DeltaScript:
    """A legal script of ~*n_ops* mutations, simulated on *scratch*."""
    kinds = list(kinds)
    ops = []
    attempts = n_ops * 6
    while len(ops) < n_ops and attempts > 0:
        attempts -= 1
        kind = rng.choice(kinds)
        try:
            produced = _attempt_op(schema, scratch, rng, next_key, kind)
        except SchemaError:
            continue
        if produced:
            ops.extend(produced)
    return DeltaScript(tuple(ops))


def assert_paths_agree(inc: OrmSession, ref: OrmSession):
    assert inc.backend.snapshot() == ref.backend.snapshot()
    assert inc.epoch.fingerprint == ref.epoch.fingerprint
    for entity_set in inc.model.client_schema.entity_sets:
        query = EntityQuery(entity_set.name)
        assert sorted(map(repr, inc.query(query))) == sorted(
            map(repr, ref.query(query))
        ), f"incremental and whole-state answers diverge on {entity_set.name}"


# ---------------------------------------------------------------------------
# Randomized scripts across the workload matrix, both backends
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize(
    "factory", [f for _, f in WORKLOADS], ids=[name for name, _ in WORKLOADS]
)
class TestRandomizedScriptEquivalence:
    def test_rounds_of_random_scripts(self, factory, backend):
        """Three rounds of random mutations: the incremental session's
        store must track the whole-state reference byte-for-byte."""
        model = compiled(factory())
        inc = make_session(model, backend)
        ref = make_session(model, backend)
        try:
            seeded = random_client_state(
                model.client_schema, seed=5, entities_per_set=6
            )
            inc.save(seeded)
            ref.save(seeded)
            rng = random.Random(17)
            next_key = [100000]
            for _ in range(3):
                scratch = clone(ref.load())
                script = random_script(
                    model.client_schema, scratch, rng, next_key, n_ops=10
                )
                ref.save(scratch)
                inc.save_delta(script)
                assert_paths_agree(inc, ref)
        finally:
            inc.backend.close()
            ref.backend.close()

    def test_noop_script_publishes_nothing(self, factory, backend):
        """A script of inverse pairs nets to zero: no store statements,
        no new epoch."""
        model = compiled(factory())
        inc = make_session(model, backend)
        try:
            inc.save(
                random_client_state(model.client_schema, seed=3, entities_per_set=4)
            )
            rng = random.Random(23)
            next_key = [200000]
            scratch = clone(inc.load())
            ops = []
            for _ in range(4):
                try:
                    produced = _attempt_op(
                        model.client_schema, scratch, rng, next_key, 5
                    )
                except SchemaError:
                    continue
                if produced:
                    ops.extend(produced)
            before_epoch = inc.epoch.epoch_id
            before_snapshot = inc.backend.snapshot()
            delta = inc.save_delta(DeltaScript(tuple(ops)))
            assert delta.empty
            assert inc.epoch.epoch_id == before_epoch
            assert inc.backend.snapshot() == before_snapshot
        finally:
            inc.backend.close()


# ---------------------------------------------------------------------------
# Incremental saves after every SMO kind, and after its undo
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize(
    "base_factory,smo_factory,pop",
    [(b, s, p) for _, b, s, p in SMO_KINDS],
    ids=[kind for kind, _, _, _ in SMO_KINDS],
)
class TestPostSmoIncrementalSaves:
    def test_incremental_save_after_evolution_and_undo(
        self, base_factory, smo_factory, pop, backend
    ):
        """Writeplans compiled before an evolution must not leak across
        it: incremental saves after the SMO (and again after undo) still
        match whole-state saves exactly."""
        model = base_factory()
        inc = make_session(model, backend)
        ref = make_session(model, backend)
        try:
            state = pop(model)
            inc.save(state)
            ref.save(state)
            rng = random.Random(31)
            next_key = [100000]

            # warm the writeplan cache pre-evolution; updates only, so the
            # SMO's data preconditions (e.g. "no Customers" before a
            # DropEntity) survive the warm-up
            scratch = clone(ref.load())
            script = random_script(
                model.client_schema, scratch, rng, next_key, n_ops=6, kinds=(1,)
            )
            ref.save(scratch)
            inc.save_delta(script)
            assert_paths_agree(inc, ref)

            smo = smo_factory(model)
            inc.evolve(smo)
            ref.evolve(smo)
            evolved_schema = inc.model.client_schema
            scratch = clone(ref.load())
            script = random_script(evolved_schema, scratch, rng, next_key, n_ops=6)
            ref.save(scratch)
            inc.save_delta(script)
            assert_paths_agree(inc, ref)

            inc.undo()
            ref.undo()
            restored_schema = inc.model.client_schema
            scratch = clone(ref.load())
            script = random_script(restored_schema, scratch, rng, next_key, n_ops=6)
            ref.save(scratch)
            inc.save_delta(script)
            assert_paths_agree(inc, ref)
        finally:
            inc.backend.close()
            ref.backend.close()
