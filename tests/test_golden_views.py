"""Golden-file tests: the rendered views are stable artifacts.

The optimized Person query view *is* the paper's Figure 2 (modulo flag
naming): ``(HR ⟕ Emp) UNION ALL Client`` with minimized CASE guards.
Pinning the rendering guards against silent regressions in view
generation, optimization and the Entity-SQL printer at once.
"""

import pathlib


from repro.compiler import compile_mapping
from repro.workloads.paper_example import mapping_stage4

GOLDEN = pathlib.Path(__file__).parent / "golden"


def test_figure2_person_view_matches_golden():
    result = compile_mapping(mapping_stage4(), optimize=True)
    rendered = result.views.query_view("Person").to_sql() + "\n"
    expected = (GOLDEN / "figure2_person_view.sql").read_text()
    assert rendered == expected


def test_figure2_structural_landmarks():
    """Independently of exact formatting, the Figure 2 landmarks hold."""
    result = compile_mapping(mapping_stage4(), optimize=True)
    text = result.views.query_view("Person").to_sql()
    assert "LEFT OUTER JOIN" in text
    assert "UNION ALL" in text
    assert "FULL OUTER" not in text  # the optimizer removed every FOJ
    assert text.index("Customer(") < text.index("Employee(") < text.index("Person(")
    # Employee's WHEN needs only its own flag; Person's carries a NOT
    case_block = text.split("CASE")[1].split("END")[0]
    lines = [l.strip() for l in case_block.splitlines() if "WHEN" in l or "ELSE" in l]
    assert lines[1].count("=") == 1  # WHEN _from1 = True THEN Employee(...)
    assert "NOT" not in lines[0]


def test_incremental_person_view_same_shape():
    """The incremental compiler's Person view (Examples 1-7) has the same
    LOJ + UNION ALL + CASE structure."""
    from repro.compiler import compile_mapping as cm
    from repro.incremental import IncrementalCompiler, CompiledModel
    from repro.workloads.paper_example import mapping_stage1
    from tests.conftest import customer_smo, employee_smo

    base = mapping_stage1()
    model = CompiledModel(base, cm(base).views)
    compiler = IncrementalCompiler()
    model = compiler.apply(model, employee_smo(model)).model
    model = compiler.apply(model, customer_smo(model)).model
    text = model.views.query_view("Person").to_sql()
    assert "LEFT OUTER JOIN" in text and "UNION ALL" in text
    assert "CASE" in text and "_tCustomer" in text and "_tEmployee" in text
