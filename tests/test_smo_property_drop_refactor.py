"""Unit tests: AddProperty, DropEntity, RefactorAssociationToInheritance."""

import pytest

from repro.algebra import IsNotNull, IsOf, TRUE
from repro.compiler import compile_mapping
from repro.edm import (
    Attribute,
    ClientSchemaBuilder,
    ClientState,
    Entity,
    INT,
    STRING,
)
from repro.errors import SmoError, ValidationError
from repro.incremental import (
    AddProperty,
    CompiledModel,
    DropEntity,
    IncrementalCompiler,
    RefactorAssociationToInheritance,
)
from repro.mapping import Mapping, MappingFragment, check_roundtrip
from repro.relational import Column, ForeignKey, StoreSchema, Table
from repro.workloads.paper_example import mapping_stage3


@pytest.fixture
def compiler():
    return IncrementalCompiler()


@pytest.fixture
def stage3_compiled():
    mapping = mapping_stage3()
    return CompiledModel(mapping, compile_mapping(mapping).views)


class TestAddProperty:
    def test_extend_existing_fragment(self, stage3_compiled, compiler):
        smo = AddProperty("Employee", Attribute("Title", STRING), "Emp", "Title")
        model = compiler.apply(stage3_compiled, smo).model
        fragment = next(
            f for f in model.mapping.fragments_for_set("Persons")
            if f.store_table == "Emp"
        )
        assert fragment.maps_attr("Title") == "Title"
        assert model.store_schema.table("Emp").has_column("Title")

    def test_vertical_split_new_table(self, stage3_compiled, compiler):
        smo = AddProperty(
            "Employee", Attribute("Badge", STRING), "Badges",
            table_foreign_keys=(ForeignKey(("Id",), "Emp", ("Id",)),),
        )
        model = compiler.apply(stage3_compiled, smo).model
        assert model.store_schema.has_table("Badges")
        assert len(model.mapping.fragments_for_table("Badges")) == 1

    def test_roundtrip_after_both_cases(self, stage3_compiled, compiler):
        model = compiler.apply(
            stage3_compiled,
            AddProperty("Employee", Attribute("Title", STRING), "Emp", "Title"),
        ).model
        model = compiler.apply(
            model, AddProperty("Person", Attribute("Nick", STRING), "Nicks")
        ).model
        state = ClientState(model.client_schema)
        state.add_entity("Persons", Entity.of("Person", Id=1, Name="a", Nick="n"))
        state.add_entity(
            "Persons",
            Entity.of("Employee", Id=2, Name="b", Department="d", Title="t", Nick="m"),
        )
        state.add_entity(
            "Persons",
            Entity.of("Customer", Id=3, Name="c", CredScore=1, BillAddr="x", Nick="o"),
        )
        assert check_roundtrip(model.views, state, model.store_schema).ok

    def test_duplicate_attribute_rejected(self, stage3_compiled, compiler):
        smo = AddProperty("Person", Attribute("Name", STRING), "HR", "Name2")
        with pytest.raises(SmoError):
            compiler.apply(stage3_compiled, smo)

    def test_existing_column_rejected(self, stage3_compiled, compiler):
        smo = AddProperty("Person", Attribute("Fresh", STRING), "HR", "Name")
        with pytest.raises(SmoError):
            compiler.apply(stage3_compiled, smo)

    def test_descendant_clash_rejected(self, stage3_compiled, compiler):
        smo = AddProperty("Person", Attribute("Department", STRING), "HR", "D2")
        with pytest.raises(SmoError):
            compiler.apply(stage3_compiled, smo)

    def test_invalid_fk_on_new_table_rejected(self, stage3_compiled, compiler):
        """Customer keys never reach HR (TPC), so a Person-covering table
        with an FK into HR does not validate — a real lossy evolution."""
        smo = AddProperty(
            "Person", Attribute("Nick", STRING), "Nicks",
            table_foreign_keys=(ForeignKey(("Id",), "HR", ("Id",)),),
        )
        with pytest.raises(ValidationError):
            compiler.apply(stage3_compiled, smo)


class TestDropEntity:
    def test_drop_leaf_cleans_everything(self, stage3_compiled, compiler):
        model = compiler.apply(stage3_compiled, DropEntity("Customer")).model
        assert not model.client_schema.has_entity_type("Customer")
        assert len(model.mapping.fragments_for_set("Persons")) == 2
        assert not model.views.has_update_view("Client")
        assert "Customer" not in model.views.query_views
        # the adapted phi1' condition still covers Person and Employee
        state = ClientState(model.client_schema)
        state.add_entity("Persons", Entity.of("Person", Id=1, Name="a"))
        state.add_entity("Persons", Entity.of("Employee", Id=2, Name="b", Department="d"))
        assert check_roundtrip(model.views, state, model.store_schema).ok

    def test_orphaned_table_kept_in_store(self, stage3_compiled, compiler):
        model = compiler.apply(stage3_compiled, DropEntity("Customer")).model
        assert model.store_schema.has_table("Client")

    def test_drop_root_rejected(self, stage3_compiled, compiler):
        with pytest.raises(SmoError):
            compiler.apply(stage3_compiled, DropEntity("Person"))

    def test_drop_non_leaf_rejected(self, compiler, stage3_compiled):
        # make Employee a non-leaf first
        from repro.incremental import AddEntity

        smo = AddEntity.tpt(
            stage3_compiled, "Manager", "Employee", [Attribute("L", INT)], "Mg",
            table_foreign_keys=[ForeignKey(("Id",), "Emp", ("Id",))],
        )
        model = compiler.apply(stage3_compiled, smo).model
        with pytest.raises(SmoError):
            compiler.apply(model, DropEntity("Employee"))

    def test_drop_with_association_rejected(self, incrementally_evolved, compiler):
        with pytest.raises(SmoError):
            compiler.apply(incrementally_evolved, DropEntity("Customer"))

    def test_drop_then_readd(self, stage3_compiled, compiler):
        """Dropping and re-adding a type yields a working model again."""
        from repro.incremental import AddEntity

        model = compiler.apply(stage3_compiled, DropEntity("Customer")).model
        smo = AddEntity.tpc(
            model, "Customer", "Person",
            [Attribute("CredScore", INT), Attribute("BillAddr", STRING)],
            "Client2",
        )
        model = compiler.apply(model, smo).model
        state = ClientState(model.client_schema)
        state.add_entity(
            "Persons",
            Entity.of("Customer", Id=3, Name="c", CredScore=1, BillAddr="x"),
        )
        assert check_roundtrip(model.views, state, model.store_schema).ok


class TestRefactor:
    @pytest.fixture
    def holds_model(self):
        schema = (
            ClientSchemaBuilder()
            .entity("Person2", key=[("Id", INT)], attrs=[("Name", STRING)])
            .entity("Passport", key=[("Pno", INT)], attrs=[("Country", STRING)])
            .entity_set("P2s", "Person2")
            .entity_set("Passports", "Passport")
            .association("Holds", "Person2", "Passport", mult1="1", mult2="0..1")
            .build()
        )
        store = StoreSchema(
            [
                Table("P2", (Column("Id", INT, False), Column("Name", STRING)), ("Id",)),
                Table(
                    "Pass",
                    (Column("Pno", INT, False), Column("Country", STRING),
                     Column("OwnerId", INT, True)),
                    ("Pno",),
                    (ForeignKey(("OwnerId",), "P2", ("Id",)),),
                ),
            ]
        )
        mapping = Mapping(
            schema, store,
            [
                MappingFragment("P2s", False, IsOf("Person2"), "P2", TRUE,
                                (("Id", "Id"), ("Name", "Name"))),
                MappingFragment("Passports", False, IsOf("Passport"), "Pass", TRUE,
                                (("Pno", "Pno"), ("Country", "Country"))),
                MappingFragment("Holds", True, TRUE, "Pass", IsNotNull("OwnerId"),
                                (("Passport.Pno", "Pno"), ("Person2.Id", "OwnerId"))),
            ],
        )
        return CompiledModel(mapping, compile_mapping(mapping).views)

    def test_refactor_rekeys_and_derives(self, holds_model, compiler):
        model = compiler.apply(
            holds_model, RefactorAssociationToInheritance("Holds")
        ).model
        assert model.client_schema.entity_type("Passport").parent == "Person2"
        assert not model.client_schema.has_association("Holds")
        assert not model.client_schema.has_entity_set("Passports")
        assert model.store_schema.table("Pass").primary_key == ("OwnerId",)

    def test_refactor_roundtrips(self, holds_model, compiler):
        model = compiler.apply(
            holds_model, RefactorAssociationToInheritance("Holds")
        ).model
        state = ClientState(model.client_schema)
        state.add_entity("P2s", Entity.of("Person2", Id=1, Name="a"))
        state.add_entity(
            "P2s", Entity.of("Passport", Id=2, Name="b", Pno=77, Country="CL")
        )
        assert check_roundtrip(model.views, state, model.store_schema).ok
        full = compile_mapping(model.mapping.clone())
        assert check_roundtrip(full.views, state, model.store_schema).ok

    def test_wrong_cardinality_rejected(self, compiler):
        schema = (
            ClientSchemaBuilder()
            .entity("A", key=[("Id", INT)])
            .entity("B", key=[("Id", INT)])
            .entity_set("As", "A")
            .entity_set("Bs", "B")
            .association("R", "A", "B", mult1="*", mult2="*")
            .build()
        )
        store = StoreSchema(
            [
                Table("TA", (Column("Id", INT, False),), ("Id",)),
                Table("TB", (Column("Id", INT, False),), ("Id",)),
                Table("J", (Column("A", INT, False), Column("B", INT, False)),
                      ("A", "B")),
            ]
        )
        mapping = Mapping(
            schema, store,
            [
                MappingFragment("As", False, IsOf("A"), "TA", TRUE, (("Id", "Id"),)),
                MappingFragment("Bs", False, IsOf("B"), "TB", TRUE, (("Id", "Id"),)),
                MappingFragment("R", True, TRUE, "J", TRUE,
                                (("A.Id", "A"), ("B.Id", "B"))),
            ],
        )
        model = CompiledModel(mapping, compile_mapping(mapping).views)
        with pytest.raises(SmoError):
            compiler.apply(model, RefactorAssociationToInheritance("R"))

    def test_attribute_clash_rejected(self, compiler):
        schema = (
            ClientSchemaBuilder()
            .entity("A", key=[("Id", INT)], attrs=[("Name", STRING)])
            .entity("B", key=[("Bid", INT)], attrs=[("Name", STRING)])
            .entity_set("As", "A")
            .entity_set("Bs", "B")
            .association("R", "A", "B", mult1="1", mult2="0..1")
            .build()
        )
        store = StoreSchema(
            [
                Table("TA", (Column("Id", INT, False), Column("Name", STRING)), ("Id",)),
                Table(
                    "TB",
                    (Column("Bid", INT, False), Column("Name", STRING),
                     Column("Aid", INT, True)),
                    ("Bid",),
                    (ForeignKey(("Aid",), "TA", ("Id",)),),
                ),
            ]
        )
        mapping = Mapping(
            schema, store,
            [
                MappingFragment("As", False, IsOf("A"), "TA", TRUE,
                                (("Id", "Id"), ("Name", "Name"))),
                MappingFragment("Bs", False, IsOf("B"), "TB", TRUE,
                                (("Bid", "Bid"), ("Name", "Name"))),
                MappingFragment("R", True, TRUE, "TB", IsNotNull("Aid"),
                                (("B.Bid", "Bid"), ("A.Id", "Aid"))),
            ],
        )
        model = CompiledModel(mapping, compile_mapping(mapping).views)
        with pytest.raises(SmoError):
            compiler.apply(model, RefactorAssociationToInheritance("R"))
