"""Tests: update translation (client deltas → store INSERT/DELETE/UPDATE)."""

import pytest

from repro.compiler import compile_mapping
from repro.edm import ClientState, Entity
from repro.mapping import apply_update_views
from repro.query import apply_delta, diff_store_states, translate_update
from repro.query.dml import to_sql
from repro.stategen import random_client_state
from repro.workloads.paper_example import mapping_stage4


@pytest.fixture(scope="module")
def setup():
    mapping = mapping_stage4()
    views = compile_mapping(mapping).views
    return mapping, views


def _base_state(schema):
    state = ClientState(schema)
    state.add_entity("Persons", Entity.of("Person", Id=1, Name="ann"))
    state.add_entity("Persons", Entity.of("Employee", Id=2, Name="bob", Department="hr"))
    state.add_entity(
        "Persons", Entity.of("Customer", Id=3, Name="cid", CredScore=5, BillAddr="x")
    )
    state.add_association("Supports", (3,), (2,))
    return state


class TestTranslateUpdate:
    def test_insert_entity(self, setup):
        mapping, views = setup
        old = _base_state(mapping.client_schema)
        new = _base_state(mapping.client_schema)
        new.add_entity("Persons", Entity.of("Person", Id=9, Name="zoe"))
        delta = translate_update(views, old, new, mapping.store_schema)
        assert delta.tables["HR"].inserts
        assert not delta.tables["HR"].deletes
        assert "Emp" not in delta.tables  # untouched table: no statements

    def test_delete_entity(self, setup):
        mapping, views = setup
        old = _base_state(mapping.client_schema)
        new = ClientState(mapping.client_schema)
        new.add_entity("Persons", Entity.of("Person", Id=1, Name="ann"))
        new.add_entity("Persons", Entity.of("Employee", Id=2, Name="bob", Department="hr"))
        delta = translate_update(views, old, new, mapping.store_schema)
        assert delta.tables["Client"].deletes

    def test_attribute_change_is_update(self, setup):
        """A renamed person is one UPDATE on HR, not delete+insert."""
        mapping, views = setup
        old = _base_state(mapping.client_schema)
        new = _base_state(mapping.client_schema)
        # rebuild with a changed name for Id=1
        new = ClientState(mapping.client_schema)
        new.add_entity("Persons", Entity.of("Person", Id=1, Name="ANN"))
        new.add_entity("Persons", Entity.of("Employee", Id=2, Name="bob", Department="hr"))
        new.add_entity(
            "Persons", Entity.of("Customer", Id=3, Name="cid", CredScore=5, BillAddr="x")
        )
        new.add_association("Supports", (3,), (2,))
        delta = translate_update(views, old, new, mapping.store_schema)
        hr = delta.tables["HR"]
        assert len(hr.updates) == 1 and not hr.inserts and not hr.deletes

    def test_association_change_touches_fk_column(self, setup):
        mapping, views = setup
        old = _base_state(mapping.client_schema)
        new = _base_state(mapping.client_schema)
        # drop the Supports link: rebuild without it
        new = ClientState(mapping.client_schema)
        new.add_entity("Persons", Entity.of("Person", Id=1, Name="ann"))
        new.add_entity("Persons", Entity.of("Employee", Id=2, Name="bob", Department="hr"))
        new.add_entity(
            "Persons", Entity.of("Customer", Id=3, Name="cid", CredScore=5, BillAddr="x")
        )
        delta = translate_update(views, old, new, mapping.store_schema)
        client = delta.tables["Client"]
        assert len(client.updates) == 1  # Eid goes to NULL
        rendered = to_sql(delta)
        assert "UPDATE Client" in rendered and "Eid" in rendered

    def test_noop_change_is_empty(self, setup):
        mapping, views = setup
        old = _base_state(mapping.client_schema)
        new = _base_state(mapping.client_schema)
        delta = translate_update(views, old, new, mapping.store_schema)
        assert delta.empty
        assert "empty" in str(delta)


class TestApplyDelta:
    def test_delta_application_reaches_target(self, setup):
        """apply_delta(V(c), Δ) == V(c′) for random state pairs."""
        mapping, views = setup
        for seed in range(6):
            old = random_client_state(mapping.client_schema, seed=seed)
            new = random_client_state(mapping.client_schema, seed=seed + 100)
            old_store = apply_update_views(views, old, mapping.store_schema)
            new_store = apply_update_views(views, new, mapping.store_schema)
            delta = diff_store_states(old_store, new_store)
            patched = apply_delta(old_store, delta)
            assert patched.equals(new_store), f"seed {seed}"

    def test_statement_count(self, setup):
        mapping, views = setup
        old = _base_state(mapping.client_schema)
        new = ClientState(mapping.client_schema)
        delta = translate_update(views, old, new, mapping.store_schema)
        assert delta.statement_count() == 4  # HR x2 deletes? see below
