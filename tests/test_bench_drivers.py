"""Tests: the figure drivers produce well-formed results on tiny inputs."""


from repro.bench import fig4, fig9, fig10
from repro.bench.harness import Measurement


class TestFig4Driver:
    def test_tiny_grid(self):
        results = fig4.run(ns=[1], ms=[1, 2], budget_seconds=30)
        assert set(results) == {"TPH", "TPT"}
        for style in ("TPH", "TPT"):
            assert set(results[style]) == {(1, 1), (1, 2)}
            for measurement in results[style].values():
                assert measurement.seconds is not None

    def test_censoring_short_circuits_row(self):
        """Once a row censors, larger M is marked censored without running.

        The budget must be small but large enough that its (strided)
        wall-clock check actually fires inside the first point's work."""
        results = fig4.run(ns=[2], ms=[4, 5, 6], budget_seconds=0.05)
        row = results["TPH"]
        assert row[(2, 4)].censored
        assert row[(2, 6)].censored

    def test_point_runner(self):
        point = fig4.run_point(1, 1, "TPT", budget_seconds=30)
        assert point.params["types"] == 2


class TestFig9Driver:
    def test_small_run(self):
        results = fig9.run(n_types=12, budget_seconds=120, repeats=1)
        labels = [m.label for m in results["smos"]]
        assert labels == [
            "AE-TPT", "AE-TPC", "AE-TPH", "AA-FK", "AA-JT", "AP",
            "AEP-1p-TPT", "AEP-2p-TPT", "AEP-3p-TPT",
        ]
        assert isinstance(results["full"], Measurement)
        assert results["full"].seconds is not None
        # every SMO beats the full compile
        for m in results["smos"]:
            assert m.seconds is not None
            assert m.seconds < results["full"].seconds

    def test_build_model(self):
        model = fig9.build_model(5)
        assert len(model.client_schema.entity_sets) == 5
        assert model.views.query_views


class TestFig10Driver:
    def test_small_run(self):
        results = fig10.run(scale=0.1, budget_seconds=120, repeats=1)
        assert len(results["smos"]) == 9
        assert results["full"].seconds is not None
        assert results["types"] > 10

    def test_suite_anchors_resolve(self):
        suite = fig10.suite_for(0.1, seed=7)
        assert len(suite) == 9
