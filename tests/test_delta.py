"""Delta semantics: composition, inverses, abort-safety, plan purity.

The tentpole guarantees of the MappingDelta layer:

* every SMO kind emits a delta whose ``inverse()`` replays the evolved
  model back to the original, bit-for-bit by structural fingerprint;
* composition is plain concatenation, hence associative, and replaying a
  composed delta equals replaying the parts in order;
* an aborted SMO leaves the input model untouched — for every kind;
* ``plan()`` provably performs no mutation.
"""

import pytest

from tests.conftest import customer_smo, employee_smo, supports_smo
from repro.algebra import Comparison, IsNotNull, IsOf, TRUE, and_
from repro.compiler import compile_mapping
from repro.edm import (
    Attribute,
    ClientSchemaBuilder,
    INT,
    STRING,
)
from repro.errors import ReproError, SmoError, ValidationError
from repro.incremental import (
    AddAssociationFK,
    AddAssociationJT,
    AddEntity,
    AddEntityPart,
    AddEntityTPH,
    AddProperty,
    CompiledModel,
    DropAssociation,
    DropEntity,
    IncrementalCompiler,
    MappingDelta,
    Partition,
    RefactorAssociationToInheritance,
)
from repro.mapping import Mapping, MappingFragment
from repro.relational import Column, ForeignKey, StoreSchema, Table
from repro.workloads.paper_example import mapping_stage3


@pytest.fixture
def compiler():
    return IncrementalCompiler()


@pytest.fixture
def stage3_compiled():
    mapping = mapping_stage3()
    return CompiledModel(mapping, compile_mapping(mapping).views)


@pytest.fixture
def tph_base():
    """A one-type hierarchy already mapped TPH (with a Disc column)."""
    schema = (
        ClientSchemaBuilder()
        .entity("Vehicle", key=[("Id", INT)], attrs=[("Make", STRING)])
        .entity_set("Vehicles", "Vehicle")
        .build()
    )
    store = StoreSchema(
        [
            Table(
                "V",
                (Column("Id", INT, False), Column("Make", STRING),
                 Column("Disc", STRING, False)),
                ("Id",),
            )
        ]
    )
    mapping = Mapping(
        schema, store,
        [
            MappingFragment(
                "Vehicles", False, IsOf("Vehicle"), "V",
                Comparison("Disc", "=", "Vehicle"),
                (("Id", "Id"), ("Make", "Make")),
            )
        ],
    )
    return CompiledModel(mapping, compile_mapping(mapping).views)


@pytest.fixture
def flat_base():
    """A one-type hierarchy mapped 1:1 with no discriminator column."""
    schema = (
        ClientSchemaBuilder()
        .entity("Node", key=[("Id", INT)])
        .entity_set("Nodes", "Node")
        .build()
    )
    store = StoreSchema([Table("N", (Column("Id", INT, False),), ("Id",))])
    mapping = Mapping(
        schema, store,
        [MappingFragment("Nodes", False, IsOf("Node"), "N", TRUE, (("Id", "Id"),))],
    )
    return CompiledModel(mapping, compile_mapping(mapping).views)


@pytest.fixture
def holds_model():
    """Person2 --(Holds, 1 - 0..1)--> Passport, FK-mapped into Pass."""
    schema = (
        ClientSchemaBuilder()
        .entity("Person2", key=[("Id", INT)], attrs=[("Name", STRING)])
        .entity("Passport", key=[("Pno", INT)], attrs=[("Country", STRING)])
        .entity_set("P2s", "Person2")
        .entity_set("Passports", "Passport")
        .association("Holds", "Person2", "Passport", mult1="1", mult2="0..1")
        .build()
    )
    store = StoreSchema(
        [
            Table("P2", (Column("Id", INT, False), Column("Name", STRING)), ("Id",)),
            Table(
                "Pass",
                (Column("Pno", INT, False), Column("Country", STRING),
                 Column("OwnerId", INT, True)),
                ("Pno",),
                (ForeignKey(("OwnerId",), "P2", ("Id",)),),
            ),
        ]
    )
    mapping = Mapping(
        schema, store,
        [
            MappingFragment("P2s", False, IsOf("Person2"), "P2", TRUE,
                            (("Id", "Id"), ("Name", "Name"))),
            MappingFragment("Passports", False, IsOf("Passport"), "Pass", TRUE,
                            (("Pno", "Pno"), ("Country", "Country"))),
            MappingFragment("Holds", True, TRUE, "Pass", IsNotNull("OwnerId"),
                            (("Passport.Pno", "Pno"), ("Person2.Id", "OwnerId"))),
        ],
    )
    return CompiledModel(mapping, compile_mapping(mapping).views)


def knows_jt_smo(model):
    return AddAssociationJT.create(
        model, "Knows", "Customer", "Employee", "KnowsJT",
        {"Customer.Id": "CustId", "Employee.Id": "EmpId"},
        mult1="*", mult2="*",
        table_foreign_keys=[
            ForeignKey(("CustId",), "Client", ("Cid",)),
            ForeignKey(("EmpId",), "Emp", ("Id",)),
        ],
    )


def part_smo():
    return AddEntityPart(
        name="P", parent="Node",
        new_attributes=(Attribute("v", INT),),
        anchor="Node",
        partitions=(
            Partition.of(("Id", "v"), Comparison("v", ">=", 0), "Pos"),
            Partition.of(("Id", "v"), Comparison("v", "<", 0), "Neg"),
        ),
    )


# Every SMO kind as (base fixture name, factory over the base model).
ALL_KINDS = [
    ("ae-tpt", "stage1_compiled", employee_smo),
    ("ae-tpc", "stage1_compiled", customer_smo),
    ("ae-tph", "tph_base",
     lambda m: AddEntityTPH.create(m, "Car", "Vehicle", [], "V", "Disc", "Car")),
    ("aep", "flat_base", lambda m: part_smo()),
    ("ap", "stage3_compiled",
     lambda m: AddProperty("Employee", Attribute("Title", STRING), "Emp", "Title")),
    ("aa-fk", "stage3_compiled", supports_smo),
    ("aa-jt", "stage3_compiled", knows_jt_smo),
    ("de", "stage3_compiled", lambda m: DropEntity("Customer")),
    ("da", "holds_model", lambda m: DropAssociation("Holds")),
    ("rf", "holds_model",
     lambda m: RefactorAssociationToInheritance("Holds")),
]


@pytest.mark.parametrize(
    "fixture_name,factory", [(f, fac) for _, f, fac in ALL_KINDS],
    ids=[kind for kind, _, _ in ALL_KINDS],
)
class TestInverseRoundtrip:
    def test_apply_then_inverse_restores_fingerprint(
        self, fixture_name, factory, compiler, request
    ):
        model = request.getfixturevalue(fixture_name)
        baseline = model.fingerprint()
        result = compiler.apply(model, factory(model))

        assert not result.delta.is_empty
        # the input model was never touched
        assert model.fingerprint() == baseline
        # the evolution actually changed something
        assert result.model.fingerprint() != baseline
        # replaying the inverse restores the original, structurally
        restored = result.model.apply(result.delta.inverse())
        assert restored.fingerprint() == baseline

    def test_replaying_delta_reproduces_evolution(
        self, fixture_name, factory, compiler, request
    ):
        """apply(delta) on the base model == the compiler's own result."""
        model = request.getfixturevalue(fixture_name)
        result = compiler.apply(model, factory(model))
        replayed = model.apply(result.delta)
        assert replayed.fingerprint() == result.model.fingerprint()


class TestComposition:
    def test_compose_is_associative_and_replays(self, stage1_compiled, compiler):
        model = stage1_compiled
        r1 = compiler.apply(model, employee_smo(model))
        r2 = compiler.apply(r1.model, customer_smo(r1.model))
        r3 = compiler.apply(r2.model, supports_smo(r2.model))
        d1, d2, d3 = r1.delta, r2.delta, r3.delta

        left = d1.compose(d2).compose(d3)
        right = d1.compose(d2.compose(d3))
        assert left.ops == right.ops
        assert len(left) == len(d1) + len(d2) + len(d3)

        # replaying the composition equals the step-by-step evolution
        assert model.apply(left).fingerprint() == r3.model.fingerprint()
        # and its inverse unwinds all three steps at once
        assert (
            r3.model.apply(left.inverse()).fingerprint() == model.fingerprint()
        )

    def test_empty_delta_is_identity(self, stage3_compiled):
        empty = MappingDelta()
        assert empty.is_empty
        composed = empty.compose(empty)
        assert composed.is_empty
        assert (
            stage3_compiled.apply(empty).fingerprint()
            == stage3_compiled.fingerprint()
        )


class TestTouchedNeighborhood:
    def test_tpt_neighborhood_names_set_and_tables(self, stage1_compiled, compiler):
        result = compiler.apply(stage1_compiled, employee_smo(stage1_compiled))
        neighborhood = result.delta.touched_neighborhood(result.model.mapping)
        assert "Persons" in neighborhood.sets
        # only the touched table — the unchanged HR stays out of the region
        assert "Emp" in neighborhood.tables
        assert "HR" not in neighborhood.tables
        # but the new table's FK into HR is still re-checked
        assert ("Emp", 0) in neighborhood.foreign_keys

    def test_dropped_table_not_in_neighborhood(self, stage3_compiled, compiler):
        result = compiler.apply(stage3_compiled, DropEntity("Customer"))
        neighborhood = result.delta.touched_neighborhood(result.model.mapping)
        # Client lost its only fragment: no longer mapped, so not validated
        assert "Client" not in neighborhood.tables
        assert "Persons" in neighborhood.sets


def _failing_smos():
    return [
        ("ae-mapped-table", "stage3_compiled", SmoError,
         lambda m: AddEntity.tpt(
             m, "Manager", "Employee", [Attribute("L", INT)], "HR")),
        ("aep-coverage", "flat_base", ValidationError,
         lambda m: AddEntityPart(
             name="P", parent="Node",
             new_attributes=(Attribute("v", INT),),
             anchor="Node",
             partitions=(
                 Partition.of(("Id", "v"), Comparison("v", ">", 0), "Pos"),
                 Partition.of(("Id", "v"), Comparison("v", "<", 0), "Neg"),
             ))),
        ("aep-unsat", "flat_base", ValidationError,
         lambda m: AddEntityPart(
             name="P", parent="Node",
             new_attributes=(Attribute("v", INT),),
             anchor="Node",
             partitions=(
                 Partition.of(("Id", "v"), TRUE, "All"),
                 Partition.of(
                     ("Id", "v"),
                     and_(Comparison("v", ">", 5), Comparison("v", "<", 3)),
                     "Never"),
             ))),
        ("ap-duplicate", "stage3_compiled", SmoError,
         lambda m: AddProperty("Person", Attribute("Name", STRING), "HR", "N2")),
        ("aa-fk-many-many", "stage3_compiled", SmoError,
         lambda m: AddAssociationFK.create(
             m, "S", "Customer", "Employee", "Client",
             {"Customer.Id": "Cid", "Employee.Id": "Eid"},
             mult1="*", mult2="*")),
        ("aa-jt-mapped-table", "stage3_compiled", SmoError,
         lambda m: AddAssociationJT.create(
             m, "Knows", "Customer", "Employee", "Client",
             {"Customer.Id": "CustId", "Employee.Id": "EmpId"})),
        ("de-root", "stage3_compiled", SmoError,
         lambda m: DropEntity("Person")),
        ("da-missing", "stage3_compiled", SmoError,
         lambda m: DropAssociation("Nope")),
        ("rf-bad-cardinality", "stage3_compiled", SmoError,
         lambda m: RefactorAssociationToInheritance("Nope2")),
    ]


@pytest.mark.parametrize(
    "fixture_name,exception,factory",
    [(f, e, fac) for _, f, e, fac in _failing_smos()],
    ids=[kind for kind, _, _, _ in _failing_smos()],
)
def test_abort_leaves_original_untouched(
    fixture_name, exception, factory, compiler, request
):
    """A failing hook — precondition or validation — mutates nothing."""
    model = request.getfixturevalue(fixture_name)
    baseline = model.fingerprint()
    with pytest.raises(exception):
        compiler.apply(model, factory(model))
    assert model.fingerprint() == baseline


def test_tph_stale_discriminator_abort(tph_base, compiler):
    """Mid-pipeline validation failure: the already-evolved working copy
    is discarded with the delta, the input model survives."""
    model = compiler.apply(
        tph_base, AddEntityTPH.create(tph_base, "Car", "Vehicle", [], "V", "Disc", "Car")
    ).model
    baseline = model.fingerprint()
    smo = AddEntityTPH.create(model, "Truck", "Vehicle", [], "V", "Disc", "Car")
    with pytest.raises(ValidationError):
        compiler.apply(model, smo)
    assert model.fingerprint() == baseline


class TestPlanPurity:
    def test_plan_performs_no_mutation(self, stage3_compiled, compiler):
        baseline = stage3_compiled.fingerprint()
        plan = compiler.plan(
            stage3_compiled,
            [AddProperty("Employee", Attribute("Title", STRING), "Emp", "Title")],
        )
        assert plan.ok
        assert not plan.delta.is_empty
        assert plan.check_names
        assert stage3_compiled.fingerprint() == baseline

    def test_failing_plan_reports_error_without_mutation(
        self, stage3_compiled, compiler
    ):
        baseline = stage3_compiled.fingerprint()
        plan = compiler.plan(stage3_compiled, [DropEntity("Person")])
        assert not plan.ok
        assert isinstance(plan.error, ReproError)
        assert plan.check_names == ()
        assert "ABORT" in plan.describe()
        assert stage3_compiled.fingerprint() == baseline

    def test_plan_matches_batch(self, stage3_compiled, compiler):
        """The dry-run names exactly the checks the real batch schedules."""
        smos = [
            AddProperty("Employee", Attribute("Title", STRING), "Emp", "Title")
        ]
        plan = compiler.plan(stage3_compiled, smos)
        batch = compiler.compile_batch(stage3_compiled, smos)
        assert set(plan.check_names) == set(batch.check_names)
        assert plan.delta.summary() == batch.delta.summary()
