"""Unit tests: τ constructors and the Entity-SQL printer."""

import pytest

from repro.algebra import (
    AssociationCtor,
    Col,
    Comparison,
    Const,
    EntityCtor,
    IfCtor,
    IsNotNull,
    IsOf,
    IsOfOnly,
    ProjItem,
    Project,
    RowCtor,
    Select,
    TableScan,
    condition_to_sql,
    constructor_to_sql,
    query_to_sql,
    view_to_sql,
)
from repro.errors import EvaluationError


class TestEntityCtor:
    def test_identity(self):
        ctor = EntityCtor.identity("E", ["a", "b"])
        entity = ctor.construct({"a": 1, "b": 2, "extra": 9})
        assert entity.concrete_type == "E"
        assert entity["a"] == 1 and entity["b"] == 2

    def test_constant_assignment(self):
        ctor = EntityCtor("E", (("a", Col("a")), ("g", Const("M"))))
        entity = ctor.construct({"a": 1})
        assert entity["g"] == "M"

    def test_missing_column_raises(self):
        ctor = EntityCtor.identity("E", ["a"])
        with pytest.raises(EvaluationError):
            ctor.construct({"b": 1})

    def test_constructed_types(self):
        assert EntityCtor.identity("E", []).constructed_types() == ("E",)


class TestIfCtor:
    def _chain(self):
        return IfCtor(
            Comparison("t1", "=", True),
            EntityCtor.identity("A", ["k"]),
            IfCtor(
                Comparison("t2", "=", True),
                EntityCtor.identity("B", ["k"]),
                EntityCtor.identity("C", ["k"]),
            ),
        )

    def test_branch_selection(self):
        chain = self._chain()
        assert chain.construct({"k": 1, "t1": True}).concrete_type == "A"
        assert chain.construct({"k": 1, "t1": None, "t2": True}).concrete_type == "B"
        assert chain.construct({"k": 1}).concrete_type == "C"

    def test_null_flag_falls_through(self):
        """NULL flags (padded by outer joins) select the else branch —
        Figure 2's `_from2 IS NOT NULL` guard, built into our semantics."""
        chain = self._chain()
        assert chain.construct({"k": 1, "t1": None, "t2": None}).concrete_type == "C"

    def test_constructed_types(self):
        assert set(self._chain().constructed_types()) == {"A", "B", "C"}

    def test_type_atom_in_ctor_condition_rejected(self):
        bad = IfCtor(IsOf("X"), EntityCtor.identity("A", []), EntityCtor.identity("B", []))
        with pytest.raises(EvaluationError):
            bad.construct({})


class TestRowAndAssociationCtor:
    def test_row_ctor(self):
        ctor = RowCtor("T", (("a", Col("x")), ("b", Const(None))))
        assert ctor.construct({"x": 7}) == {"a": 7, "b": None}

    def test_association_ctor_order_and_map(self):
        ctor = AssociationCtor.identity("A", ["p.Id", "q.Id"])
        row = {"p.Id": 1, "q.Id": 2}
        assert ctor.construct(row) == (1, 2)
        assert ctor.construct_map(row) == {"p.Id": 1, "q.Id": 2}


class TestPrinter:
    def test_condition_rendering(self):
        c = IsOfOnly("Person") | IsOf("Employee")
        text = condition_to_sql(c)
        assert "IS OF (ONLY Person)" in text
        assert "IS OF Employee" in text

    def test_literal_rendering(self):
        assert "NULL" in condition_to_sql(Comparison("a", "=", None))
        assert "'it''s'" in condition_to_sql(Comparison("a", "=", "it's"))

    def test_query_rendering_merges_select_into_where(self):
        q = Project(
            Select(TableScan("HR"), IsNotNull("Id")),
            (ProjItem("Id", Col("Id")),),
        )
        text = query_to_sql(q)
        assert text.splitlines()[0] == "SELECT Id"
        assert "WHERE Id IS NOT NULL" in text

    def test_case_chain_rendering(self):
        ctor = IfCtor(
            Comparison("t", "=", True),
            EntityCtor.identity("A", ["k"]),
            EntityCtor.identity("B", ["k"]),
        )
        text = constructor_to_sql(ctor)
        assert "CASE" in text and "WHEN" in text and "ELSE" in text

    def test_view_rendering(self):
        text = view_to_sql(
            "V", TableScan("T"), EntityCtor.identity("E", ["a"])
        )
        assert text.startswith("V =")
        assert "SELECT VALUE" in text
