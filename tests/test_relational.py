"""Unit tests: store schemas, store states, constraint checking."""

import pytest

from repro.edm.types import INT, STRING
from repro.errors import SchemaError
from repro.relational import (
    Column,
    ForeignKey,
    StoreSchema,
    StoreState,
    Table,
    check_all,
    check_foreign_keys,
    check_primary_keys,
    is_consistent,
    make_row,
    row_value,
)


def two_tables() -> StoreSchema:
    return StoreSchema(
        [
            Table("Parent", (Column("Id", INT, False), Column("N", STRING)), ("Id",)),
            Table(
                "Child",
                (Column("Id", INT, False), Column("Pid", INT, True)),
                ("Id",),
                (ForeignKey(("Pid",), "Parent", ("Id",)),),
            ),
        ]
    )


class TestTableDefinition:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            Table("T", (Column("a", INT, False), Column("a", INT)), ("a",))

    def test_missing_pk_column_rejected(self):
        with pytest.raises(SchemaError):
            Table("T", (Column("a", INT, False),), ("b",))

    def test_nullable_pk_rejected(self):
        with pytest.raises(SchemaError):
            Table("T", (Column("a", INT, True),), ("a",))

    def test_pk_required(self):
        with pytest.raises(SchemaError):
            Table("T", (Column("a", INT, False),), ())

    def test_fk_arity_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            ForeignKey(("a", "b"), "X", ("c",))

    def test_fk_missing_column_rejected(self):
        with pytest.raises(SchemaError):
            Table(
                "T",
                (Column("a", INT, False),),
                ("a",),
                (ForeignKey(("zz",), "X", ("c",)),),
            )


class TestStoreSchema:
    def test_duplicate_table_rejected(self):
        store = two_tables()
        with pytest.raises(SchemaError):
            store.add_table(Table("Parent", (Column("Id", INT, False),), ("Id",)))

    def test_validate_fk_target(self):
        store = StoreSchema(
            [
                Table(
                    "T",
                    (Column("a", INT, False),),
                    ("a",),
                    (ForeignKey(("a",), "Missing", ("x",)),),
                )
            ]
        )
        with pytest.raises(SchemaError):
            store.validate()

    def test_validate_fk_must_hit_pk(self):
        store = StoreSchema(
            [
                Table("A", (Column("x", INT, False), Column("y", INT)), ("x",)),
                Table(
                    "B",
                    (Column("z", INT, False),),
                    ("z",),
                    (ForeignKey(("z",), "A", ("y",)),),
                ),
            ]
        )
        with pytest.raises(SchemaError):
            store.validate()

    def test_drop_table_with_incoming_fk_rejected(self):
        store = two_tables()
        with pytest.raises(SchemaError):
            store.drop_table("Parent")

    def test_drop_leaf_table(self):
        store = two_tables()
        store.drop_table("Child")
        assert not store.has_table("Child")

    def test_clone_independent(self):
        store = two_tables()
        copy = store.clone()
        copy.drop_table("Child")
        assert store.has_table("Child")


class TestStoreState:
    def test_add_and_dedup(self):
        state = StoreState(two_tables())
        state.add_row("Parent", {"Id": 1, "N": "a"})
        state.add_row("Parent", {"Id": 1, "N": "a"})  # duplicate: set semantics
        assert len(state.rows("Parent")) == 1

    def test_wrong_columns_rejected(self):
        state = StoreState(two_tables())
        with pytest.raises(SchemaError):
            state.add_row("Parent", {"Id": 1})

    def test_null_in_non_nullable_rejected(self):
        state = StoreState(two_tables())
        with pytest.raises(SchemaError):
            state.add_row("Parent", {"Id": None, "N": "a"})

    def test_domain_violation_rejected(self):
        state = StoreState(two_tables())
        with pytest.raises(SchemaError):
            state.add_row("Parent", {"Id": "one", "N": "a"})

    def test_row_value(self):
        row = make_row(a=1, b=2)
        assert row_value(row, "b") == 2

    def test_equals(self):
        s1, s2 = StoreState(two_tables()), StoreState(two_tables())
        s1.add_row("Parent", {"Id": 1, "N": "a"})
        s2.add_row("Parent", {"Id": 1, "N": "a"})
        assert s1.equals(s2)
        s2.add_row("Parent", {"Id": 2, "N": "b"})
        assert not s1.equals(s2)


class TestConstraints:
    def test_consistent_state(self):
        state = StoreState(two_tables())
        state.add_row("Parent", {"Id": 1, "N": "a"})
        state.add_row("Child", {"Id": 10, "Pid": 1})
        assert is_consistent(state)

    def test_dangling_fk_detected(self):
        state = StoreState(two_tables())
        state.add_row("Child", {"Id": 10, "Pid": 99})
        violations = check_foreign_keys(state)
        assert len(violations) == 1
        assert violations[0].kind == "foreign-key"

    def test_null_fk_vacuous(self):
        state = StoreState(two_tables())
        state.add_row("Child", {"Id": 10, "Pid": None})
        assert is_consistent(state)

    def test_duplicate_pk_detected(self):
        state = StoreState(two_tables())
        state.add_row("Parent", {"Id": 1, "N": "a"})
        state.add_row("Parent", {"Id": 1, "N": "b"})  # same key, different row
        violations = check_primary_keys(state)
        assert violations and violations[0].kind == "primary-key"

    def test_check_all_combines(self):
        state = StoreState(two_tables())
        state.add_row("Parent", {"Id": 1, "N": "a"})
        state.add_row("Parent", {"Id": 1, "N": "b"})
        state.add_row("Child", {"Id": 5, "Pid": 42})
        kinds = {v.kind for v in check_all(state)}
        assert kinds == {"primary-key", "foreign-key"}
