"""Remaining behaviour coverage: error taxonomy, budgets, renderings,
paper-example stages."""

import time

import pytest

from repro.budget import WorkBudget
from repro.errors import (
    CompilationBudgetExceeded,
    EvaluationError,
    MappingError,
    ReproError,
    SchemaError,
    SmoError,
    ValidationError,
)


class TestErrorTaxonomy:
    def test_all_derive_from_repro_error(self):
        for cls in (
            SchemaError,
            MappingError,
            ValidationError,
            SmoError,
            EvaluationError,
            CompilationBudgetExceeded,
        ):
            assert issubclass(cls, ReproError)

    def test_validation_error_carries_check(self):
        err = ValidationError("boom", check="coverage")
        assert err.check == "coverage"
        assert ValidationError("boom").check == "validation"

    def test_budget_error_carries_elapsed(self):
        err = CompilationBudgetExceeded("late", elapsed=1.5)
        assert err.elapsed == 1.5


class TestWorkBudgetClock:
    def test_wall_clock_budget_trips_after_stride(self):
        budget = WorkBudget(max_seconds=0.01)
        time.sleep(0.02)
        with pytest.raises(CompilationBudgetExceeded):
            # needs enough ticks to cross the clock-check stride
            for _ in range(10000):
                budget.tick()

    def test_bulk_ticks(self):
        budget = WorkBudget(max_steps=100)
        budget.tick(50)
        budget.tick(50)
        with pytest.raises(CompilationBudgetExceeded):
            budget.tick(1)


class TestRenderings:
    def test_union_all_sql(self):
        from repro.algebra import (
            Project,
            TableScan,
            UnionAll,
            items_from_names,
            query_to_sql,
        )

        q = UnionAll(
            (
                Project(TableScan("A"), items_from_names(["x"])),
                Project(TableScan("B"), items_from_names(["x"])),
            )
        )
        text = query_to_sql(q)
        assert "UNION ALL" in text

    def test_join_sql_keywords(self):
        from repro.algebra import (
            FullOuterJoin,
            Join,
            LeftOuterJoin,
            TableScan,
            query_to_sql,
        )

        assert "NATURAL JOIN" in query_to_sql(Join(TableScan("A"), TableScan("B")))
        assert "LEFT OUTER" in query_to_sql(
            LeftOuterJoin(TableScan("A"), TableScan("B"))
        )
        assert "FULL OUTER" in query_to_sql(
            FullOuterJoin(TableScan("A"), TableScan("B"))
        )

    def test_literal_booleans(self):
        from repro.algebra import Comparison, condition_to_sql

        assert condition_to_sql(Comparison("a", "=", True)).endswith("True")
        assert condition_to_sql(Comparison("a", "=", False)).endswith("False")

    def test_query_node_strs(self):
        from repro.algebra import Join, LeftOuterJoin, TableScan

        assert "ON" in str(Join(TableScan("A"), TableScan("B"), on=("k",)))
        assert "⟕" in str(LeftOuterJoin(TableScan("A"), TableScan("B")))

    def test_fragment_str(self, stage4_mapping):
        rendered = str(stage4_mapping.fragments[0])
        assert "Persons" in rendered and "HR" in rendered and "=" in rendered


class TestPaperExampleStages:
    @pytest.mark.parametrize("stage", [1, 2, 3])
    def test_intermediate_stages_compile(self, stage):
        from repro.compiler import compile_mapping
        from repro.workloads import paper_example

        mapping = getattr(paper_example, f"mapping_stage{stage}")()
        result = compile_mapping(mapping)
        assert result.report is not None

    def test_stage2_original_phi1_still_valid(self):
        """Σ2 = {ϕ1, ϕ2} with the *unadapted* ϕ1 is valid (Example 1-3):
        without Customer in the schema, IS OF Person covers exactly
        Person ∪ Employee."""
        from repro.compiler import compile_mapping
        from repro.workloads.paper_example import mapping_stage2

        compile_mapping(mapping_stage2())


class TestAssociationAccessors:
    def test_end_for_role_error(self, stage4_mapping):
        association = stage4_mapping.client_schema.association("Supports")
        assert association.end_for_role("Customer").entity_type == "Customer"
        with pytest.raises(SchemaError):
            association.end_for_role("Nobody")

    def test_multiplicity_str(self):
        from repro.edm import Multiplicity

        assert str(Multiplicity.MANY) == "*"
        assert str(Multiplicity.ZERO_OR_ONE) == "0..1"
