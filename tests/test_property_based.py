"""Property-based tests (hypothesis).

The properties tie the symbolic machinery to instance-level ground truth:

* compiled mappings roundtrip on *arbitrary* legal client states, for the
  full compiler and the incremental compiler alike, and both translate
  updates identically;
* the condition-space decision procedures (satisfiability, implication)
  agree with brute-force evaluation on random entities;
* structural simplification preserves semantics;
* a positive containment verdict is never contradicted by a random state.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.algebra import (
    ClientContext,
    Col,
    Comparison,
    IsNotNull,
    IsNull,
    IsOf,
    IsOfOnly,
    Not,
    ProjItem,
    Project,
    Select,
    SetScan,
    and_,
    evaluate_condition,
    evaluate_query,
    or_,
    simplify,
)
from repro.compiler import compile_mapping
from repro.containment import ClientConditionSpace, check_containment
from repro.edm import ClientState, Entity
from repro.mapping import apply_update_views, check_roundtrip
from repro.workloads.paper_example import client_schema_stage4, mapping_stage4

# ---------------------------------------------------------------------------
# State strategy over the Figure 1 schema
# ---------------------------------------------------------------------------

NAMES = st.sampled_from(["ann", "bob", "cid", "dee"])
SCORES = st.sampled_from([0, 17, 18, 100, 700])
ADDRS = st.sampled_from(["x", "y", "z"])
DEPTS = st.sampled_from(["hr", "it"])


@st.composite
def figure1_states(draw):
    schema = client_schema_stage4()
    state = ClientState(schema)
    n = draw(st.integers(min_value=0, max_value=6))
    employees, customers = [], []
    for ident in range(1, n + 1):
        kind = draw(st.sampled_from(["Person", "Employee", "Customer"]))
        name = draw(NAMES)
        if kind == "Person":
            state.add_entity("Persons", Entity.of("Person", Id=ident, Name=name))
        elif kind == "Employee":
            state.add_entity(
                "Persons",
                Entity.of("Employee", Id=ident, Name=name, Department=draw(DEPTS)),
            )
            employees.append(ident)
        else:
            state.add_entity(
                "Persons",
                Entity.of(
                    "Customer", Id=ident, Name=name,
                    CredScore=draw(SCORES), BillAddr=draw(ADDRS),
                ),
            )
            customers.append(ident)
    # associations: each customer supported by at most one employee
    for customer in customers:
        if employees and draw(st.booleans()):
            state.add_association(
                "Supports", (customer,), (draw(st.sampled_from(employees)),)
            )
    return state


@pytest.fixture(scope="module")
def compiled_pair():
    """(full views, incremental views) for the same Figure 1 mapping."""
    mapping = mapping_stage4()
    full = compile_mapping(mapping)

    from repro.compiler import compile_mapping as cm
    from repro.incremental import IncrementalCompiler
    from repro.workloads.paper_example import mapping_stage1
    from tests.conftest import customer_smo, employee_smo, supports_smo
    from repro.incremental import CompiledModel

    base = mapping_stage1()
    model = CompiledModel(base, cm(base).views)
    compiler = IncrementalCompiler()
    model = compiler.apply(model, employee_smo(model)).model
    model = compiler.apply(model, customer_smo(model)).model
    model = compiler.apply(model, supports_smo(model)).model
    return mapping, full.views, model


class TestRoundtripProperties:
    @settings(max_examples=40, deadline=None)
    @given(state=figure1_states())
    def test_full_compiler_roundtrips(self, compiled_pair, state):
        mapping, full_views, _ = compiled_pair
        report = check_roundtrip(full_views, state, mapping.store_schema)
        assert report.ok, str(report)

    @settings(max_examples=40, deadline=None)
    @given(state=figure1_states())
    def test_incremental_compiler_roundtrips(self, compiled_pair, state):
        _, _, model = compiled_pair
        embedded = state.embed_into(model.client_schema)
        report = check_roundtrip(model.views, embedded, model.store_schema)
        assert report.ok, str(report)

    @settings(max_examples=40, deadline=None)
    @given(state=figure1_states())
    def test_both_compilers_same_store_state(self, compiled_pair, state):
        mapping, full_views, model = compiled_pair
        store_full = apply_update_views(full_views, state, mapping.store_schema)
        embedded = state.embed_into(model.client_schema)
        store_incr = apply_update_views(model.views, embedded, model.store_schema)
        assert store_full.equals(store_incr)


# ---------------------------------------------------------------------------
# Condition strategies over the Figure 1 hierarchy
# ---------------------------------------------------------------------------

ATOMS = st.one_of(
    st.sampled_from(
        [
            IsOf("Person"), IsOf("Employee"), IsOf("Customer"),
            IsOfOnly("Person"), IsOfOnly("Employee"), IsOfOnly("Customer"),
            IsNull("BillAddr"), IsNotNull("Department"),
        ]
    ),
    st.builds(
        Comparison,
        st.sampled_from(["CredScore", "Id"]),
        st.sampled_from(["=", "!=", "<", "<=", ">", ">="]),
        st.sampled_from([0, 17, 18, 100]),
    ),
)


def conditions(depth: int = 2):
    return st.recursive(
        ATOMS,
        lambda inner: st.one_of(
            st.builds(lambda a, b: and_(a, b), inner, inner),
            st.builds(lambda a, b: or_(a, b), inner, inner),
            st.builds(Not, inner),
        ),
        max_leaves=6,
    )


class _EntityCtx:
    def __init__(self, entity: Entity, schema):
        self.entity = entity
        self.schema = schema

    def attr_value(self, name):
        try:
            return self.entity[name]
        except Exception:
            raise KeyError(name)

    def is_of(self, type_name, only):
        if only:
            return self.entity.concrete_type == type_name
        return type_name in self.schema.ancestors_or_self(self.entity.concrete_type)


class TestConditionSpaceSoundness:
    @settings(max_examples=60, deadline=None)
    @given(condition=conditions(), state=figure1_states())
    def test_unsatisfiable_means_no_entity_satisfies(self, condition, state):
        schema = state.schema
        space = ClientConditionSpace(schema, "Persons", [condition])
        if not space.satisfiable(condition):
            for entity in state.entities("Persons"):
                assert not evaluate_condition(
                    condition, _EntityCtx(entity, schema)
                ), f"{condition} claimed unsatisfiable but {entity} satisfies it"

    @settings(max_examples=60, deadline=None)
    @given(c1=conditions(), c2=conditions(), state=figure1_states())
    def test_implication_sound_on_states(self, c1, c2, state):
        schema = state.schema
        space = ClientConditionSpace(schema, "Persons", [c1, c2])
        if space.implies(c1, c2):
            for entity in state.entities("Persons"):
                ctx = _EntityCtx(entity, schema)
                if evaluate_condition(c1, ctx):
                    assert evaluate_condition(c2, ctx)

    @settings(max_examples=80, deadline=None)
    @given(condition=conditions(), state=figure1_states())
    def test_simplify_preserves_semantics(self, condition, state):
        schema = state.schema
        simplified = simplify(condition)
        for entity in state.entities("Persons"):
            ctx = _EntityCtx(entity, schema)
            assert evaluate_condition(condition, ctx) == evaluate_condition(
                simplified, ctx
            )


class TestContainmentSoundness:
    @settings(max_examples=40, deadline=None)
    @given(c1=conditions(), c2=conditions(), state=figure1_states())
    def test_positive_verdicts_never_contradicted(self, c1, c2, state):
        schema = state.schema
        q1 = Project(Select(SetScan("Persons"), c1), (ProjItem("Id", Col("Id")),))
        q2 = Project(Select(SetScan("Persons"), c2), (ProjItem("Id", Col("Id")),))
        result = check_containment(q1, q2, schema)
        if result.holds:
            context = ClientContext(state)
            rows1 = {r["Id"] for r in evaluate_query(q1, context)}
            rows2 = {r["Id"] for r in evaluate_query(q2, context)}
            assert rows1 <= rows2, (
                f"containment verdict contradicted: {c1} vs {c2}"
            )
