"""Unit coverage for the incremental write path's moving parts.

The differential suite (:mod:`tests.test_ivm_differential`) proves the
end-to-end equivalence property; these tests pin the individual
mechanisms — delta recording and collapsing, script replay, the wire
codec, the writeplan cache counters and invalidation, the service verb,
FK-ordered grouped DML, structural sharing of store states, and the
IvmError whole-state fallback.
"""

from __future__ import annotations

import pytest

from tests.test_backend_differential import compiled, holds_model
from repro.backend import SqliteBackend
from repro.backend.sqlgen import delta_statements, grouped_delta_statements
from repro.edm.instances import ClientState, Entity
from repro.errors import IvmError, SchemaError
from repro.ivm import AssociationOp, ClientDelta, DeltaScript, EntityOp
from repro.query.dml import StoreDelta, TableDelta, apply_delta
from repro.relational.instances import StoreState, make_row
from repro.service import SessionService
from repro.service import wire
from repro.session import OrmSession
from repro.workloads.paper_example import mapping_stage1


def stage1_session(backend=None) -> OrmSession:
    model = compiled(mapping_stage1())
    if backend == "sqlite":
        return OrmSession(model, backend=SqliteBackend(model.store_schema))
    return OrmSession(model)


def ann_state(schema) -> ClientState:
    state = ClientState(schema)
    state.add_entity("Persons", Entity.of("Person", Id=1, Name="ann"))
    state.add_entity("Persons", Entity.of("Person", Id=2, Name="bob"))
    return state


# ---------------------------------------------------------------------------
# ClientDelta recording semantics
# ---------------------------------------------------------------------------

class TestClientDelta:
    def test_inverse_entity_pair_collapses(self):
        delta = ClientDelta()
        e = Entity.of("Person", Id=1, Name="ann")
        delta.record_entity("Persons", (1,), None, e)
        delta.record_entity("Persons", (1,), e, None)
        assert delta.empty
        assert delta.op_count() == 0

    def test_update_chain_keeps_endpoints(self):
        delta = ClientDelta()
        v1 = Entity.of("Person", Id=1, Name="a")
        v2 = Entity.of("Person", Id=1, Name="b")
        v3 = Entity.of("Person", Id=1, Name="c")
        delta.record_entity("Persons", (1,), v1, v2)
        delta.record_entity("Persons", (1,), v2, v3)
        assert delta.entity_changes("Persons")[(1,)] == [v1, v3]

    def test_update_back_to_original_is_noop(self):
        delta = ClientDelta()
        v1 = Entity.of("Person", Id=1, Name="a")
        v2 = Entity.of("Person", Id=1, Name="b")
        delta.record_entity("Persons", (1,), v1, v2)
        delta.record_entity("Persons", (1,), v2, v1)
        assert delta.empty

    def test_association_signs_net_out(self):
        delta = ClientDelta()
        delta.record_association("Holds", (1, 10), +1)
        delta.record_association("Holds", (1, 10), -1)
        assert delta.empty
        delta.record_association("Holds", (2, 10), -1)
        assert delta.association_changes("Holds") == {(2, 10): -1}
        assert delta.sources() == frozenset({"Holds"})

    def test_recording_hooks_on_client_state(self):
        schema = mapping_stage1().client_schema
        state = ann_state(schema)
        delta = ClientDelta()
        state.record_into(delta)
        state.update_entity("Persons", Entity.of("Person", Id=1, Name="ann2"))
        removed = state.remove_entity("Persons", (2,))
        assert removed.value_map["Name"] == "bob"
        state.stop_recording()
        # post-stop mutations are not recorded
        state.add_entity("Persons", Entity.of("Person", Id=9, Name="zed"))
        changes = delta.entity_changes("Persons")
        assert changes[(1,)][0].value_map["Name"] == "ann"
        assert changes[(1,)][1].value_map["Name"] == "ann2"
        assert changes[(2,)] == [removed, None]
        assert (9,) not in changes


class TestDeltaScript:
    def test_replay_dispatches_every_op(self):
        schema = holds_model().mapping.client_schema
        state = ClientState(schema)
        script = DeltaScript(
            (
                EntityOp("insert", "P2s", entity=Entity.of("Person2", Id=1, Name="a")),
                EntityOp(
                    "insert", "Passports",
                    entity=Entity.of("Passport", Pno=10, Country="fr"),
                ),
                AssociationOp("insert", "Holds", key1=(1,), key2=(10,)),
                EntityOp("update", "P2s", entity=Entity.of("Person2", Id=1, Name="b")),
                AssociationOp("delete", "Holds", key1=(1,), key2=(10,)),
                EntityOp("delete", "Passports", key=(10,)),
            )
        )
        script.apply_to(state)
        assert state.entities("P2s")[0].value_map["Name"] == "b"
        assert state.entities("Passports") == ()
        assert state.associations("Holds") == ()

    def test_unknown_op_raises(self):
        state = ClientState(mapping_stage1().client_schema)
        with pytest.raises(SchemaError):
            DeltaScript((EntityOp("upsert", "Persons"),)).apply_to(state)

    def test_wire_roundtrip(self):
        script = DeltaScript(
            (
                EntityOp("insert", "Persons", entity=Entity.of("Person", Id=3, Name="c")),
                EntityOp("delete", "Persons", key=(1,)),
                AssociationOp("insert", "Holds", key1=(1,), key2=(10,)),
            )
        )
        assert wire.delta_script_from_json(wire.delta_script_to_json(script)) == script

    def test_malformed_wire_payloads(self):
        with pytest.raises(SchemaError):
            wire.delta_script_from_json({"not-ops": []})
        with pytest.raises(SchemaError):
            wire.delta_script_from_json({"ops": [{"op": "insert"}]})


# ---------------------------------------------------------------------------
# Writeplan cache behaviour through the session
# ---------------------------------------------------------------------------

class TestWriteplanCache:
    def test_counters_hit_on_repeated_shape(self):
        session = stage1_session()
        session.save(ann_state(session.model.client_schema))
        for name in ("x", "y", "z"):
            session.save_delta(
                DeltaScript(
                    (
                        EntityOp(
                            "update", "Persons",
                            entity=Entity.of("Person", Id=1, Name=name),
                        ),
                    )
                )
            )
        stats = session.serving_stats().writeplans
        assert stats.compiled >= 1
        assert stats.hits >= stats.compiled  # later rounds reuse the plan
        assert stats.entries >= 1

    def test_evolution_invalidates_touched_writeplans(self):
        from tests.conftest import employee_smo

        session = stage1_session()
        session.save(ann_state(session.model.client_schema))
        session.save_delta(
            DeltaScript(
                (
                    EntityOp(
                        "update", "Persons",
                        entity=Entity.of("Person", Id=1, Name="x"),
                    ),
                )
            )
        )
        assert session.serving_stats().writeplans.entries >= 1
        session.evolve(employee_smo(session.model))
        stats = session.serving_stats().writeplans
        assert stats.invalidations >= 1

    def test_stats_verb_reports_writeplans(self):
        mapping = mapping_stage1()
        from repro.msl import save_model
        from repro.compiler import compile_mapping
        from repro.incremental import CompiledModel

        model = CompiledModel(mapping, compile_mapping(mapping).views)
        service = SessionService()
        service.create_tenant("t", save_model(model))
        service.save_delta(
            "t",
            {
                "ops": [
                    {
                        "op": "insert",
                        "set": "Persons",
                        "entity": {"type": "Person", "values": {"Id": 1, "Name": "a"}},
                    }
                ]
            },
        )
        stats = service.stats("t")
        assert stats["writeplans"]["compiled"] >= 1
        assert stats["writeplans"]["entries"] >= 1
        service.close()


# ---------------------------------------------------------------------------
# The service verb (in-process and over HTTP)
# ---------------------------------------------------------------------------

class TestSaveDeltaVerb:
    def test_in_process_save_delta(self):
        from repro.msl import save_model
        from repro.compiler import compile_mapping
        from repro.incremental import CompiledModel

        mapping = mapping_stage1()
        model = CompiledModel(mapping, compile_mapping(mapping).views)
        service = SessionService()
        service.create_tenant("t", save_model(model))
        result = service.save_delta(
            "t",
            {
                "ops": [
                    {
                        "op": "insert",
                        "set": "Persons",
                        "entity": {"type": "Person", "values": {"Id": 1, "Name": "a"}},
                    },
                    {
                        "op": "update",
                        "set": "Persons",
                        "entity": {"type": "Person", "values": {"Id": 1, "Name": "b"}},
                    },
                ]
            },
        )
        assert result["ops"] == 2
        assert result["applied"] == 1  # collapsed to one INSERT
        rows = service.query("t", {"set": "Persons"})
        assert rows["rows"] == [{"type": "Person", "values": {"Id": 1, "Name": "b"}}]
        assert rows["fingerprint"] == result["fingerprint"]
        service.close()

    def test_save_delta_over_http(self):
        import json
        import threading
        import urllib.request

        from repro.msl import save_model
        from repro.compiler import compile_mapping
        from repro.incremental import CompiledModel
        from repro.service.http import make_server

        mapping = mapping_stage1()
        model = CompiledModel(mapping, compile_mapping(mapping).views)
        service = SessionService()
        server = make_server(service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]

        def call(method, path, payload=None):
            data = json.dumps(payload).encode() if payload is not None else None
            request = urllib.request.Request(
                f"http://{host}:{port}{path}", data=data, method=method
            )
            request.add_header("Content-Type", "application/json")
            with urllib.request.urlopen(request) as response:
                return response.status, json.loads(response.read())

        try:
            status, _ = call("PUT", "/tenants/t", {"model": save_model(model)})
            assert status == 200
            status, result = call(
                "POST",
                "/tenants/t/save_delta",
                {
                    "ops": [
                        {
                            "op": "insert",
                            "set": "Persons",
                            "entity": {
                                "type": "Person",
                                "values": {"Id": 7, "Name": "g"},
                            },
                        }
                    ]
                },
            )
            assert status == 200 and result["applied"] == 1
            status, rows = call(
                "POST", "/tenants/t/query", {"set": "Persons", "where": "Id=7"}
            )
            assert status == 200 and rows["count"] == 1
        finally:
            server.shutdown()
            server.server_close()
            service.close()


# ---------------------------------------------------------------------------
# FK-topology ordering of grouped DML (satellite: grouped_delta_statements)
# ---------------------------------------------------------------------------

class TestGroupedDmlOrdering:
    def _delta(self, schema):
        delta = StoreDelta()
        delta.tables["P2"] = TableDelta(
            "P2",
            inserts=[make_row(Id=5, Name="new")],
            deletes=[make_row(Id=1, Name="old")],
        )
        delta.tables["Pass"] = TableDelta(
            "Pass",
            inserts=[make_row(Pno=50, Country="de", OwnerId=5)],
            deletes=[make_row(Pno=10, Country="fr", OwnerId=1)],
        )
        # a touched-but-net-empty table must contribute nothing
        delta.tables["__empty__"] = TableDelta("P2")
        return delta

    def test_deletes_run_referrer_first_inserts_referee_first(self):
        schema = holds_model().mapping.store_schema
        delta = self._delta(schema)
        texts = [s.text for s in delta_statements(delta, schema)]
        # Pass has an FK to P2: its delete precedes P2's, its insert follows
        assert texts.index('DELETE FROM "Pass" WHERE "Country" IS ? AND "OwnerId" IS ? AND "Pno" IS ?') < texts.index(
            'DELETE FROM "P2" WHERE "Id" IS ? AND "Name" IS ?'
        )
        insert_p2 = next(i for i, t in enumerate(texts) if t.startswith('INSERT INTO "P2"'))
        insert_pass = next(
            i for i, t in enumerate(texts) if t.startswith('INSERT INTO "Pass"')
        )
        assert insert_p2 < insert_pass

    def test_groups_are_never_empty(self):
        schema = holds_model().mapping.store_schema
        groups = grouped_delta_statements(self._delta(schema), schema)
        assert groups  # something to execute
        for _text, params in groups:
            assert params  # no empty executemany batches

    def test_empty_delta_lowers_to_no_statements(self):
        schema = holds_model().mapping.store_schema
        delta = StoreDelta()
        delta.tables["P2"] = TableDelta("P2")
        assert delta_statements(delta, schema) == []
        assert grouped_delta_statements(delta, schema) == []


# ---------------------------------------------------------------------------
# Structural sharing of store states (satellite: delta-aware caches)
# ---------------------------------------------------------------------------

class TestStructuralSharing:
    def test_apply_delta_adopts_untouched_tables(self):
        schema = holds_model().mapping.store_schema
        base = StoreState(schema)
        base.add_row("P2", make_row(Id=1, Name="a"))
        base.add_row("Pass", make_row(Pno=10, Country="fr", OwnerId=1))
        delta = StoreDelta()
        delta.tables["Pass"] = TableDelta(
            "Pass", inserts=[make_row(Pno=11, Country="de", OwnerId=1)]
        )
        result = apply_delta(base, delta)
        # untouched table: same storage object; touched table: rebuilt
        assert result._rows["P2"] is base._rows["P2"]
        assert result._rows["Pass"] is not base._rows["Pass"]
        assert len(result.rows("Pass")) == 2
        assert len(base.rows("Pass")) == 1

    def test_sqlite_state_cache_absorbs_incremental_saves(self):
        session = stage1_session("sqlite")
        try:
            session.save(ann_state(session.model.client_schema))
            session.backend.to_store_state()  # warm the cache
            session.save_delta(
                DeltaScript(
                    (
                        EntityOp(
                            "update", "Persons",
                            entity=Entity.of("Person", Id=1, Name="ann2"),
                        ),
                    )
                )
            )
            # the cache survived the write (absorbed, not invalidated) ...
            assert session.backend._state_cache is not None
            absorbed = session.backend.to_store_state().snapshot()
            # ... and agrees with a forced re-read from the database
            session.backend._invalidate()
            assert session.backend.to_store_state().snapshot() == absorbed
        finally:
            session.backend.close()


# ---------------------------------------------------------------------------
# The IvmError whole-state fallback
# ---------------------------------------------------------------------------

class TestFallback:
    def test_forced_ivm_error_falls_back_to_whole_state_save(self, monkeypatch):
        import repro.engine as engine_mod

        def refuse(*_args, **_kwargs):
            raise IvmError("forced for the test")

        monkeypatch.setattr(engine_mod, "push_client_delta", refuse)
        inc = stage1_session()
        ref = stage1_session()
        inc.save(ann_state(inc.model.client_schema))
        ref.save(ann_state(ref.model.client_schema))
        delta = inc.save_delta(
            DeltaScript(
                (
                    EntityOp(
                        "update", "Persons",
                        entity=Entity.of("Person", Id=1, Name="via-fallback"),
                    ),
                )
            )
        )
        with ref.edit() as state:
            state.update_entity(
                "Persons", Entity.of("Person", Id=1, Name="via-fallback")
            )
        assert not delta.empty
        assert inc.backend.snapshot() == ref.backend.snapshot()
        assert inc.engine.stats().ivm_fallbacks == 1
        # the fallback reseeded the counts: later saves work incrementally
        monkeypatch.undo()
        inc.save_delta(
            DeltaScript(
                (
                    EntityOp(
                        "update", "Persons",
                        entity=Entity.of("Person", Id=2, Name="bob2"),
                    ),
                )
            )
        )
        with ref.edit() as state:
            state.update_entity("Persons", Entity.of("Person", Id=2, Name="bob2"))
        assert inc.backend.snapshot() == ref.backend.snapshot()
        assert inc.engine.stats().ivm_fallbacks == 1
