"""Unit tests: the validation scheduler and thread-safe work budgets."""

import threading

import pytest

from repro.budget import CompilationBudgetExceeded, WorkBudget
from repro.compiler import (
    ValidationCheck,
    ValidationScheduler,
    build_validation_checks,
    generate_views,
    validate_mapping,
)
from repro.budget import ensure_budget
from repro.errors import ValidationError
from repro.compiler.scheduler import build_shards, shutdown_pools
from repro.workloads.hub_rim import hub_rim_mapping


class TestThreadSafeBudget:
    def test_no_ticks_lost_under_contention(self):
        """N workers ticking concurrently must account every step."""
        budget = WorkBudget()
        workers, per_worker = 8, 10_000
        barrier = threading.Barrier(workers)

        def worker():
            barrier.wait()
            for _ in range(per_worker):
                budget.tick()

        threads = [threading.Thread(target=worker) for _ in range(workers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert budget.steps == workers * per_worker

    def test_trip_without_losing_steps(self):
        """When the limit trips under concurrency, the recorded total is at
        least max_steps — no worker's steps vanished on the way."""
        max_steps = 5_000
        budget = WorkBudget(max_steps=max_steps)
        workers = 8
        barrier = threading.Barrier(workers)
        tripped = []

        def worker():
            barrier.wait()
            try:
                while True:
                    budget.tick()
            except CompilationBudgetExceeded:
                tripped.append(True)

        threads = [threading.Thread(target=worker) for _ in range(workers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert tripped, "budget never tripped"
        assert budget.steps >= max_steps

    def test_bulk_ticks_counted_exactly(self):
        budget = WorkBudget()
        budget.tick(7)
        budget.tick(5)
        assert budget.steps == 12


class TestScheduler:
    def _counting_checks(self, names, log):
        def make(name):
            def run():
                log.append(name)
                return {"coverage_checks": 1}

            return run

        return [ValidationCheck(name=n, kind="coverage", run=make(n)) for n in names]

    def test_serial_runs_in_declaration_order(self):
        log = []
        checks = self._counting_checks(["a", "b", "c"], log)
        results = ValidationScheduler(workers=1).run(checks)
        assert log == ["a", "b", "c"]
        assert [r.name for r in results] == ["a", "b", "c"]

    def test_thread_results_in_declaration_order(self):
        log = []
        checks = self._counting_checks(["a", "b", "c", "d"], log)
        results = ValidationScheduler(workers=4, executor="thread").run(checks)
        assert [r.name for r in results] == ["a", "b", "c", "d"]
        assert sorted(log) == ["a", "b", "c", "d"]

    def test_dependencies_respected(self):
        log = []
        checks = self._counting_checks(["a", "b"], log)
        checks[1].deps = ("a",)
        ValidationScheduler(workers=4, executor="thread").run(checks)
        assert log.index("a") < log.index("b")

    def test_first_error_in_declaration_order(self):
        """Even when a later-declared check fails first, the error raised
        is the earliest failing check's — matching serial behaviour."""
        import time

        def slow_fail():
            time.sleep(0.05)
            raise ValidationError("early", check="first")

        def fast_fail():
            raise ValidationError("late", check="second")

        checks = [
            ValidationCheck(name="a", kind="coverage", run=slow_fail),
            ValidationCheck(name="b", kind="coverage", run=fast_fail),
        ]
        with pytest.raises(ValidationError) as err:
            ValidationScheduler(workers=2, executor="thread").run(checks)
        assert err.value.check == "first"

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError):
            ValidationScheduler(workers=2, executor="fiber")


class TestParallelValidation:
    @pytest.fixture(scope="class")
    def hub22(self):
        mapping = hub_rim_mapping(2, 2, "TPH")
        return mapping, generate_views(mapping)

    def test_thread_counters_equal_serial(self, hub22):
        mapping, views = hub22
        serial = validate_mapping(mapping, views)
        threaded = validate_mapping(mapping, views, workers=4)
        for field in (
            "coverage_checks",
            "store_cells",
            "containment_checks",
            "roundtrip_states",
        ):
            assert getattr(threaded, field) == getattr(serial, field)
        assert threaded.check_timings.keys() == serial.check_timings.keys()

    def test_process_counters_equal_serial(self, hub22):
        mapping, views = hub22
        serial = validate_mapping(mapping, views)
        processed = validate_mapping(mapping, views, workers=2, executor="process")
        for field in (
            "coverage_checks",
            "store_cells",
            "containment_checks",
            "roundtrip_states",
        ):
            assert getattr(processed, field) == getattr(serial, field)

    def test_budget_trips_under_parallel_validation(self, hub22):
        mapping, views = hub22
        with pytest.raises(CompilationBudgetExceeded):
            validate_mapping(mapping, views, WorkBudget(max_steps=200), workers=4)

    def test_parallel_budget_accounts_all_steps(self, hub22):
        """Thread workers share one budget: the final step total equals the
        serial total (same checks, same enumerations)."""
        mapping, views = hub22
        serial_budget = ensure_budget(WorkBudget())
        validate_mapping(mapping, views, serial_budget)
        parallel_budget = ensure_budget(WorkBudget())
        validate_mapping(mapping, views, parallel_budget, workers=4)
        assert parallel_budget.steps == serial_budget.steps

    def test_build_validation_checks_shape(self, hub22):
        mapping, views = hub22
        checks = build_validation_checks(mapping, views, WorkBudget(), {})
        kinds = [c.kind for c in checks]
        assert kinds == sorted(kinds, key=["coverage", "store-cells", "fk-preservation", "roundtrip"].index)
        assert all(c.spec is not None for c in checks)
        names = [c.name for c in checks]
        assert len(names) == len(set(names))


class TestShards:
    @pytest.fixture(scope="class")
    def hub22_checks(self):
        mapping = hub_rim_mapping(2, 2, "TPH")
        views = generate_views(mapping)
        return build_validation_checks(mapping, views, WorkBudget(), {})

    def test_every_check_lands_in_exactly_one_shard(self, hub22_checks):
        shards = build_shards(hub22_checks, workers=2)
        flat = [check for shard in shards for check in shard]
        assert sorted(c.name for c in flat) == sorted(
            c.name for c in hub22_checks
        )
        assert all(shard for shard in shards)

    def test_store_cells_colocated_with_their_coverage_sets(self, hub22_checks):
        """A store-cells check shares a shard with the coverage checks of
        the sets it reads — their SetAnalysis is built once per run, so
        process step totals match serial."""
        shards = build_shards(hub22_checks, workers=2)
        for shard in shards:
            kinds = {c.kind for c in shard}
            if "store-cells" in kinds:
                covered = {
                    c.name.split(":", 1)[1]
                    for c in shard
                    if c.kind == "coverage"
                }
                for check in shard:
                    if check.kind == "store-cells":
                        for dep in check.deps:
                            if dep.startswith("coverage:"):
                                assert dep.split(":", 1)[1] in covered

    def test_explicit_shard_size_bounds_affinity_free_groups(self, hub22_checks):
        solo = [c for c in hub22_checks if c.kind == "fk-preservation"]
        shards = build_shards(solo, workers=2, shard_size=1)
        assert all(len(shard) == 1 for shard in shards)
        assert len(shards) == len(solo)

    def test_empty_input_yields_no_shards(self):
        assert build_shards([], workers=4) == []

    def test_declaration_order_preserved_within_shards(self, hub22_checks):
        shards = build_shards(hub22_checks, workers=2)
        order = {c.name: i for i, c in enumerate(hub22_checks)}
        for shard in shards:
            indices = [order[c.name] for c in shard]
            assert indices == sorted(indices)


class TestProcessExecutor:
    @pytest.fixture(scope="class")
    def hub22(self):
        mapping = hub_rim_mapping(2, 2, "TPH")
        return mapping, generate_views(mapping)

    def test_missing_args_named_in_error(self):
        scheduler = ValidationScheduler(workers=2, executor="process")
        with pytest.raises(ValueError) as excinfo:
            scheduler.run([], None, None, ensure_budget(WorkBudget()))
        message = str(excinfo.value)
        assert "'mapping'" in message and "'views'" in message

    def test_missing_views_only_named(self, hub22):
        mapping, _ = hub22
        scheduler = ValidationScheduler(workers=2, executor="process")
        with pytest.raises(ValueError) as excinfo:
            scheduler.run([], mapping, None, ensure_budget(WorkBudget()))
        message = str(excinfo.value)
        assert "'views'" in message and "'mapping'" not in message

    def test_process_budget_totals_match_serial(self, hub22):
        """Workers report per-check step counts; the parent replays them
        into the shared budget, so process totals equal serial exactly.
        (Fresh pool: a warm pool's memoized per-set analyses would let
        workers legitimately do — and report — less work.)"""
        shutdown_pools()
        mapping, views = hub22
        serial_budget = ensure_budget(WorkBudget())
        validate_mapping(mapping, views, serial_budget)
        process_budget = ensure_budget(WorkBudget())
        validate_mapping(
            mapping, views, process_budget, workers=2, executor="process"
        )
        assert process_budget.steps == serial_budget.steps

    def test_process_budget_trips(self, hub22):
        mapping, views = hub22
        with pytest.raises(CompilationBudgetExceeded):
            validate_mapping(
                mapping,
                views,
                WorkBudget(max_steps=200),
                workers=2,
                executor="process",
            )

    def test_shard_size_sweep_same_verdict(self, hub22):
        mapping, views = hub22
        serial = validate_mapping(mapping, views)
        for shard_size in (1, 3, 100):
            report = validate_mapping(
                mapping, views, workers=2, shard_size=shard_size
            )
            for field in (
                "coverage_checks",
                "store_cells",
                "containment_checks",
                "roundtrip_states",
            ):
                assert getattr(report, field) == getattr(serial, field)
