"""Adversarial integration scenarios across the whole stack.

Long SMO chains, self-associations, overlapping α ∩ att(P) regions,
mixed-style hierarchies — each scenario must roundtrip, agree with a full
recompilation of its evolved mapping, and keep its data through an
OrmSession.
"""


from repro.algebra import Comparison, IsOf
from repro.compiler import compile_mapping
from repro.edm import Attribute, ClientState, Entity, INT, STRING
from repro.incremental import (
    AddAssociationFK,
    AddEntity,
    AddEntityTPH,
    AddProperty,
    IncrementalCompiler,
)
from repro.mapping import check_roundtrip
from repro.mapping.equivalence import compare_views
from repro.query import EntityQuery
from repro.relational import ForeignKey
from repro.session import OrmSession
from repro.stategen import random_client_state

COMPILER = IncrementalCompiler()


def _assert_agrees_with_full(model, seeds=range(4)):
    """Evolved incremental views ≡ full recompilation, plus fuzzing."""
    full = compile_mapping(model.mapping.clone())
    comparison = compare_views(model.mapping, model.views, full.views)
    assert comparison.equivalent, str(comparison)
    for seed in seeds:
        state = random_client_state(model.client_schema, seed=seed,
                                    entities_per_set=4)
        assert check_roundtrip(model.views, state, model.store_schema).ok


class TestSelfAssociation:
    def test_manager_relation_on_employees(self, stage1_compiled):
        """A self-set association (Employee manages Employee) through the
        role machinery, FK-mapped into the Emp table."""
        model = COMPILER.apply(
            stage1_compiled,
            AddEntity.tpt(
                stage1_compiled, "Employee", "Person",
                [Attribute("Department", STRING)], "Emp",
                attr_map={"Id": "Id", "Department": "Dept"},
                table_foreign_keys=[ForeignKey(("Id",), "HR", ("Id",))],
            ),
        ).model
        smo = AddAssociationFK.create(
            model, "Manages", "Employee", "Employee", "Emp",
            {"worker.Id": "Id", "boss.Id": "BossId"},
            mult1="*", mult2="0..1", role1="worker", role2="boss",
            new_foreign_keys=[ForeignKey(("BossId",), "Emp", ("Id",))],
        )
        model = COMPILER.apply(model, smo).model

        state = ClientState(model.client_schema)
        state.add_entity("Persons", Entity.of("Employee", Id=1, Name="a", Department="x"))
        state.add_entity("Persons", Entity.of("Employee", Id=2, Name="b", Department="x"))
        state.add_entity("Persons", Entity.of("Employee", Id=3, Name="c", Department="y"))
        state.add_association("Manages", (1,), (2,))
        state.add_association("Manages", (3,), (2,))  # boss end is 0..1 per worker
        assert check_roundtrip(model.views, state, model.store_schema).ok
        _assert_agrees_with_full(model)


class TestOverlappingAnchorRegion:
    def test_alpha_overlaps_anchor_attributes(self, stage1_compiled):
        """α ∩ att(P) beyond the key: Name stored both in HR (via P) and in
        the new table — values must agree and roundtrip."""
        smo = AddEntity(
            name="Contact", parent="Person",
            new_attributes=(Attribute("Phone", STRING),),
            alpha=("Id", "Name", "Phone"),   # Name also covered by P = Person
            anchor="Person",
            table="Contacts",
            attr_map=(("Id", "Id"), ("Name", "Name"), ("Phone", "Phone")),
        )
        model = COMPILER.apply(stage1_compiled, smo).model
        state = ClientState(model.client_schema)
        state.add_entity("Persons", Entity.of("Person", Id=1, Name="p"))
        state.add_entity("Persons", Entity.of("Contact", Id=2, Name="q", Phone="555"))
        assert check_roundtrip(model.views, state, model.store_schema).ok
        # both tables carry the contact's name
        from repro.mapping import apply_update_views

        store = apply_update_views(model.views, state, model.store_schema)
        hr_names = {dict(r)["Name"] for r in store.rows("HR")}
        contact_names = {dict(r)["Name"] for r in store.rows("Contacts")}
        assert "q" in hr_names and "q" in contact_names
        _assert_agrees_with_full(model)


class TestLongEvolutionChain:
    def test_ten_step_session(self, stage1_compiled):
        """A long mixed SMO chain stays consistent at every step."""
        session = OrmSession.create(stage1_compiled)
        with session.edit() as state:
            state.add_entity("Persons", Entity.of("Person", Id=1, Name="seed"))

        steps = [
            AddEntity.tpt(
                session.model, "Employee", "Person",
                [Attribute("Department", STRING)], "Emp",
                attr_map={"Id": "Id", "Department": "Dept"},
                table_foreign_keys=[ForeignKey(("Id",), "HR", ("Id",))],
            ),
        ]
        session.evolve(steps[0])
        session.evolve(
            AddEntity.tpc(
                session.model, "Customer", "Person",
                [Attribute("CredScore", INT), Attribute("BillAddr", STRING)],
                "Client",
                attr_map={"Id": "Cid", "Name": "Name",
                          "CredScore": "Score", "BillAddr": "Addr"},
            )
        )
        session.evolve(
            AddAssociationFK.create(
                session.model, "Supports", "Customer", "Employee", "Client",
                {"Customer.Id": "Cid", "Employee.Id": "Eid"},
                new_foreign_keys=[ForeignKey(("Eid",), "Emp", ("Id",))],
            )
        )
        session.evolve(
            AddProperty("Employee", Attribute("Title", STRING), "Emp", "Title")
        )
        session.evolve(
            AddEntityTPH.create(
                session.model, "Robot", "Person", [Attribute("Os", STRING)],
                "HR", "Kind", "Robot",
            )
        )
        session.evolve(
            AddEntity.tpt(
                session.model, "Android", "Robot", [Attribute("Skin", STRING)],
                "Androids",
                attr_map={"Id": "Id", "Skin": "Skin"},
            )
        )

        # the original seed row survived six schema evolutions
        people = session.query(EntityQuery("Persons", IsOf("Person")))
        assert any(e["Name"] == "seed" for e in people)

        with session.edit() as state:
            state.add_entity(
                "Persons",
                Entity.of("Android", Id=9, Name="data", Os="linux", Skin="soft"),
            )
            state.add_entity(
                "Persons",
                Entity.of("Employee", Id=3, Name="emp", Department="d", Title="t"),
            )
            state.add_entity(
                "Persons",
                Entity.of("Customer", Id=4, Name="cus", CredScore=5, BillAddr="a"),
            )
            state.add_association("Supports", (4,), (3,))

        androids = session.query(EntityQuery("Persons", IsOf("Android")))
        assert len(androids) == 1
        assert check_roundtrip(
            session.model.views, session.load(), session.model.store_schema
        ).ok
        _assert_agrees_with_full(session.model)


class TestMixedHierarchyQueries:
    def test_unfolding_on_evolved_tph_mix(self, stage1_compiled):
        """Query translation through views produced by a TPH conversion."""
        session = OrmSession.create(stage1_compiled)
        session.evolve(
            AddEntityTPH.create(
                session.model, "Robot", "Person", [Attribute("Os", STRING)],
                "HR", "Kind", "Robot",
            )
        )
        with session.edit() as state:
            state.add_entity("Persons", Entity.of("Person", Id=1, Name="hu"))
            state.add_entity("Persons", Entity.of("Robot", Id=2, Name="r1", Os="lin"))
            state.add_entity("Persons", Entity.of("Robot", Id=3, Name="r2", Os="win"))
        linux = session.query(
            EntityQuery("Persons", Comparison("Os", "=", "lin"))
        )
        assert [e["Id"] for e in linux] == [2]
        humans = session.query(EntityQuery("Persons", IsOf("Person")))
        assert len(humans) == 3
