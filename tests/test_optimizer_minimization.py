"""Unit tests: CASE-guard minimization in the view optimizer."""

import pytest

from repro.compiler import SetAnalysis
from repro.compiler.optimize import minimized_branch_condition
from repro.containment.spaces import ClientConditionSpace
from repro.workloads.paper_example import mapping_stage4


@pytest.fixture
def figure1_parts():
    mapping = mapping_stage4()
    analysis = SetAnalysis(mapping, "Persons")
    conditions = [f.client_condition for f in analysis.fragments]
    space = ClientConditionSpace(mapping.client_schema, "Persons", conditions)
    cells = {c.concrete_type: c for c in analysis.all_cells()}
    return space, cells, list(cells.values())


def test_employee_guard_is_single_positive(figure1_parts):
    """IS OF Employee implies the widened HR condition, so _from1 alone
    identifies the Employee cell — Figure 2's `WHEN T5._from2`."""
    space, cells, all_cells = figure1_parts
    condition = minimized_branch_condition(cells["Employee"], all_cells, space)
    rendered = str(condition)
    assert "_from1" in rendered
    assert "_from0" not in rendered
    assert "NOT" not in rendered


def test_person_guard_keeps_one_negative(figure1_parts):
    """Person's signature {0} is extended by Employee's {0,1}: the guard
    needs _from0 plus NOT _from1 — and nothing about _from2."""
    space, cells, all_cells = figure1_parts
    condition = minimized_branch_condition(cells["Person"], all_cells, space)
    rendered = str(condition)
    assert "_from0" in rendered
    assert "NOT (_from1" in rendered
    assert "_from2" not in rendered


def test_customer_guard_needs_no_negatives(figure1_parts):
    space, cells, all_cells = figure1_parts
    condition = minimized_branch_condition(cells["Customer"], all_cells, space)
    rendered = str(condition)
    assert rendered == "_from2 = True"


def test_minimized_guards_still_distinguish_all_cells(figure1_parts):
    """Every cell satisfies its own minimized guard and no other cell's —
    the invariant that makes minimization safe."""
    space, cells, all_cells = figure1_parts
    from repro.algebra.conditions import evaluate_condition

    class _FlagRow:
        def __init__(self, signature):
            self.signature = signature

        def attr_value(self, name):
            index = int(name.replace("_from", ""))
            return True if index in self.signature else None

        def is_of(self, type_name, only):  # pragma: no cover
            raise AssertionError("no type atoms in flag guards")

    guards = {
        name: minimized_branch_condition(cell, all_cells, space)
        for name, cell in cells.items()
    }
    for name, cell in cells.items():
        row = _FlagRow(cell.signature)
        for other_name, guard in guards.items():
            holds = evaluate_condition(guard, row)
            assert holds == (other_name == name), (
                f"cell {name} vs guard {other_name}"
            )
