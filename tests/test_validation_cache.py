"""Unit tests: structural fingerprints and the fingerprint-keyed
validation cache (correctness, invalidation, staleness regressions)."""

import pytest

from repro.algebra import Col, Comparison, IsOf, ProjItem, Project, Select, SetScan
from repro.compiler import generate_views, validate_mapping
from repro.containment import (
    ValidationCache,
    check_containment,
    client_slice_tokens,
    fingerprint,
)
from repro.edm import ClientSchemaBuilder, INT, enum_domain
from repro.errors import ValidationError
from repro.mapping import Mapping, MappingFragment
from repro.relational import Column, StoreSchema, Table
from repro.workloads.hub_rim import hub_rim_mapping


def _schema(age_domain):
    return (
        ClientSchemaBuilder()
        .entity("P", key=[("Id", INT)], attrs=[("Age", age_domain)])
        .entity_set("Ps", "P")
        .build()
    )


class TestFingerprint:
    def test_stable_across_fresh_objects(self):
        """Structurally equal inputs built twice fingerprint identically."""
        def build():
            return (
                Project(
                    Select(SetScan("Ps"), Comparison("Age", ">=", 18)),
                    (ProjItem("Id", Col("Id")),),
                ),
                client_slice_tokens(_schema(INT), sets=["Ps"]),
            )

        q_a, slice_a = build()
        q_b, slice_b = build()
        assert q_a is not q_b
        assert fingerprint(q_a, slice_a) == fingerprint(q_b, slice_b)

    def test_condition_mutation_changes_fingerprint(self):
        q18 = Select(SetScan("Ps"), Comparison("Age", ">=", 18))
        q21 = Select(SetScan("Ps"), Comparison("Age", ">=", 21))
        assert fingerprint(q18) != fingerprint(q21)

    def test_schema_slice_sees_domain_change(self):
        """The neighborhood tokens cover attribute domains, so a domain
        mutation (which can flip containment verdicts) changes the key."""
        one = client_slice_tokens(_schema(enum_domain(1, base="int")), sets=["Ps"])
        two = client_slice_tokens(_schema(enum_domain(1, 2, base="int")), sets=["Ps"])
        assert fingerprint(one) != fingerprint(two)

    def test_slice_covers_associations_constraining_a_set(self):
        """Associations touching a scanned set constrain canonical-state
        legality (multiplicity lower bounds), so they must key the cache
        even when no query scans them."""
        mapping = hub_rim_mapping(1, 2, "TPH")
        tokens = client_slice_tokens(mapping.client_schema, sets=["Hubs"])
        flat = repr(tokens)
        assert "assoc" in flat

    def test_unknown_types_rejected(self):
        with pytest.raises(TypeError):
            fingerprint(object())


class TestCacheReuse:
    def test_second_validation_hits_and_is_faster(self):
        mapping = hub_rim_mapping(2, 2, "TPH")
        views = generate_views(mapping)
        cache = ValidationCache()
        cold = validate_mapping(mapping, views, cache=cache)
        warm = validate_mapping(mapping, views, cache=cache)
        assert cold.cache_hits == 0 and cold.cache_misses > 0
        assert warm.cache_hits > 0 and warm.cache_misses == 0
        assert warm.elapsed < cold.elapsed
        # memoised counters must be the true ones, not zeros
        for field in (
            "coverage_checks",
            "store_cells",
            "containment_checks",
            "roundtrip_states",
        ):
            assert getattr(warm, field) == getattr(cold, field)

    def test_cached_counters_equal_uncached(self, stage4_mapping):
        views = generate_views(stage4_mapping)
        plain = validate_mapping(stage4_mapping, views)
        cached = validate_mapping(stage4_mapping, views, cache=ValidationCache())
        assert plain.coverage_checks == cached.coverage_checks
        assert plain.store_cells == cached.store_cells
        assert plain.containment_checks == cached.containment_checks
        assert plain.roundtrip_states == cached.roundtrip_states

    def test_parallel_counters_equal_serial(self):
        mapping = hub_rim_mapping(2, 2, "TPH")
        views = generate_views(mapping)
        serial = validate_mapping(mapping, views)
        threaded = validate_mapping(mapping, views, workers=4)
        assert threaded.executor == "thread" and threaded.workers == 4
        for field in (
            "coverage_checks",
            "store_cells",
            "containment_checks",
            "roundtrip_states",
        ):
            assert getattr(threaded, field) == getattr(serial, field)


class TestNoStaleServing:
    def test_containment_failure_not_masked_by_pre_mutation_entry(self):
        """Regression: a schema mutation that flips a containment verdict
        must never be answered from the pre-mutation cache entry.

        With ``Age`` drawn from the one-value domain {1}, every entity
        satisfies ``Age = 1`` and the containment holds; widening the
        domain to {1, 2} makes it fail.  The queries are bit-identical in
        both checks — only the schema slice differs."""
        lhs = Project(SetScan("Ps"), (ProjItem("Id", Col("Id")),))
        rhs = Project(
            Select(SetScan("Ps"), Comparison("Age", "=", 1)),
            (ProjItem("Id", Col("Id")),),
        )
        cache = ValidationCache()
        before = check_containment(lhs, rhs, _schema(enum_domain(1, base="int")), cache=cache)
        assert before.holds
        after = check_containment(lhs, rhs, _schema(enum_domain(1, 2, base="int")), cache=cache)
        assert not after.holds, "stale pre-mutation entry served after schema change"

    def test_failing_check_raises_again_on_warm_cache(self):
        """Raised validation failures are never cached, so a bad mapping
        keeps failing on every validation through the same cache."""
        schema = (
            ClientSchemaBuilder()
            .entity("P", key=[("Id", INT)])
            .entity_set("Ps", "P")
            .build()
        )
        store = StoreSchema(
            [
                Table(
                    "T",
                    (Column("Id", INT, False), Column("D", enum_domain("a"), False)),
                    ("Id",),
                )
            ]
        )
        mapping = Mapping(
            schema,
            store,
            [
                MappingFragment(
                    "Ps", False, IsOf("P"), "T",
                    Comparison("D", "=", "zz"),  # outside D's domain {a}
                    (("Id", "Id"),),
                )
            ],
        )
        views = generate_views(mapping)
        cache = ValidationCache()
        for _ in range(2):
            with pytest.raises(ValidationError):
                validate_mapping(mapping, views, cache=cache)

    def test_fragment_mutation_invalidates_check_memo(self, stage4_mapping):
        """An SMO-style fragment change forces the checks that read the
        fragment to recompute, while untouched subproblems still hit."""
        views = generate_views(stage4_mapping)
        cache = ValidationCache()
        validate_mapping(stage4_mapping, views, cache=cache)

        # Structurally different but semantically equivalent mutation of
        # the HR fragment: reorder its (attr, column) pairs.
        mutated = stage4_mapping.clone()
        fragments = []
        for fragment in mutated.fragments:
            if fragment.store_table == "HR" and not fragment.is_association:
                fragment = MappingFragment(
                    fragment.client_source,
                    fragment.is_association,
                    fragment.client_condition,
                    fragment.store_table,
                    fragment.store_condition,
                    tuple(reversed(fragment.attribute_map)),
                )
            fragments.append(fragment)
        mutated.replace_fragments(fragments)
        mutated_views = generate_views(mutated)
        report = validate_mapping(mutated, mutated_views, cache=cache)
        assert report.cache_misses > 0, "mutated neighborhood must recompute"
        assert report.cache_hits > 0, "untouched subproblems should still hit"


class TestSessionCache:
    def test_session_validate_shares_one_cache(self, stage4_mapping):
        from repro.compiler import compile_mapping
        from repro.incremental import CompiledModel
        from repro.session import OrmSession

        result = compile_mapping(stage4_mapping)
        session = OrmSession.create(CompiledModel(result.mapping, result.views))
        first = session.validate()
        second = session.validate()
        assert first.cache_misses > 0
        assert second.cache_hits > 0 and second.cache_misses == 0
        assert second.elapsed < first.elapsed
        assert session.cache_stats().entries > 0


class TestLruBound:
    def test_eviction_over_max_entries(self):
        cache = ValidationCache(max_entries=2)
        for i in range(3):
            cache.get_or_compute("ns", f"k{i}", lambda i=i: i)
        stats = cache.stats()
        assert stats.entries == 2
        assert stats.evictions == 1
        # the oldest entry is gone: recomputed on next ask
        calls = []
        assert cache.get_or_compute("ns", "k0", lambda: calls.append(1) or 9) == 9
        assert calls

    def test_hit_refreshes_lru_order(self):
        cache = ValidationCache(max_entries=2)
        cache.get_or_compute("ns", "a", lambda: 1)
        cache.get_or_compute("ns", "b", lambda: 2)
        cache.get_or_compute("ns", "a", lambda: -1)  # hit refreshes "a"
        cache.get_or_compute("ns", "c", lambda: 3)   # evicts "b", not "a"
        calls = []
        assert cache.get_or_compute("ns", "a", lambda: calls.append(1) or -1) == 1
        assert not calls
        cache.get_or_compute("ns", "b", lambda: calls.append(1) or 2)
        assert calls

    def test_default_bound_is_generous(self):
        cache = ValidationCache()
        assert cache.max_entries == ValidationCache.DEFAULT_MAX_ENTRIES
        for i in range(100):
            cache.get_or_compute("ns", f"k{i}", lambda i=i: i)
        assert cache.stats().evictions == 0

    def test_stats_string_mentions_evictions(self):
        cache = ValidationCache(max_entries=1)
        cache.get_or_compute("ns", "a", lambda: 1)
        cache.get_or_compute("ns", "b", lambda: 2)
        assert "evictions=1" in str(cache.stats())
