"""Differential suite for the compiled physical-plan path.

The memory backend serves cached plans through
:mod:`repro.backend.physical` — conditions compiled to predicate
closures, pushdown into index probes, prebuilt join indexes.  Every
answer must be byte-identical to the interpreter's
(:mod:`repro.algebra.evaluate`), which these tests enforce three ways:

* the workload matrix and every SMO kind (+ undo) of
  :mod:`tests.test_backend_differential`, compiled-vs-interpreter on the
  memory backend;
* property tests sweeping random condition trees (the seed harness of
  :mod:`tests.test_symbolic_containment`) through both paths;
* a differential check that delta-scoped constraint checking
  (:func:`~repro.relational.constraints.check_delta`) reports exactly
  the violations of a full :func:`check_all`.
"""

import random

import pytest

from tests.test_backend_differential import SMO_KINDS, WORKLOADS, canon, compiled
from tests.test_serving_differential import _probe_queries
from repro.algebra import (
    Comparison,
    IsNotNull,
    IsNull,
    IsOf,
    IsOfOnly,
    Not,
    and_,
    or_,
)
from repro.algebra.conditions import TRUE
from repro.backend.memory import MemoryBackend
from repro.edm import INT, STRING
from repro.query import EntityQuery
from repro.query.dml import apply_delta, diff_store_states
from repro.query.unfold import unfold
from repro.relational import Column, ForeignKey, StoreSchema, StoreState, Table
from repro.relational.constraints import check_all, check_delta
from repro.session import OrmSession
from repro.stategen import random_client_state
from repro.workloads.paper_example import mapping_stage4


def memory_session(model) -> OrmSession:
    return OrmSession(model, backend=MemoryBackend(StoreState(model.store_schema)))


def interpreter_answer(session, query):
    """The uncached reference pipeline: fresh unfold, algebra interpreter."""
    model = session.model
    return canon(
        unfold(query, model.views, model.client_schema).run_on(session.backend)
    )


def assert_compiled_matches_interpreter(session, queries):
    assert session.backend.compiles_plans
    for query in queries:
        reference = interpreter_answer(session, query)
        assert canon(session.query(query)) == reference  # cold plan
        assert canon(session.query(query)) == reference, (
            f"warm compiled answer diverges on {query.set_name}"
        )


# ---------------------------------------------------------------------------
# Workloads × SMO kinds + undo
# ---------------------------------------------------------------------------

@pytest.mark.parametrize(
    "factory", [f for _, f in WORKLOADS], ids=[name for name, _ in WORKLOADS]
)
def test_compiled_answers_match_interpreter(factory):
    model = compiled(factory())
    session = memory_session(model)
    state = random_client_state(model.client_schema, seed=31, entities_per_set=6)
    session.save(state)
    assert_compiled_matches_interpreter(
        session, _probe_queries(model.client_schema)
    )
    stats = session.backend.index_stats()
    assert stats.compiled_runs > 0, "compiled path was not exercised"


@pytest.mark.parametrize(
    "base_factory,smo_factory,pop",
    [(b, s, p) for _, b, s, p in SMO_KINDS],
    ids=[kind for kind, _, _, _ in SMO_KINDS],
)
def test_compiled_answers_survive_smo_and_undo(base_factory, smo_factory, pop):
    """Each SMO kind: compiled answers match the interpreter before the
    evolution, after it, and after undoing it (plans recompile against
    the current model at every stage)."""
    model = base_factory()
    session = memory_session(model)
    session.save(pop(model))
    assert_compiled_matches_interpreter(
        session, _probe_queries(model.client_schema)
    )
    session.evolve(smo_factory(model))
    assert_compiled_matches_interpreter(
        session, _probe_queries(session.model.client_schema)
    )
    session.undo()
    assert_compiled_matches_interpreter(
        session, _probe_queries(session.model.client_schema)
    )


# ---------------------------------------------------------------------------
# Property tests: random condition trees (the seed harness of
# tests/test_symbolic_containment.py, over the Figure 1 Persons set)
# ---------------------------------------------------------------------------

def _random_atom(rng):
    kind = rng.randrange(8)
    if kind == 0:
        return Comparison("Id", rng.choice(["=", "!=", "<", "<=", ">", ">="]),
                          rng.choice([1, 2, 4]))
    if kind == 1:
        return Comparison("Name", rng.choice(["=", "!="]),
                          rng.choice(["p1", "e2", "c3"]))
    if kind == 2:
        return Comparison("CredScore", rng.choice(["<", ">="]),
                          rng.choice([0, 100]))
    if kind == 3:
        return Comparison("Department", "=", rng.choice(["HR", "R&D"]))
    if kind == 4:
        return rng.choice([IsNull("Department"), IsNotNull("Department")])
    if kind == 5:
        return IsOf(rng.choice(["Person", "Employee", "Customer"]))
    if kind == 6:
        return IsOfOnly(rng.choice(["Person", "Employee", "Customer"]))
    return rng.choice([TRUE, IsNotNull("Id"), IsNull("CredScore")])


def _random_condition(rng, depth=0):
    roll = rng.random()
    if depth >= 3 or roll < 0.5:
        return _random_atom(rng)
    if roll < 0.72:
        return and_(_random_condition(rng, depth + 1),
                    _random_condition(rng, depth + 1))
    if roll < 0.92:
        return or_(_random_condition(rng, depth + 1),
                   _random_condition(rng, depth + 1))
    return Not(_random_condition(rng, depth + 1))


@pytest.fixture(scope="module")
def figure1_session():
    model = compiled(mapping_stage4())
    session = memory_session(model)
    state = random_client_state(model.client_schema, seed=13, entities_per_set=8)
    session.save(state)
    return session


class TestRandomConditionDifferential:
    @pytest.mark.parametrize("seed", range(40))
    def test_compiled_agrees_with_interpreter(self, figure1_session, seed):
        rng = random.Random(seed)
        condition = _random_condition(rng)
        for query in (
            EntityQuery("Persons", condition),
            EntityQuery("Persons", condition, projection=("Id", "Name")),
        ):
            reference = interpreter_answer(figure1_session, query)
            assert canon(figure1_session.query(query)) == reference, (
                f"seed {seed}: compiled diverges on {condition}"
            )

    def test_one_plan_serves_many_bindings(self, figure1_session):
        """Key probes of different constants share one compiled plan; each
        binding's answer matches the interpreter and the probes hit the
        backend's hash index."""
        session = figure1_session
        hits_before = session.plan_cache.stats().hits
        for value in range(6):
            query = EntityQuery("Persons", Comparison("Id", "=", value))
            assert canon(session.query(query)) == interpreter_answer(
                session, query
            )
        assert session.plan_cache.stats().hits >= hits_before + 5
        stats = session.backend.index_stats()
        assert stats.builds > 0, "no index was built for the key probes"
        assert stats.hits > 0, "warm probes did not reuse the index"

    def test_serving_stats_report_physical_indexes(self, figure1_session):
        report = str(figure1_session.serving_stats())
        assert "plan cache" in report
        assert "physical indexes" in report


# ---------------------------------------------------------------------------
# Delta-scoped constraint checking ≡ full re-check
# ---------------------------------------------------------------------------

def _fk_schema() -> StoreSchema:
    return StoreSchema(
        [
            Table("T", (Column("K", INT, False), Column("V", STRING)), ("K",)),
            Table(
                "R",
                (Column("K2", INT, False), Column("Ref", INT, True)),
                ("K2",),
                (ForeignKey(("Ref",), "T", ("K",)),),
            ),
        ]
    )


def _base_state(schema: StoreSchema) -> StoreState:
    state = StoreState(schema)
    for k in (1, 2, 3):
        state.add_row("T", {"K": k, "V": f"v{k}"})
    state.add_row("R", {"K2": 10, "Ref": 1})
    state.add_row("R", {"K2": 11, "Ref": None})
    return state


def _mutate(schema, base, edit):
    """Target = a fresh state with *edit* applied to base's rows."""
    target = StoreState(schema)
    rows = {name: [dict(r) for r in base.rows(name)] for name in ("T", "R")}
    edit(rows)
    for name, table_rows in rows.items():
        for row in table_rows:
            target.add_row(name, row)
    return target


DELTA_SCENARIOS = [
    (
        "consistent-edit",
        lambda rows: (
            rows["T"].append({"K": 4, "V": "v4"}),
            rows["R"].remove({"K2": 11, "Ref": None}),
            rows["R"][0].update(Ref=2),
        ),
    ),
    (
        "dangling-insert",
        lambda rows: rows["R"].append({"K2": 12, "Ref": 99}),
    ),
    (
        "delete-referenced",
        lambda rows: rows["T"].remove({"K": 1, "V": "v1"}),
    ),
    (
        "duplicate-key-insert",
        lambda rows: rows["T"].append({"K": 1, "V": "other"}),
    ),
    (
        "update-moves-referenced-key",
        lambda rows: rows["T"][0].update(K=9),
    ),
    (
        "mixed",
        lambda rows: (
            rows["T"].remove({"K": 2, "V": "v2"}),
            rows["R"].append({"K2": 13, "Ref": 2}),
            rows["T"].append({"K": 3, "V": "dup"}),
        ),
    ),
]


class TestDeltaScopedConstraintChecking:
    @pytest.mark.parametrize(
        "edit", [e for _, e in DELTA_SCENARIOS],
        ids=[name for name, _ in DELTA_SCENARIOS],
    )
    def test_same_violations_as_full_check(self, edit):
        schema = _fk_schema()
        base = _base_state(schema)
        assert not check_all(base)  # the exactness precondition
        target = _mutate(schema, base, edit)
        delta = diff_store_states(base, target)
        candidate = apply_delta(base, delta)
        scoped = sorted(str(v) for v in check_delta(base, candidate, delta))
        full = sorted(str(v) for v in check_all(candidate))
        assert scoped == full

    @pytest.mark.parametrize(
        "factory", [f for _, f in WORKLOADS], ids=[name for name, _ in WORKLOADS]
    )
    def test_workload_saves_agree(self, factory):
        """Random client-state transitions on every workload: the scoped
        checker and the full checker agree on the resulting deltas."""
        from repro.mapping.roundtrip import apply_update_views

        model = compiled(factory())
        before = apply_update_views(
            model.views,
            random_client_state(model.client_schema, seed=41, entities_per_set=5),
            model.store_schema,
        )
        after = apply_update_views(
            model.views,
            random_client_state(model.client_schema, seed=42, entities_per_set=4),
            model.store_schema,
        )
        delta = diff_store_states(before, after)
        candidate = apply_delta(before, delta)
        scoped = sorted(str(v) for v in check_delta(before, candidate, delta))
        full = sorted(str(v) for v in check_all(candidate))
        assert scoped == full
