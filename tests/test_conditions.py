"""Unit tests: condition AST, smart constructors, evaluation."""

import pytest

from repro.algebra.conditions import (
    And,
    Comparison,
    FALSE,
    IsNotNull,
    IsNull,
    IsOf,
    IsOfOnly,
    Not,
    Or,
    TRUE,
    and_,
    evaluate_condition,
    or_,
    referenced_attrs,
    referenced_types,
)
from repro.errors import EvaluationError


class _Ctx:
    """Minimal tuple context for evaluation tests."""

    def __init__(self, values, concrete="T", ancestors=("T",)):
        self.values = values
        self.concrete = concrete
        self.ancestors = ancestors

    def attr_value(self, name):
        if name not in self.values:
            raise KeyError(name)
        return self.values[name]

    def is_of(self, type_name, only):
        if only:
            return type_name == self.concrete
        return type_name in self.ancestors


class TestSmartConstructors:
    def test_and_flattens(self):
        c = and_(Comparison("a", "=", 1), and_(Comparison("b", "=", 2), TRUE))
        assert isinstance(c, And)
        assert len(c.operands) == 2

    def test_and_false_absorbs(self):
        assert and_(Comparison("a", "=", 1), FALSE) is FALSE

    def test_and_empty_is_true(self):
        assert and_() is TRUE

    def test_or_flattens(self):
        c = or_(Comparison("a", "=", 1), or_(Comparison("b", "=", 2)))
        assert isinstance(c, Or)
        assert len(c.operands) == 2

    def test_or_true_absorbs(self):
        assert or_(Comparison("a", "=", 1), TRUE) is TRUE

    def test_or_empty_is_false(self):
        assert or_() is FALSE

    def test_single_operand_unwrapped(self):
        atom = Comparison("a", "=", 1)
        assert and_(atom) is atom
        assert or_(atom) is atom

    def test_operators(self):
        atom = Comparison("a", "=", 1)
        assert isinstance(atom & IsNull("b"), And)
        assert isinstance(atom | IsNull("b"), Or)
        assert isinstance(~atom, Not)


class TestIntrospection:
    def test_referenced_attrs(self):
        c = and_(Comparison("a", "=", 1), or_(IsNull("b"), IsNotNull("c")), IsOf("T"))
        assert referenced_attrs(c) == frozenset({"a", "b", "c"})

    def test_referenced_types(self):
        c = or_(IsOf("A"), IsOfOnly("B"))
        assert referenced_types(c) == frozenset({"A", "B"})

    def test_atoms_iterates_leaves(self):
        c = and_(Comparison("a", "=", 1), Not(IsNull("b")))
        atoms = list(c.atoms())
        assert Comparison("a", "=", 1) in atoms
        assert IsNull("b") in atoms

    def test_invalid_operator_rejected(self):
        with pytest.raises(EvaluationError):
            Comparison("a", "~", 1)


class TestEvaluation:
    def test_comparisons(self):
        ctx = _Ctx({"a": 5})
        assert evaluate_condition(Comparison("a", "=", 5), ctx)
        assert evaluate_condition(Comparison("a", "!=", 4), ctx)
        assert evaluate_condition(Comparison("a", "<", 6), ctx)
        assert evaluate_condition(Comparison("a", "<=", 5), ctx)
        assert evaluate_condition(Comparison("a", ">", 4), ctx)
        assert evaluate_condition(Comparison("a", ">=", 5), ctx)
        assert not evaluate_condition(Comparison("a", "=", 6), ctx)

    def test_null_comparison_is_false(self):
        ctx = _Ctx({"a": None})
        assert not evaluate_condition(Comparison("a", "=", None), ctx)
        assert not evaluate_condition(Comparison("a", "<", 5), ctx)

    def test_null_tests(self):
        ctx = _Ctx({"a": None, "b": 1})
        assert evaluate_condition(IsNull("a"), ctx)
        assert not evaluate_condition(IsNull("b"), ctx)
        assert evaluate_condition(IsNotNull("b"), ctx)

    def test_missing_attribute_atoms_false(self):
        """Attributes a tuple lacks make the atom false — the semantics the
        heterogeneous entity-set scan relies on."""
        ctx = _Ctx({})
        assert not evaluate_condition(Comparison("zz", "=", 1), ctx)
        assert not evaluate_condition(IsNull("zz"), ctx)
        assert not evaluate_condition(IsNotNull("zz"), ctx)

    def test_type_atoms(self):
        ctx = _Ctx({}, concrete="Employee", ancestors=("Employee", "Person"))
        assert evaluate_condition(IsOf("Person"), ctx)
        assert evaluate_condition(IsOf("Employee"), ctx)
        assert evaluate_condition(IsOfOnly("Employee"), ctx)
        assert not evaluate_condition(IsOfOnly("Person"), ctx)

    def test_and_or_not(self):
        ctx = _Ctx({"a": 1})
        c = and_(Comparison("a", "=", 1), or_(IsNull("a"), Comparison("a", "<", 2)))
        assert evaluate_condition(c, ctx)
        assert not evaluate_condition(Not(c), ctx)

    def test_incomparable_types_raise(self):
        ctx = _Ctx({"a": "text"})
        with pytest.raises(EvaluationError):
            evaluate_condition(Comparison("a", "<", 5), ctx)

    def test_true_false(self):
        ctx = _Ctx({})
        assert evaluate_condition(TRUE, ctx)
        assert not evaluate_condition(FALSE, ctx)


class TestTransform:
    def test_transform_rebuilds_bottom_up(self):
        c = and_(IsOfOnly("P"), or_(IsOf("Q"), IsNull("a")))

        def widen(node):
            if node == IsOfOnly("P"):
                return or_(IsOfOnly("P"), IsOf("E"))
            return node

        result = c.transform(widen)
        assert IsOf("E") in list(result.atoms())
        # original untouched (immutability)
        assert IsOf("E") not in list(c.atoms())
