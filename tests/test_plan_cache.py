"""Unit tests: parameter extraction, cached plans, and the LRU plan
cache with delta-scoped invalidation (:mod:`repro.query.plancache`)."""

import pytest

from repro.algebra.conditions import TRUE, Comparison, IsNull, and_
from repro.compiler import compile_mapping
from repro.edm import INT, STRING, Attribute, ClientSchemaBuilder, Entity
from repro.incremental import AddProperty, CompiledModel
from repro.mapping import Mapping, MappingFragment
from repro.query import EntityQuery, PlanCache, Param, parameterize
from repro.query.plancache import bind_condition
from repro.relational import Column, StoreSchema, Table
from repro.session import OrmSession
from repro.workloads.paper_example import mapping_stage4


def _stage4_model() -> CompiledModel:
    mapping = mapping_stage4()
    return CompiledModel(mapping, compile_mapping(mapping).views)


def _two_set_model() -> CompiledModel:
    """Two singleton sets over disjoint tables (Lefts -> TL, Rights -> TR)."""
    schema = (
        ClientSchemaBuilder()
        .entity("Left", key=[("Id", INT)], attrs=[("Val", STRING)])
        .entity_set("Lefts", "Left")
        .entity("Right", key=[("Id", INT)], attrs=[("Val", STRING)])
        .entity_set("Rights", "Right")
        .build()
    )
    store = StoreSchema(
        [
            Table("TL", (Column("Id", INT, False), Column("Val", STRING)), ("Id",)),
            Table("TR", (Column("Id", INT, False), Column("Val", STRING)), ("Id",)),
        ]
    )
    mapping = Mapping(
        schema, store,
        [
            MappingFragment("Lefts", False, TRUE, "TL", TRUE,
                            (("Id", "Id"), ("Val", "Val"))),
            MappingFragment("Rights", False, TRUE, "TR", TRUE,
                            (("Id", "Id"), ("Val", "Val"))),
        ],
    )
    return CompiledModel(mapping, compile_mapping(mapping).views)


def _populate_two_sets(session: OrmSession, size: int = 6) -> None:
    with session.edit() as state:
        for i in range(size):
            state.add_entity("Lefts", Entity.of("Left", Id=i, Val=f"l{i}"))
            state.add_entity("Rights", Entity.of("Right", Id=i, Val=f"r{i}"))


class TestParameterize:
    def test_extracts_constants_into_vector(self):
        query = EntityQuery("Persons", Comparison("Id", ">", 5))
        shape, values = parameterize(query, frozenset())
        assert values == (5,)
        assert shape.condition == Comparison("Id", ">", Param(0))

    def test_same_shape_for_different_bindings(self):
        """Hash-consing makes the parameterized condition the *same*
        object for every binding of one shape."""
        shape5, _ = parameterize(
            EntityQuery("Persons", Comparison("Id", ">", 5)), frozenset()
        )
        shape9, _ = parameterize(
            EntityQuery("Persons", Comparison("Id", ">", 9)), frozenset()
        )
        assert shape5.condition is shape9.condition

    def test_multiple_params_keep_slot_order(self):
        query = EntityQuery(
            "Persons",
            and_(Comparison("Id", ">", 1), Comparison("Name", "=", "ann")),
        )
        shape, values = parameterize(query, frozenset())
        assert values == (1, "ann")
        params = [
            atom.const for atom in shape.condition.atoms()
            if isinstance(atom, Comparison) and isinstance(atom.const, Param)
        ]
        assert params == [Param(0), Param(1)]

    def test_none_constants_stay_inline(self):
        """NULL comparisons generate different SQL text, so None is part
        of the shape, never a parameter."""
        query = EntityQuery(
            "Persons",
            and_(Comparison("Name", "=", None), Comparison("Id", ">", 3)),
        )
        shape, values = parameterize(query, frozenset())
        assert values == (3,)
        assert Comparison("Name", "=", None) in list(shape.condition.atoms())

    def test_pinned_attrs_stay_inline(self):
        """Constants compared against view-pinned attributes fold during
        specialisation by *value*, so they key the shape."""
        query = EntityQuery(
            "Persons",
            and_(Comparison("Kind", "=", "emp"), Comparison("Id", ">", 3)),
        )
        shape, values = parameterize(query, frozenset({"Kind"}))
        assert values == (3,)
        assert Comparison("Kind", "=", "emp") in list(shape.condition.atoms())

    def test_condition_free_query_has_no_params(self):
        shape, values = parameterize(EntityQuery("Persons"), frozenset())
        assert values == ()
        assert shape.condition is TRUE

    def test_bind_condition_restores_original(self):
        original = and_(
            Comparison("Id", ">", 7), Comparison("Name", "!=", "bob"),
            IsNull("Department"),
        )
        shape, values = parameterize(
            EntityQuery("Persons", original), frozenset()
        )
        assert bind_condition(shape.condition, values) is original


class TestPlanCacheCounters:
    def test_shape_sharing_hits(self):
        model = _stage4_model()
        cache = PlanCache()
        for value in (1, 2, 3):
            plan, values = cache.plan_for(
                model, EntityQuery("Persons", Comparison("Id", ">", value))
            )
            assert values == (value,)
        stats = cache.stats()
        assert (stats.misses, stats.hits, stats.entries) == (1, 2, 1)

    def test_distinct_shapes_get_distinct_plans(self):
        model = _stage4_model()
        cache = PlanCache()
        cache.plan_for(model, EntityQuery("Persons", Comparison("Id", ">", 1)))
        cache.plan_for(model, EntityQuery("Persons", Comparison("Id", "=", 1)))
        cache.plan_for(model, EntityQuery("Persons", Comparison("Id", ">", 1), ("Id",)))
        assert cache.stats().entries == 3
        assert cache.stats().misses == 3

    def test_lru_eviction_bounds_entries(self):
        model = _stage4_model()
        cache = PlanCache(max_plans=2)
        shapes = [
            EntityQuery("Persons", Comparison("Id", ">", 0)),
            EntityQuery("Persons", Comparison("Id", "=", 0)),
            EntityQuery("Persons", Comparison("Name", "=", "x")),
        ]
        for query in shapes:
            cache.plan_for(model, query)
        stats = cache.stats()
        assert stats.entries == 2
        assert stats.evictions == 1
        # the oldest shape was evicted: asking again misses
        cache.plan_for(model, shapes[0])
        assert cache.stats().misses == 4

    def test_lru_keeps_recently_used(self):
        model = _stage4_model()
        cache = PlanCache(max_plans=2)
        first = EntityQuery("Persons", Comparison("Id", ">", 0))
        second = EntityQuery("Persons", Comparison("Id", "=", 0))
        cache.plan_for(model, first)
        cache.plan_for(model, second)
        cache.plan_for(model, first)  # refresh first
        cache.plan_for(model, EntityQuery("Persons", Comparison("Name", "=", "x")))
        hits_before = cache.stats().hits
        cache.plan_for(model, first)  # must still be cached
        assert cache.stats().hits == hits_before + 1


class TestDeltaScopedInvalidation:
    def test_touched_set_evicted_untouched_survives(self):
        model = _two_set_model()
        session = OrmSession.create(model, backend="memory")
        _populate_two_sets(session)
        left = EntityQuery("Lefts", Comparison("Id", ">", 0))
        right = EntityQuery("Rights", Comparison("Id", ">", 0))
        session.query(left)
        session.query(right)
        assert session.plan_cache.stats().entries == 2

        session.evolve(
            AddProperty(
                "Left", Attribute("Extra", STRING, nullable=True), "TL", "Extra"
            )
        )
        stats = session.plan_cache.stats()
        assert stats.invalidations == 1
        assert stats.entries == 1

        # the untouched set's plan still hits; the touched one rebuilds
        session.query(right)
        assert session.plan_cache.stats().hits == stats.hits + 1
        session.query(left)
        assert session.plan_cache.stats().misses == stats.misses + 1

    def test_rebuilt_plan_sees_new_property(self):
        model = _two_set_model()
        session = OrmSession.create(model, backend="memory")
        _populate_two_sets(session, size=3)
        query = EntityQuery("Lefts")
        session.query(query)
        session.evolve(
            AddProperty(
                "Left", Attribute("Extra", STRING, nullable=True), "TL", "Extra"
            )
        )
        rows = session.query(query)
        assert all("Extra" in repr(row) for row in rows)

    def test_undo_invalidates_as_well(self):
        model = _two_set_model()
        session = OrmSession.create(model, backend="memory")
        _populate_two_sets(session, size=3)
        query = EntityQuery("Lefts")
        session.evolve(
            AddProperty(
                "Left", Attribute("Extra", STRING, nullable=True), "TL", "Extra"
            )
        )
        with_extra = session.query(query)
        assert all("Extra" in repr(row) for row in with_extra)
        session.undo()
        rows = session.query(query)
        assert not any("Extra" in repr(row) for row in rows)

    def test_clear_resets_everything(self):
        model = _stage4_model()
        cache = PlanCache()
        cache.plan_for(model, EntityQuery("Persons", Comparison("Id", ">", 1)))
        cache.clear()
        assert len(cache) == 0
        cache.plan_for(model, EntityQuery("Persons", Comparison("Id", ">", 2)))
        assert cache.stats().misses == 2


class TestSessionServing:
    @pytest.mark.parametrize("backend_name", ["memory", "sqlite"])
    def test_explain_warms_the_cache(self, backend_name):
        model = _stage4_model()
        session = OrmSession.create(model, backend=backend_name)
        try:
            query = EntityQuery("Persons", Comparison("Id", ">", 1))
            session.explain(query)
            assert session.plan_cache.stats().entries == 1
            session.query(query)
            assert session.plan_cache.stats().hits >= 1
        finally:
            session.backend.close()

    def test_explain_sql_binds_parameters(self):
        model = _stage4_model()
        session = OrmSession.create(model, backend="sqlite")
        try:
            branches = session.explain_sql(
                EntityQuery("Persons", Comparison("Id", ">", 42))
            )
            assert branches
            for _concrete_type, text, params in branches:
                assert "SELECT" in text
                assert 42 in params
        finally:
            session.backend.close()

    def test_serving_stats_reports_both_caches_on_sqlite(self):
        model = _stage4_model()
        session = OrmSession.create(model, backend="sqlite")
        try:
            session.query(EntityQuery("Persons"))
            session.query(EntityQuery("Persons"))
            text = str(session.serving_stats())
            assert "plan cache" in text
            assert "statement cache" in text
        finally:
            session.backend.close()
