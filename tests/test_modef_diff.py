"""Unit tests: model diff (Section 1.2) and MoDEF inference (Section 4.1)."""

import pytest

from repro.compiler import compile_mapping
from repro.edm import (
    Attribute,
    ClientSchemaBuilder,
    ClientState,
    Entity,
    INT,
    STRING,
)
from repro.edm.diff import (
    AddedAssociation,
    AddedAttribute,
    AddedEntityType,
    DroppedAssociation,
    DroppedEntityType,
    diff_client_schemas,
)
from repro.errors import SchemaError
from repro.incremental import CompiledModel, IncrementalCompiler
from repro.mapping import check_roundtrip
from repro.modef import TPC, TPH, TPT, infer_style, primary_table_of, smos_from_diff
from repro.workloads.hub_rim import hub_rim_mapping
from repro.workloads.paper_example import (
    client_schema_stage1,
    client_schema_stage4,
    mapping_stage1,
)


class TestDiff:
    def test_empty_diff(self):
        schema = client_schema_stage4()
        assert diff_client_schemas(schema, schema) == []

    def test_added_types_parent_first(self):
        edits = diff_client_schemas(client_schema_stage1(), client_schema_stage4())
        added = [e for e in edits if isinstance(e, AddedEntityType)]
        assert {e.name for e in added} == {"Employee", "Customer"}
        assoc = [e for e in edits if isinstance(e, AddedAssociation)]
        assert len(assoc) == 1 and assoc[0].association.name == "Supports"

    def test_drops_before_adds(self):
        old = client_schema_stage4()
        new = client_schema_stage1()
        edits = diff_client_schemas(old, new)
        kinds = [type(e).__name__ for e in edits]
        assert kinds.index("DroppedAssociation") < kinds.index("DroppedEntityType")

    def test_leaf_first_drop_order(self):
        old = (
            ClientSchemaBuilder()
            .entity("A", key=[("Id", INT)])
            .entity("B", parent="A")
            .entity("C", parent="B")
            .entity_set("As", "A")
            .build()
        )
        new = (
            ClientSchemaBuilder()
            .entity("A", key=[("Id", INT)])
            .entity_set("As", "A")
            .build()
        )
        edits = diff_client_schemas(old, new)
        names = [e.name for e in edits if isinstance(e, DroppedEntityType)]
        assert names == ["C", "B"]

    def test_added_attribute(self):
        old = client_schema_stage4()
        new = client_schema_stage4()
        new.add_attribute("Employee", Attribute("Title", STRING))
        edits = diff_client_schemas(old, new)
        assert edits == [AddedAttribute("Employee", Attribute("Title", STRING))]

    def test_attribute_removal_unsupported(self):
        old = client_schema_stage4()
        new = (
            ClientSchemaBuilder()
            .entity("Person", key=[("Id", INT)])
            .entity_set("Persons", "Person")
            .build()
        )
        # Person loses Name
        with pytest.raises(SchemaError):
            diff_client_schemas(old, new)

    def test_new_root_unsupported(self):
        old = client_schema_stage1()
        new = (
            ClientSchemaBuilder()
            .entity("Person", key=[("Id", INT)], attrs=[("Name", STRING)])
            .entity("Island", key=[("K", INT)])
            .entity_set("Persons", "Person")
            .entity_set("Islands", "Island")
            .build()
        )
        with pytest.raises(SchemaError):
            diff_client_schemas(old, new)


class TestInference:
    def test_tph_inferred(self):
        mapping = hub_rim_mapping(2, 1, "TPH")
        model = CompiledModel(mapping, compile_mapping(mapping).views)
        inference = infer_style(model, "Hub2")
        assert inference.style == TPH
        assert inference.tph_table == "Big"
        assert inference.discriminator_column == "Disc"

    def test_tpt_inferred(self):
        mapping = hub_rim_mapping(2, 1, "TPT")
        model = CompiledModel(mapping, compile_mapping(mapping).views)
        assert infer_style(model, "Hub2").style == TPT

    def test_tpc_inferred(self, incrementally_evolved):
        """Customer maps all attributes (inherited included) into Client."""
        assert infer_style(incrementally_evolved, "Customer").style == TPC

    def test_primary_table(self, incrementally_evolved):
        assert primary_table_of(incrementally_evolved, "Employee") == "Emp"
        assert primary_table_of(incrementally_evolved, "Customer") == "Client"


class TestSmosFromDiff:
    def test_full_figure1_evolution(self):
        mapping = mapping_stage1()
        model = CompiledModel(mapping, compile_mapping(mapping).views)
        smos = smos_from_diff(model, client_schema_stage4(),
                              style_overrides={"Customer": "TPC"})
        results = IncrementalCompiler().apply_all(model, smos)
        final = results[-1].model
        assert final.client_schema.has_association("Supports")

        state = ClientState(final.client_schema)
        state.add_entity("Persons", Entity.of("Person", Id=1, Name="a"))
        state.add_entity(
            "Persons", Entity.of("Employee", Id=2, Name="b", Department="d")
        )
        state.add_entity(
            "Persons", Entity.of("Customer", Id=3, Name="c", CredScore=1, BillAddr="x")
        )
        state.add_association("Supports", (3,), (2,))
        assert check_roundtrip(final.views, state, final.store_schema).ok

    def test_round_trip_to_empty_diff(self):
        """After applying the generated SMOs, diffing again yields nothing."""
        mapping = mapping_stage1()
        model = CompiledModel(mapping, compile_mapping(mapping).views)
        target = client_schema_stage4()
        smos = smos_from_diff(model, target, style_overrides={"Customer": "TPC"})
        results = IncrementalCompiler().apply_all(model, smos)
        final = results[-1].model
        assert diff_client_schemas(final.client_schema, target) == []

    def test_many_to_many_gets_join_table(self, stage4_compiled):
        target = stage4_compiled.client_schema.clone()
        from repro.edm.association import AssociationEnd, AssociationSet, Multiplicity

        target.add_association(
            AssociationSet(
                "Mentors",
                AssociationEnd("Employee", Multiplicity.MANY, role="mentor"),
                AssociationEnd("Employee", Multiplicity.MANY, role="mentee"),
                "Persons",
                "Persons",
            )
        )
        smos = smos_from_diff(stage4_compiled, target)
        results = IncrementalCompiler().apply_all(stage4_compiled, smos)
        final = results[-1].model
        assert final.store_schema.has_table("Mentors")
        assert final.mapping.fragment_for_association("Mentors").store_table == "Mentors"

    def test_dropped_association_generates_drop(self, incrementally_evolved):
        target = incrementally_evolved.client_schema.clone()
        target.drop_association("Supports")
        smos = smos_from_diff(incrementally_evolved, target)
        results = IncrementalCompiler().apply_all(incrementally_evolved, smos)
        final = results[-1].model
        assert not final.client_schema.has_association("Supports")
