"""A miniature ORM application on top of the compiled mapping stack.

A project-tracker app: defines its object model, compiles the mapping,
and then *lives* with the database through :class:`OrmSession` —
querying through view unfolding, persisting through update-view deltas,
and evolving the schema mid-flight (with automatic data migration)
exactly the way the paper's interactive-development story describes.

Run:  python examples/orm_application.py
"""

from __future__ import annotations

from repro.algebra import Comparison, IsOf, and_
from repro.algebra.conditions import TRUE
from repro.compiler import compile_mapping
from repro.edm import Attribute, ClientSchemaBuilder, Entity, INT, STRING
from repro.incremental import CompiledModel
from repro.mapping import Mapping, MappingFragment
from repro.modef import generate_add_entity
from repro.query import EntityQuery
from repro.relational import Column, StoreSchema, Table
from repro.session import OrmSession


def build_model() -> CompiledModel:
    schema = (
        ClientSchemaBuilder()
        .entity("Task", key=[("Id", INT)],
                attrs=[("Title", STRING), ("Points", INT)])
        .entity("Person", key=[("Id", INT)], attrs=[("Name", STRING)])
        .entity_set("Tasks", "Task")
        .entity_set("People", "Person")
        .association("AssignedTo", "Task", "Person", mult1="*", mult2="0..1")
        .build()
    )
    store = StoreSchema(
        [
            Table(
                "TaskT",
                (Column("Id", INT, False), Column("Title", STRING),
                 Column("Points", INT, True), Column("Assignee", INT, True)),
                ("Id",),
            ),
            Table(
                "PersonT",
                (Column("Id", INT, False), Column("Name", STRING)),
                ("Id",),
            ),
        ]
    )
    from repro.algebra import IsNotNull

    mapping = Mapping(
        schema, store,
        [
            MappingFragment("Tasks", False, IsOf("Task"), "TaskT", TRUE,
                            (("Id", "Id"), ("Title", "Title"), ("Points", "Points"))),
            MappingFragment("People", False, IsOf("Person"), "PersonT", TRUE,
                            (("Id", "Id"), ("Name", "Name"))),
            MappingFragment("AssignedTo", True, TRUE, "TaskT", IsNotNull("Assignee"),
                            (("Task.Id", "Id"), ("Person.Id", "Assignee"))),
        ],
    )
    result = compile_mapping(mapping)
    print(f"mapping compiled + validated in {result.elapsed * 1000:.1f} ms")
    return CompiledModel(mapping, result.views)


def main() -> None:
    session = OrmSession.create(build_model())

    print("\n-- populating through SaveChanges --")
    with session.edit() as state:
        state.add_entity("People", Entity.of("Person", Id=1, Name="ann"))
        state.add_entity("People", Entity.of("Person", Id=2, Name="bob"))
        for task_id, title, points in (
            (10, "design schema", 5),
            (11, "write compiler", 13),
            (12, "benchmarks", 8),
        ):
            state.add_entity(
                "Tasks", Entity.of("Task", Id=task_id, Title=title, Points=points)
            )
        state.add_association("AssignedTo", (10,), (1,))
        state.add_association("AssignedTo", (11,), (2,))
    print(f"  store now holds {session.store_state.row_count()} rows")

    print("\n-- querying through view unfolding --")
    heavy = session.query(
        EntityQuery("Tasks", and_(IsOf("Task"), Comparison("Points", ">=", 8)),
                    projection=("Id", "Title"))
    )
    for row in heavy:
        print(f"  big task: {row}")

    print("\n-- the store-level plan for that query --")
    print(
        "\n".join(
            "  " + line
            for line in session.explain(
                EntityQuery("Tasks", Comparison("Points", ">=", 8))
            ).splitlines()[:6]
        )
    )

    print("\n-- evolving the model: Bug subtype of Task (TPT) --")
    smo = generate_add_entity(
        session.model, "Bug", "Task", [Attribute("Severity", INT)]
    )
    delta = session.evolve(smo)
    print(f"  SMO applied incrementally; data migration delta: {delta}")

    with session.edit() as state:
        state.add_entity(
            "Tasks",
            Entity.of("Bug", Id=13, Title="roundtrip fails", Points=3, Severity=1),
        )
    bugs = session.query(EntityQuery("Tasks", IsOf("Bug")))
    print(f"  bugs tracked: {[str(b) for b in bugs]}")

    print("\n-- everything still roundtrips --")
    from repro.mapping import check_roundtrip

    report = check_roundtrip(
        session.model.views, session.load(), session.model.store_schema
    )
    print(f"  {report}")


if __name__ == "__main__":
    main()
