"""The diff-driven workflow of Section 1.2.

"A developer can simply edit the model and then invoke a tool that
generates a sequence of SMOs from a diff of the old and new models."

This example starts from a compiled blog-engine model, *edits the client
schema directly* (as a developer would in a designer), diffs old vs new,
lets the MoDEF layer infer mapping styles and generate the SMO sequence,
and applies it incrementally.

Run:  python examples/model_diff_workflow.py
"""

from __future__ import annotations

from repro.algebra.conditions import IsOf, TRUE
from repro.compiler import compile_mapping
from repro.edm import ClientSchemaBuilder, ClientState, Entity, INT, STRING
from repro.incremental import CompiledModel, IncrementalCompiler
from repro.mapping import Mapping, MappingFragment, check_roundtrip
from repro.modef import infer_style, smos_from_diff
from repro.relational import Column, StoreSchema, Table


def initial_model() -> CompiledModel:
    """A small blog engine: Post and Author, each 1:1 with a table."""
    schema = (
        ClientSchemaBuilder()
        .entity("Post", key=[("Id", INT)], attrs=[("Title", STRING)])
        .entity("Author", key=[("Id", INT)], attrs=[("Name", STRING)])
        .entity_set("Posts", "Post")
        .entity_set("Authors", "Author")
        .build()
    )
    store = StoreSchema(
        [
            Table("PostT", (Column("Id", INT, False), Column("Title", STRING)), ("Id",)),
            Table("AuthorT", (Column("Id", INT, False), Column("Name", STRING)), ("Id",)),
        ]
    )
    mapping = Mapping(
        schema,
        store,
        [
            MappingFragment(
                "Posts", False, IsOf("Post"), "PostT", TRUE,
                (("Id", "Id"), ("Title", "Title")),
            ),
            MappingFragment(
                "Authors", False, IsOf("Author"), "AuthorT", TRUE,
                (("Id", "Id"), ("Name", "Name")),
            ),
        ],
    )
    return CompiledModel(mapping, compile_mapping(mapping).views)


def edited_schema():
    """What the developer wants the model to look like afterwards."""
    return (
        ClientSchemaBuilder()
        .entity("Post", key=[("Id", INT)], attrs=[("Title", STRING), ("Body", STRING)])
        .entity("VideoPost", parent="Post", attrs=[("Url", STRING)])
        .entity("Author", key=[("Id", INT)], attrs=[("Name", STRING)])
        .entity_set("Posts", "Post")
        .entity_set("Authors", "Author")
        .association("WrittenBy", "Post", "Author", mult1="*", mult2="0..1")
        .build()
    )


def main() -> None:
    model = initial_model()
    target = edited_schema()

    print("generating SMOs from the model diff ...")
    smos = smos_from_diff(model, target)
    compiler = IncrementalCompiler()
    for result in compiler.apply_all(model, smos):
        print(f"  {result}")
        model = result.model

    print("\ninferred mapping style around Post:", infer_style(model, "Post").style)
    print("\nevolved store schema:")
    print(model.store_schema)

    state = ClientState(model.client_schema)
    state.add_entity("Posts", Entity.of("Post", Id=1, Title="hello", Body="..."))
    state.add_entity(
        "Posts", Entity.of("VideoPost", Id=2, Title="clip", Body="...", Url="v.mp4")
    )
    state.add_entity("Authors", Entity.of("Author", Id=7, Name="ann"))
    state.add_association("WrittenBy", (1,), (7,))
    print(check_roundtrip(model.views, state, model.store_schema))


if __name__ == "__main__":
    main()
