"""Partitioned entity storage and the tautology coverage check (Section 3.3).

Replays both Section 3.3 scenarios:

* ``Person(name, age)`` stored in ``Adult`` or ``Young`` depending on
  ``age`` — the compiler proves ``age ≥ 18 ∨ age < 18`` is a tautology;
* the gender example: ids split into ``Men``/``Women`` by a *pinned*
  attribute (gender is never stored — it is reconstructed from which
  table the row lives in), names shared in a ``Name`` table; the
  tautology ``gender = M ∨ gender = F`` holds because the domain is
  {M, F}.

Also demonstrates the rejection of an incomplete partition.

Run:  python examples/partitioned_storage.py
"""

from __future__ import annotations

from repro.algebra.conditions import Comparison, IsOf, TRUE
from repro.compiler import compile_mapping
from repro.edm import (
    Attribute,
    ClientSchemaBuilder,
    ClientState,
    Entity,
    INT,
    STRING,
    enum_domain,
)
from repro.errors import ValidationError
from repro.incremental import (
    AddEntityPart,
    CompiledModel,
    IncrementalCompiler,
    Partition,
)
from repro.mapping import Mapping, MappingFragment, apply_update_views, check_roundtrip
from repro.relational import Column, StoreSchema, Table


def base_model() -> CompiledModel:
    schema = (
        ClientSchemaBuilder()
        .entity("Record", key=[("id", INT)])
        .entity_set("Records", "Record")
        .build()
    )
    store = StoreSchema([Table("R", (Column("id", INT, False),), ("id",))])
    mapping = Mapping(
        schema, store,
        [MappingFragment("Records", False, IsOf("Record"), "R", TRUE, (("id", "id"),))],
    )
    return CompiledModel(mapping, compile_mapping(mapping).views)


def main() -> None:
    compiler = IncrementalCompiler()
    model = base_model()

    print("1. horizontal partition by age (Adult / Young)")
    smo = AddEntityPart(
        name="Person",
        parent="Record",
        new_attributes=(Attribute("age", INT), Attribute("name", STRING)),
        anchor="Record",
        partitions=(
            Partition.of(("id", "age", "name"), Comparison("age", ">=", 18), "Adult"),
            Partition.of(("id", "age", "name"), Comparison("age", "<", 18), "Young"),
        ),
    )
    model = compiler.apply(model, smo).model
    print("   accepted: age >= 18 OR age < 18 is a tautology")

    state = ClientState(model.client_schema)
    state.add_entity("Records", Entity.of("Person", id=1, age=44, name="ann"))
    state.add_entity("Records", Entity.of("Person", id=2, age=12, name="kid"))
    store_state = apply_update_views(model.views, state, model.store_schema)
    print("   Adult rows:", [dict(r) for r in store_state.rows("Adult")])
    print("   Young rows:", [dict(r) for r in store_state.rows("Young")])
    print("  ", check_roundtrip(model.views, state, model.store_schema))

    print("\n2. the gender example: a pinned, never-stored attribute")
    smo = AddEntityPart(
        name="Member",
        parent="Record",
        new_attributes=(
            Attribute("gender", enum_domain("M", "F")),
            Attribute("mname", STRING),
        ),
        anchor="Record",
        partitions=(
            Partition.of(("id",), Comparison("gender", "=", "M"), "Men"),
            Partition.of(("id",), Comparison("gender", "=", "F"), "Women"),
            Partition.of(("id", "mname"), TRUE, "NameTab"),
        ),
    )
    model = compiler.apply(model, smo).model
    print("   accepted: gender = M OR gender = F is a tautology over {M, F}")

    state = ClientState(model.client_schema)
    state.add_entity("Records", Entity.of("Member", id=10, gender="M", mname="max"))
    state.add_entity("Records", Entity.of("Member", id=11, gender="F", mname="fay"))
    store_state = apply_update_views(model.views, state, model.store_schema)
    print("   Men rows:   ", [dict(r) for r in store_state.rows("Men")])
    print("   Women rows: ", [dict(r) for r in store_state.rows("Women")])
    print("   NameTab rows:", [dict(r) for r in store_state.rows("NameTab")])
    print("   gender is reconstructed from row provenance:")
    print("  ", check_roundtrip(model.views, state, model.store_schema))

    print("\n3. an incomplete partition is rejected")
    bad = AddEntityPart(
        name="Minor",
        parent="Record",
        new_attributes=(Attribute("level", INT),),
        anchor="Record",
        partitions=(
            Partition.of(("id", "level"), Comparison("level", ">=", 5), "HighOnly"),
        ),
    )
    try:
        compiler.apply(model, bad)
        print("   UNEXPECTED: accepted")
    except ValidationError as exc:
        print(f"   rejected as expected: {exc}")


if __name__ == "__main__":
    main()
