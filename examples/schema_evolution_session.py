"""A developer session on a large model: the paper's motivating scenario.

Section 1: "during application development, as the mapping becomes large,
long compilation time is a major impediment to programmer productivity.
It is especially annoying when making a minor change to the
object-oriented model ... yet still requires recompiling the entire
mapping."

This example builds the customer-like model (Section 4.2's statistics),
then simulates an interactive session: a dozen small model changes, each
compiled incrementally in milliseconds, followed by the price the
developer would have paid per change without incremental compilation.

Run:  python examples/schema_evolution_session.py [scale]
"""

from __future__ import annotations

import sys
import time

from repro.bench.smo_suite import aa_fk, ae_tph, ae_tpt, ap, aep_tpt
from repro.compiler import compile_mapping, generate_views
from repro.errors import ValidationError
from repro.incremental import CompiledModel, IncrementalCompiler
from repro.workloads.customer import _build_hierarchies, customer_mapping


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.25
    print(f"building the customer model at scale {scale} ...")
    mapping = customer_mapping(scale=scale, seed=7)
    model = CompiledModel(mapping, generate_views(mapping))
    print(
        f"  {len(mapping.client_schema.entity_types)} entity types, "
        f"{len(mapping.store_schema.tables)} tables, "
        f"{len(mapping.fragments)} mapping fragments"
    )

    import random

    specs = _build_hierarchies(scale, random.Random(7))
    tpt = [s for s in specs if s.style == "TPT" and len(s.types) > 1]
    tph = [s for s in specs if s.style == "TPH"]

    session = [
        ("add a TPT subtype", ae_tpt(tpt[0].types[0])),
        ("add a TPH subtype", ae_tph(tph[0].types[0])),
        ("add another TPT subtype", ae_tpt(tpt[1].types[-1])),
        ("link two classes (FK)", aa_fk(tpt[0].types[0], tph[0].types[0])),
        ("add a property", ap(tpt[0].types[-1])),
        ("partition a new subtype over 2 tables", aep_tpt(tpt[1].types[0], 1)),
        ("add a deep TPH subtype", ae_tph(tph[-1].types[-1])),
        ("add another property", ap(tph[0].types[0])),
    ]

    compiler = IncrementalCompiler()
    total = 0.0
    print("\ndeveloper session (each change compiled incrementally):")
    for description, factory in session:
        try:
            result = compiler.apply(model, factory(model))
            model = result.model
            total += result.elapsed
            print(f"  {description:<42} {result.elapsed * 1000:8.1f} ms   [{result.smo.kind}]")
        except ValidationError as exc:
            print(f"  {description:<42} REJECTED (mapping would not roundtrip)")

    print(f"\n  whole session, incrementally: {total * 1000:.1f} ms")

    print("\nwhat one full recompilation costs instead:")
    started = time.perf_counter()
    compile_mapping(model.mapping.clone())
    full = time.perf_counter() - started
    print(f"  one full compile of the evolved model: {full:.2f} s")
    per_change = full * len(session)
    print(
        f"  x {len(session)} changes = {per_change:.2f} s of waiting, vs "
        f"{total * 1000:.0f} ms incrementally "
        f"({per_change / max(total, 1e-9):,.0f}x speedup for the session)"
    )


if __name__ == "__main__":
    main()
