"""Quickstart: the paper's Figure 1 model, compiled and evolved.

Walks the complete lifecycle:

1. define the client schema, store schema and mapping fragments for the
   Person/Employee/Customer model (Figures 1 and 5);
2. full-compile the mapping: validation + query/update views;
3. store a client state through the update views and read it back through
   the query views (roundtripping);
4. evolve the model *incrementally*, replaying the paper's Examples 1-7
   from a single-type model (AddEntity TPT, AddEntity TPC, AddAssocFK);
5. show that the incremental views are the Figure 2 views.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.compiler import compile_mapping
from repro.edm import Attribute, ClientState, Entity, INT, STRING
from repro.incremental import (
    AddAssociationFK,
    AddEntity,
    CompiledModel,
    IncrementalCompiler,
)
from repro.mapping import apply_update_views, check_roundtrip
from repro.relational import ForeignKey
from repro.workloads.paper_example import mapping_stage1, mapping_stage4


def banner(text: str) -> None:
    print(f"\n{'=' * 72}\n{text}\n{'=' * 72}")


def main() -> None:
    banner("1-2. Full compilation of the Figure 1 mapping")
    mapping = mapping_stage4()
    result = compile_mapping(mapping)
    print(mapping)
    print(f"\ncompiled + validated in {result.elapsed * 1000:.1f} ms")
    print(result.report)

    banner("3. Roundtripping a client state")
    state = ClientState(mapping.client_schema)
    state.add_entity("Persons", Entity.of("Person", Id=1, Name="ann"))
    state.add_entity(
        "Persons", Entity.of("Employee", Id=2, Name="bob", Department="HR")
    )
    state.add_entity(
        "Persons",
        Entity.of("Customer", Id=3, Name="cid", CredScore=700, BillAddr="12 Elm"),
    )
    state.add_association("Supports", (3,), (2,))

    store_state = apply_update_views(result.views, state, mapping.store_schema)
    print("store state produced by the update views:")
    print(store_state)
    report = check_roundtrip(result.views, state, mapping.store_schema)
    print(f"\n{report}")

    banner("4. Incremental evolution (Examples 1-7)")
    base = mapping_stage1()  # only Person, mapped to HR
    model = CompiledModel(base, compile_mapping(base).views)
    compiler = IncrementalCompiler()

    steps = [
        AddEntity.tpt(
            model,
            "Employee",
            "Person",
            [Attribute("Department", STRING)],
            "Emp",
            attr_map={"Id": "Id", "Department": "Dept"},
            table_foreign_keys=[ForeignKey(("Id",), "HR", ("Id",))],
        ),
    ]
    for smo in steps:
        step = compiler.apply(model, smo)
        model = step.model
        print(f"  applied {step}")

    smo = AddEntity.tpc(
        model,
        "Customer",
        "Person",
        [Attribute("CredScore", INT), Attribute("BillAddr", STRING)],
        "Client",
        attr_map={"Id": "Cid", "Name": "Name", "CredScore": "Score", "BillAddr": "Addr"},
    )
    step = compiler.apply(model, smo)
    model = step.model
    print(f"  applied {step}")

    smo = AddAssociationFK.create(
        model,
        "Supports",
        "Customer",
        "Employee",
        "Client",
        {"Customer.Id": "Cid", "Employee.Id": "Eid"},
        mult1="*",
        mult2="0..1",
        new_foreign_keys=[ForeignKey(("Eid",), "Emp", ("Id",))],
    )
    step = compiler.apply(model, smo)
    model = step.model
    print(f"  applied {step}")

    report = check_roundtrip(model.views, state.embed_into(model.client_schema),
                             model.store_schema)
    print(f"\nincrementally compiled model: {report}")

    banner("5. The incrementally compiled Person query view (Figure 2)")
    print(model.views.query_view("Person").to_sql())


if __name__ == "__main__":
    main()
