"""Recovering an SMO history from a finished mapping (Section 6).

The paper closes by asking for "an algorithm that, given a schema and
mapping, generates a sequence of SMOs that produces the same result".
This example runs that algorithm on the Figure 1 mapping: the
reconstructor recovers exactly the SMO sequence of the paper's worked
Examples 1-7, replays it through the incremental compiler, and verifies
the replayed views are semantically equivalent to a full compilation.

Run:  python examples/reconstruct_mapping.py
"""

from __future__ import annotations

from repro.compiler import generate_views
from repro.mapping.equivalence import compare_views
from repro.modef import reconstruct, replay
from repro.workloads.paper_example import mapping_stage4


def main() -> None:
    mapping = mapping_stage4()
    print("target mapping (Figure 1):")
    for fragment in mapping.fragments:
        print(f"  {fragment}")

    base, smos = reconstruct(mapping)
    print("\nreconstructed base (hierarchy roots only):")
    for fragment in base.fragments:
        print(f"  {fragment}")

    print("\nrecovered SMO sequence (the paper's Examples 1-7):")
    for smo in smos:
        print(f"  {smo.describe()}")

    print("\nreplaying through the incremental compiler ...")
    model = replay(base, smos)

    target_views = generate_views(mapping)
    comparison = compare_views(mapping, target_views, model.views)
    print(f"equivalence with a full compilation: {comparison}")

    print("\norder sensitivity (the paper's follow-up question):")
    reordered = [smos[1], smos[0], smos[2]]  # swap the sibling additions
    model_b = replay(base.clone(), reordered)
    comparison_b = compare_views(mapping, model.views, model_b.views)
    print(f"  sibling SMOs swapped: {comparison_b}")
    try:
        replay(base.clone(), [smos[2], smos[0], smos[1]])
        print("  association-first order unexpectedly succeeded")
    except Exception as exc:  # precondition failure, by design
        print(f"  association-first order refused: {type(exc).__name__}")


if __name__ == "__main__":
    main()
