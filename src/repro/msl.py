"""Model persistence: serialize schemas, mappings and compiled views.

Entity Framework keeps the three definitions in CSDL/SSDL/MSL files and
the compiled query/update views in a generated source file; the paper's
standalone compiler reads all of them as its input (Section 4.1, Figure
7).  This module provides the same workflow for this library with one
JSON document:

    document = save_model(model)          # CompiledModel -> dict
    text = dumps_model(model)             # ... or a JSON string
    model = load_model(document)          # and back

Every AST (conditions, queries, constructors) round-trips exactly, so an
incremental compilation session can stop, persist, and resume later —
the interactive-development loop the paper optimises.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.algebra.conditions import (
    And,
    Comparison,
    Condition,
    FALSE,
    FalseCond,
    IsNotNull,
    IsNull,
    IsOf,
    IsOfOnly,
    Not,
    Or,
    TRUE,
    TrueCond,
)
from repro.algebra.constructors import (
    AssociationCtor,
    Constructor,
    EntityCtor,
    IfCtor,
    RowCtor,
)
from repro.algebra.queries import (
    AssociationScan,
    Col,
    Const,
    CtorExpr,
    FullOuterJoin,
    Join,
    LeftOuterJoin,
    ProjItem,
    Project,
    Query,
    Select,
    SetScan,
    TableScan,
    UnionAll,
)
from repro.edm.association import AssociationEnd, AssociationSet, Multiplicity
from repro.edm.entity import EntitySet, EntityType
from repro.edm.schema import ClientSchema
from repro.edm.types import Attribute, Domain
from repro.errors import MappingError
from repro.incremental.model import CompiledModel
from repro.mapping.fragments import Mapping, MappingFragment
from repro.mapping.views import AssociationView, CompiledViews, QueryView, UpdateView
from repro.relational.schema import Column, ForeignKey, StoreSchema, Table

FORMAT_VERSION = 1


# ---------------------------------------------------------------------------
# Domains / attributes
# ---------------------------------------------------------------------------

def _domain_to_json(domain: Domain) -> Dict[str, Any]:
    data: Dict[str, Any] = {"base": domain.base}
    if domain.values is not None:
        data["values"] = sorted(domain.values, key=repr)
    return data


def _domain_from_json(data: Dict[str, Any]) -> Domain:
    values = data.get("values")
    return Domain(data["base"], frozenset(values) if values is not None else None)


def _attribute_to_json(attribute: Attribute) -> Dict[str, Any]:
    return {
        "name": attribute.name,
        "domain": _domain_to_json(attribute.domain),
        "nullable": attribute.nullable,
    }


def _attribute_from_json(data: Dict[str, Any]) -> Attribute:
    return Attribute(data["name"], _domain_from_json(data["domain"]), data["nullable"])


# ---------------------------------------------------------------------------
# Conditions
# ---------------------------------------------------------------------------

def condition_to_json(condition: Condition) -> Any:
    if isinstance(condition, TrueCond):
        return True
    if isinstance(condition, FalseCond):
        return False
    if isinstance(condition, IsOf):
        return {"isOf": condition.type_name}
    if isinstance(condition, IsOfOnly):
        return {"isOfOnly": condition.type_name}
    if isinstance(condition, IsNull):
        return {"isNull": condition.attr}
    if isinstance(condition, IsNotNull):
        return {"isNotNull": condition.attr}
    if isinstance(condition, Comparison):
        return {"cmp": [condition.attr, condition.op, condition.const]}
    if isinstance(condition, And):
        return {"and": [condition_to_json(o) for o in condition.operands]}
    if isinstance(condition, Or):
        return {"or": [condition_to_json(o) for o in condition.operands]}
    if isinstance(condition, Not):
        return {"not": condition_to_json(condition.operand)}
    raise MappingError(f"cannot serialize condition {condition!r}")


def condition_from_json(data: Any) -> Condition:
    if data is True:
        return TRUE
    if data is False:
        return FALSE
    if "isOf" in data:
        return IsOf(data["isOf"])
    if "isOfOnly" in data:
        return IsOfOnly(data["isOfOnly"])
    if "isNull" in data:
        return IsNull(data["isNull"])
    if "isNotNull" in data:
        return IsNotNull(data["isNotNull"])
    if "cmp" in data:
        attr, op, const = data["cmp"]
        return Comparison(attr, op, const)
    if "and" in data:
        return And(tuple(condition_from_json(o) for o in data["and"]))
    if "or" in data:
        return Or(tuple(condition_from_json(o) for o in data["or"]))
    if "not" in data:
        return Not(condition_from_json(data["not"]))
    raise MappingError(f"cannot deserialize condition {data!r}")


# ---------------------------------------------------------------------------
# Queries
# ---------------------------------------------------------------------------

def _expr_to_json(expr: CtorExpr) -> Any:
    if isinstance(expr, Col):
        return {"col": expr.name}
    return {"const": expr.value}


def _expr_from_json(data: Any) -> CtorExpr:
    if "col" in data:
        return Col(data["col"])
    return Const(data["const"])


def _items_to_json(items) -> List[Any]:
    return [[item.output, _expr_to_json(item.expr)] for item in items]


def _items_from_json(data) -> tuple:
    return tuple(ProjItem(output, _expr_from_json(expr)) for output, expr in data)


def query_to_json(query: Query) -> Dict[str, Any]:
    if isinstance(query, SetScan):
        return {"setScan": query.set_name}
    if isinstance(query, AssociationScan):
        return {"assocScan": query.assoc_name}
    if isinstance(query, TableScan):
        return {"tableScan": query.table_name}
    if isinstance(query, Select):
        return {
            "select": query_to_json(query.source),
            "where": condition_to_json(query.condition),
        }
    if isinstance(query, Project):
        return {
            "project": query_to_json(query.source),
            "items": _items_to_json(query.items),
        }
    if isinstance(query, (Join, LeftOuterJoin, FullOuterJoin)):
        kind = {Join: "join", LeftOuterJoin: "louter", FullOuterJoin: "fouter"}[
            type(query)
        ]
        data = {
            kind: [query_to_json(query.left), query_to_json(query.right)],
        }
        if query.on is not None:
            data["on"] = list(query.on)
        return data
    if isinstance(query, UnionAll):
        return {"unionAll": [query_to_json(b) for b in query.branches]}
    raise MappingError(f"cannot serialize query {query!r}")


def query_from_json(data: Dict[str, Any]) -> Query:
    if "setScan" in data:
        return SetScan(data["setScan"])
    if "assocScan" in data:
        return AssociationScan(data["assocScan"])
    if "tableScan" in data:
        return TableScan(data["tableScan"])
    if "select" in data:
        return Select(query_from_json(data["select"]), condition_from_json(data["where"]))
    if "project" in data:
        return Project(query_from_json(data["project"]), _items_from_json(data["items"]))
    for kind, cls in (("join", Join), ("louter", LeftOuterJoin), ("fouter", FullOuterJoin)):
        if kind in data:
            left, right = data[kind]
            on = tuple(data["on"]) if "on" in data else None
            return cls(query_from_json(left), query_from_json(right), on)
    if "unionAll" in data:
        return UnionAll(tuple(query_from_json(b) for b in data["unionAll"]))
    raise MappingError(f"cannot deserialize query {data!r}")


# ---------------------------------------------------------------------------
# Constructors
# ---------------------------------------------------------------------------

def constructor_to_json(constructor: Constructor) -> Dict[str, Any]:
    if isinstance(constructor, EntityCtor):
        return {
            "entity": constructor.type_name,
            "assign": [[a, _expr_to_json(e)] for a, e in constructor.assignments],
        }
    if isinstance(constructor, RowCtor):
        return {
            "row": constructor.table_name,
            "assign": [[a, _expr_to_json(e)] for a, e in constructor.assignments],
        }
    if isinstance(constructor, AssociationCtor):
        return {
            "assoc": constructor.assoc_name,
            "assign": [[a, _expr_to_json(e)] for a, e in constructor.assignments],
        }
    if isinstance(constructor, IfCtor):
        return {
            "if": condition_to_json(constructor.condition),
            "then": constructor_to_json(constructor.then_ctor),
            "else": constructor_to_json(constructor.else_ctor),
        }
    raise MappingError(f"cannot serialize constructor {constructor!r}")


def constructor_from_json(data: Dict[str, Any]) -> Constructor:
    def assignments(raw):
        return tuple((a, _expr_from_json(e)) for a, e in raw)

    if "entity" in data:
        return EntityCtor(data["entity"], assignments(data["assign"]))
    if "row" in data:
        return RowCtor(data["row"], assignments(data["assign"]))
    if "assoc" in data:
        return AssociationCtor(data["assoc"], assignments(data["assign"]))
    if "if" in data:
        return IfCtor(
            condition_from_json(data["if"]),
            constructor_from_json(data["then"]),
            constructor_from_json(data["else"]),
        )
    raise MappingError(f"cannot deserialize constructor {data!r}")


# ---------------------------------------------------------------------------
# Schemas (CSDL / SSDL analogues)
# ---------------------------------------------------------------------------

def client_schema_to_json(schema: ClientSchema) -> Dict[str, Any]:
    types = []
    for entity_type in schema.entity_types:
        types.append(
            {
                "name": entity_type.name,
                "parent": entity_type.parent,
                "attributes": [_attribute_to_json(a) for a in entity_type.attributes],
                "key": list(entity_type.key),
                "abstract": entity_type.abstract,
            }
        )
    sets = [
        {"name": s.name, "rootType": s.root_type} for s in schema.entity_sets
    ]
    associations = []
    for association in schema.associations:
        associations.append(
            {
                "name": association.name,
                "end1": _end_to_json(association.end1),
                "end2": _end_to_json(association.end2),
                "set1": association.entity_set1,
                "set2": association.entity_set2,
            }
        )
    return {"entityTypes": types, "entitySets": sets, "associations": associations}


def _end_to_json(end: AssociationEnd) -> Dict[str, Any]:
    return {
        "type": end.entity_type,
        "multiplicity": end.multiplicity.value,
        "role": end.role,
    }


def _end_from_json(data: Dict[str, Any]) -> AssociationEnd:
    return AssociationEnd(
        data["type"],
        {m.value: m for m in Multiplicity}[data["multiplicity"]],
        data.get("role"),
    )


def client_schema_from_json(data: Dict[str, Any]) -> ClientSchema:
    schema = ClientSchema()
    pending = list(data["entityTypes"])
    # parents must exist before children; iterate until fixpoint
    while pending:
        progressed = False
        remaining = []
        for entry in pending:
            if entry["parent"] is None or schema.has_entity_type(entry["parent"]):
                schema.add_entity_type(
                    EntityType(
                        name=entry["name"],
                        parent=entry["parent"],
                        attributes=tuple(
                            _attribute_from_json(a) for a in entry["attributes"]
                        ),
                        key=tuple(entry["key"]),
                        abstract=entry["abstract"],
                    )
                )
                progressed = True
            else:
                remaining.append(entry)
        if not progressed:
            raise MappingError("entity types reference unknown parents")
        pending = remaining
    for entry in data["entitySets"]:
        schema.add_entity_set(EntitySet(entry["name"], entry["rootType"]))
    for entry in data["associations"]:
        schema.add_association(
            AssociationSet(
                name=entry["name"],
                end1=_end_from_json(entry["end1"]),
                end2=_end_from_json(entry["end2"]),
                entity_set1=entry["set1"],
                entity_set2=entry["set2"],
            )
        )
    return schema


def store_schema_to_json(schema: StoreSchema) -> Dict[str, Any]:
    tables = []
    for table in schema.tables:
        tables.append(
            {
                "name": table.name,
                "columns": [
                    {
                        "name": c.name,
                        "domain": _domain_to_json(c.domain),
                        "nullable": c.nullable,
                    }
                    for c in table.columns
                ],
                "primaryKey": list(table.primary_key),
                "foreignKeys": [
                    {
                        "columns": list(fk.columns),
                        "refTable": fk.ref_table,
                        "refColumns": list(fk.ref_columns),
                    }
                    for fk in table.foreign_keys
                ],
            }
        )
    return {"tables": tables}


def store_schema_from_json(data: Dict[str, Any]) -> StoreSchema:
    tables = []
    for entry in data["tables"]:
        tables.append(
            Table(
                entry["name"],
                tuple(
                    Column(c["name"], _domain_from_json(c["domain"]), c["nullable"])
                    for c in entry["columns"]
                ),
                tuple(entry["primaryKey"]),
                tuple(
                    ForeignKey(
                        tuple(fk["columns"]), fk["refTable"], tuple(fk["refColumns"])
                    )
                    for fk in entry["foreignKeys"]
                ),
            )
        )
    return StoreSchema(tables)


# ---------------------------------------------------------------------------
# Mapping (MSL analogue) and views
# ---------------------------------------------------------------------------

def fragment_to_json(fragment: MappingFragment) -> Dict[str, Any]:
    return {
        "source": fragment.client_source,
        "isAssociation": fragment.is_association,
        "clientCondition": condition_to_json(fragment.client_condition),
        "table": fragment.store_table,
        "storeCondition": condition_to_json(fragment.store_condition),
        "attributeMap": [list(pair) for pair in fragment.attribute_map],
    }


def fragment_from_json(data: Dict[str, Any]) -> MappingFragment:
    return MappingFragment(
        client_source=data["source"],
        is_association=data["isAssociation"],
        client_condition=condition_from_json(data["clientCondition"]),
        store_table=data["table"],
        store_condition=condition_from_json(data["storeCondition"]),
        attribute_map=tuple((a, b) for a, b in data["attributeMap"]),
    )


def views_to_json(views: CompiledViews) -> Dict[str, Any]:
    return {
        "queryViews": [
            {
                "entityType": v.entity_type,
                "query": query_to_json(v.query),
                "constructor": constructor_to_json(v.constructor),
            }
            for v in views.query_views.values()
        ],
        "associationViews": [
            {
                "association": v.assoc_name,
                "query": query_to_json(v.query),
                "constructor": constructor_to_json(v.constructor),
            }
            for v in views.association_views.values()
        ],
        "updateViews": [
            {
                "table": v.table_name,
                "query": query_to_json(v.query),
                "constructor": constructor_to_json(v.constructor),
            }
            for v in views.update_views.values()
        ],
    }


def views_from_json(data: Dict[str, Any]) -> CompiledViews:
    views = CompiledViews()
    for entry in data["queryViews"]:
        views.set_query_view(
            QueryView(
                entry["entityType"],
                query_from_json(entry["query"]),
                constructor_from_json(entry["constructor"]),
            )
        )
    for entry in data["associationViews"]:
        constructor = constructor_from_json(entry["constructor"])
        views.set_association_view(
            AssociationView(entry["association"], query_from_json(entry["query"]),
                            constructor)
        )
    for entry in data["updateViews"]:
        views.set_update_view(
            UpdateView(
                entry["table"],
                query_from_json(entry["query"]),
                constructor_from_json(entry["constructor"]),
            )
        )
    return views


# ---------------------------------------------------------------------------
# Whole models
# ---------------------------------------------------------------------------

def save_model(model: CompiledModel) -> Dict[str, Any]:
    """CompiledModel → a JSON-serializable document."""
    return {
        "format": FORMAT_VERSION,
        "clientSchema": client_schema_to_json(model.client_schema),
        "storeSchema": store_schema_to_json(model.store_schema),
        "fragments": [fragment_to_json(f) for f in model.mapping.fragments],
        "views": views_to_json(model.views),
    }


def load_mapping(data: Dict[str, Any]) -> Mapping:
    """Load schemas + fragments only (a not-yet-compiled document)."""
    if data.get("format") != FORMAT_VERSION:
        raise MappingError(
            f"unsupported model format {data.get('format')!r}; expected "
            f"{FORMAT_VERSION}"
        )
    client_schema = client_schema_from_json(data["clientSchema"])
    store_schema = store_schema_from_json(data["storeSchema"])
    fragments: List[MappingFragment] = []
    raw_fragments = data.get("fragments", [])
    if isinstance(raw_fragments, str):
        # fragments may be authored in the Figure 5 Entity-SQL syntax
        from repro.algebra.parser import parse_fragments

        fragments = parse_fragments(raw_fragments)
    else:
        fragments = [fragment_from_json(f) for f in raw_fragments]
    return Mapping(client_schema, store_schema, fragments)


def load_model(data: Dict[str, Any]) -> CompiledModel:
    """The inverse of :func:`save_model` (validates the format version)."""
    mapping = load_mapping(data)
    if "views" not in data:
        raise MappingError(
            "document has no compiled views; run `python -m repro compile` first"
        )
    return CompiledModel(mapping, views_from_json(data["views"]))


def dumps_model(model: CompiledModel, indent: Optional[int] = 2) -> str:
    return json.dumps(save_model(model), indent=indent, sort_keys=True)


def loads_model(text: str) -> CompiledModel:
    return load_model(json.loads(text))
