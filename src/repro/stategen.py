"""Random legal client states for any client schema.

Used by fuzz/property tests and by the examples: given a schema and a
seed, produce a :class:`ClientState` that respects domains, nullability,
key uniqueness and association multiplicities.  Generation is structured
so that every concrete type and association gets a chance to appear.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.edm.instances import ClientState, Entity
from repro.edm.schema import ClientSchema
from repro.edm.types import Attribute, Domain
from repro.errors import SchemaError


def random_value(domain: Domain, rng: random.Random) -> object:
    if domain.values is not None:
        return rng.choice(sorted(domain.values, key=repr))
    if domain.base in ("int", "decimal"):
        return rng.randrange(0, 1000)
    if domain.base == "bool":
        return rng.choice([True, False])
    if domain.base == "date":
        return f"2013-{rng.randrange(1, 13):02d}-{rng.randrange(1, 28):02d}"
    return "s" + str(rng.randrange(0, 1000))


def random_attribute_value(
    attribute: Attribute, rng: random.Random, allow_null: bool = True
) -> object:
    if attribute.nullable and allow_null and rng.random() < 0.25:
        return None
    return random_value(attribute.domain, rng)


def random_entity(
    schema: ClientSchema,
    concrete_type: str,
    key_values: Dict[str, object],
    rng: random.Random,
) -> Entity:
    values: Dict[str, object] = {}
    for attribute in schema.attributes_of(concrete_type):
        if attribute.name in key_values:
            values[attribute.name] = key_values[attribute.name]
        else:
            values[attribute.name] = random_attribute_value(attribute, rng)
    return Entity.of(concrete_type, **values)


def random_client_state(
    schema: ClientSchema,
    seed: int = 0,
    entities_per_set: int = 6,
    association_probability: float = 0.6,
    set_names: Optional[List[str]] = None,
) -> ClientState:
    """A random legal state: entities in every (selected) set, association
    tuples wherever compatible pairs exist.

    Multiplicity upper bounds are respected by construction; required (1)
    ends are satisfied where possible by pairing every entity of the
    constrained end.
    """
    rng = random.Random(seed)
    state = ClientState(schema)
    next_key = [1]

    targets = set_names if set_names is not None else [
        s.name for s in schema.entity_sets
    ]
    for set_name in targets:
        concrete = schema.concrete_types_of_set(set_name)
        if not concrete:
            continue
        for _ in range(entities_per_set):
            concrete_type = rng.choice(concrete)
            key = schema.key_of(concrete_type)
            key_values = {}
            for key_attr in key:
                attribute = schema.attribute_of(concrete_type, key_attr)
                if attribute.domain.base in ("int", "decimal"):
                    key_values[key_attr] = next_key[0]
                else:
                    key_values[key_attr] = f"k{next_key[0]}"
                next_key[0] += 1
            state.add_entity(
                set_name, random_entity(schema, concrete_type, key_values, rng)
            )

    for association in schema.associations:
        if association.entity_set1 not in targets:
            continue
        if association.entity_set2 not in targets:
            continue
        key1 = schema.key_of(association.end1.entity_type)
        key2 = schema.key_of(association.end2.entity_type)
        candidates1 = [
            e
            for e in state.entities(association.entity_set1)
            if association.end1.entity_type
            in schema.ancestors_or_self(e.concrete_type)
        ]
        candidates2 = [
            e
            for e in state.entities(association.entity_set2)
            if association.end2.entity_type
            in schema.ancestors_or_self(e.concrete_type)
        ]
        rng.shuffle(candidates1)
        rng.shuffle(candidates2)
        required1 = association.end1.multiplicity.value == "1"
        required2 = association.end2.multiplicity.value == "1"
        for e1 in candidates1:
            if not candidates2:
                break
            must_link = required2  # every end1 entity needs a partner
            if not must_link and rng.random() > association_probability:
                continue
            e2 = rng.choice(candidates2)
            if e1 is e2:
                continue
            try:
                state.add_association(
                    association.name, e1.key_tuple(key1), e2.key_tuple(key2)
                )
            except SchemaError:
                continue  # multiplicity upper bound hit; skip
        if required1:
            # every end2 entity needs an end1 partner
            linked2 = {
                pair[len(key1):] for pair in state.associations(association.name)
            }
            for e2 in candidates2:
                if e2.key_tuple(key2) in linked2:
                    continue
                for e1 in candidates1:
                    if e1 is e2:
                        continue
                    try:
                        state.add_association(
                            association.name, e1.key_tuple(key1), e2.key_tuple(key2)
                        )
                        break
                    except SchemaError:
                        continue
    return state
