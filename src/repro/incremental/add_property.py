"""``AddProperty`` — add an attribute to an existing entity type
(Section 3.4).

The SMO maps the new property either to a table where the type's
attributes are already mapped (extending that fragment) or to a completely
new table (a vertical split: a new fragment over the type's key plus the
new attribute).  As the paper notes, query views must be reconstructed
"not only for E but also for descendants of E": the new attribute extends
``att(F)`` for every descendant F, and every constructor instantiating E
or a descendant must populate it.

Implementation note.  The paper only sketches this SMO.  We adapt the
fragments literally and then *regenerate* the affected views with the
compiler's generators — but only for the touched entity set and the
touched tables, so the work (and the validation, which stays scoped to
the new column's foreign keys) remains proportional to the neighborhood
of the change, which is what makes the SMO incremental.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.algebra.conditions import IsOf, TRUE
from repro.budget import WorkBudget
from repro.containment.cache import ValidationCache
from repro.compiler.analysis import SetAnalysis, check_coverage, check_disambiguation
from repro.compiler.viewgen import build_query_views_for_set, build_update_view
from repro.containment.spaces import ClientConditionSpace
from repro.edm.types import Attribute
from repro.errors import SmoError
from repro.incremental.checks import check_fk_preserved
from repro.incremental.model import CompiledModel
from repro.incremental.naming import build_entity_table
from repro.incremental.smo import Smo
from repro.mapping.fragments import MappingFragment
from repro.relational.schema import Column, ForeignKey, Table


@dataclass
class AddProperty(Smo):
    """Add attribute *attribute* to entity type *entity_type*.

    ``table``/``column`` name the target storage.  If *table* already has a
    fragment that exactly covers the type (its condition implies
    ``IS OF entity_type``), that fragment is extended; otherwise a new
    fragment over (key, new attribute) is created — with a fresh table if
    *table* does not exist yet.
    """

    entity_type: str
    attribute: Attribute
    table: str
    column: Optional[str] = None
    table_foreign_keys: Tuple[ForeignKey, ...] = ()
    kind: str = "AP"
    validation_checks: int = field(default=0, compare=False)

    def describe(self) -> str:
        return (
            f"{self.kind}({self.entity_type}.{self.attribute.name} -> "
            f"{self.table}.{self.column or self.attribute.name})"
        )

    # ------------------------------------------------------------------
    def _column(self) -> str:
        return self.column if self.column else self.attribute.name

    def _entity_set(self, model: CompiledModel) -> str:
        return model.client_schema.set_of_type(self.entity_type).name

    def _extendable_fragments(self, model: CompiledModel) -> list:
        """Fragments on *table* whose extent lies inside ``IS OF type``.

        Each one is extended with the new attribute: in TPT this is the
        type's own fragment; in TPH it is the fragment of the type *and*
        of every descendant (each stores its own rows in the hierarchy
        table, and all of them now carry the new attribute).
        """
        schema = model.client_schema
        set_name = self._entity_set(model)
        result = []
        for fragment in model.mapping.fragments_for_set(set_name):
            if fragment.store_table != self.table:
                continue
            space = ClientConditionSpace(
                schema, set_name, [fragment.client_condition, IsOf(self.entity_type)]
            )
            if space.implies(fragment.client_condition, IsOf(self.entity_type)):
                result.append(fragment)
        return result

    def _covers_type(self, model: CompiledModel, fragments) -> bool:
        """Do the extendable fragments jointly cover every E entity?"""
        if not fragments:
            return False
        from repro.algebra.conditions import or_

        schema = model.client_schema
        set_name = self._entity_set(model)
        disjunction = or_(*[f.client_condition for f in fragments])
        space = ClientConditionSpace(
            schema, set_name, [disjunction, IsOf(self.entity_type)]
        )
        return space.implies(IsOf(self.entity_type), disjunction)

    # ------------------------------------------------------------------
    def check_preconditions(self, model: CompiledModel) -> None:
        schema = model.client_schema
        if not schema.has_entity_type(self.entity_type):
            raise SmoError(f"entity type {self.entity_type!r} does not exist")
        schema.set_of_type(self.entity_type)
        taken = set(schema.attribute_names_of(self.entity_type))
        for descendant in schema.descendants(self.entity_type):
            taken.update(schema.entity_type(descendant).own_attribute_names)
        if self.attribute.name in taken:
            raise SmoError(
                f"attribute {self.attribute.name!r} already exists on the "
                f"hierarchy of {self.entity_type!r}"
            )
        if model.store_schema.has_table(self.table):
            table = model.store_schema.table(self.table)
            if table.has_column(self._column()):
                raise SmoError(
                    f"column {self.table}.{self._column()} already exists"
                )

    # ------------------------------------------------------------------
    def evolve_schemas(self, model: CompiledModel) -> None:
        schema = model.client_schema
        schema.add_attribute(self.entity_type, self.attribute)
        if model.store_schema.has_table(self.table):
            table = model.store_schema.table(self.table)
            model.store_schema.replace_table(
                Table(
                    table.name,
                    table.columns + (Column(self._column(), self.attribute.domain, True),),
                    table.primary_key,
                    table.foreign_keys,
                )
            )
        else:
            attr_map = tuple(
                (k, k) for k in schema.key_of(self.entity_type)
            ) + ((self.attribute.name, self._column()),)
            model.store_schema.add_table(
                build_entity_table(
                    schema,
                    self.entity_type,
                    self.table,
                    attr_map,
                    self.table_foreign_keys,
                    context=self.describe(),
                )
            )

    # ------------------------------------------------------------------
    def adapt_fragments(self, model: CompiledModel) -> None:
        extendable = self._extendable_fragments(model)
        if extendable and self._covers_type(model, extendable):
            targets = set(map(id, extendable))
            fragments = []
            for fragment in model.mapping.fragments:
                if id(fragment) in targets:
                    fragments.append(
                        MappingFragment(
                            client_source=fragment.client_source,
                            is_association=fragment.is_association,
                            client_condition=fragment.client_condition,
                            store_table=fragment.store_table,
                            store_condition=fragment.store_condition,
                            attribute_map=fragment.attribute_map
                            + ((self.attribute.name, self._column()),),
                        )
                    )
                else:
                    fragments.append(fragment)
            model.mapping.replace_fragments(fragments)
            return
        # Vertical split: a new fragment over (key, attribute) on the table.
        schema = model.client_schema
        key = schema.key_of(self.entity_type)
        model.mapping.add_fragment(
            MappingFragment(
                client_source=self._entity_set(model),
                is_association=False,
                client_condition=IsOf(self.entity_type),
                store_table=self.table,
                store_condition=TRUE,
                attribute_map=tuple((k, k) for k in key)
                + ((self.attribute.name, self._column()),),
            )
        )

    # ------------------------------------------------------------------
    def adapt_update_views(self, model: CompiledModel) -> None:
        """Regenerate the update view of the touched table only."""
        model.views.set_update_view(build_update_view(model.mapping, self.table))

    # ------------------------------------------------------------------
    def validate(
        self,
        model: CompiledModel,
        budget: Optional[WorkBudget],
        cache: Optional[ValidationCache] = None,
    ) -> None:
        self.validation_checks = 0
        analysis = SetAnalysis(model.mapping, self._entity_set(model), budget, cache)
        check_coverage(analysis)
        check_disambiguation(analysis)
        table = model.store_schema.table(self.table)
        for foreign_key in table.foreign_keys:
            if self._column() in foreign_key.columns or not model.store_schema.has_table(
                self.table
            ):
                self.validation_checks += check_fk_preserved(
                    model, self.table, foreign_key, budget, cache=cache
                )
            elif set(foreign_key.columns) <= set(table.primary_key):
                # new table: its key FK must also be checked
                self.validation_checks += check_fk_preserved(
                    model, self.table, foreign_key, budget, cache=cache
                )

    # ------------------------------------------------------------------
    def adapt_query_views(self, model: CompiledModel) -> None:
        """Regenerate the query views of the touched entity set only."""
        set_name = self._entity_set(model)
        for view in build_query_views_for_set(model.mapping, set_name).values():
            model.views.set_query_view(view)
