"""Shared containment checks used by several SMO validators.

These are the building blocks of Sections 3.1.4 and 3.2: a foreign-key
preservation check between two update views, and the association-endpoint
check for types strictly between a new entity type and its anchor P.
"""

from __future__ import annotations

from typing import Optional

from repro.algebra.conditions import IsNotNull, and_
from repro.algebra.queries import AssociationScan, Col, ProjItem, Project, Select
from repro.budget import WorkBudget
from repro.containment.cache import ValidationCache
from repro.containment.checker import check_containment
from repro.errors import ValidationError
from repro.incremental.model import CompiledModel
from repro.incremental.naming import qualify
from repro.mapping.fragments import MappingFragment


def check_fk_preserved(
    model: CompiledModel,
    table_name: str,
    foreign_key,
    budget: Optional[WorkBudget],
    context: str = "",
    cache: Optional[ValidationCache] = None,
) -> int:
    """``π_{β AS β'}(σ_{β NOT NULL}(Q_T)) ⊆ π_{β'}(Q_{T'})`` or raise.

    Returns the number of containment checks run (always 1 unless the
    check is vacuous because β is never produced)."""
    from repro.compiler.viewgen import _produced_columns

    mapping = model.mapping
    update_view_early = model.views.update_view(table_name)
    if not set(foreign_key.columns) <= set(_produced_columns(update_view_early.query)):
        return 0  # β columns are always NULL: the constraint holds vacuously
    if not mapping.table_is_mapped(foreign_key.ref_table):
        raise ValidationError(
            f"foreign key {foreign_key} of {table_name!r} references the "
            f"unmapped table {foreign_key.ref_table!r}{context}",
            check="fk-preservation",
        )
    update_view = model.views.update_view(table_name)
    target_view = model.views.update_view(foreign_key.ref_table)
    not_null = and_(*[IsNotNull(c) for c in foreign_key.columns])
    lhs = Project(
        Select(update_view.query, not_null),
        tuple(
            ProjItem(gamma, Col(beta))
            for beta, gamma in zip(foreign_key.columns, foreign_key.ref_columns)
        ),
    )
    rhs = Project(
        target_view.query,
        tuple(ProjItem(g, Col(g)) for g in foreign_key.ref_columns),
    )
    result = check_containment(lhs, rhs, mapping.client_schema, budget, cache)
    if not result.holds:
        raise ValidationError(
            f"update views violate foreign key {foreign_key} of table "
            f"{table_name!r}{context}\n{result.explain()}",
            check="fk-preservation",
        )
    return 1


def check_association_endpoint_storable(
    model: CompiledModel,
    assoc_name: str,
    fragment: MappingFragment,
    end,
    budget: Optional[WorkBudget],
    context: str = "",
    cache: Optional[ValidationCache] = None,
) -> int:
    """Check 1 of Section 3.1.4: ``π_{PK_F AS β}(A) ⊆ π_β(Q_R)``.

    F is the endpoint type (in ``p``), R the table the association maps
    to, β the columns storing F's keys.  Returns the number of containment
    checks run, including any foreign-key re-checks on overlapping β.
    """
    schema = model.client_schema
    key = schema.key_of(end.entity_type)
    qualified = qualify(end.role_name, key)
    beta = []
    for attr in qualified:
        column = fragment.maps_attr(attr)
        if column is None:
            raise ValidationError(
                f"association fragment of {assoc_name!r} does not map {attr!r}",
                check="assoc-endpoint",
            )
        beta.append(column)

    table_name = fragment.store_table
    update_view = model.views.update_view(table_name)
    lhs = Project(
        AssociationScan(assoc_name),
        tuple(ProjItem(b, Col(q)) for q, b in zip(qualified, beta)),
    )
    rhs = Project(update_view.query, tuple(ProjItem(b, Col(b)) for b in beta))
    checks = 1
    result = check_containment(lhs, rhs, schema, budget, cache)
    if not result.holds:
        raise ValidationError(
            f"keys of new-entity participants in association {assoc_name!r} "
            f"cannot be stored in {table_name!r}{context}\n{result.explain()}",
            check="assoc-storage",
        )

    # Check 2: foreign keys of R overlapping β.
    table = model.store_schema.table(table_name)
    for foreign_key in table.foreign_keys:
        if set(foreign_key.columns) & set(beta):
            checks += check_fk_preserved(
                model, table_name, foreign_key, budget, context, cache
            )
    return checks
