"""``DropAssociation`` — remove an association set and its mapping.

The inverse of AddAssocFK / AddAssocJT.  For an FK-mapped association the
update view of the carrying table is regenerated from the surviving
fragments (table-local work) so the f(PK2) columns go back to NULL
padding; for a join-table association the table simply loses its update
view (the table itself stays in the store schema).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.budget import WorkBudget
from repro.containment.cache import ValidationCache
from repro.compiler.viewgen import build_update_view
from repro.errors import SmoError
from repro.incremental.checks import check_fk_preserved
from repro.incremental.model import CompiledModel
from repro.incremental.smo import Smo


@dataclass
class DropAssociation(Smo):
    """Drop association set *name* and all its mapping references."""

    name: str
    kind: str = "DA"
    validation_checks: int = field(default=0, compare=False)

    def describe(self) -> str:
        return f"{self.kind}({self.name})"

    # ------------------------------------------------------------------
    def check_preconditions(self, model: CompiledModel) -> None:
        if not model.client_schema.has_association(self.name):
            raise SmoError(f"association {self.name!r} does not exist")
        if model.mapping.fragment_for_association(self.name) is None:
            raise SmoError(f"association {self.name!r} is not mapped")

    # ------------------------------------------------------------------
    def evolve_schemas(self, model: CompiledModel) -> None:
        self._fragment = model.mapping.fragment_for_association(self.name)
        model.client_schema.drop_association(self.name)

    # ------------------------------------------------------------------
    def adapt_fragments(self, model: CompiledModel) -> None:
        # Value-based removal, matching RemoveFragmentOp's semantics (an
        # association is mapped by at most one fragment, so equality is
        # unambiguous here).
        fragments = list(model.mapping.fragments)
        fragments.remove(self._fragment)
        model.mapping.replace_fragments(fragments)

    # ------------------------------------------------------------------
    def adapt_update_views(self, model: CompiledModel) -> None:
        table_name = self._fragment.store_table
        if model.mapping.fragments_for_table(table_name):
            model.views.set_update_view(build_update_view(model.mapping, table_name))
        else:
            model.views.drop_update_view(table_name)

    # ------------------------------------------------------------------
    def validate(
        self,
        model: CompiledModel,
        budget: Optional[WorkBudget],
        cache: Optional[ValidationCache] = None,
    ) -> None:
        """Foreign keys into the orphaned join table must stay satisfiable."""
        self.validation_checks = 0
        table_name = self._fragment.store_table
        if model.mapping.table_is_mapped(table_name):
            return
        for table in model.store_schema.tables:
            if not model.mapping.table_is_mapped(table.name):
                continue
            for foreign_key in table.foreign_keys:
                if foreign_key.ref_table == table_name:
                    self.validation_checks += check_fk_preserved(
                        model,
                        table.name,
                        foreign_key,
                        budget,
                        context=f" after dropping {self.name!r}",
                        cache=cache,
                    )

    # ------------------------------------------------------------------
    def adapt_query_views(self, model: CompiledModel) -> None:
        model.views.drop_association_view(self.name)
