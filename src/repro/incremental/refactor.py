"""``RefactorAssociationToInheritance`` — Section 3.4's refactoring SMO.

Given an association A with cardinality 1 — 0..1 between E1 and E2 (every
E2 has exactly one E1; every E1 has at most one E2), delete A and make E2
a derived type of E1: an entity that was the pair (e1, e2) becomes a
single E2-typed entity carrying e1's and e2's attribute values.

Restrictions (the paper leaves the general case open):

* E2 is a hierarchy root, a leaf, alone in its entity set, touched by no
  other association;
* E2 is mapped by a single fragment into table T2, and A is FK-mapped into
  T2 (``f(PK2) = PK(T2)``, link columns hold E1's key).

Store evolution re-keys T2: the link columns (which after the refactoring
hold the merged entity's E1-key, one row per E2-typed entity) become the
primary key; E2's old key columns stay as ordinary attribute storage.

After removing E2's old artifacts, the remainder of the work *is* an
``AddEntity(E2, E1, α, P=E1, T2, f)`` with α = PK_{E1} ∪ att_old(E2) — the
SMO delegates to AddEntity's four algorithms, which also gives the paper's
observation that query views of E1's ancestors are adapted and (since E2
is a leaf) no descendant transformation arises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.budget import WorkBudget
from repro.containment.cache import ValidationCache
from repro.edm.association import Multiplicity
from repro.edm.types import Attribute
from repro.errors import SmoError
from repro.incremental.add_entity import AddEntity
from repro.incremental.model import CompiledModel
from repro.incremental.naming import qualify
from repro.incremental.smo import Smo
from repro.relational.schema import Column, Table


@dataclass
class RefactorAssociationToInheritance(Smo):
    """Delete association *assoc_name* and derive E2 from E1."""

    assoc_name: str
    kind: str = "RF"
    validation_checks: int = field(default=0, compare=False)

    def describe(self) -> str:
        return f"{self.kind}({self.assoc_name} -> inheritance)"

    # ------------------------------------------------------------------
    def _parts(self, model: CompiledModel):
        schema = model.client_schema
        association = schema.association(self.assoc_name)
        ends = {end.multiplicity: end for end in association.ends}
        one_end = next(
            (e for e in association.ends if e.multiplicity is Multiplicity.ONE), None
        )
        opt_end = next(
            (e for e in association.ends if e.multiplicity is Multiplicity.ZERO_OR_ONE),
            None,
        )
        if one_end is None or opt_end is None:
            raise SmoError(
                f"refactoring needs cardinality 1 — 0..1; {self.assoc_name!r} has "
                f"{association.end1.multiplicity} — {association.end2.multiplicity}"
            )
        # E1 is the required end's type (every E2 has exactly one E1);
        # E2 is the optional end's type.
        return association, one_end.entity_type, opt_end.entity_type

    # ------------------------------------------------------------------
    def check_preconditions(self, model: CompiledModel) -> None:
        schema = model.client_schema
        if not schema.has_association(self.assoc_name):
            raise SmoError(f"association {self.assoc_name!r} does not exist")
        association, e1, e2 = self._parts(model)

        if schema.entity_type(e2).parent is not None or schema.children_of(e2):
            raise SmoError(f"E2 = {e2!r} must be a root leaf type")
        e2_set = schema.set_of_type(e2)
        if len(schema.descendants_or_self(e2_set.root_type)) != 1:
            raise SmoError(f"E2 = {e2!r} must be alone in its entity set")
        for other in schema.associations:
            if other.name == self.assoc_name:
                continue
            if e2 in (other.end1.entity_type, other.end2.entity_type):
                raise SmoError(
                    f"association {other.name!r} also references {e2!r}"
                )
        clash = set(schema.attribute_names_of(e1)) & set(
            schema.attribute_names_of(e2)
        )
        if clash:
            raise SmoError(
                f"attributes {sorted(clash)} exist on both {e1!r} and {e2!r}; "
                "rename before refactoring"
            )

        fragment_a = model.mapping.fragment_for_association(self.assoc_name)
        if fragment_a is None:
            raise SmoError(f"association {self.assoc_name!r} is not mapped")
        e2_fragments = [
            f
            for f in model.mapping.fragments_for_set(e2_set.name)
        ]
        if len(e2_fragments) != 1:
            raise SmoError(
                f"E2 = {e2!r} must be mapped by exactly one fragment, found "
                f"{len(e2_fragments)}"
            )
        if e2_fragments[0].store_table != fragment_a.store_table:
            raise SmoError(
                f"the association must be FK-mapped into E2's table "
                f"{e2_fragments[0].store_table!r}"
            )

    # ------------------------------------------------------------------
    def _plan(self, model: CompiledModel):
        """Compute the delegated AddEntity before any mutation."""
        schema = model.client_schema
        association, e1, e2 = self._parts(model)
        fragment_a = model.mapping.fragment_for_association(self.assoc_name)
        e2_set = schema.set_of_type(e2)
        e2_fragment = model.mapping.fragments_for_set(e2_set.name)[0]
        table2 = e2_fragment.store_table

        e1_key = schema.key_of(e1)
        e1_role = association.end_for_role(
            association.end1.role_name
            if association.end1.entity_type == e1
            else association.end2.role_name
        ).role_name
        # link columns: where A stored E1's key in T2
        link_columns = {}
        for k, qualified in zip(e1_key, qualify(e1_role, e1_key)):
            column = fragment_a.maps_attr(qualified)
            if column is None:
                raise SmoError(
                    f"association fragment does not map {qualified!r} into "
                    f"{table2!r}"
                )
            link_columns[k] = column

        old_attributes = list(schema.attributes_of(e2))
        attr_map: Dict[str, str] = dict(link_columns)
        for attribute in old_attributes:
            column = e2_fragment.maps_attr(attribute.name)
            if column is None:
                raise SmoError(
                    f"attribute {attribute.name!r} of {e2!r} is not mapped in "
                    f"{table2!r}"
                )
            attr_map[attribute.name] = column

        return {
            "e1": e1,
            "e2": e2,
            "e2_set": e2_set.name,
            "table2": table2,
            "e2_fragment": e2_fragment,
            "old_attributes": tuple(old_attributes),
            "attr_map": attr_map,
            "link_columns": link_columns,
            "e1_key": e1_key,
        }

    # ------------------------------------------------------------------
    def evolve_schemas(self, model: CompiledModel) -> None:
        plan = self._plan(model)
        self._planned = plan
        schema = model.client_schema

        # Drop the association and E2's old identity.
        schema.drop_association(self.assoc_name)
        schema.drop_entity_type(plan["e2"])  # also removes its entity set

        # Re-key T2: link columns become the primary key.
        table = model.store_schema.table(plan["table2"])
        new_pk = tuple(plan["link_columns"][k] for k in plan["e1_key"])
        columns = tuple(
            Column(c.name, c.domain, nullable=False if c.name in new_pk else c.nullable)
            for c in table.columns
        )
        model.store_schema.replace_table(
            Table(table.name, columns, new_pk, table.foreign_keys)
        )

        # Delegate the re-addition of E2 as a derived type to AddEntity.
        new_attributes = tuple(
            Attribute(a.name, a.domain, a.nullable) for a in plan["old_attributes"]
        )
        alpha = tuple(plan["e1_key"]) + tuple(a.name for a in new_attributes)
        self._delegate = AddEntity(
            name=plan["e2"],
            parent=plan["e1"],
            new_attributes=new_attributes,
            alpha=alpha,
            anchor=plan["e1"],
            table=plan["table2"],
            attr_map=tuple((a, plan["attr_map"][a]) for a in alpha),
        )
        self._delegate.kind = self.kind

        # Remove E2's old artifacts from mapping and views so AddEntity's
        # "fresh table" precondition holds.
        fragments = [
            f
            for f in model.mapping.fragments
            if f is not plan["e2_fragment"]
            and not (f.is_association and f.client_source == self.assoc_name)
        ]
        model.mapping.replace_fragments(fragments)
        model.views.drop_query_view(plan["e2"])
        model.views.drop_association_view(self.assoc_name)
        model.views.drop_update_view(plan["table2"])

        self._delegate.check_preconditions(model)
        self._delegate.evolve_schemas(model)

    # ------------------------------------------------------------------
    def adapt_fragments(self, model: CompiledModel) -> None:
        self._delegate.adapt_fragments(model)

    def adapt_update_views(self, model: CompiledModel) -> None:
        self._delegate.adapt_update_views(model)

    def validate(
        self,
        model: CompiledModel,
        budget: Optional[WorkBudget],
        cache: Optional[ValidationCache] = None,
    ) -> None:
        self._delegate.validate(model, budget, cache)
        self.validation_checks = self._delegate.validation_checks

    def adapt_query_views(self, model: CompiledModel) -> None:
        self._delegate.adapt_query_views(model)
