"""``AddEntity(E, E', α, P, T, f)`` — Section 3.1 (TPT/TPC and variations).

Adds entity type E as a leaf under parent E'.  Attributes α (containing
the primary key) map to fresh table T through the 1-1 function f; the
remaining attributes of E are mapped "like P" for an ancestor P with
``α ∪ att(P) = att(E)``.  TPT and TPC are the two special cases
(Section 3.1): TPT takes α = non-inherited attributes ∪ PK with P = E',
TPC takes α = att(E) with P = NIL.

The four algorithms:

* query views  — Algorithm 1 (left outer joins for ancestors of P, unions
  for types strictly between E and P, provenance flag ``t_E``);
* update views — Algorithm 2 (fresh view for T; the ``IS OF (ONLY P)`` and
  ``IS OF F`` rewrites on every other view);
* fragments    — Section 3.1.3 (same rewrites, then add ϕ_E);
* validation   — Section 3.1.4 (containment checks 1-3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.algebra.conditions import Comparison, IsNotNull, IsOf, and_
from repro.algebra.constructors import EntityCtor, IfCtor, RowCtor
from repro.algebra.queries import (
    Col,
    Const,
    Join,
    LeftOuterJoin,
    ProjItem,
    Project,
    Query,
    Select,
    SetScan,
    TableScan,
    UnionAll,
    scanned_names,
)
from repro.algebra.rewrite import (
    exclude_new_entity_condition,
    rewrite_query,
    widen_only_condition,
)
from repro.budget import WorkBudget
from repro.containment.cache import ValidationCache
from repro.containment.checker import check_containment
from repro.edm.entity import EntityType
from repro.edm.types import Attribute
from repro.errors import SmoError, ValidationError
from repro.incremental.model import CompiledModel
from repro.incremental.naming import (
    attr_to_column,
    build_entity_table,
    entity_flag,
    resolve_attr_map,
)
from repro.incremental.smo import Smo
from repro.mapping.fragments import MappingFragment
from repro.mapping.views import QueryView, UpdateView
from repro.relational.schema import ForeignKey, Table

__all__ = ["AddEntity", "entity_flag"]


@dataclass
class AddEntity(Smo):
    """The general AddEntity SMO of Section 3.1.

    ``anchor`` is P (``None`` encodes NIL).  ``attr_map`` is f, given as
    (client attribute, store column) pairs over exactly the attributes α.
    When *table* does not exist in the store schema it is created with
    columns f(α) (plus *table_foreign_keys*), which is how the benchmarks
    emulate MoDEF's store-side co-evolution.
    """

    name: str
    parent: str
    new_attributes: Tuple[Attribute, ...]
    alpha: Tuple[str, ...]
    anchor: Optional[str]
    table: str
    attr_map: Tuple[Tuple[str, str], ...]
    table_foreign_keys: Tuple[ForeignKey, ...] = ()
    kind: str = "AE"
    #: number of containment checks the last validation ran (for reports)
    validation_checks: int = field(default=0, compare=False)

    # ------------------------------------------------------------------
    # Factories for the two standard strategies
    # ------------------------------------------------------------------
    @staticmethod
    def tpt(
        model: CompiledModel,
        name: str,
        parent: str,
        new_attributes: Sequence[Attribute],
        table: str,
        attr_map: Optional[Dict[str, str]] = None,
        table_foreign_keys: Sequence[ForeignKey] = (),
    ) -> "AddEntity":
        """Table-per-type: α = (att(E) ∖ att(E')) ∪ PK_E, P = E'."""
        schema = model.client_schema
        key = schema.key_of(parent)
        alpha = tuple(key) + tuple(
            a.name for a in new_attributes if a.name not in key
        )
        mapping = _resolve_attr_map(alpha, attr_map)
        smo = AddEntity(
            name=name,
            parent=parent,
            new_attributes=tuple(new_attributes),
            alpha=alpha,
            anchor=parent,
            table=table,
            attr_map=mapping,
            table_foreign_keys=tuple(table_foreign_keys),
        )
        smo.kind = "AE-TPT"
        return smo

    @staticmethod
    def tpc(
        model: CompiledModel,
        name: str,
        parent: str,
        new_attributes: Sequence[Attribute],
        table: str,
        attr_map: Optional[Dict[str, str]] = None,
        table_foreign_keys: Sequence[ForeignKey] = (),
    ) -> "AddEntity":
        """Table-per-concrete-type: α = att(E), P = NIL."""
        schema = model.client_schema
        inherited = schema.attribute_names_of(parent)
        alpha = tuple(inherited) + tuple(a.name for a in new_attributes)
        mapping = _resolve_attr_map(alpha, attr_map)
        smo = AddEntity(
            name=name,
            parent=parent,
            new_attributes=tuple(new_attributes),
            alpha=alpha,
            anchor=None,
            table=table,
            attr_map=mapping,
            table_foreign_keys=tuple(table_foreign_keys),
        )
        smo.kind = "AE-TPC"
        return smo

    def describe(self) -> str:
        return f"{self.kind}({self.name} under {self.parent} -> {self.table})"

    # ------------------------------------------------------------------
    # Derived facts
    # ------------------------------------------------------------------
    def _entity_set(self, model: CompiledModel) -> str:
        return model.client_schema.set_of_type(self.parent).name

    def _full_attributes(self, model: CompiledModel) -> Tuple[str, ...]:
        inherited = model.client_schema.attribute_names_of(self.parent)
        return tuple(inherited) + tuple(
            a.name for a in self.new_attributes if a.name not in inherited
        )

    def _between(self, model: CompiledModel) -> Tuple[str, ...]:
        """The set ``p``: proper ancestors of E, proper descendants of P.

        Computed on the evolved schema (E exists); equals the ancestors of
        E' up to (and excluding) P, plus E' itself when E' ≠ P.
        """
        return model.client_schema.types_strictly_between(self.name, self.anchor)

    def _f(self, attr: str) -> str:
        return attr_to_column(self.attr_map, attr, self.describe())

    # ------------------------------------------------------------------
    # Preconditions
    # ------------------------------------------------------------------
    def check_preconditions(self, model: CompiledModel) -> None:
        schema = model.client_schema
        if schema.has_entity_type(self.name):
            raise SmoError(f"entity type {self.name!r} already exists")
        if not schema.has_entity_type(self.parent):
            raise SmoError(f"parent {self.parent!r} does not exist")
        schema.set_of_type(self.parent)  # parent must live in some entity set

        inherited = set(schema.attribute_names_of(self.parent))
        own = [a.name for a in self.new_attributes]
        if len(own) != len(set(own)):
            raise SmoError(f"duplicate new attributes on {self.name!r}")
        clash = inherited & set(own)
        if clash:
            raise SmoError(f"new attributes {sorted(clash)} shadow inherited ones")

        full = set(inherited) | set(own)
        key = set(schema.key_of(self.parent))
        if not key <= set(self.alpha):
            raise SmoError(f"α must contain the primary key {sorted(key)}")
        if not set(self.alpha) <= full:
            raise SmoError(f"α contains attributes outside att({self.name})")

        if self.anchor is not None:
            if self.anchor not in schema.ancestors_or_self(self.parent):
                raise SmoError(
                    f"P = {self.anchor!r} is not an ancestor of {self.name!r}"
                )
            anchored = set(schema.attribute_names_of(self.anchor))
        else:
            anchored = set()
        if set(self.alpha) | anchored != full:
            missing = full - (set(self.alpha) | anchored)
            raise SmoError(
                f"α ∪ att(P) must equal att(E); attributes {sorted(missing)} "
                "are covered by neither"
            )

        mapped = [a for a, _ in self.attr_map]
        columns = [c for _, c in self.attr_map]
        if sorted(mapped) != sorted(self.alpha) or len(set(columns)) != len(columns):
            raise SmoError("attr_map must be a 1-1 function over exactly α")

        if model.mapping.table_is_mapped(self.table):
            raise SmoError(
                f"table {self.table!r} is already mentioned in a mapping fragment"
            )
        if model.store_schema.has_table(self.table):
            self._check_existing_table(model)

    def _check_existing_table(self, model: CompiledModel) -> None:
        table = model.store_schema.table(self.table)
        schema = model.client_schema
        key = schema.key_of(self.parent)
        mapped_key_columns = tuple(self._f(k) for k in key)
        if tuple(sorted(mapped_key_columns)) != tuple(sorted(table.primary_key)):
            raise SmoError(
                f"f must map the primary key of {self.name!r} onto the primary "
                f"key of {self.table!r}"
            )
        attr_domains = {a.name: a.domain for a in self.new_attributes}
        for ancestor_attr in schema.attributes_of(self.parent):
            attr_domains.setdefault(ancestor_attr.name, ancestor_attr.domain)
        for attr, column_name in self.attr_map:
            if not table.has_column(column_name):
                raise SmoError(f"table {self.table!r} has no column {column_name!r}")
            if not attr_domains[attr].is_subdomain_of(table.column(column_name).domain):
                raise SmoError(
                    f"dom({attr}) is not contained in dom({self.table}.{column_name})"
                )
        mapped_columns = {c for _, c in self.attr_map}
        for column in table.columns:
            if column.name not in mapped_columns and not column.nullable:
                raise SmoError(
                    f"unmapped column {self.table}.{column.name} must be nullable"
                )

    # ------------------------------------------------------------------
    # Schema evolution
    # ------------------------------------------------------------------
    def evolve_schemas(self, model: CompiledModel) -> None:
        model.client_schema.add_entity_type(
            EntityType(
                name=self.name,
                parent=self.parent,
                attributes=tuple(self.new_attributes),
            )
        )
        if not model.store_schema.has_table(self.table):
            model.store_schema.add_table(self._build_table(model))

    def _build_table(self, model: CompiledModel) -> Table:
        return build_entity_table(
            model.client_schema,
            self.name,
            self.table,
            self.attr_map,
            self.table_foreign_keys,
            context=self.describe(),
        )

    # ------------------------------------------------------------------
    # Algorithm of Section 3.1.3: adapt mapping fragments
    # ------------------------------------------------------------------
    def adapt_fragments(self, model: CompiledModel) -> None:
        schema = model.client_schema
        set_name = self._entity_set(model)
        between = self._between(model)
        transformers = []
        if self.anchor is not None:
            transformers.append(widen_only_condition(self.anchor, self.name))
        if between:
            transformers.append(
                exclude_new_entity_condition(schema, between, self.name)
            )

        adapted: List[MappingFragment] = []
        for fragment in model.mapping.fragments:
            if not fragment.is_association and fragment.client_source == set_name:
                condition = fragment.client_condition
                for transformer in transformers:
                    condition = condition.transform(transformer)
                adapted.append(fragment.with_client_condition(condition))
            else:
                adapted.append(fragment)
        adapted.append(self._new_fragment(model))
        model.mapping.replace_fragments(adapted)

    def _new_fragment(self, model: CompiledModel) -> MappingFragment:
        """ϕ_E of Eq. (2): π_α(σ_{IS OF E}(𝔼)) = π_{f(α)}(T)."""
        from repro.algebra.conditions import TRUE

        return MappingFragment(
            client_source=self._entity_set(model),
            is_association=False,
            client_condition=IsOf(self.name),
            store_table=self.table,
            store_condition=TRUE,
            attribute_map=tuple(self.attr_map),
        )

    # ------------------------------------------------------------------
    # Algorithm 2: update views
    # ------------------------------------------------------------------
    def adapt_update_views(self, model: CompiledModel) -> None:
        schema = model.client_schema
        set_name = self._entity_set(model)
        between = self._between(model)
        table = model.store_schema.table(self.table)

        # Lines 2-3: the fresh view for T, padding unmapped columns.
        items: List[ProjItem] = [
            ProjItem(column, Col(attr)) for attr, column in self.attr_map
        ]
        mapped_columns = {c for _, c in self.attr_map}
        for column in table.columns:
            if column.name not in mapped_columns:
                items.append(ProjItem(column.name, Const(None)))
        new_query: Query = Project(
            Select(SetScan(set_name), IsOf(self.name)), tuple(items)
        )
        model.views.set_update_view(
            UpdateView(
                self.table,
                new_query,
                RowCtor.identity(self.table, table.column_names),
            )
        )

        # Lines 4-17: rewrite the conditions of every other update view
        # that ranges over this entity set.
        transformers = []
        if self.anchor is not None:
            transformers.append(widen_only_condition(self.anchor, self.name))
        if between:
            transformers.append(
                exclude_new_entity_condition(schema, between, self.name)
            )
        if not transformers:
            return
        for table_name, view in list(model.views.update_views.items()):
            if table_name == self.table:
                continue
            if set_name not in scanned_names(view.query):
                continue
            rewritten = rewrite_query(view.query, *transformers)
            if rewritten is not view.query:
                model.views.set_update_view(
                    UpdateView(table_name, rewritten, view.constructor)
                )

    # ------------------------------------------------------------------
    # Section 3.1.4: validation
    # ------------------------------------------------------------------
    def validate(
        self,
        model: CompiledModel,
        budget: Optional[WorkBudget],
        cache: Optional[ValidationCache] = None,
    ) -> None:
        self.validation_checks = 0
        schema = model.client_schema
        between = set(self._between(model))

        # Checks 1 and 2: associations anchored at a type between E and P.
        for association in schema.associations:
            fragment = model.mapping.fragment_for_association(association.name)
            if fragment is None:
                continue
            for end, key_owner in (
                (association.end1, association.end1.entity_type),
                (association.end2, association.end2.entity_type),
            ):
                if key_owner not in between:
                    continue
                self._check_association_endpoint(
                    model, association.name, fragment, end, budget, cache
                )

        # Check 3: foreign keys of T touching mapped columns.
        mapped_columns = {c for _, c in self.attr_map}
        table = model.store_schema.table(self.table)
        for foreign_key in table.foreign_keys:
            if not set(foreign_key.columns) & mapped_columns:
                continue
            self._check_foreign_key(model, self.table, foreign_key, budget, cache)

    def _check_association_endpoint(
        self, model, assoc_name, fragment, end, budget, cache=None
    ) -> None:
        """Checks 1 and 2 for one association endpoint F ∈ p."""
        schema = model.client_schema
        key = schema.key_of(end.entity_type)
        qualified = tuple(f"{end.role_name}.{k}" for k in key)
        beta = []
        for attr in qualified:
            column = fragment.maps_attr(attr)
            if column is None:
                raise ValidationError(
                    f"association fragment of {assoc_name!r} does not map {attr!r}",
                    check="assoc-endpoint",
                )
            beta.append(column)

        table_name = fragment.store_table
        update_view = model.views.update_view(table_name)

        # Check 1: π_{PK_F AS β}(A) ⊆ π_β(Q_R)
        from repro.algebra.queries import AssociationScan

        lhs = Project(
            AssociationScan(assoc_name),
            tuple(ProjItem(b, Col(q)) for q, b in zip(qualified, beta)),
        )
        rhs = Project(
            update_view.query, tuple(ProjItem(b, Col(b)) for b in beta)
        )
        self.validation_checks += 1
        result = check_containment(lhs, rhs, schema, budget, cache)
        if not result.holds:
            raise ValidationError(
                f"adding {self.name!r} breaks association {assoc_name!r}: keys of "
                f"new-entity participants cannot be stored in {table_name!r}\n"
                f"{result.explain()}",
                check="assoc-storage",
            )

        # Check 2: foreign keys of R overlapping β.
        table = model.store_schema.table(table_name)
        for foreign_key in table.foreign_keys:
            if not set(foreign_key.columns) & set(beta):
                continue
            self._check_foreign_key(model, table_name, foreign_key, budget, cache)

    def _check_foreign_key(self, model, table_name, foreign_key, budget, cache=None) -> None:
        """The containment ``π_{β AS β'}(Q_T) ⊆ π_{β'}(Q_{T'})`` (check 3)."""
        if not model.mapping.table_is_mapped(foreign_key.ref_table):
            raise ValidationError(
                f"foreign key {foreign_key} of {table_name!r} references the "
                f"unmapped table {foreign_key.ref_table!r}",
                check="fk-preservation",
            )
        update_view = model.views.update_view(table_name)
        target_view = model.views.update_view(foreign_key.ref_table)
        not_null = and_(*[IsNotNull(c) for c in foreign_key.columns])
        lhs = Project(
            Select(update_view.query, not_null),
            tuple(
                ProjItem(gamma, Col(beta))
                for beta, gamma in zip(foreign_key.columns, foreign_key.ref_columns)
            ),
        )
        rhs = Project(
            target_view.query,
            tuple(ProjItem(g, Col(g)) for g in foreign_key.ref_columns),
        )
        self.validation_checks += 1
        result = check_containment(lhs, rhs, model.client_schema, budget, cache)
        if not result.holds:
            raise ValidationError(
                f"adding {self.name!r} violates foreign key {foreign_key} of "
                f"table {table_name!r}\n{result.explain()}",
                check="fk-preservation",
            )

    # ------------------------------------------------------------------
    # Algorithm 1: query views
    # ------------------------------------------------------------------
    def adapt_query_views(self, model: CompiledModel) -> None:
        schema = model.client_schema
        flag = entity_flag(self.name)
        full_attrs = schema.attribute_names_of(self.name)

        plain_items = tuple(ProjItem(a, Col(c)) for a, c in self.attr_map)
        flag_items = plain_items + (ProjItem(flag, Const(True)),)
        right_plain: Query = Project(TableScan(self.table), plain_items)
        right_flagged: Query = Project(TableScan(self.table), flag_items)

        tau_e = EntityCtor.identity(self.name, full_attrs)  # line 3

        old_views = dict(model.views.query_views)

        if self.anchor is None:  # lines 4-6
            new_e_query: Query = right_plain
            aux: Query = right_flagged
            ancestors_of_p: Tuple[str, ...] = ()
        else:  # lines 7-9
            anchor_view = old_views.get(self.anchor)
            if anchor_view is None:
                raise SmoError(
                    f"no pre-existing query view for anchor {self.anchor!r}"
                )
            key = tuple(schema.key_of(self.name))
            new_e_query = Join(anchor_view.query, right_plain, on=key)
            aux = Join(anchor_view.query, right_flagged, on=key)
            ancestors_of_p = schema.ancestors_or_self(self.anchor)  # line 11

        model.views.set_query_view(QueryView(self.name, new_e_query, tau_e))

        flag_test = Comparison(flag, "=", True)

        # Lines 12-15: ancestors of P — left outer join with the new table.
        key = tuple(schema.key_of(self.parent))
        for ancestor in ancestors_of_p:
            old = old_views.get(ancestor)
            if old is None:
                continue
            query = LeftOuterJoin(old.query, right_flagged, on=key)
            constructor = IfCtor(flag_test, tau_e, old.constructor)
            model.views.set_query_view(QueryView(ancestor, query, constructor))

        # Lines 16-20: types strictly between E and P — union with Qaux.
        for middle in self._between(model):
            old = old_views.get(middle)
            if old is None:
                continue
            query = UnionAll((old.query, aux))
            constructor = IfCtor(flag_test, tau_e, old.constructor)
            model.views.set_query_view(QueryView(middle, query, constructor))
        # Line 21-23: every other view is unchanged.


# Backwards-compatible alias; the shared helper lives in naming.py now.
_resolve_attr_map = resolve_attr_map
