"""Declarative mapping deltas: the change an SMO makes as a first-class value.

The paper's premise (§1.2, §3) is that an SMO only perturbs a small
*neighborhood* of the compiled mapping.  The SMO hooks run against a
:class:`DeltaRecorder` — a facade over a working copy of the model that
intercepts every mutator and records a :class:`DeltaOp` per change.  The
resulting :class:`MappingDelta` is then:

* replayable — :meth:`repro.incremental.model.CompiledModel.apply` is the
  single mutation point for turning a base model into an evolved one;
* composable — a batch of SMOs concatenates its per-SMO deltas;
* invertible — ``apply(d); apply(d.inverse())`` restores the original
  model, which is what the session journal's ``undo()`` replays;
* analysable — :meth:`MappingDelta.touched_neighborhood` derives the
  entity sets, tables and foreign keys whose validation checks must be
  re-run, uniformly for single SMOs, batches, and cache invalidation.

Each op captures the *old* state it overwrites at record time, so
inverses need no access to the pre-change model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.edm.association import AssociationSet
from repro.edm.entity import EntitySet, EntityType
from repro.edm.types import Attribute
from repro.errors import SchemaError, SmoError
from repro.mapping.fragments import MappingFragment
from repro.mapping.views import AssociationView, QueryView, UpdateView
from repro.relational.schema import Table


# ----------------------------------------------------------------------
# Touched regions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Touched:
    """Raw neighborhood contribution of one op (names, unresolved)."""

    sets: Tuple[str, ...] = ()
    assocs: Tuple[str, ...] = ()
    tables: Tuple[str, ...] = ()
    types: Tuple[str, ...] = ()


@dataclass(frozen=True)
class Neighborhood:
    """The delta's touched region resolved against an evolved mapping."""

    sets: Tuple[str, ...]
    tables: Tuple[str, ...]
    foreign_keys: Tuple[Tuple[str, int], ...]

    def __str__(self) -> str:
        return (
            f"sets={{{', '.join(self.sets) or '∅'}}} "
            f"tables={{{', '.join(self.tables) or '∅'}}} "
            f"fks={len(self.foreign_keys)}"
        )


# ----------------------------------------------------------------------
# Ops
# ----------------------------------------------------------------------
class DeltaOp:
    """One declarative change.  Subclasses are frozen dataclasses."""

    def apply(self, model) -> None:
        raise NotImplementedError

    def inverted(self) -> Tuple["DeltaOp", ...]:
        raise NotImplementedError

    def touched(self) -> Touched:
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class AddEntityTypeOp(DeltaOp):
    entity_type: EntityType
    set_name: Optional[str] = None

    def apply(self, model) -> None:
        model.client_schema.add_entity_type(self.entity_type)

    def inverted(self) -> Tuple[DeltaOp, ...]:
        return (DropEntityTypeOp(self.entity_type, (), self.set_name),)

    def touched(self) -> Touched:
        sets = (self.set_name,) if self.set_name else ()
        return Touched(sets=sets, types=(self.entity_type.name,))

    def describe(self) -> str:
        return f"+type {self.entity_type.name}"


@dataclass(frozen=True)
class DropEntityTypeOp(DeltaOp):
    entity_type: EntityType
    removed_sets: Tuple[EntitySet, ...] = ()
    set_name: Optional[str] = None

    def apply(self, model) -> None:
        model.client_schema.drop_entity_type(self.entity_type.name)

    def inverted(self) -> Tuple[DeltaOp, ...]:
        return (AddEntityTypeOp(self.entity_type, self.set_name),) + tuple(
            AddEntitySetOp(entity_set) for entity_set in self.removed_sets
        )

    def touched(self) -> Touched:
        sets = tuple(s.name for s in self.removed_sets)
        if self.set_name:
            sets += (self.set_name,)
        return Touched(sets=sets, types=(self.entity_type.name,))

    def describe(self) -> str:
        return f"-type {self.entity_type.name}"


@dataclass(frozen=True)
class AddEntitySetOp(DeltaOp):
    entity_set: EntitySet

    def apply(self, model) -> None:
        model.client_schema.add_entity_set(self.entity_set)

    def inverted(self) -> Tuple[DeltaOp, ...]:
        return (DropEntitySetOp(self.entity_set),)

    def touched(self) -> Touched:
        return Touched(sets=(self.entity_set.name,))

    def describe(self) -> str:
        return f"+set {self.entity_set.name}"


@dataclass(frozen=True)
class DropEntitySetOp(DeltaOp):
    entity_set: EntitySet

    def apply(self, model) -> None:
        model.client_schema.drop_entity_set(self.entity_set.name)

    def inverted(self) -> Tuple[DeltaOp, ...]:
        return (AddEntitySetOp(self.entity_set),)

    def touched(self) -> Touched:
        return Touched(sets=(self.entity_set.name,))

    def describe(self) -> str:
        return f"-set {self.entity_set.name}"


@dataclass(frozen=True)
class AddAttributeOp(DeltaOp):
    type_name: str
    attribute: Attribute

    def apply(self, model) -> None:
        model.client_schema.add_attribute(self.type_name, self.attribute)

    def inverted(self) -> Tuple[DeltaOp, ...]:
        return (DropAttributeOp(self.type_name, self.attribute),)

    def touched(self) -> Touched:
        return Touched(types=(self.type_name,))

    def describe(self) -> str:
        return f"+attr {self.type_name}.{self.attribute.name}"


@dataclass(frozen=True)
class DropAttributeOp(DeltaOp):
    type_name: str
    attribute: Attribute

    def apply(self, model) -> None:
        model.client_schema.drop_attribute(self.type_name, self.attribute.name)

    def inverted(self) -> Tuple[DeltaOp, ...]:
        return (AddAttributeOp(self.type_name, self.attribute),)

    def touched(self) -> Touched:
        return Touched(types=(self.type_name,))

    def describe(self) -> str:
        return f"-attr {self.type_name}.{self.attribute.name}"


@dataclass(frozen=True)
class AddAssociationOp(DeltaOp):
    association: AssociationSet

    def apply(self, model) -> None:
        model.client_schema.add_association(self.association)

    def inverted(self) -> Tuple[DeltaOp, ...]:
        return (DropAssociationOp(self.association),)

    def touched(self) -> Touched:
        a = self.association
        return Touched(
            sets=tuple(s for s in (a.entity_set1, a.entity_set2) if s),
            assocs=(a.name,),
        )

    def describe(self) -> str:
        return f"+assoc {self.association.name}"


@dataclass(frozen=True)
class DropAssociationOp(DeltaOp):
    association: AssociationSet

    def apply(self, model) -> None:
        model.client_schema.drop_association(self.association.name)

    def inverted(self) -> Tuple[DeltaOp, ...]:
        return (AddAssociationOp(self.association),)

    def touched(self) -> Touched:
        a = self.association
        return Touched(
            sets=tuple(s for s in (a.entity_set1, a.entity_set2) if s),
            assocs=(a.name,),
        )

    def describe(self) -> str:
        return f"-assoc {self.association.name}"


@dataclass(frozen=True)
class AddTableOp(DeltaOp):
    table: Table

    def apply(self, model) -> None:
        model.store_schema.add_table(self.table)

    def inverted(self) -> Tuple[DeltaOp, ...]:
        return (DropTableOp(self.table),)

    def touched(self) -> Touched:
        return Touched(tables=(self.table.name,))

    def describe(self) -> str:
        return f"+table {self.table.name}"


@dataclass(frozen=True)
class DropTableOp(DeltaOp):
    table: Table

    def apply(self, model) -> None:
        model.store_schema.drop_table(self.table.name)

    def inverted(self) -> Tuple[DeltaOp, ...]:
        return (AddTableOp(self.table),)

    def touched(self) -> Touched:
        return Touched(tables=(self.table.name,))

    def describe(self) -> str:
        return f"-table {self.table.name}"


@dataclass(frozen=True)
class ReplaceTableOp(DeltaOp):
    before: Table
    after: Table

    def apply(self, model) -> None:
        model.store_schema.replace_table(self.after)

    def inverted(self) -> Tuple[DeltaOp, ...]:
        return (ReplaceTableOp(self.after, self.before),)

    def touched(self) -> Touched:
        return Touched(tables=(self.after.name,))

    def describe(self) -> str:
        return f"~table {self.after.name}"


@dataclass(frozen=True)
class AddFragmentOp(DeltaOp):
    fragment: MappingFragment

    def apply(self, model) -> None:
        model.mapping.add_fragment(self.fragment)

    def inverted(self) -> Tuple[DeltaOp, ...]:
        return (RemoveFragmentOp(self.fragment),)

    def touched(self) -> Touched:
        return _fragment_touched(self.fragment)

    def describe(self) -> str:
        return f"+fragment {self.fragment.client_source}={self.fragment.store_table}"


@dataclass(frozen=True)
class RemoveFragmentOp(DeltaOp):
    fragment: MappingFragment

    def apply(self, model) -> None:
        fragments = list(model.mapping.fragments)
        for i in range(len(fragments) - 1, -1, -1):
            if fragments[i] == self.fragment:
                del fragments[i]
                break
        else:
            raise SmoError(
                f"cannot remove fragment over {self.fragment.store_table!r}: "
                "no equal fragment in the mapping"
            )
        model.mapping.replace_fragments(fragments)

    def inverted(self) -> Tuple[DeltaOp, ...]:
        return (AddFragmentOp(self.fragment),)

    def touched(self) -> Touched:
        return _fragment_touched(self.fragment)

    def describe(self) -> str:
        return f"-fragment {self.fragment.client_source}={self.fragment.store_table}"


@dataclass(frozen=True)
class ReplaceFragmentsOp(DeltaOp):
    """Wholesale fragment-list rewrite (condition rewrites, drops)."""

    before: Tuple[MappingFragment, ...]
    after: Tuple[MappingFragment, ...]

    def apply(self, model) -> None:
        model.mapping.replace_fragments(list(self.after))

    def inverted(self) -> Tuple[DeltaOp, ...]:
        return (ReplaceFragmentsOp(self.after, self.before),)

    def touched(self) -> Touched:
        changed = [f for f in self.before if f not in self.after]
        changed += [f for f in self.after if f not in self.before]
        sets: List[str] = []
        assocs: List[str] = []
        tables: List[str] = []
        for fragment in changed:
            t = _fragment_touched(fragment)
            sets.extend(t.sets)
            assocs.extend(t.assocs)
            tables.extend(t.tables)
        return Touched(sets=tuple(sets), assocs=tuple(assocs), tables=tuple(tables))

    def describe(self) -> str:
        delta = len(self.after) - len(self.before)
        return f"~fragments ({len(self.before)} -> {len(self.after)}, {delta:+d})"


@dataclass(frozen=True)
class PutQueryViewOp(DeltaOp):
    entity_type: str
    before: Optional[QueryView]
    after: Optional[QueryView]

    def apply(self, model) -> None:
        if self.after is None:
            model.views.drop_query_view(self.entity_type)
        else:
            model.views.set_query_view(self.after)

    def inverted(self) -> Tuple[DeltaOp, ...]:
        return (PutQueryViewOp(self.entity_type, self.after, self.before),)

    def touched(self) -> Touched:
        return Touched(types=(self.entity_type,))

    def describe(self) -> str:
        verb = "-" if self.after is None else ("+" if self.before is None else "~")
        return f"{verb}qview {self.entity_type}"


@dataclass(frozen=True)
class PutAssociationViewOp(DeltaOp):
    assoc_name: str
    before: Optional[AssociationView]
    after: Optional[AssociationView]

    def apply(self, model) -> None:
        if self.after is None:
            model.views.drop_association_view(self.assoc_name)
        else:
            model.views.set_association_view(self.after)

    def inverted(self) -> Tuple[DeltaOp, ...]:
        return (PutAssociationViewOp(self.assoc_name, self.after, self.before),)

    def touched(self) -> Touched:
        return Touched(assocs=(self.assoc_name,))

    def describe(self) -> str:
        verb = "-" if self.after is None else ("+" if self.before is None else "~")
        return f"{verb}aview {self.assoc_name}"


@dataclass(frozen=True)
class PutUpdateViewOp(DeltaOp):
    table_name: str
    before: Optional[UpdateView]
    after: Optional[UpdateView]

    def apply(self, model) -> None:
        if self.after is None:
            model.views.drop_update_view(self.table_name)
        else:
            model.views.set_update_view(self.after)

    def inverted(self) -> Tuple[DeltaOp, ...]:
        return (PutUpdateViewOp(self.table_name, self.after, self.before),)

    def touched(self) -> Touched:
        return Touched(tables=(self.table_name,))

    def describe(self) -> str:
        verb = "-" if self.after is None else ("+" if self.before is None else "~")
        return f"{verb}uview {self.table_name}"


def _fragment_touched(fragment: MappingFragment) -> Touched:
    if fragment.is_association:
        return Touched(
            assocs=(fragment.client_source,), tables=(fragment.store_table,)
        )
    return Touched(sets=(fragment.client_source,), tables=(fragment.store_table,))


# ----------------------------------------------------------------------
# The delta value
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MappingDelta:
    """An ordered, replayable, invertible list of :class:`DeltaOp`."""

    ops: Tuple[DeltaOp, ...] = ()

    @property
    def is_empty(self) -> bool:
        return not self.ops

    def compose(self, other: "MappingDelta") -> "MappingDelta":
        """Sequential composition: ``self`` then ``other`` (associative)."""
        return MappingDelta(self.ops + other.ops)

    def inverse(self) -> "MappingDelta":
        """The delta that undoes this one (ops inverted, in reverse)."""
        return MappingDelta(
            tuple(inv for op in reversed(self.ops) for inv in op.inverted())
        )

    def touched(self) -> Touched:
        sets: List[str] = []
        assocs: List[str] = []
        tables: List[str] = []
        types: List[str] = []
        for op in self.ops:
            t = op.touched()
            sets.extend(t.sets)
            assocs.extend(t.assocs)
            tables.extend(t.tables)
            types.extend(t.types)
        return Touched(
            sets=tuple(dict.fromkeys(sets)),
            assocs=tuple(dict.fromkeys(assocs)),
            tables=tuple(dict.fromkeys(tables)),
            types=tuple(dict.fromkeys(types)),
        )

    def touched_neighborhood(self, mapping) -> Neighborhood:
        """Resolve the raw touched region against an *evolved* mapping.

        Entity types resolve to their entity set (skipping types that were
        dropped along the way); association endpoints pull in their sets;
        tables are restricted to ones the mapping still mentions, and every
        foreign key of a touched table joins the region.
        """
        t = self.touched()
        schema = mapping.client_schema
        sets = {s for s in t.sets if schema.has_entity_set(s)}
        for type_name in t.types:
            if not schema.has_entity_type(type_name):
                continue
            try:
                sets.add(schema.set_of_type(type_name).name)
            except SchemaError:
                pass
        for assoc_name in t.assocs:
            if not schema.has_association(assoc_name):
                continue
            association = schema.association(assoc_name)
            for set_name in (association.entity_set1, association.entity_set2):
                if schema.has_entity_set(set_name):
                    sets.add(set_name)
        tables = {name for name in t.tables if mapping.table_is_mapped(name)}
        foreign_keys: List[Tuple[str, int]] = []
        for table_name in sorted(tables):
            table = mapping.store_schema.table(table_name)
            for index in range(len(table.foreign_keys)):
                foreign_keys.append((table_name, index))
        return Neighborhood(
            tuple(sorted(sets)), tuple(sorted(tables)), tuple(foreign_keys)
        )

    def summary(self) -> Tuple[str, ...]:
        return tuple(op.describe() for op in self.ops)

    def __len__(self) -> int:
        return len(self.ops)

    def __str__(self) -> str:
        return f"MappingDelta({len(self.ops)} ops: {', '.join(self.summary())})"


# ----------------------------------------------------------------------
# The recorder the SMO hooks run against
# ----------------------------------------------------------------------
class _Proxy:
    """Read-through wrapper: reads delegate, known mutators record ops."""

    __slots__ = ("_recorder", "_target")

    def __init__(self, recorder: "DeltaRecorder", target) -> None:
        object.__setattr__(self, "_recorder", recorder)
        object.__setattr__(self, "_target", target)

    def __getattr__(self, name):
        return getattr(self._target, name)


class _RecordingClientSchema(_Proxy):
    def add_entity_type(self, entity_type: EntityType) -> EntityType:
        set_name = None
        if entity_type.parent is not None:
            try:
                set_name = self._target.set_of_type(entity_type.parent).name
            except SchemaError:
                pass
        self._recorder.record(AddEntityTypeOp(entity_type, set_name))
        return entity_type

    def add_entity_set(self, entity_set: EntitySet) -> EntitySet:
        self._recorder.record(AddEntitySetOp(entity_set))
        return entity_set

    def add_association(self, association: AssociationSet) -> AssociationSet:
        self._recorder.record(AddAssociationOp(association))
        return association

    def drop_entity_type(self, name: str) -> EntityType:
        schema = self._target
        entity_type = schema.entity_type(name)
        set_name = None
        try:
            set_name = schema.set_of_type(name).name
        except SchemaError:
            pass
        removed_sets = tuple(
            s for s in schema.entity_sets if s.root_type == name
        )
        self._recorder.record(DropEntityTypeOp(entity_type, removed_sets, set_name))
        return entity_type

    def drop_association(self, name: str) -> AssociationSet:
        association = self._target.association(name)
        self._recorder.record(DropAssociationOp(association))
        return association

    def drop_entity_set(self, name: str) -> EntitySet:
        entity_set = self._target.entity_set(name)
        self._recorder.record(DropEntitySetOp(entity_set))
        return entity_set

    def add_attribute(self, type_name: str, attribute: Attribute) -> None:
        self._recorder.record(AddAttributeOp(type_name, attribute))

    def drop_attribute(self, type_name: str, attr_name: str) -> Attribute:
        attribute = self._target.attribute_of(type_name, attr_name)
        self._recorder.record(DropAttributeOp(type_name, attribute))
        return attribute


class _RecordingStoreSchema(_Proxy):
    def add_table(self, table: Table) -> Table:
        self._recorder.record(AddTableOp(table))
        return table

    def drop_table(self, name: str) -> Table:
        table = self._target.table(name)
        self._recorder.record(DropTableOp(table))
        return table

    def replace_table(self, table: Table) -> Table:
        before = self._target.table(table.name)
        if before == table:
            return table
        self._recorder.record(ReplaceTableOp(before, table))
        return table


class _RecordingMapping(_Proxy):
    @property
    def client_schema(self):
        return _RecordingClientSchema(self._recorder, self._target.client_schema)

    @property
    def store_schema(self):
        return _RecordingStoreSchema(self._recorder, self._target.store_schema)

    def add_fragment(self, fragment: MappingFragment) -> None:
        self._recorder.record(AddFragmentOp(fragment))

    def replace_fragments(self, fragments) -> None:
        before = tuple(self._target.fragments)
        after = tuple(fragments)
        if before == after:
            return
        self._recorder.record(ReplaceFragmentsOp(before, after))


class _RecordingViews(_Proxy):
    def set_query_view(self, view: QueryView) -> None:
        before = self._target.query_views.get(view.entity_type)
        if before == view:
            return
        self._recorder.record(PutQueryViewOp(view.entity_type, before, view))

    def drop_query_view(self, entity_type: str) -> None:
        before = self._target.query_views.get(entity_type)
        if before is None:
            return
        self._recorder.record(PutQueryViewOp(entity_type, before, None))

    def set_association_view(self, view: AssociationView) -> None:
        before = self._target.association_views.get(view.assoc_name)
        if before == view:
            return
        self._recorder.record(PutAssociationViewOp(view.assoc_name, before, view))

    def drop_association_view(self, assoc_name: str) -> None:
        before = self._target.association_views.get(assoc_name)
        if before is None:
            return
        self._recorder.record(PutAssociationViewOp(assoc_name, before, None))

    def set_update_view(self, view: UpdateView) -> None:
        before = self._target.update_views.get(view.table_name)
        if before == view:
            return
        self._recorder.record(PutUpdateViewOp(view.table_name, before, view))

    def drop_update_view(self, table_name: str) -> None:
        before = self._target.update_views.get(table_name)
        if before is None:
            return
        self._recorder.record(PutUpdateViewOp(table_name, before, None))


class DeltaRecorder:
    """Duck-typed ``CompiledModel`` that turns mutations into delta ops.

    ``working`` is a clone of ``base`` kept in sync by applying each op as
    it is recorded — the same replay path ``CompiledModel.apply`` uses, so
    recording and replaying cannot drift apart.  Hooks that only *read*
    (preconditions, validation) are handed ``working`` directly.
    """

    def __init__(self, base) -> None:
        self.base = base
        self.working = base.clone()
        self.ops: List[DeltaOp] = []

    # -- recording --------------------------------------------------
    def record(self, op: DeltaOp) -> None:
        # Apply first: a rejected mutation (SchemaError etc.) must not
        # leave a phantom op in the delta.
        op.apply(self.working)
        self.ops.append(op)

    def delta(self) -> MappingDelta:
        return MappingDelta(tuple(self.ops))

    def delta_since(self, mark: int) -> MappingDelta:
        return MappingDelta(tuple(self.ops[mark:]))

    @property
    def mark(self) -> int:
        return len(self.ops)

    # -- the CompiledModel facade -----------------------------------
    @property
    def mapping(self):
        return _RecordingMapping(self, self.working.mapping)

    @property
    def views(self):
        return _RecordingViews(self, self.working.views)

    @property
    def client_schema(self):
        return _RecordingClientSchema(self, self.working.client_schema)

    @property
    def store_schema(self):
        return _RecordingStoreSchema(self, self.working.store_schema)
