"""Shared naming, flag and attribute-map helpers for the SMO modules.

Every SMO carries a partial 1-1 function ``f`` from client attributes to
store columns, mints provenance flags for Algorithm 1, qualifies key
attributes by association role, and (when the store co-evolves) builds
fresh tables from ``f``.  These used to be copy-pasted per module; they
live here so the delta layer and the SMOs agree on one vocabulary.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.edm.association import Multiplicity
from repro.errors import SmoError
from repro.relational.schema import Column, ForeignKey, Table


def entity_flag(type_name: str) -> str:
    """The fresh provenance attribute ``t_E`` of Algorithm 1."""
    return f"_t{type_name}"


def partition_flag(type_name: str, index: int) -> str:
    """Provenance flag for partition *index* of a horizontally split type."""
    return f"_t{type_name}_{index}"


def attr_to_column(
    attr_map: Sequence[Tuple[str, str]], attr: str, context: str = ""
) -> str:
    """Apply the 1-1 function ``f`` to one client attribute."""
    for client_attr, column in attr_map:
        if client_attr == attr:
            return column
    suffix = f" of {context}" if context else ""
    raise SmoError(f"attribute {attr!r} is not covered by f{suffix}")


def resolve_attr_map(
    alpha: Sequence[str], attr_map: Optional[Dict[str, str]]
) -> Tuple[Tuple[str, str], ...]:
    """Materialise ``f`` over exactly α; ``None`` means the identity map."""
    if attr_map is None:
        return tuple((a, a) for a in alpha)
    missing = [a for a in alpha if a not in attr_map]
    if missing:
        raise SmoError(f"attr_map does not cover attributes {missing}")
    return tuple((a, attr_map[a]) for a in alpha)


def role_names(
    end1_type: str,
    end2_type: str,
    role1: Optional[str] = None,
    role2: Optional[str] = None,
) -> Tuple[str, str]:
    """Association end roles, defaulting to the endpoint type names."""
    return (role1 if role1 else end1_type, role2 if role2 else end2_type)


def qualify(role: str, attrs: Sequence[str]) -> Tuple[str, ...]:
    """Qualify attribute names by an association role (``Customer.Id``)."""
    return tuple(f"{role}.{a}" for a in attrs)


def qualified_keys(
    schema,
    end1_type: str,
    end2_type: str,
    role1: Optional[str] = None,
    role2: Optional[str] = None,
) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    """Role-qualified primary keys of both association endpoints."""
    r1, r2 = role_names(end1_type, end2_type, role1, role2)
    return (
        qualify(r1, schema.key_of(end1_type)),
        qualify(r2, schema.key_of(end2_type)),
    )


def resolve_multiplicity(value) -> Multiplicity:
    """Accept ``Multiplicity`` members or their string spellings."""
    if isinstance(value, Multiplicity):
        return value
    return {m.value: m for m in Multiplicity}[value]


def build_entity_table(
    schema,
    type_name: str,
    table_name: str,
    attr_map: Sequence[Tuple[str, str]],
    foreign_keys: Sequence[ForeignKey] = (),
    context: str = "",
) -> Table:
    """A fresh entity table with columns ``f(α)``, keyed by ``f(PK)``."""
    key = set(schema.key_of(type_name))
    columns = []
    for attr, column_name in attr_map:
        attribute = schema.attribute_of(type_name, attr)
        columns.append(
            Column(
                column_name,
                attribute.domain,
                nullable=attribute.nullable and attr not in key,
            )
        )
    primary_key = tuple(
        attr_to_column(attr_map, k, context) for k in schema.key_of(type_name)
    )
    return Table(table_name, tuple(columns), primary_key, tuple(foreign_keys))


def build_join_table(
    schema,
    table_name: str,
    end1_type: str,
    end2_type: str,
    key1: Sequence[str],
    key2: Sequence[str],
    attr_map: Sequence[Tuple[str, str]],
    foreign_keys: Sequence[ForeignKey] = (),
    context: str = "",
) -> Table:
    """A fresh join table over ``f(PK1 ∪ PK2)``, keyed by the full set."""
    columns = []
    for attr, column_name in attr_map:
        plain = attr.split(".", 1)[1]
        owner = end1_type if attr in tuple(key1) else end2_type
        attribute = schema.attribute_of(owner, plain)
        columns.append(Column(column_name, attribute.domain, nullable=False))
    primary_key = tuple(
        attr_to_column(attr_map, a, context) for a in tuple(key1) + tuple(key2)
    )
    return Table(table_name, tuple(columns), primary_key, tuple(foreign_keys))
