"""The compiled model an incremental compilation evolves.

Figure 7: the incremental compiler's input is the pre-evolved model
(client schema, store schema, mapping fragments) *plus* the query and
update views previously compiled for it.  :class:`CompiledModel` bundles
the two; SMOs evolve a clone and the original is never mutated, which
gives the abort-and-undo behaviour of Section 4.1 for free.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.edm.schema import ClientSchema
from repro.mapping.fragments import Mapping
from repro.mapping.views import CompiledViews
from repro.relational.schema import StoreSchema


@dataclass
class CompiledModel:
    """A mapping together with its compiled query and update views."""

    mapping: Mapping
    views: CompiledViews

    @property
    def client_schema(self) -> ClientSchema:
        return self.mapping.client_schema

    @property
    def store_schema(self) -> StoreSchema:
        return self.mapping.store_schema

    def clone(self) -> "CompiledModel":
        return CompiledModel(self.mapping.clone(), self.views.clone())

    def __str__(self) -> str:
        return (
            f"CompiledModel({len(self.mapping.fragments)} fragments, "
            f"{len(self.views.query_views)} query views, "
            f"{len(self.views.update_views)} update views)"
        )
