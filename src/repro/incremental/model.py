"""The compiled model an incremental compilation evolves.

Figure 7: the incremental compiler's input is the pre-evolved model
(client schema, store schema, mapping fragments) *plus* the query and
update views previously compiled for it.  :class:`CompiledModel` bundles
the two; SMOs evolve a clone and the original is never mutated, which
gives the abort-and-undo behaviour of Section 4.1 for free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.edm.schema import ClientSchema
from repro.mapping.fragments import Mapping
from repro.mapping.views import CompiledViews
from repro.relational.schema import StoreSchema

if TYPE_CHECKING:  # pragma: no cover
    from repro.incremental.delta import MappingDelta


@dataclass
class CompiledModel:
    """A mapping together with its compiled query and update views."""

    mapping: Mapping
    views: CompiledViews

    @property
    def client_schema(self) -> ClientSchema:
        return self.mapping.client_schema

    @property
    def store_schema(self) -> StoreSchema:
        return self.mapping.store_schema

    def clone(self) -> "CompiledModel":
        return CompiledModel(self.mapping.clone(), self.views.clone())

    def apply(self, delta: "MappingDelta") -> "CompiledModel":
        """Replay a delta on a copy-on-write clone — the single mutation point.

        The clone shares every immutable leaf (types, tables, fragments,
        views) with ``self``; only the containers the ops touch diverge.
        ``self`` is never mutated, so a failing op leaves it intact.
        """
        evolved = self.clone()
        for op in delta.ops:
            op.apply(evolved)
        return evolved

    def fingerprint(self) -> str:
        """Canonical structural hash (order-insensitive where order is noise).

        Used by the session journal and ``plan()`` to prove non-mutation,
        and by tests to assert inverse-delta roundtrips.
        """
        from repro.containment.cache import fingerprint as _fingerprint

        schema = self.client_schema
        store = self.store_schema
        return _fingerprint(
            tuple(sorted(schema.entity_types, key=lambda t: t.name)),
            tuple(sorted(schema.entity_sets, key=lambda s: s.name)),
            tuple(sorted(schema.associations, key=lambda a: a.name)),
            tuple(sorted(store.tables, key=lambda t: t.name)),
            tuple(self.mapping.fragments),
            tuple(sorted(self.views.query_views.items())),
            tuple(sorted(self.views.association_views.items())),
            tuple(sorted(self.views.update_views.items())),
        )

    def __str__(self) -> str:
        return (
            f"CompiledModel({len(self.mapping.fragments)} fragments, "
            f"{len(self.views.query_views)} query views, "
            f"{len(self.views.update_views)} update views)"
        )
