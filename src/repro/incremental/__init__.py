"""The incremental mapping compiler: SMO framework and SMOs (Section 3)."""

from repro.incremental.add_association import AddAssociationFK, AddAssociationJT
from repro.incremental.add_entity import AddEntity
from repro.incremental.add_entity_part import AddEntityPart, Partition
from repro.incremental.add_entity_tph import AddEntityTPH
from repro.incremental.add_property import AddProperty
from repro.incremental.drop_association import DropAssociation
from repro.incremental.drop_entity import DropEntity
from repro.incremental.model import CompiledModel
from repro.incremental.refactor import RefactorAssociationToInheritance
from repro.incremental.smo import IncrementalCompiler, IncrementalResult, Smo

__all__ = [
    "AddAssociationFK",
    "AddAssociationJT",
    "AddEntity",
    "AddEntityPart",
    "AddEntityTPH",
    "AddProperty",
    "CompiledModel",
    "DropAssociation",
    "DropEntity",
    "IncrementalCompiler",
    "IncrementalResult",
    "Partition",
    "RefactorAssociationToInheritance",
    "Smo",
]
