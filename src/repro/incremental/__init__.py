"""The incremental mapping compiler: SMO framework and SMOs (Section 3)."""

from repro.incremental.add_association import AddAssociationFK, AddAssociationJT
from repro.incremental.add_entity import AddEntity
from repro.incremental.add_entity_part import AddEntityPart, Partition
from repro.incremental.add_entity_tph import AddEntityTPH
from repro.incremental.add_property import AddProperty
from repro.incremental.delta import (
    DeltaRecorder,
    MappingDelta,
    Neighborhood,
    Touched,
)
from repro.incremental.drop_association import DropAssociation
from repro.incremental.drop_entity import DropEntity
from repro.incremental.model import CompiledModel
from repro.incremental.naming import (
    attr_to_column,
    entity_flag,
    partition_flag,
    qualify,
    resolve_attr_map,
)
from repro.incremental.refactor import RefactorAssociationToInheritance
from repro.incremental.smo import (
    BatchResult,
    EvolutionPlan,
    IncrementalCompiler,
    IncrementalResult,
    Smo,
)

__all__ = [
    "AddAssociationFK",
    "AddAssociationJT",
    "AddEntity",
    "AddEntityPart",
    "AddEntityTPH",
    "AddProperty",
    "BatchResult",
    "CompiledModel",
    "DeltaRecorder",
    "DropAssociation",
    "DropEntity",
    "EvolutionPlan",
    "IncrementalCompiler",
    "IncrementalResult",
    "MappingDelta",
    "Neighborhood",
    "Partition",
    "RefactorAssociationToInheritance",
    "Smo",
    "Touched",
    "attr_to_column",
    "entity_flag",
    "partition_flag",
    "qualify",
    "resolve_attr_map",
]
