"""``AddEntityTPH`` — add an entity type to a table-per-hierarchy mapping
(Section 3.4).

All entities of the hierarchy live in one table T; a discriminator column
identifies each row's type.  Adding E:

* fragment: ``π_{att(E)}(σ_{IS OF E}(𝔼)) = π_{f(att(E))}(σ_{disc = c_E}(T))``;
* query views: Q_E selects the ``disc = c_E`` rows; each proper ancestor's
  view is unioned with a flagged copy of Q_E; others unchanged;
* update view of T: rewrite ``IS OF E'`` to ``IS OF (ONLY E')`` (E' is the
  parent — its rows must no longer swallow the new type's entities), then
  union with a select-project over the new type that pins the
  discriminator constant;
* validation: the discriminator value must be fresh (a containment-style
  satisfiability test against every existing store condition on T), plus
  foreign-key checks for newly mapped columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.algebra.conditions import (
    Comparison,
    Condition,
    IsNotNull,
    IsNull,
    IsOf,
    IsOfOnly,
    and_,
)
from repro.algebra.constructors import EntityCtor, IfCtor, RowCtor
from repro.algebra.queries import (
    Col,
    Const,
    ProjItem,
    Project,
    Query,
    Select,
    SetScan,
    TableScan,
    UnionAll,
    scanned_names,
)
from repro.algebra.rewrite import narrow_table_scans, rewrite_query
from repro.budget import WorkBudget
from repro.containment.cache import ValidationCache
from repro.containment.checker import check_containment
from repro.containment.spaces import StoreConditionSpace
from repro.edm.entity import EntityType
from repro.edm.types import Attribute, INT, STRING
from repro.errors import SmoError, ValidationError
from repro.incremental.model import CompiledModel
from repro.incremental.naming import attr_to_column, entity_flag
from repro.incremental.smo import Smo
from repro.mapping.fragments import MappingFragment
from repro.mapping.views import QueryView, UpdateView
from repro.relational.schema import Column, Table


def narrow_parent_condition(parent: str):
    """Node transformer: ``IS OF parent`` → ``IS OF (ONLY parent)``.

    The paper's TPH adaptation: the parent's fragment/update-view branch
    must stop covering entities of the (new) derived type, whose rows get
    their own discriminator value.
    """

    def transformer(node: Condition) -> Condition:
        if isinstance(node, IsOf) and node.type_name == parent:
            return IsOfOnly(parent)
        return node

    return transformer


@dataclass
class AddEntityTPH(Smo):
    """Add entity type E to the hierarchy's single TPH table."""

    name: str
    parent: str
    new_attributes: Tuple[Attribute, ...]
    table: str
    discriminator_column: str
    discriminator_value: object
    #: f over att(E); new attributes may map to new (created) columns
    attr_map: Tuple[Tuple[str, str], ...]
    kind: str = "AE-TPH"
    validation_checks: int = field(default=0, compare=False)

    @staticmethod
    def create(
        model: CompiledModel,
        name: str,
        parent: str,
        new_attributes: Sequence[Attribute],
        table: str,
        discriminator_column: str,
        discriminator_value: object,
        attr_map: Optional[Dict[str, str]] = None,
    ) -> "AddEntityTPH":
        schema = model.client_schema
        full = tuple(schema.attribute_names_of(parent)) + tuple(
            a.name for a in new_attributes
        )
        if attr_map is None:
            attr_map = {a: a for a in full}
        missing = [a for a in full if a not in attr_map]
        if missing:
            raise SmoError(f"attr_map does not cover attributes {missing}")
        return AddEntityTPH(
            name=name,
            parent=parent,
            new_attributes=tuple(new_attributes),
            table=table,
            discriminator_column=discriminator_column,
            discriminator_value=discriminator_value,
            attr_map=tuple((a, attr_map[a]) for a in full),
        )

    def describe(self) -> str:
        return (
            f"{self.kind}({self.name} under {self.parent} -> {self.table}"
            f"[{self.discriminator_column}={self.discriminator_value!r}])"
        )

    # ------------------------------------------------------------------
    def _entity_set(self, model: CompiledModel) -> str:
        return model.client_schema.set_of_type(self.parent).name

    def _f(self, attr: str) -> str:
        return attr_to_column(self.attr_map, attr, self.describe())

    def _disc_condition(self) -> Condition:
        return Comparison(self.discriminator_column, "=", self.discriminator_value)

    # ------------------------------------------------------------------
    def check_preconditions(self, model: CompiledModel) -> None:
        schema = model.client_schema
        if schema.has_entity_type(self.name):
            raise SmoError(f"entity type {self.name!r} already exists")
        if not schema.has_entity_type(self.parent):
            raise SmoError(f"parent {self.parent!r} does not exist")
        schema.set_of_type(self.parent)

        if not model.mapping.table_is_mapped(self.table):
            raise SmoError(
                f"AddEntityTPH requires {self.table!r} to be the hierarchy's "
                "existing TPH table"
            )
        parent_fragments = [
            f
            for f in model.mapping.fragments_for_set(self._entity_set(model))
            if f.store_table == self.table
        ]
        if not parent_fragments:
            raise SmoError(
                f"table {self.table!r} stores no fragment of this hierarchy"
            )
        table = model.store_schema.table(self.table)
        if table.has_column(self.discriminator_column):
            disc_domain = table.column(self.discriminator_column).domain
            if not disc_domain.contains(self.discriminator_value):
                raise SmoError(
                    f"discriminator value {self.discriminator_value!r} outside the "
                    f"domain of {self.table}.{self.discriminator_column}"
                )
        # a missing discriminator column is created by evolve_schemas: the
        # table is converted to TPH, existing rows keeping disc = NULL
        # inherited attributes must map to the same columns the parent uses
        for attr in model.client_schema.attribute_names_of(self.parent):
            column = self._f(attr)
            inherited_column = None
            for fragment in parent_fragments:
                inherited_column = fragment.maps_attr(attr)
                if inherited_column is not None:
                    break
            if inherited_column is not None and inherited_column != column:
                raise SmoError(
                    f"attribute {attr!r} must map to column {inherited_column!r} "
                    f"as in the parent's fragment, not {column!r}"
                )

    # ------------------------------------------------------------------
    def evolve_schemas(self, model: CompiledModel) -> None:
        model.client_schema.add_entity_type(
            EntityType(
                name=self.name,
                parent=self.parent,
                attributes=tuple(self.new_attributes),
            )
        )
        # create columns for new attributes when missing (nullable: other
        # types' rows do not carry them)
        table = model.store_schema.table(self.table)
        new_columns: List[Column] = []
        self._initialized_disc = not table.has_column(self.discriminator_column)
        if self._initialized_disc:
            disc_domain = (
                INT if isinstance(self.discriminator_value, int) else STRING
            )
            new_columns.append(
                Column(self.discriminator_column, disc_domain, nullable=True)
            )
        domains = {a.name: a.domain for a in self.new_attributes}
        for attribute in self.new_attributes:
            column_name = self._f(attribute.name)
            if not table.has_column(column_name):
                new_columns.append(Column(column_name, domains[attribute.name], True))
        if new_columns:
            model.store_schema.replace_table(
                Table(
                    table.name,
                    table.columns + tuple(new_columns),
                    table.primary_key,
                    table.foreign_keys,
                )
            )

    # ------------------------------------------------------------------
    def adapt_fragments(self, model: CompiledModel) -> None:
        from dataclasses import replace as dc_replace

        set_name = self._entity_set(model)
        transformer = narrow_parent_condition(self.parent)
        adapted: List[MappingFragment] = []
        for fragment in model.mapping.fragments:
            if not fragment.is_association and fragment.client_source == set_name:
                revised = fragment.with_client_condition(
                    fragment.client_condition.transform(transformer)
                )
                if self._initialized_disc and fragment.store_table == self.table:
                    # pre-existing rows keep disc = NULL
                    revised = dc_replace(
                        revised,
                        store_condition=and_(
                            revised.store_condition,
                            IsNull(self.discriminator_column),
                        ),
                    )
                adapted.append(revised)
            else:
                adapted.append(fragment)
        adapted.append(
            MappingFragment(
                client_source=set_name,
                is_association=False,
                client_condition=IsOf(self.name),
                store_table=self.table,
                store_condition=self._disc_condition(),
                attribute_map=tuple(self.attr_map),
            )
        )
        model.mapping.replace_fragments(adapted)

    # ------------------------------------------------------------------
    def adapt_update_views(self, model: CompiledModel) -> None:
        set_name = self._entity_set(model)
        table = model.store_schema.table(self.table)
        transformer = narrow_parent_condition(self.parent)

        # New branch: select E entities, pin the discriminator constant.
        items: List[ProjItem] = [
            ProjItem(column, Col(attr)) for attr, column in self.attr_map
        ]
        items.append(ProjItem(self.discriminator_column, Const(self.discriminator_value)))
        branch: Query = Project(
            Select(SetScan(set_name), IsOf(self.name)), tuple(items)
        )

        old = model.views.update_view(self.table)
        rewritten = rewrite_query(old.query, transformer)
        query: Query = UnionAll((rewritten, branch))

        produced = set(item.output for item in items)
        old_assignments = dict(old.constructor.assignments)
        assignments = []
        for column in table.column_names:
            if column in old_assignments and not (
                old_assignments[column] == Const(None) and column in produced
            ):
                assignments.append((column, old_assignments[column]))
            elif column in produced:
                assignments.append((column, Col(column)))
            else:
                assignments.append((column, Const(None)))
        model.views.set_update_view(
            UpdateView(self.table, query, RowCtor(self.table, tuple(assignments)))
        )

        # Other update views over this set: the IS OF E' narrowing applies
        # everywhere the parent's extent is read.
        for table_name, view in list(model.views.update_views.items()):
            if table_name == self.table:
                continue
            if set_name not in scanned_names(view.query):
                continue
            rewritten = rewrite_query(view.query, transformer)
            if rewritten is not view.query:
                model.views.set_update_view(
                    UpdateView(table_name, rewritten, view.constructor)
                )

    # ------------------------------------------------------------------
    def validate(
        self,
        model: CompiledModel,
        budget: Optional[WorkBudget],
        cache: Optional[ValidationCache] = None,
    ) -> None:
        self.validation_checks = 0
        mapping = model.mapping

        # Discriminator freshness: no existing entity fragment on T may be
        # satisfiable together with disc = c_E.
        disc = self._disc_condition()
        others = [
            f
            for f in mapping.fragments_for_table(self.table)
            if not f.is_association
            and not (
                f.client_source == self._entity_set(model)
                and f.client_condition == IsOf(self.name)
            )
        ]
        conditions = [f.store_condition for f in others] + [disc]
        space = StoreConditionSpace(model.store_schema, self.table, conditions)
        for fragment in others:
            self.validation_checks += 1
            if space.satisfiable(and_(fragment.store_condition, disc), budget):
                raise ValidationError(
                    f"discriminator value {self.discriminator_value!r} is not "
                    f"fresh: rows of fragment {fragment} would be misread as "
                    f"{self.name!r} entities",
                    check="discriminator",
                )

        # Foreign keys of T touching newly mapped columns.
        new_columns = {
            self._f(a.name) for a in self.new_attributes
        } | {self.discriminator_column}
        table = model.store_schema.table(self.table)
        for foreign_key in table.foreign_keys:
            if not set(foreign_key.columns) & new_columns:
                continue
            self._check_foreign_key(model, foreign_key, budget, cache)

    def _check_foreign_key(self, model, foreign_key, budget, cache=None) -> None:
        if not model.mapping.table_is_mapped(foreign_key.ref_table):
            raise ValidationError(
                f"foreign key {foreign_key} references unmapped table "
                f"{foreign_key.ref_table!r}",
                check="fk-preservation",
            )
        update_view = model.views.update_view(self.table)
        target_view = model.views.update_view(foreign_key.ref_table)
        not_null = and_(*[IsNotNull(c) for c in foreign_key.columns])
        lhs = Project(
            Select(update_view.query, not_null),
            tuple(
                ProjItem(gamma, Col(beta))
                for beta, gamma in zip(foreign_key.columns, foreign_key.ref_columns)
            ),
        )
        rhs = Project(
            target_view.query,
            tuple(ProjItem(g, Col(g)) for g in foreign_key.ref_columns),
        )
        self.validation_checks += 1
        result = check_containment(lhs, rhs, model.client_schema, budget, cache)
        if not result.holds:
            raise ValidationError(
                f"adding {self.name!r} violates {foreign_key} of {self.table!r}\n"
                f"{result.explain()}",
                check="fk-preservation",
            )

    # ------------------------------------------------------------------
    def adapt_query_views(self, model: CompiledModel) -> None:
        schema = model.client_schema
        flag = entity_flag(self.name)
        full_attrs = schema.attribute_names_of(self.name)

        plain_items = tuple(ProjItem(a, Col(self._f(a))) for a in full_attrs)
        new_e_query: Query = Project(
            Select(TableScan(self.table), self._disc_condition()), plain_items
        )
        flagged: Query = Project(
            Select(TableScan(self.table), self._disc_condition()),
            plain_items + (ProjItem(flag, Const(True)),),
        )
        tau_e = EntityCtor.identity(self.name, full_attrs)
        model.views.set_query_view(QueryView(self.name, new_e_query, tau_e))

        flag_test = Comparison(flag, "=", True)
        old_views = dict(model.views.query_views)
        if self._initialized_disc:
            narrowed = {}
            hierarchy = set(schema.descendants_or_self(schema.root_of(self.name)))
            for type_name, view in old_views.items():
                if type_name not in hierarchy:
                    continue
                narrowed_query = narrow_table_scans(
                    view.query, self.table, IsNull(self.discriminator_column)
                )
                if narrowed_query is not view.query:
                    narrowed[type_name] = QueryView(
                        type_name, narrowed_query, view.constructor
                    )
            for type_name, view in narrowed.items():
                model.views.set_query_view(view)
                old_views[type_name] = view
        for ancestor in schema.ancestors(self.name):
            old = old_views.get(ancestor)
            if old is None:
                continue
            query = UnionAll((old.query, flagged))
            constructor = IfCtor(flag_test, tau_e, old.constructor)
            model.views.set_query_view(QueryView(ancestor, query, constructor))
