"""``AddEntityPart(E, E', P, Γ)`` — partitioned entity addition
(Section 3.3).

Γ is a set of tuples (α_i, ψ_i, T_i, f_i): entities of the new type E are
horizontally partitioned by the client-side conditions ψ_i, each partition
vertically mapped through f_i into its own table T_i.  The Adult/Young and
Men/Women/Name examples of Section 3.3 are instances.  ``AddEntity`` is
the special case Γ = {(α, TRUE, T, f)}.

Key differences from AddEntity:

* coverage is checked by the *tautology test*: for every attribute A of E
  not covered through the anchor P, the disjunction of the ψ_i that map A
  (either A ∈ α_i or ψ_i pins A = c) must be a tautology over att(E) — an
  NP-hard test decided by the condition-space machinery, e.g.
  ``age ≥ 18 ∨ age < 18`` and ``gender = M ∨ gender = F``;
* the query view for E is the natural *full outer join* of all the T_i
  contributions (joined with Q_P⁻ when P ≠ NIL), with one constructor
  branch per satisfiable partition cell, pinned attributes materialised
  as constants;
* validation runs one foreign-key check per new table — the source of the
  2ⁿ growth of AEP-np-TPT in Section 4.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.algebra.conditions import (
    Comparison,
    Condition,
    IsOf,
    Not,
    TRUE,
    and_,
    or_,
)
from repro.algebra.constructors import Constructor, EntityCtor, IfCtor, RowCtor
from repro.algebra.queries import (
    Col,
    Const,
    FullOuterJoin,
    Join,
    LeftOuterJoin,
    ProjItem,
    Project,
    Query,
    Select,
    SetScan,
    TableScan,
    UnionAll,
    scanned_names,
)
from repro.algebra.rewrite import (
    exclude_new_entity_condition,
    rewrite_query,
    widen_only_condition,
)
from repro.budget import WorkBudget
from repro.containment.cache import ValidationCache
from repro.containment.spaces import ClientConditionSpace
from repro.edm.entity import EntityType
from repro.edm.types import Attribute
from repro.errors import SmoError, ValidationError
from repro.incremental.checks import (
    check_association_endpoint_storable,
    check_fk_preserved,
)
from repro.incremental.model import CompiledModel
from repro.incremental.naming import (
    attr_to_column,
    build_entity_table,
    partition_flag,
)
from repro.incremental.smo import Smo
from repro.mapping.fragments import MappingFragment
from repro.mapping.views import QueryView, UpdateView
from repro.relational.schema import ForeignKey


@dataclass(frozen=True)
class Partition:
    """One (α_i, ψ_i, T_i, f_i) tuple of Γ."""

    alpha: Tuple[str, ...]
    condition: Condition
    table: str
    attr_map: Tuple[Tuple[str, str], ...]
    table_foreign_keys: Tuple[ForeignKey, ...] = ()

    def f(self, attr: str) -> str:
        return attr_to_column(
            self.attr_map, attr, f"partition on {self.table!r}"
        )

    @staticmethod
    def of(
        alpha: Sequence[str],
        condition: Condition,
        table: str,
        attr_map: Optional[Dict[str, str]] = None,
        table_foreign_keys: Sequence[ForeignKey] = (),
    ) -> "Partition":
        if attr_map is None:
            attr_map = {a: a for a in alpha}
        missing = [a for a in alpha if a not in attr_map]
        if missing:
            raise SmoError(f"attr_map does not cover {missing}")
        return Partition(
            tuple(alpha),
            condition,
            table,
            tuple((a, attr_map[a]) for a in alpha),
            tuple(table_foreign_keys),
        )


@dataclass
class AddEntityPart(Smo):
    """The partitioned AddEntity SMO of Section 3.3."""

    name: str
    parent: str
    new_attributes: Tuple[Attribute, ...]
    anchor: Optional[str]
    partitions: Tuple[Partition, ...]
    kind: str = "AEP"
    validation_checks: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        self.kind = f"AEP-{len(self.partitions)}p"

    def describe(self) -> str:
        tables = ", ".join(p.table for p in self.partitions)
        return f"{self.kind}({self.name} under {self.parent} -> [{tables}])"

    # ------------------------------------------------------------------
    def _entity_set(self, model: CompiledModel) -> str:
        return model.client_schema.set_of_type(self.parent).name

    def _between(self, model: CompiledModel) -> Tuple[str, ...]:
        return model.client_schema.types_strictly_between(self.name, self.anchor)

    # ------------------------------------------------------------------
    def check_preconditions(self, model: CompiledModel) -> None:
        schema = model.client_schema
        if schema.has_entity_type(self.name):
            raise SmoError(f"entity type {self.name!r} already exists")
        if not schema.has_entity_type(self.parent):
            raise SmoError(f"parent {self.parent!r} does not exist")
        schema.set_of_type(self.parent)
        if not self.partitions:
            raise SmoError("Γ must contain at least one partition")

        inherited = set(schema.attribute_names_of(self.parent))
        own = [a.name for a in self.new_attributes]
        clash = inherited & set(own)
        if clash:
            raise SmoError(f"new attributes {sorted(clash)} shadow inherited ones")
        full = inherited | set(own)
        key = set(schema.key_of(self.parent))

        if self.anchor is not None and self.anchor not in schema.ancestors_or_self(
            self.parent
        ):
            raise SmoError(f"P = {self.anchor!r} is not an ancestor of {self.name!r}")

        tables_seen: Set[str] = set()
        for partition in self.partitions:
            if not key <= set(partition.alpha):
                raise SmoError(
                    f"every α_i must contain the primary key {sorted(key)}"
                )
            if not set(partition.alpha) <= full:
                raise SmoError("α_i contains attributes outside att(E)")
            if partition.table in tables_seen:
                raise SmoError(f"table {partition.table!r} used by two partitions")
            tables_seen.add(partition.table)
            if model.mapping.table_is_mapped(partition.table):
                raise SmoError(
                    f"table {partition.table!r} is already mentioned in a fragment"
                )
            # ψ_i must be satisfiable (checked over att(E)'s value space);
            # because E does not exist yet we validate after evolution, in
            # validate(); here we only reject the syntactically absurd.
            columns = [c for _, c in partition.attr_map]
            if len(set(columns)) != len(columns):
                raise SmoError(f"f on {partition.table!r} is not 1-1")

    # ------------------------------------------------------------------
    def evolve_schemas(self, model: CompiledModel) -> None:
        schema = model.client_schema
        schema.add_entity_type(
            EntityType(
                name=self.name,
                parent=self.parent,
                attributes=tuple(self.new_attributes),
            )
        )
        for partition in self.partitions:
            if model.store_schema.has_table(partition.table):
                continue
            model.store_schema.add_table(
                build_entity_table(
                    schema,
                    self.name,
                    partition.table,
                    partition.attr_map,
                    partition.table_foreign_keys,
                    context=self.describe(),
                )
            )

    # ------------------------------------------------------------------
    def adapt_fragments(self, model: CompiledModel) -> None:
        schema = model.client_schema
        set_name = self._entity_set(model)
        between = self._between(model)
        transformers = []
        if self.anchor is not None:
            transformers.append(widen_only_condition(self.anchor, self.name))
        if between:
            transformers.append(
                exclude_new_entity_condition(schema, between, self.name)
            )
        adapted: List[MappingFragment] = []
        for fragment in model.mapping.fragments:
            if not fragment.is_association and fragment.client_source == set_name:
                condition = fragment.client_condition
                for transformer in transformers:
                    condition = condition.transform(transformer)
                adapted.append(fragment.with_client_condition(condition))
            else:
                adapted.append(fragment)
        for partition in self.partitions:
            adapted.append(
                MappingFragment(
                    client_source=set_name,
                    is_association=False,
                    client_condition=and_(IsOf(self.name), partition.condition),
                    store_table=partition.table,
                    store_condition=TRUE,
                    attribute_map=tuple(partition.attr_map),
                )
            )
        model.mapping.replace_fragments(adapted)

    # ------------------------------------------------------------------
    def adapt_update_views(self, model: CompiledModel) -> None:
        schema = model.client_schema
        set_name = self._entity_set(model)
        between = self._between(model)

        for partition in self.partitions:
            table = model.store_schema.table(partition.table)
            items: List[ProjItem] = [
                ProjItem(column, Col(attr)) for attr, column in partition.attr_map
            ]
            mapped = {c for _, c in partition.attr_map}
            for column in table.columns:
                if column.name not in mapped:
                    items.append(ProjItem(column.name, Const(None)))
            query: Query = Project(
                Select(SetScan(set_name), and_(IsOf(self.name), partition.condition)),
                tuple(items),
            )
            model.views.set_update_view(
                UpdateView(
                    partition.table,
                    query,
                    RowCtor.identity(partition.table, table.column_names),
                )
            )

        transformers = []
        if self.anchor is not None:
            transformers.append(widen_only_condition(self.anchor, self.name))
        if between:
            transformers.append(
                exclude_new_entity_condition(schema, between, self.name)
            )
        if not transformers:
            return
        new_tables = {p.table for p in self.partitions}
        for table_name, view in list(model.views.update_views.items()):
            if table_name in new_tables:
                continue
            if set_name not in scanned_names(view.query):
                continue
            rewritten = rewrite_query(view.query, *transformers)
            if rewritten is not view.query:
                model.views.set_update_view(
                    UpdateView(table_name, rewritten, view.constructor)
                )

    # ------------------------------------------------------------------
    def validate(
        self,
        model: CompiledModel,
        budget: Optional[WorkBudget],
        cache: Optional[ValidationCache] = None,
    ) -> None:
        self.validation_checks = 0
        schema = model.client_schema
        set_name = self._entity_set(model)

        # ψ_i satisfiability (promised by the SMO definition).
        conditions = [p.condition for p in self.partitions]
        space = ClientConditionSpace(
            schema, set_name, conditions + [IsOf(self.name)], types=(self.name,)
        )
        for partition in self.partitions:
            if not space.satisfiable(partition.condition, budget):
                raise ValidationError(
                    f"partition condition {partition.condition} is unsatisfiable",
                    check="partition-satisfiable",
                )

        # Coverage: Section 3.3's tautology test per attribute.
        anchored = (
            set(schema.attribute_names_of(self.anchor)) if self.anchor else set()
        )
        for attr in schema.attribute_names_of(self.name):
            if attr in anchored:
                continue
            selected: List[Condition] = []
            for partition in self.partitions:
                if attr in partition.alpha:
                    selected.append(partition.condition)
                elif self._pins(schema, set_name, partition.condition, attr, budget):
                    selected.append(partition.condition)
            if not selected:
                raise ValidationError(
                    f"attribute {attr!r} of {self.name!r} is mapped by no "
                    "partition and not covered through P",
                    check="coverage",
                )
            disjunction = or_(*selected)
            if not space.tautology_for_type(self.name, disjunction, budget):
                raise ValidationError(
                    f"partitions do not cover attribute {attr!r} of "
                    f"{self.name!r}: {disjunction} is not a tautology",
                    check="coverage",
                )

        # Association-endpoint checks for types strictly between E and P.
        between = set(self._between(model))
        for association in schema.associations:
            fragment = model.mapping.fragment_for_association(association.name)
            if fragment is None:
                continue
            for end in association.ends:
                if end.entity_type in between:
                    self.validation_checks += check_association_endpoint_storable(
                        model, association.name, fragment, end, budget, cache=cache
                    )

        # One foreign-key check per new table (the 2ⁿ cost of AEP-np-TPT).
        for partition in self.partitions:
            table = model.store_schema.table(partition.table)
            mapped = {c for _, c in partition.attr_map}
            for foreign_key in table.foreign_keys:
                if set(foreign_key.columns) & mapped:
                    self.validation_checks += check_fk_preserved(
                        model, partition.table, foreign_key, budget, cache=cache
                    )

    def _pins(self, schema, set_name, condition, attr, budget) -> bool:
        """Does ψ_i logically pin attr to a constant (A = c consequence)?"""
        attribute = schema.attribute_of(self.name, attr)
        candidates: List[object] = []
        for atom in condition.atoms():
            if isinstance(atom, Comparison) and atom.attr == attr and atom.op == "=":
                candidates.append(atom.const)
        if attribute.domain.values is not None:
            candidates.extend(sorted(attribute.domain.values, key=repr))
        space = ClientConditionSpace(
            schema, set_name, [condition], types=(self.name,)
        )
        for candidate in candidates:
            if space.implies(condition, Comparison(attr, "=", candidate), budget):
                return True
        return False

    # ------------------------------------------------------------------
    def adapt_query_views(self, model: CompiledModel) -> None:
        schema = model.client_schema
        set_name = self._entity_set(model)
        full_attrs = schema.attribute_names_of(self.name)

        # The FOJ block over all partition tables, each branch flagged.
        block: Optional[Query] = None
        for index, partition in enumerate(self.partitions):
            items = tuple(
                ProjItem(attr, Col(column)) for attr, column in partition.attr_map
            ) + (ProjItem(partition_flag(self.name, index), Const(True)),)
            branch: Query = Project(TableScan(partition.table), items)
            key = tuple(schema.key_of(self.name))
            block = branch if block is None else FullOuterJoin(block, branch, on=key)
        assert block is not None
        key = tuple(schema.key_of(self.name))

        old_views = dict(model.views.query_views)
        if self.anchor is None:
            e_query: Query = block
        else:
            anchor_view = old_views.get(self.anchor)
            if anchor_view is None:
                raise SmoError(f"no query view for anchor {self.anchor!r}")
            e_query = Join(anchor_view.query, block, on=key)

        # Constructor: one branch per satisfiable partition cell.
        cells = self._partition_cells(model)
        tau_e = self._cell_chain(model, cells, else_ctor=None)
        model.views.set_query_view(QueryView(self.name, e_query, tau_e))

        any_flag = or_(
            *[
                Comparison(partition_flag(self.name, i), "=", True)
                for i in range(len(self.partitions))
            ]
        )

        if self.anchor is not None:
            for ancestor in schema.ancestors_or_self(self.anchor):
                old = old_views.get(ancestor)
                if old is None:
                    continue
                query = LeftOuterJoin(old.query, block, on=key)
                constructor = self._cell_chain(model, cells, else_ctor=old.constructor)
                model.views.set_query_view(QueryView(ancestor, query, constructor))

        for middle in self._between(model):
            old = old_views.get(middle)
            if old is None:
                continue
            query = UnionAll((old.query, e_query))
            constructor = self._cell_chain(model, cells, else_ctor=old.constructor)
            model.views.set_query_view(QueryView(middle, query, constructor))

    def _partition_cells(self, model: CompiledModel):
        """Satisfiable truth vectors over the partition conditions."""
        schema = model.client_schema
        set_name = self._entity_set(model)
        conditions = [p.condition for p in self.partitions]
        space = ClientConditionSpace(schema, set_name, conditions, types=(self.name,))
        vectors = space.truth_vectors(conditions)
        return [
            vector
            for vector in sorted(vectors, reverse=True)
            if any(vector)
        ]

    def _cell_chain(
        self, model: CompiledModel, cells, else_ctor: Optional[Constructor]
    ) -> Constructor:
        """IfCtor chain: one branch per partition cell; `else_ctor` used as
        the final fallback (pre-existing constructor for ancestors)."""
        schema = model.client_schema
        set_name = self._entity_set(model)
        full_attrs = schema.attribute_names_of(self.name)
        anchored = (
            set(schema.attribute_names_of(self.anchor)) if self.anchor else set()
        )

        branches: List[Tuple[Condition, EntityCtor]] = []
        for vector in cells:
            flag_literals: List[Condition] = []
            for index in range(len(self.partitions)):
                test = Comparison(partition_flag(self.name, index), "=", True)
                flag_literals.append(test if vector[index] else Not(test))
            branch_condition = and_(*flag_literals)

            cell_condition = and_(
                *[
                    self.partitions[i].condition
                    for i in range(len(self.partitions))
                    if vector[i]
                ]
            )
            assignments: List[Tuple[str, object]] = []
            for attr in full_attrs:
                covered = any(
                    vector[i] and attr in self.partitions[i].alpha
                    for i in range(len(self.partitions))
                )
                if covered or attr in anchored:
                    assignments.append((attr, Col(attr)))
                else:
                    pinned = self._pinned_constant(
                        model, set_name, cell_condition, attr
                    )
                    assignments.append((attr, Const(pinned)))
            branches.append(
                (branch_condition, EntityCtor(self.name, tuple(assignments)))
            )

        if else_ctor is None:
            constructor: Constructor = branches[-1][1]
            remaining = branches[:-1]
        else:
            constructor = else_ctor
            remaining = branches
        for condition, ctor in reversed(remaining):
            constructor = IfCtor(condition, ctor, constructor)
        return constructor

    def _pinned_constant(self, model, set_name, cell_condition, attr) -> object:
        schema = model.client_schema
        attribute = schema.attribute_of(self.name, attr)
        candidates: List[object] = []
        for partition in self.partitions:
            for atom in partition.condition.atoms():
                if (
                    isinstance(atom, Comparison)
                    and atom.attr == attr
                    and atom.op == "="
                ):
                    candidates.append(atom.const)
        if attribute.domain.values is not None:
            candidates.extend(sorted(attribute.domain.values, key=repr))
        space = ClientConditionSpace(
            schema, set_name, [cell_condition], types=(self.name,)
        )
        for candidate in candidates:
            if space.implies(cell_condition, Comparison(attr, "=", candidate)):
                return candidate
        raise ValidationError(
            f"attribute {attr!r} of {self.name!r} is neither stored nor pinned "
            f"in cell {cell_condition}",
            check="coverage",
        )
