"""Adding associations: ``AddAssocFK`` (Section 3.2) and ``AddAssocJT``
(Section 3.4, join-table mapping).

``AddAssocFK(A, E1, E2, mult, T, f)`` maps a new association to a
key/foreign-key column pair of an *existing* table T (the paper's running
example maps ``Supports`` to the ``Eid`` column of ``Client``):

* fragment:  ``π_{PK1,PK2}(A) = π_{f(PK1),f(PK2)}(σ_{f(PK2) IS NOT NULL}(T))``
* query view: read the FK columns of T where non-null;
* update view: ``Q_T := π_{att(T)∖f(PK2)}(Q_T⁻) ⟕ π_{...}(A)``;
* validation: the three checks of Section 3.2.

``AddAssocJT`` maps the association to a *fresh* join table, covering m:n
associations; its update view is a plain projection of A and validation
checks the join table's foreign keys.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.algebra.conditions import IsNotNull, IsOf, TRUE, and_
from repro.algebra.constructors import AssociationCtor, RowCtor
from repro.algebra.queries import (
    AssociationScan,
    Col,
    Const,
    LeftOuterJoin,
    ProjItem,
    Project,
    Query,
    Select,
    SetScan,
    TableScan,
)
from repro.budget import WorkBudget
from repro.containment.cache import ValidationCache
from repro.containment.checker import check_containment
from repro.edm.association import AssociationEnd, AssociationSet, Multiplicity
from repro.errors import SmoError, ValidationError
from repro.incremental.model import CompiledModel
from repro.incremental.naming import (
    attr_to_column,
    build_join_table,
    qualified_keys,
    resolve_multiplicity,
    role_names,
)
from repro.incremental.smo import Smo
from repro.mapping.fragments import MappingFragment
from repro.mapping.views import AssociationView, UpdateView
from repro.relational.schema import Column, ForeignKey, Table


# Backwards-compatible alias; the shared helper lives in naming.py now.
_resolve_multiplicity = resolve_multiplicity


@dataclass
class AddAssociationFK(Smo):
    """``AddAssocFK(A, E1, E2, mult, T, f)`` of Section 3.2."""

    name: str
    end1_type: str
    end2_type: str
    mult1: Multiplicity
    mult2: Multiplicity
    table: str
    #: f over qualified key attributes, e.g. (("Customer.Id", "Cid"), ...)
    attr_map: Tuple[Tuple[str, str], ...]
    role1: Optional[str] = None
    role2: Optional[str] = None
    #: foreign keys attached to T when f(PK2) columns are newly created
    #: (store-side co-evolution, as MoDEF generates)
    new_foreign_keys: Tuple[ForeignKey, ...] = ()
    kind: str = "AA-FK"
    validation_checks: int = field(default=0, compare=False)

    @staticmethod
    def create(
        model: CompiledModel,
        name: str,
        end1_type: str,
        end2_type: str,
        table: str,
        attr_map: Dict[str, str],
        mult1="*",
        mult2="0..1",
        role1: Optional[str] = None,
        role2: Optional[str] = None,
        new_foreign_keys: Sequence[ForeignKey] = (),
    ) -> "AddAssociationFK":
        return AddAssociationFK(
            name=name,
            end1_type=end1_type,
            end2_type=end2_type,
            mult1=_resolve_multiplicity(mult1),
            mult2=_resolve_multiplicity(mult2),
            table=table,
            attr_map=tuple(attr_map.items()),
            role1=role1,
            role2=role2,
            new_foreign_keys=tuple(new_foreign_keys),
        )

    def describe(self) -> str:
        return f"{self.kind}({self.name}: {self.end1_type} -- {self.end2_type} -> {self.table})"

    # ------------------------------------------------------------------
    def _roles(self) -> Tuple[str, str]:
        return role_names(self.end1_type, self.end2_type, self.role1, self.role2)

    def _qualified_keys(self, model: CompiledModel) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
        return qualified_keys(
            model.client_schema,
            self.end1_type,
            self.end2_type,
            self.role1,
            self.role2,
        )

    def _f(self, attr: str) -> str:
        return attr_to_column(self.attr_map, attr, self.describe())

    # ------------------------------------------------------------------
    def check_preconditions(self, model: CompiledModel) -> None:
        schema = model.client_schema
        if schema.has_association(self.name):
            raise SmoError(f"association {self.name!r} already exists")
        for type_name in (self.end1_type, self.end2_type):
            if not schema.has_entity_type(type_name):
                raise SmoError(f"endpoint type {type_name!r} does not exist")
            schema.set_of_type(type_name)
        if self.mult2 is Multiplicity.MANY:
            raise SmoError(
                "AddAssocFK requires the E2 endpoint to have multiplicity 1 or "
                "0..1; use AddAssociationJT for many-to-many associations"
            )
        if not model.mapping.table_is_mapped(self.table):
            raise SmoError(
                f"AddAssocFK requires table {self.table!r} to be previously "
                "mentioned in mapping fragments"
            )
        table = model.store_schema.table(self.table)
        key1, key2 = self._qualified_keys(model)
        mapped = [a for a, _ in self.attr_map]
        if sorted(mapped) != sorted(key1 + key2):
            raise SmoError(
                f"f must cover exactly PK1 ∪ PK2 = {sorted(key1 + key2)}"
            )
        columns = [c for _, c in self.attr_map]
        if len(set(columns)) != len(columns):
            raise SmoError("f must be 1-1")
        f_key1 = tuple(self._f(a) for a in key1)
        for column in f_key1:
            if not table.has_column(column):
                raise SmoError(f"table {self.table!r} has no column {column!r}")
        if tuple(sorted(f_key1)) != tuple(sorted(table.primary_key)):
            raise SmoError(
                f"f(PK1) must be the primary key of {self.table!r} "
                f"({table.primary_key}); got {f_key1}"
            )
        for attr in key2:
            column_name = self._f(attr)
            if table.has_column(column_name):
                if not table.column(column_name).nullable:
                    raise SmoError(
                        f"f(PK2) column {column_name!r} must be nullable (absent "
                        "associations are encoded as NULL)"
                    )
            # missing columns are created by evolve_schemas (MoDEF-style
            # store co-evolution)

    # ------------------------------------------------------------------
    def evolve_schemas(self, model: CompiledModel) -> None:
        schema = model.client_schema
        schema.add_association(
            AssociationSet(
                name=self.name,
                end1=AssociationEnd(self.end1_type, self.mult1, self.role1),
                end2=AssociationEnd(self.end2_type, self.mult2, self.role2),
                entity_set1=schema.set_of_type(self.end1_type).name,
                entity_set2=schema.set_of_type(self.end2_type).name,
            )
        )
        self._add_missing_columns(model)

    def _add_missing_columns(self, model: CompiledModel) -> None:
        """Add f(PK2) columns (and any new foreign keys) to T if absent."""
        schema = model.client_schema
        table = model.store_schema.table(self.table)
        key2_plain = schema.key_of(self.end2_type)
        _, key2 = self._qualified_keys(model)
        new_columns = []
        for attr, plain in zip(key2, key2_plain):
            column_name = self._f(attr)
            if not table.has_column(column_name):
                attribute = schema.attribute_of(self.end2_type, plain)
                new_columns.append(Column(column_name, attribute.domain, nullable=True))
        if not new_columns and not self.new_foreign_keys:
            return
        existing_fk_cols = {fk.columns for fk in table.foreign_keys}
        added_fks = tuple(
            fk for fk in self.new_foreign_keys if fk.columns not in existing_fk_cols
        )
        model.store_schema.replace_table(
            Table(
                table.name,
                table.columns + tuple(new_columns),
                table.primary_key,
                table.foreign_keys + added_fks,
            )
        )

    # ------------------------------------------------------------------
    def adapt_fragments(self, model: CompiledModel) -> None:
        """Σ := Σ⁻ ∪ {ϕ_A} — adaptation is just the new fragment."""
        key1, key2 = self._qualified_keys(model)
        not_null = and_(*[IsNotNull(self._f(a)) for a in key2])
        model.mapping.add_fragment(
            MappingFragment(
                client_source=self.name,
                is_association=True,
                client_condition=TRUE,
                store_table=self.table,
                store_condition=not_null,
                attribute_map=tuple(self.attr_map),
            )
        )

    # ------------------------------------------------------------------
    def adapt_update_views(self, model: CompiledModel) -> None:
        """``Q_T := π_{att(T)∖f(PK2)}(Q_T⁻) ⟕ π_{PK AS f(PK)}(A)``."""
        key1, key2 = self._qualified_keys(model)
        f_key2 = {self._f(a) for a in key2}
        old = model.views.update_view(self.table)

        assoc_items = tuple(
            ProjItem(self._f(attr), Col(attr)) for attr in key1 + key2
        )
        assoc_part: Query = Project(AssociationScan(self.name), assoc_items)
        f_key1 = tuple(self._f(a) for a in key1)
        query: Query = LeftOuterJoin(old.query, assoc_part, on=f_key1)

        table = model.store_schema.table(self.table)
        old_assignments = dict(old.constructor.assignments)
        assignments = []
        for column in table.column_names:
            if column in f_key2:
                assignments.append((column, Col(column)))
            elif column in old_assignments:
                assignments.append((column, old_assignments[column]))
            else:
                assignments.append((column, Const(None)))
        model.views.set_update_view(
            UpdateView(self.table, query, RowCtor(self.table, tuple(assignments)))
        )

    # ------------------------------------------------------------------
    def validate(
        self,
        model: CompiledModel,
        budget: Optional[WorkBudget],
        cache: Optional[ValidationCache] = None,
    ) -> None:
        self.validation_checks = 0
        schema = model.client_schema
        mapping = model.mapping
        key1, key2 = self._qualified_keys(model)

        # Check 1: f(PK2) columns not previously used — inspect fragments.
        for attr in key2:
            column = self._f(attr)
            for fragment in mapping.fragments_for_table(self.table):
                if fragment.is_association and fragment.client_source == self.name:
                    continue
                if fragment.maps_column(column) is not None:
                    raise ValidationError(
                        f"column {self.table}.{column} already maps client data; "
                        "it cannot also encode the new association",
                        check="assoc-column-fresh",
                    )

        # Check 2: the E1 endpoint's keys fit the primary key of T.
        # π_{PK1}(σ_{IS OF E1}(𝔼)) ⊆ π_{f(PK1) AS PK1}(Q_T⁻)
        set1 = schema.set_of_type(self.end1_type).name
        plain_key1 = schema.key_of(self.end1_type)
        lhs = Project(
            Select(SetScan(set1), IsOf(self.end1_type)),
            tuple(ProjItem(q, Col(k)) for q, k in zip(key1, plain_key1)),
        )
        # Q_T⁻: the update view *before* this SMO adapted it — rebuild the
        # pre-LOJ body by peeling the outer join we just added.
        pre_query = self._pre_update_query(model)
        rhs = Project(
            pre_query,
            tuple(ProjItem(q, Col(self._f(q))) for q in key1),
        )
        self.validation_checks += 1
        result = check_containment(lhs, rhs, schema, budget, cache)
        if not result.holds:
            raise ValidationError(
                f"endpoint {self.end1_type!r} of {self.name!r} cannot be entirely "
                f"mapped to the key of {self.table!r}\n{result.explain()}",
                check="assoc-endpoint-key",
            )

        # Check 3: foreign keys from f(PK2) to another table.
        table = model.store_schema.table(self.table)
        f_key2 = tuple(self._f(a) for a in key2)
        set2 = schema.set_of_type(self.end2_type).name
        plain_key2 = schema.key_of(self.end2_type)
        for foreign_key in table.foreign_keys:
            if not set(foreign_key.columns) & set(f_key2):
                continue
            if not mapping.table_is_mapped(foreign_key.ref_table):
                raise ValidationError(
                    f"foreign key {foreign_key} references unmapped table "
                    f"{foreign_key.ref_table!r}",
                    check="fk-preservation",
                )
            target_view = model.views.update_view(foreign_key.ref_table)
            column_for = dict(zip(foreign_key.columns, foreign_key.ref_columns))
            projection = []
            for attr, f_column in zip(key2, f_key2):
                if f_column in column_for:
                    plain = plain_key2[key2.index(attr)]
                    projection.append((column_for[f_column], plain))
            lhs3 = Project(
                Select(SetScan(set2), IsOf(self.end2_type)),
                tuple(ProjItem(out, Col(attr)) for out, attr in projection),
            )
            rhs3 = Project(
                target_view.query,
                tuple(ProjItem(out, Col(out)) for out, _ in projection),
            )
            self.validation_checks += 1
            result = check_containment(lhs3, rhs3, schema, budget, cache)
            if not result.holds:
                raise ValidationError(
                    f"association {self.name!r} violates foreign key {foreign_key} "
                    f"of {self.table!r}\n{result.explain()}",
                    check="fk-preservation",
                )

    def _pre_update_query(self, model: CompiledModel) -> Query:
        """The update-view body of T before adapt_update_views ran.

        adapt_update_views wrapped the old body in ``old ⟕ π(A)``; peel it.
        """
        current = model.views.update_view(self.table).query
        if isinstance(current, LeftOuterJoin):
            return current.left
        return current

    # ------------------------------------------------------------------
    def adapt_query_views(self, model: CompiledModel) -> None:
        """Existing query views are unaltered; add ``(Q_A | τ_A)``."""
        key1, key2 = self._qualified_keys(model)
        not_null = and_(*[IsNotNull(self._f(a)) for a in key2])
        items = tuple(
            ProjItem(attr, Col(self._f(attr))) for attr in key1 + key2
        )
        query: Query = Project(Select(TableScan(self.table), not_null), items)
        model.views.set_association_view(
            AssociationView(
                self.name, query, AssociationCtor.identity(self.name, key1 + key2)
            )
        )


@dataclass
class AddAssociationJT(Smo):
    """Map a new association to a fresh join table (Section 3.4).

    Covers m:n associations.  The join table's columns are f(PK1) ∪ f(PK2);
    its primary key is the full column set (each pair stored once).
    Foreign keys passed in *table_foreign_keys* (typically f(PK1) → E1's key
    table and f(PK2) → E2's) are validated with containment checks.
    """

    name: str
    end1_type: str
    end2_type: str
    mult1: Multiplicity
    mult2: Multiplicity
    table: str
    attr_map: Tuple[Tuple[str, str], ...]
    table_foreign_keys: Tuple[ForeignKey, ...] = ()
    role1: Optional[str] = None
    role2: Optional[str] = None
    kind: str = "AA-JT"
    validation_checks: int = field(default=0, compare=False)

    @staticmethod
    def create(
        model: CompiledModel,
        name: str,
        end1_type: str,
        end2_type: str,
        table: str,
        attr_map: Dict[str, str],
        mult1="*",
        mult2="*",
        table_foreign_keys: Sequence[ForeignKey] = (),
        role1: Optional[str] = None,
        role2: Optional[str] = None,
    ) -> "AddAssociationJT":
        return AddAssociationJT(
            name=name,
            end1_type=end1_type,
            end2_type=end2_type,
            mult1=_resolve_multiplicity(mult1),
            mult2=_resolve_multiplicity(mult2),
            table=table,
            attr_map=tuple(attr_map.items()),
            table_foreign_keys=tuple(table_foreign_keys),
            role1=role1,
            role2=role2,
        )

    def describe(self) -> str:
        return f"{self.kind}({self.name}: {self.end1_type} -- {self.end2_type} -> {self.table})"

    def _roles(self) -> Tuple[str, str]:
        return role_names(self.end1_type, self.end2_type, self.role1, self.role2)

    def _qualified_keys(self, model: CompiledModel):
        return qualified_keys(
            model.client_schema,
            self.end1_type,
            self.end2_type,
            self.role1,
            self.role2,
        )

    def _f(self, attr: str) -> str:
        return attr_to_column(self.attr_map, attr, self.describe())

    # ------------------------------------------------------------------
    def check_preconditions(self, model: CompiledModel) -> None:
        schema = model.client_schema
        if schema.has_association(self.name):
            raise SmoError(f"association {self.name!r} already exists")
        for type_name in (self.end1_type, self.end2_type):
            if not schema.has_entity_type(type_name):
                raise SmoError(f"endpoint type {type_name!r} does not exist")
            schema.set_of_type(type_name)
        if model.mapping.table_is_mapped(self.table):
            raise SmoError(
                f"join table {self.table!r} is already mentioned in a fragment"
            )
        key1, key2 = self._qualified_keys(model)
        mapped = sorted(a for a, _ in self.attr_map)
        if mapped != sorted(key1 + key2):
            raise SmoError(f"f must cover exactly PK1 ∪ PK2 = {sorted(key1 + key2)}")

    # ------------------------------------------------------------------
    def evolve_schemas(self, model: CompiledModel) -> None:
        schema = model.client_schema
        schema.add_association(
            AssociationSet(
                name=self.name,
                end1=AssociationEnd(self.end1_type, self.mult1, self.role1),
                end2=AssociationEnd(self.end2_type, self.mult2, self.role2),
                entity_set1=schema.set_of_type(self.end1_type).name,
                entity_set2=schema.set_of_type(self.end2_type).name,
            )
        )
        if not model.store_schema.has_table(self.table):
            model.store_schema.add_table(self._build_table(model))

    def _build_table(self, model: CompiledModel) -> Table:
        key1, key2 = self._qualified_keys(model)
        return build_join_table(
            model.client_schema,
            self.table,
            self.end1_type,
            self.end2_type,
            key1,
            key2,
            self.attr_map,
            self.table_foreign_keys,
            context=self.describe(),
        )

    # ------------------------------------------------------------------
    def adapt_fragments(self, model: CompiledModel) -> None:
        model.mapping.add_fragment(
            MappingFragment(
                client_source=self.name,
                is_association=True,
                client_condition=TRUE,
                store_table=self.table,
                store_condition=TRUE,
                attribute_map=tuple(self.attr_map),
            )
        )

    # ------------------------------------------------------------------
    def adapt_update_views(self, model: CompiledModel) -> None:
        key1, key2 = self._qualified_keys(model)
        items = tuple(ProjItem(self._f(a), Col(a)) for a in key1 + key2)
        query: Query = Project(AssociationScan(self.name), items)
        table = model.store_schema.table(self.table)
        model.views.set_update_view(
            UpdateView(self.table, query, RowCtor.identity(self.table, table.column_names))
        )

    # ------------------------------------------------------------------
    def validate(
        self,
        model: CompiledModel,
        budget: Optional[WorkBudget],
        cache: Optional[ValidationCache] = None,
    ) -> None:
        self.validation_checks = 0
        schema = model.client_schema
        key1, key2 = self._qualified_keys(model)
        table = model.store_schema.table(self.table)
        for foreign_key in table.foreign_keys:
            if not model.mapping.table_is_mapped(foreign_key.ref_table):
                raise ValidationError(
                    f"foreign key {foreign_key} of join table {self.table!r} "
                    f"references unmapped table {foreign_key.ref_table!r}",
                    check="fk-preservation",
                )
            # π_{PK_i AS γ}(σ_{IS OF E_i}(𝔼_i)) ⊆ π_γ(Q_ref)
            for qualified_key, end_type in ((key1, self.end1_type), (key2, self.end2_type)):
                f_cols = tuple(self._f(a) for a in qualified_key)
                if set(f_cols) != set(foreign_key.columns):
                    continue
                column_for = dict(zip(foreign_key.columns, foreign_key.ref_columns))
                set_name = schema.set_of_type(end_type).name
                plain_keys = schema.key_of(end_type)
                lhs = Project(
                    Select(SetScan(set_name), IsOf(end_type)),
                    tuple(
                        ProjItem(column_for[f_col], Col(plain))
                        for f_col, plain in zip(f_cols, plain_keys)
                    ),
                )
                target_view = model.views.update_view(foreign_key.ref_table)
                rhs = Project(
                    target_view.query,
                    tuple(
                        ProjItem(gamma, Col(gamma))
                        for gamma in foreign_key.ref_columns
                    ),
                )
                self.validation_checks += 1
                result = check_containment(lhs, rhs, schema, budget, cache)
                if not result.holds:
                    raise ValidationError(
                        f"join table {self.table!r} violates {foreign_key}\n"
                        f"{result.explain()}",
                        check="fk-preservation",
                    )

    # ------------------------------------------------------------------
    def adapt_query_views(self, model: CompiledModel) -> None:
        key1, key2 = self._qualified_keys(model)
        items = tuple(ProjItem(a, Col(self._f(a))) for a in key1 + key2)
        query: Query = Project(TableScan(self.table), items)
        model.views.set_association_view(
            AssociationView(
                self.name, query, AssociationCtor.identity(self.name, key1 + key2)
            )
        )
