"""The SMO framework: schema modification operations and their compiler.

Section 1.2: "Our solution template for incremental compilation is
comprised of four new algorithms for each type of SMO": adapt/create query
views, adapt/create update views, adapt the mapping fragments, and
validate.  Every SMO subclass implements those four hooks plus schema
evolution and precondition checking; :class:`IncrementalCompiler` runs
them in the order of Figure 7 (change schemas & mappings → modify update
views → validate → modify query views) and aborts without side effects
when validation fails.

Since the delta refactor the hooks do not mutate a clone directly: they
run against a :class:`~repro.incremental.delta.DeltaRecorder`, so every
change is captured as a :class:`~repro.incremental.delta.MappingDelta`
op.  That makes the change set inspectable (``plan``), composable
(``compile_batch`` validates the *union* neighborhood of a whole batch
once) and invertible (the session journal's ``undo``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.budget import WorkBudget
from repro.containment.cache import ValidationCache
from repro.errors import ReproError
from repro.incremental.delta import DeltaRecorder, MappingDelta, Neighborhood
from repro.incremental.model import CompiledModel


class Smo:
    """Base class for schema modification operations."""

    #: Short mnemonic used in benchmark reports (e.g. ``"AE-TPT"``).
    kind: str = "SMO"

    # The four algorithms of Section 1.2 plus preconditions and schema
    # evolution.  The mutating hooks receive a DeltaRecorder (duck-typed
    # as a CompiledModel), so every mutation lands in the delta; the
    # read-only hooks (preconditions, validate) receive the real working
    # model.
    def check_preconditions(self, model: CompiledModel) -> None:
        raise NotImplementedError

    def evolve_schemas(self, model: CompiledModel) -> None:
        raise NotImplementedError

    def adapt_fragments(self, model: CompiledModel) -> None:
        raise NotImplementedError

    def adapt_update_views(self, model: CompiledModel) -> None:
        raise NotImplementedError

    def validate(
        self,
        model: CompiledModel,
        budget: Optional[WorkBudget],
        cache: Optional[ValidationCache] = None,
    ) -> None:
        raise NotImplementedError

    def adapt_query_views(self, model: CompiledModel) -> None:
        raise NotImplementedError

    def describe(self) -> str:
        return f"{self.kind}"


@dataclass
class IncrementalResult:
    """Outcome of one incremental compilation step."""

    model: CompiledModel
    smo: Smo
    elapsed: float
    containment_checks: int = 0
    #: the declarative change set this SMO emitted
    delta: MappingDelta = field(default_factory=MappingDelta)

    def __str__(self) -> str:
        return f"{self.smo.describe()}: {self.elapsed * 1000:.2f} ms"


@dataclass
class BatchResult:
    """Outcome of :meth:`IncrementalCompiler.compile_batch`."""

    model: CompiledModel
    smos: Tuple[Smo, ...]
    #: composition of the per-SMO deltas, in application order
    delta: MappingDelta
    results: List[IncrementalResult]
    #: neighborhood the composed delta touched (validated once)
    neighborhood: Neighborhood
    #: names of the scheduler checks run over the union neighborhood
    check_names: Tuple[str, ...]
    elapsed: float

    @property
    def scheduled_checks(self) -> int:
        return len(self.check_names)

    def __str__(self) -> str:
        return (
            f"batch of {len(self.smos)}: {len(self.delta)} delta ops, "
            f"{self.scheduled_checks} neighborhood checks, "
            f"{self.elapsed * 1000:.2f} ms"
        )


@dataclass
class EvolutionPlan:
    """Dry-run report: what a batch *would* change and check.

    Produced without mutating the input model (the hooks run on a
    recorder over a private clone); ``error`` carries the failure when
    the batch would abort.
    """

    smos: Tuple[Smo, ...]
    delta: MappingDelta
    neighborhood: Optional[Neighborhood]
    check_names: Tuple[str, ...]
    error: Optional[ReproError]
    elapsed: float

    @property
    def ok(self) -> bool:
        return self.error is None

    def describe(self) -> str:
        lines = [f"plan: {len(self.smos)} SMO(s), {len(self.delta)} delta op(s)"]
        for smo in self.smos:
            lines.append(f"  smo: {smo.describe()}")
        for op_summary in self.delta.summary():
            lines.append(f"  op: {op_summary}")
        if self.error is not None:
            lines.append(f"  ABORT: {self.error}")
        else:
            lines.append(f"  neighborhood: {self.neighborhood}")
            for name in self.check_names:
                lines.append(f"  check: {name}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.describe()


class IncrementalCompiler:
    """Applies SMOs to compiled models, incrementally (Figure 7).

    The compiler never mutates its input: each :meth:`apply` records the
    SMO's hooks into a delta over a working clone and returns the evolved
    model.  When validation fails, the working copy is discarded, cache
    entries inserted against the rejected model are rolled back, and the
    ValidationError propagates — the pre-evolved model is untouched,
    which is the "undoes its changes ... and returns an exception"
    behaviour of Section 4.1.
    """

    def __init__(
        self,
        budget: Optional[WorkBudget] = None,
        cache: Optional[ValidationCache] = None,
    ) -> None:
        self.budget = budget
        self.cache = cache

    # ------------------------------------------------------------------
    def _run_smo(self, recorder: DeltaRecorder, smo: Smo) -> None:
        """Figure 7's hook order for one SMO against the recorder."""
        smo.check_preconditions(recorder.working)
        smo.evolve_schemas(recorder)
        smo.adapt_fragments(recorder)
        smo.adapt_update_views(recorder)
        smo.validate(recorder.working, self.budget, self.cache)
        smo.adapt_query_views(recorder)

    def apply(self, model: CompiledModel, smo: Smo) -> IncrementalResult:
        started = time.perf_counter()
        recorder = DeltaRecorder(model)
        transaction = self.cache.begin_transaction() if self.cache else None
        try:
            self._run_smo(recorder, smo)
        except BaseException:
            if transaction is not None:
                self.cache.rollback(transaction)
            raise
        if transaction is not None:
            self.cache.commit(transaction)
        elapsed = time.perf_counter() - started
        return IncrementalResult(
            model=recorder.working,
            smo=smo,
            elapsed=elapsed,
            delta=recorder.delta(),
        )

    def apply_all(
        self, model: CompiledModel, smos: Sequence[Smo]
    ) -> List[IncrementalResult]:
        """Apply a sequence of SMOs (e.g. generated from a model diff)."""
        results: List[IncrementalResult] = []
        current = model
        for smo in smos:
            result = self.apply(current, smo)
            results.append(result)
            current = result.model
        return results

    # ------------------------------------------------------------------
    def compile_batch(
        self,
        model: CompiledModel,
        smos: Sequence[Smo],
        *,
        workers: int = 1,
        executor: Optional[str] = None,
        shard_size: Optional[int] = None,
    ) -> BatchResult:
        """Apply several SMOs, validating the union neighborhood *once*.

        Each SMO still runs its own Figure-7 hooks (including its
        targeted validate) against the shared recorder, but the
        scheduler's coverage/store-cells/FK/roundtrip checks are
        generated from the *composed* delta's neighborhood instead of
        once per SMO — overlapping SMOs pay for their shared region a
        single time.
        """
        from repro.compiler.validation import validate_delta_neighborhood

        started = time.perf_counter()
        smos = tuple(smos)
        recorder = DeltaRecorder(model)
        transaction = self.cache.begin_transaction() if self.cache else None
        results: List[IncrementalResult] = []
        try:
            for smo in smos:
                smo_started = time.perf_counter()
                mark = recorder.mark
                self._run_smo(recorder, smo)
                results.append(
                    IncrementalResult(
                        model=recorder.working,
                        smo=smo,
                        elapsed=time.perf_counter() - smo_started,
                        delta=recorder.delta_since(mark),
                    )
                )
            delta = recorder.delta()
            evolved = recorder.working
            neighborhood = delta.touched_neighborhood(evolved.mapping)
            _, check_names = validate_delta_neighborhood(
                evolved.mapping,
                evolved.views,
                neighborhood,
                self.budget,
                workers=workers,
                executor=executor,
                cache=self.cache,
                shard_size=shard_size,
            )
        except BaseException:
            if transaction is not None:
                self.cache.rollback(transaction)
            raise
        if transaction is not None:
            self.cache.commit(transaction)
        return BatchResult(
            model=evolved,
            smos=smos,
            delta=delta,
            results=results,
            neighborhood=neighborhood,
            check_names=tuple(check_names),
            elapsed=time.perf_counter() - started,
        )

    # ------------------------------------------------------------------
    def plan(self, model: CompiledModel, smos: Sequence[Smo]) -> EvolutionPlan:
        """Dry-run a batch: report its delta and checks without mutating.

        The hooks run for real — against a recorder over a private clone
        — so the reported delta is exact, but ``model`` is never touched
        and the scheduler checks are only *named*, not executed.  A
        failing hook is reported in ``error`` instead of raising.
        """
        from repro.compiler.validation import build_validation_checks

        started = time.perf_counter()
        smos = tuple(smos)
        recorder = DeltaRecorder(model)
        transaction = self.cache.begin_transaction() if self.cache else None
        error: Optional[ReproError] = None
        try:
            for smo in smos:
                self._run_smo(recorder, smo)
        except ReproError as exc:
            error = exc
        except BaseException:
            if transaction is not None:
                self.cache.rollback(transaction)
            raise
        delta = recorder.delta()
        if error is not None:
            if transaction is not None:
                self.cache.rollback(transaction)
            return EvolutionPlan(
                smos=smos,
                delta=delta,
                neighborhood=None,
                check_names=(),
                error=error,
                elapsed=time.perf_counter() - started,
            )
        if transaction is not None:
            self.cache.commit(transaction)
        evolved = recorder.working
        neighborhood = delta.touched_neighborhood(evolved.mapping)
        checks = build_validation_checks(
            evolved.mapping,
            evolved.views,
            self.budget,
            {},
            self.cache,
            sets=neighborhood.sets,
            tables=neighborhood.tables,
        )
        return EvolutionPlan(
            smos=smos,
            delta=delta,
            neighborhood=neighborhood,
            check_names=tuple(check.name for check in checks),
            error=None,
            elapsed=time.perf_counter() - started,
        )
