"""The SMO framework: schema modification operations and their compiler.

Section 1.2: "Our solution template for incremental compilation is
comprised of four new algorithms for each type of SMO": adapt/create query
views, adapt/create update views, adapt the mapping fragments, and
validate.  Every SMO subclass implements those four hooks plus schema
evolution and precondition checking; :class:`IncrementalCompiler` runs
them in the order of Figure 7 (change schemas & mappings → modify update
views → validate → modify query views) and aborts without side effects
when validation fails.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.budget import WorkBudget
from repro.containment.cache import ValidationCache
from repro.errors import ValidationError
from repro.incremental.model import CompiledModel


class Smo:
    """Base class for schema modification operations."""

    #: Short mnemonic used in benchmark reports (e.g. ``"AE-TPT"``).
    kind: str = "SMO"

    # The four algorithms of Section 1.2 plus preconditions and schema
    # evolution. They run against a private clone, so they may mutate
    # freely.
    def check_preconditions(self, model: CompiledModel) -> None:
        raise NotImplementedError

    def evolve_schemas(self, model: CompiledModel) -> None:
        raise NotImplementedError

    def adapt_fragments(self, model: CompiledModel) -> None:
        raise NotImplementedError

    def adapt_update_views(self, model: CompiledModel) -> None:
        raise NotImplementedError

    def validate(
        self,
        model: CompiledModel,
        budget: Optional[WorkBudget],
        cache: Optional[ValidationCache] = None,
    ) -> None:
        raise NotImplementedError

    def adapt_query_views(self, model: CompiledModel) -> None:
        raise NotImplementedError

    def describe(self) -> str:
        return f"{self.kind}"


@dataclass
class IncrementalResult:
    """Outcome of one incremental compilation step."""

    model: CompiledModel
    smo: Smo
    elapsed: float
    containment_checks: int = 0

    def __str__(self) -> str:
        return f"{self.smo.describe()}: {self.elapsed * 1000:.2f} ms"


class IncrementalCompiler:
    """Applies SMOs to compiled models, incrementally (Figure 7).

    The compiler never mutates its input: each :meth:`apply` works on a
    clone and returns the evolved model.  When validation fails, the clone
    is discarded and the ValidationError propagates — the pre-evolved
    model is untouched, which is the "undoes its changes ... and returns
    an exception" behaviour of Section 4.1.
    """

    def __init__(
        self,
        budget: Optional[WorkBudget] = None,
        cache: Optional[ValidationCache] = None,
    ) -> None:
        self.budget = budget
        self.cache = cache

    def apply(self, model: CompiledModel, smo: Smo) -> IncrementalResult:
        started = time.perf_counter()
        smo.check_preconditions(model)
        evolved = model.clone()
        smo.evolve_schemas(evolved)
        smo.adapt_fragments(evolved)
        smo.adapt_update_views(evolved)
        smo.validate(evolved, self.budget, self.cache)
        smo.adapt_query_views(evolved)
        elapsed = time.perf_counter() - started
        return IncrementalResult(model=evolved, smo=smo, elapsed=elapsed)

    def apply_all(
        self, model: CompiledModel, smos: Sequence[Smo]
    ) -> List[IncrementalResult]:
        """Apply a sequence of SMOs (e.g. generated from a model diff)."""
        results: List[IncrementalResult] = []
        current = model
        for smo in smos:
            result = self.apply(current, smo)
            results.append(result)
            current = result.model
        return results
