"""``DropEntity`` — remove a leaf entity type (Section 3.4).

"We need to eliminate all references to E from mapping fragments and
views."  For a leaf type the references are: the fragment(s) added for E,
``IS OF E`` disjuncts introduced by earlier adaptations (e.g.
``IS OF (ONLY P) ∨ IS OF E``), the E-branches of ancestors' query views,
and the update views of E's tables.

Fragments and update views are rewritten literally (type atoms for E
become FALSE, then structural simplification removes them; fragments with
unsatisfiable conditions are deleted).  Ancestors' query views contain
E-branches woven through joins, unions and constructor chains, so they
are regenerated for the affected entity set — still neighborhood-scoped
work.  Tables that stored only E data stay in the store schema (dropping
persistent data is not a compiler decision) but lose their update views.

Under the delta recorder these rewrites land as ``DropEntityTypeOp`` (which
remembers the removed entity sets so the inverse restores them),
``ReplaceFragmentsOp`` and per-table ``PutUpdateViewOp`` entries, making a
drop fully invertible by the session journal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.algebra.conditions import (
    Condition,
    FALSE,
    FalseCond,
    IsOf,
    IsOfOnly,
)
from repro.algebra.queries import scanned_names
from repro.algebra.simplify import simplify
from repro.budget import WorkBudget
from repro.containment.cache import ValidationCache
from repro.compiler.viewgen import build_query_views_for_set
from repro.containment.spaces import ClientConditionSpace
from repro.errors import SmoError
from repro.incremental.checks import check_fk_preserved
from repro.incremental.model import CompiledModel
from repro.incremental.smo import Smo
from repro.mapping.fragments import MappingFragment
from repro.mapping.views import UpdateView


def erase_type_condition(type_name: str):
    """Node transformer: atoms mentioning *type_name* become FALSE."""

    def transformer(node: Condition) -> Condition:
        if isinstance(node, (IsOf, IsOfOnly)) and node.type_name == type_name:
            return FALSE
        return node

    return transformer


@dataclass
class DropEntity(Smo):
    """Drop leaf entity type *name* and all its mapping references."""

    name: str
    kind: str = "DE"
    validation_checks: int = field(default=0, compare=False)

    def describe(self) -> str:
        return f"{self.kind}({self.name})"

    # ------------------------------------------------------------------
    def check_preconditions(self, model: CompiledModel) -> None:
        schema = model.client_schema
        if not schema.has_entity_type(self.name):
            raise SmoError(f"entity type {self.name!r} does not exist")
        if schema.children_of(self.name):
            raise SmoError(
                f"{self.name!r} is not a leaf; drop its subtypes first"
            )
        if schema.entity_type(self.name).parent is None:
            raise SmoError(
                "dropping a hierarchy root would drop its entity set; "
                "not supported by this SMO"
            )
        for association in schema.associations:
            if self.name in (
                association.end1.entity_type,
                association.end2.entity_type,
            ):
                raise SmoError(
                    f"association {association.name!r} references {self.name!r}; "
                    "drop it first"
                )

    # ------------------------------------------------------------------
    def evolve_schemas(self, model: CompiledModel) -> None:
        self._set_name = model.client_schema.set_of_type(self.name).name
        model.client_schema.drop_entity_type(self.name)

    # ------------------------------------------------------------------
    def adapt_fragments(self, model: CompiledModel) -> None:
        transformer = erase_type_condition(self.name)
        kept: List[MappingFragment] = []
        self._orphaned_tables: Set[str] = set()
        schema = model.client_schema
        for fragment in model.mapping.fragments:
            if fragment.is_association or fragment.client_source != self._set_name:
                kept.append(fragment)
                continue
            condition = simplify(fragment.client_condition.transform(transformer))
            if isinstance(condition, FalseCond):
                self._orphaned_tables.add(fragment.store_table)
                continue
            space = ClientConditionSpace(schema, self._set_name, [condition])
            if not space.satisfiable(condition):
                self._orphaned_tables.add(fragment.store_table)
                continue
            kept.append(fragment.with_client_condition(condition))
        surviving = {f.store_table for f in kept}
        self._orphaned_tables -= surviving
        model.mapping.replace_fragments(kept)

    # ------------------------------------------------------------------
    def adapt_update_views(self, model: CompiledModel) -> None:
        transformer = erase_type_condition(self.name)
        for table_name, view in list(model.views.update_views.items()):
            if table_name in self._orphaned_tables:
                model.views.drop_update_view(table_name)
                continue
            if self._set_name not in scanned_names(view.query):
                continue
            rewritten = view.query.transform_conditions(
                lambda c: simplify(c.transform(transformer))
            )
            if rewritten is not view.query:
                model.views.set_update_view(
                    UpdateView(table_name, rewritten, view.constructor)
                )

    # ------------------------------------------------------------------
    def validate(
        self,
        model: CompiledModel,
        budget: Optional[WorkBudget],
        cache: Optional[ValidationCache] = None,
    ) -> None:
        """Check foreign keys pointing *into* tables that lost their data.

        A mapped table R with a foreign key into an orphaned table would
        dangle for every non-null value, so such references are rejected.
        Other constraints only lose rows and stay satisfied.
        """
        self.validation_checks = 0
        for table in model.store_schema.tables:
            if not model.mapping.table_is_mapped(table.name):
                continue
            for foreign_key in table.foreign_keys:
                if foreign_key.ref_table in self._orphaned_tables:
                    self.validation_checks += check_fk_preserved(
                        model,
                        table.name,
                        foreign_key,
                        budget,
                        context=f" after dropping {self.name!r}",
                        cache=cache,
                    )

    # ------------------------------------------------------------------
    def adapt_query_views(self, model: CompiledModel) -> None:
        model.views.drop_query_view(self.name)
        for view in build_query_views_for_set(model.mapping, self._set_name).values():
            model.views.set_query_view(view)
