"""repro — incremental object-to-relational mapping compilation.

A complete reimplementation of Bernstein et al., "Incremental Mapping
Compilation in an Object-to-Relational Mapping System" (SIGMOD 2013):
the fragment-based mapping language, the full (baseline) mapping compiler
with roundtripping validation, and the incremental compiler driven by
schema modification operations (SMOs).

Most applications need only the top-level re-exports below; see README.md
for a tour and DESIGN.md for the architecture.
"""

from repro.budget import UnlimitedBudget, WorkBudget
from repro.errors import (
    CompilationBudgetExceeded,
    EvaluationError,
    MappingError,
    ReproError,
    SchemaError,
    SmoError,
    ValidationError,
)

__version__ = "1.0.0"

__all__ = [
    "CompilationBudgetExceeded",
    "EvaluationError",
    "MappingError",
    "ReproError",
    "SchemaError",
    "SmoError",
    "UnlimitedBudget",
    "ValidationError",
    "WorkBudget",
    "__version__",
]
