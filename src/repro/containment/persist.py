"""A persistent, cross-process L2 for the validation cache.

The in-memory :class:`~repro.containment.cache.ValidationCache` dies
with the session that built it, so every serving process in a fleet pays
a full cold compile of the same model.  This module supplies the missing
durability layer: a :class:`PersistentCacheStore` is an on-disk,
fingerprint-keyed store (one SQLite file under a cache directory,
usually named by ``REPRO_CACHE_DIR``) that several processes open
concurrently.  Entries are exactly what the in-memory cache already
holds — containment verdicts, truth vectors, whole-check memos, and the
rollback-surviving counterexample pools — pickled under their structural
fingerprints, so the *keys* carry all the invalidation semantics and a
stale value can never be served across a model mutation.

Design points:

* **SQLite as the file format.**  One file, transactional writes, and
  the engine's own file locking arbitrates concurrent writers from
  different processes — no hand-rolled lockfiles or rename dances.  A
  generous ``busy_timeout`` absorbs write bursts from a fleet sharing
  one directory.
* **Versioned.**  A ``meta`` row stores a cache-schema tag combined with
  the repro package version; opening a file with a different tag wipes
  it (stale formats are never read, never crash).
* **Fail-open.**  Every operation traps ``sqlite3`` and unpickling
  errors: a corrupted or truncated file degrades to a cold miss (and a
  counted ``errors``), never a wrong verdict or an exception on the
  validation path.  A file that cannot even be opened is recreated.
* **Fingerprint-keyed, not model-keyed.**  Two processes validating two
  different models still share the subproblems their neighborhoods have
  in common — the store is one memo table for the whole fleet.

The store never interprets values; callers (the L1 cache) decide what is
worth persisting and when (see ``CacheTransaction``: entries computed
for a *rejected* candidate model are flushed only on commit, so the
store indexes only models that actually exist).
"""

from __future__ import annotations

import os
import pickle
import sqlite3
import threading
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

import repro

#: bump when the table layout or the pickling discipline changes
CACHE_SCHEMA_TAG = "repro-validation-cache-v1"

DEFAULT_FILENAME = "validation_cache.sqlite"

#: environment variable naming the shared cache directory
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def cache_dir_from_env() -> Optional[str]:
    """The fleet-shared cache directory, if ``REPRO_CACHE_DIR`` is set."""
    value = os.environ.get(CACHE_DIR_ENV)
    return value or None


@dataclass
class PersistentCacheStats:
    """What the on-disk store holds and how this handle used it."""

    path: str
    tag: str
    entries: int = 0
    counterexamples: int = 0
    bytes: int = 0
    reads: int = 0
    read_hits: int = 0
    writes: int = 0
    errors: int = 0

    def __str__(self) -> str:
        return (
            f"PersistentCacheStats(entries={self.entries}, "
            f"counterexamples={self.counterexamples}, bytes={self.bytes}, "
            f"reads={self.reads}, hits={self.read_hits}, "
            f"writes={self.writes}, errors={self.errors})"
        )


class PersistentCacheStore:
    """One handle onto the shared on-disk validation cache.

    Thread-safe (one connection guarded by a lock — the L1 cache calls
    in from any validation worker thread) and multi-process-safe (SQLite
    file locking plus ``busy_timeout``).  All methods fail open: an I/O,
    database or unpickling error is counted in ``errors`` and reported
    as a miss / no-op, never raised to the validation path.
    """

    _MISS = (False, None)

    def __init__(
        self, directory: str, filename: str = DEFAULT_FILENAME
    ) -> None:
        self.directory = directory
        self.path = os.path.join(directory, filename)
        self.tag = f"{CACHE_SCHEMA_TAG}:{repro.__version__}"
        self._lock = threading.Lock()
        self._conn: Optional[sqlite3.Connection] = None
        self.reads = 0
        self.read_hits = 0
        self.writes = 0
        self.errors = 0
        self._open()

    # ------------------------------------------------------------------
    # Connection and schema lifecycle
    # ------------------------------------------------------------------
    def _open(self) -> None:
        """Open (creating or wiping as needed); never raises."""
        try:
            os.makedirs(self.directory, exist_ok=True)
            self._conn = self._connect()
            if not self._tag_matches():
                # stale or foreign format: recreate the file wholesale
                self._recreate()
        except (sqlite3.Error, OSError):
            self.errors += 1
            self._recreate()

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(
            self.path, timeout=30.0, check_same_thread=False
        )
        conn.execute("PRAGMA busy_timeout = 30000")
        try:
            conn.execute("PRAGMA journal_mode = WAL")
        except sqlite3.Error:
            pass  # WAL is an optimization, not a requirement
        conn.execute(
            "CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT)"
        )
        conn.execute(
            "CREATE TABLE IF NOT EXISTS entries ("
            " namespace TEXT NOT NULL,"
            " key TEXT NOT NULL,"
            " value BLOB NOT NULL,"
            " PRIMARY KEY (namespace, key))"
        )
        conn.execute(
            "CREATE TABLE IF NOT EXISTS counterexamples ("
            " key TEXT NOT NULL,"
            " seq INTEGER NOT NULL,"
            " record BLOB NOT NULL,"
            " PRIMARY KEY (key, seq))"
        )
        conn.execute(
            "INSERT OR IGNORE INTO meta (key, value) VALUES ('tag', ?)",
            (self.tag,),
        )
        conn.commit()
        return conn

    def _tag_matches(self) -> bool:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = 'tag'"
        ).fetchone()
        return row is not None and row[0] == self.tag

    def _recreate(self) -> None:
        """Drop the file and start over; on persistent failure, disable."""
        if self._conn is not None:
            try:
                self._conn.close()
            except sqlite3.Error:
                pass
            self._conn = None
        try:
            if os.path.exists(self.path):
                os.remove(self.path)
            for suffix in ("-wal", "-shm"):
                leftover = self.path + suffix
                if os.path.exists(leftover):
                    os.remove(leftover)
            self._conn = self._connect()
        except (sqlite3.Error, OSError):
            self.errors += 1
            self._conn = None  # degraded: every call is a miss / no-op

    def _reset_on_error(self) -> None:
        """A read or write blew up mid-flight: count it and reopen.

        Reopening re-runs the tag check, so a file another process
        corrupted or truncated under us is wiped rather than retried
        forever.
        """
        self.errors += 1
        with self._lock:
            self._open()

    # ------------------------------------------------------------------
    # Entries
    # ------------------------------------------------------------------
    def get(self, namespace: str, key: str) -> Tuple[bool, object]:
        """``(found, value)`` — found is False on miss *or* any error."""
        self.reads += 1
        if self._conn is None:
            return self._MISS
        try:
            with self._lock:
                row = self._conn.execute(
                    "SELECT value FROM entries WHERE namespace = ? AND key = ?",
                    (namespace, key),
                ).fetchone()
            if row is None:
                return self._MISS
            value = pickle.loads(row[0])
        except (sqlite3.Error, pickle.UnpicklingError, EOFError,
                AttributeError, ImportError, IndexError, TypeError,
                ValueError, MemoryError):
            self._reset_on_error()
            return self._MISS
        self.read_hits += 1
        return True, value

    def put(self, namespace: str, key: str, value: object) -> None:
        self.put_many([(namespace, key, value)])

    def put_many(
        self, items: Iterable[Tuple[str, str, object]]
    ) -> None:
        """Write a batch of entries in one transaction (atomic for
        concurrent readers; unpicklable values are skipped, counted)."""
        if self._conn is None:
            return
        rows = []
        for namespace, key, value in items:
            try:
                rows.append((namespace, key, pickle.dumps(value)))
            except Exception:  # noqa: BLE001 - unpicklable values skipped
                self.errors += 1
        if not rows:
            return
        try:
            with self._lock:
                self._conn.executemany(
                    "INSERT OR REPLACE INTO entries (namespace, key, value)"
                    " VALUES (?, ?, ?)",
                    rows,
                )
                self._conn.commit()
            self.writes += len(rows)
        except sqlite3.Error:
            self._reset_on_error()

    # ------------------------------------------------------------------
    # Counterexample pools
    # ------------------------------------------------------------------
    def record_counterexample(
        self,
        key: str,
        record: Tuple[Tuple[str, ...], Tuple[str, ...], object],
        per_key_bound: int,
    ) -> None:
        """Append one failing-state record, newest first, bounded per key.

        Not transaction-deferred: like the in-memory pool, a
        counterexample found while validating a rejected candidate is
        genuine evidence (replay re-verifies legality), so it persists
        immediately.
        """
        if self._conn is None:
            return
        try:
            blob = pickle.dumps(record)
        except Exception:  # noqa: BLE001
            self.errors += 1
            return
        try:
            with self._lock:
                row = self._conn.execute(
                    "SELECT COALESCE(MAX(seq), 0) FROM counterexamples"
                    " WHERE key = ?",
                    (key,),
                ).fetchone()
                seq = (row[0] if row else 0) + 1
                self._conn.execute(
                    "INSERT OR REPLACE INTO counterexamples (key, seq, record)"
                    " VALUES (?, ?, ?)",
                    (key, seq, blob),
                )
                self._conn.execute(
                    "DELETE FROM counterexamples WHERE key = ? AND seq <= ?",
                    (key, seq - per_key_bound),
                )
                self._conn.commit()
            self.writes += 1
        except sqlite3.Error:
            self._reset_on_error()

    def counterexamples(self, key: str) -> List[object]:
        """Persisted failing-state records for *key*, newest first."""
        self.reads += 1
        if self._conn is None:
            return []
        try:
            with self._lock:
                rows = self._conn.execute(
                    "SELECT record FROM counterexamples WHERE key = ?"
                    " ORDER BY seq DESC",
                    (key,),
                ).fetchall()
            records = [pickle.loads(row[0]) for row in rows]
        except (sqlite3.Error, pickle.UnpicklingError, EOFError,
                AttributeError, ImportError, IndexError, TypeError,
                ValueError, MemoryError):
            self._reset_on_error()
            return []
        if records:
            self.read_hits += 1
        return records

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def stats(self) -> PersistentCacheStats:
        entries = counterexamples = size = 0
        if self._conn is not None:
            try:
                with self._lock:
                    entries = self._conn.execute(
                        "SELECT COUNT(*) FROM entries"
                    ).fetchone()[0]
                    counterexamples = self._conn.execute(
                        "SELECT COUNT(*) FROM counterexamples"
                    ).fetchone()[0]
                size = os.path.getsize(self.path)
            except (sqlite3.Error, OSError):
                self.errors += 1
        return PersistentCacheStats(
            path=self.path,
            tag=self.tag,
            entries=entries,
            counterexamples=counterexamples,
            bytes=size,
            reads=self.reads,
            read_hits=self.read_hits,
            writes=self.writes,
            errors=self.errors,
        )

    def clear(self) -> None:
        """Wipe every entry and counterexample (the file stays)."""
        if self._conn is None:
            self._open()
            if self._conn is None:
                return
        try:
            with self._lock:
                self._conn.execute("DELETE FROM entries")
                self._conn.execute("DELETE FROM counterexamples")
                self._conn.commit()
        except sqlite3.Error:
            self._reset_on_error()

    def close(self) -> None:
        with self._lock:
            if self._conn is not None:
                try:
                    self._conn.close()
                except sqlite3.Error:
                    pass
                self._conn = None

    def __str__(self) -> str:
        return f"PersistentCacheStore({self.path})"
