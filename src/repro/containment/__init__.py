"""Satisfiability, implication, tautology and query containment.

This package is the NP-hard substrate of mapping validation: condition
spaces decide condition-level questions by finite enumeration, and the
CQC-style checker decides query containment by canonical-instance
evaluation.  :mod:`repro.containment.cache` memoises both behind stable
structural fingerprints so that incremental re-validation of untouched
neighborhoods is a cache hit.
"""

from repro.containment.atoms import FRESH, collect_constants, value_candidates
from repro.containment.cache import (
    CacheStats,
    ValidationCache,
    client_slice_tokens,
    fingerprint,
    store_table_tokens,
)
from repro.containment.checker import ContainmentResult, check_containment
from repro.containment.spaces import (
    Assignment,
    ClientConditionSpace,
    ConditionSpace,
    StoreConditionSpace,
)

__all__ = [
    "Assignment",
    "CacheStats",
    "ClientConditionSpace",
    "ConditionSpace",
    "ContainmentResult",
    "FRESH",
    "StoreConditionSpace",
    "ValidationCache",
    "check_containment",
    "client_slice_tokens",
    "collect_constants",
    "fingerprint",
    "store_table_tokens",
    "value_candidates",
]
