"""Satisfiability, implication, tautology and query containment.

This package is the NP-hard substrate of mapping validation: condition
spaces decide condition-level questions by finite enumeration, and the
CQC-style checker decides query containment by canonical-instance
evaluation.
"""

from repro.containment.atoms import FRESH, collect_constants, value_candidates
from repro.containment.checker import ContainmentResult, check_containment
from repro.containment.spaces import (
    Assignment,
    ClientConditionSpace,
    ConditionSpace,
    StoreConditionSpace,
)

__all__ = [
    "Assignment",
    "ClientConditionSpace",
    "ConditionSpace",
    "ContainmentResult",
    "FRESH",
    "StoreConditionSpace",
    "check_containment",
    "collect_constants",
    "value_candidates",
]
