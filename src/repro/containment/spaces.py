"""Decision procedures for conditions over one source.

A *condition space* fixes a source (a client entity set, a client entity
type, or a store table) and a set of conditions of interest, derives finite
value candidates for every mentioned attribute, and decides

* satisfiability,
* implication,
* tautology (the Section 3.3 coverage check),
* equivalence, and
* the set of achievable truth vectors over a list of conditions — the
  *cells* that drive the full compiler's case reasoning, whose count is
  exponential in the number of independent conditions.  This is the
  NP-hard core the paper circumvents incrementally.

Complexity is the product of candidate-set sizes over mentioned
attributes (times the number of concrete types on the client side); all
enumeration loops tick a :class:`~repro.budget.WorkBudget`.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.algebra.conditions import (
    And,
    Condition,
    Not,
    Or,
    TupleContext,
    evaluate_condition,
)
from repro.budget import WorkBudget, ensure_budget
from repro.containment.atoms import collect_constants, default_value, value_candidates
from repro.containment.cache import (
    ValidationCache,
    client_slice_tokens,
    fingerprint,
)
from repro.edm.schema import ClientSchema
from repro.errors import SchemaError
from repro.relational.schema import StoreSchema


class _AssignmentContext(TupleContext):
    """Evaluates conditions over one symbolic assignment."""

    def __init__(
        self,
        values: Dict[str, object],
        concrete_type: Optional[str],
        schema: Optional[ClientSchema],
    ) -> None:
        self._values = values
        self._type = concrete_type
        self._schema = schema

    def attr_value(self, name: str) -> object:
        if name not in self._values:
            raise KeyError(name)
        return self._values[name]

    def is_of(self, type_name: str, only: bool) -> bool:
        if self._type is None or self._schema is None:
            raise SchemaError("type atoms are not allowed on store-side conditions")
        if only:
            return self._type == type_name
        if not self._schema.has_entity_type(type_name):
            return False
        return type_name in self._schema.ancestors_or_self(self._type)


class Assignment:
    """One point of the space: optional concrete type + attribute values."""

    __slots__ = ("concrete_type", "values", "_context")

    def __init__(
        self,
        concrete_type: Optional[str],
        values: Dict[str, object],
        schema: Optional[ClientSchema],
    ) -> None:
        self.concrete_type = concrete_type
        self.values = values
        self._context = _AssignmentContext(values, concrete_type, schema)

    def satisfies(self, condition: Condition) -> bool:
        return evaluate_condition(condition, self._context)

    def __repr__(self) -> str:
        return f"Assignment({self.concrete_type}, {self.values})"


class ConditionSpace:
    """Base: finite assignment enumeration + bitset decision procedures.

    The space's assignments are materialised once (ticking the budget per
    point, exactly like the old per-call sweeps) and every condition is
    lowered to a *truth mask*: one Python int whose bit *i* is set iff
    assignment *i* satisfies the condition.  Atoms cost one evaluation
    per assignment; ``AND``/``OR``/``NOT`` are single bitwise ops on the
    children's masks.  Masks are memoised per condition node — and since
    condition nodes are hash-consed, structurally equal subtrees share
    one memo entry no matter where they came from.
    """

    def __init__(self) -> None:
        self._points: Optional[List[Assignment]] = None
        self._full_mask = 0
        self._masks: Dict[Condition, int] = {}

    def assignments(self, budget: Optional[WorkBudget] = None) -> Iterator[Assignment]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Bitset truth-vector engine
    # ------------------------------------------------------------------
    def points(self, budget: Optional[WorkBudget] = None) -> List[Assignment]:
        """The materialised assignment list (built once per space)."""
        if self._points is None:
            points = list(self.assignments(budget))
            self._points = points
            self._full_mask = (1 << len(points)) - 1
        return self._points

    def mask(self, condition: Condition, budget: Optional[WorkBudget] = None) -> int:
        """Truth mask of *condition*: bit i set iff point i satisfies it."""
        points = self.points(budget)
        return self._mask(condition, points, ensure_budget(budget))

    def _mask(
        self,
        condition: Condition,
        points: List[Assignment],
        budget: WorkBudget,
    ) -> int:
        cached = self._masks.get(condition)
        if cached is not None:
            return cached
        if isinstance(condition, And):
            result = self._full_mask
            for operand in condition.operands:
                budget.tick()
                result &= self._mask(operand, points, budget)
        elif isinstance(condition, Or):
            result = 0
            for operand in condition.operands:
                budget.tick()
                result |= self._mask(operand, points, budget)
        elif isinstance(condition, Not):
            budget.tick()
            result = self._mask(condition.operand, points, budget) ^ self._full_mask
        else:
            result = 0
            bit = 1
            for assignment in points:
                budget.tick()
                if assignment.satisfies(condition):
                    result |= bit
                bit <<= 1
        self._masks[condition] = result
        return result

    # ------------------------------------------------------------------
    def satisfiable(
        self, condition: Condition, budget: Optional[WorkBudget] = None
    ) -> bool:
        return self.mask(condition, budget) != 0

    def witness(
        self, condition: Condition, budget: Optional[WorkBudget] = None
    ) -> Optional[Assignment]:
        truth = self.mask(condition, budget)
        if truth == 0:
            return None
        # lowest set bit = first satisfying assignment in enumeration order
        return self.points()[(truth & -truth).bit_length() - 1]

    def tautology(
        self, condition: Condition, budget: Optional[WorkBudget] = None
    ) -> bool:
        return self.mask(condition, budget) == self._full_mask

    def implies(
        self,
        premise: Condition,
        conclusion: Condition,
        budget: Optional[WorkBudget] = None,
    ) -> bool:
        premise_mask = self.mask(premise, budget)
        conclusion_mask = self.mask(conclusion, budget)
        return premise_mask & (conclusion_mask ^ self._full_mask) == 0

    def equivalent(
        self, left: Condition, right: Condition, budget: Optional[WorkBudget] = None
    ) -> bool:
        return self.mask(left, budget) == self.mask(right, budget)

    def truth_vectors(
        self,
        conditions: Sequence[Condition],
        budget: Optional[WorkBudget] = None,
        cache: Optional["ValidationCache"] = None,
    ) -> Dict[Tuple[bool, ...], Assignment]:
        """All achievable truth vectors over *conditions*, with witnesses.

        This is the cell enumeration of the full compiler: for a table with
        k fragments whose store conditions are independent (e.g. nullable
        foreign-key columns from associations), up to 2^k vectors are
        achievable and each assignment visit costs k evaluations.

        With a *cache*, the enumeration is memoised under a structural
        fingerprint of the space and the conditions (spaces that cannot
        describe their inputs return no token and are never cached).
        """
        conditions = tuple(conditions)
        if cache is not None:
            token = self._cache_token(conditions)
            if token is not None:
                return cache.get_or_compute(
                    "truth-vectors",
                    fingerprint(*token),
                    lambda: self._compute_truth_vectors(conditions, budget),
                )
        return self._compute_truth_vectors(conditions, budget)

    def _compute_truth_vectors(
        self,
        conditions: Tuple[Condition, ...],
        budget: Optional[WorkBudget],
    ) -> Dict[Tuple[bool, ...], Assignment]:
        ticking = ensure_budget(budget)
        points = self.points(budget)
        masks = [self._mask(c, points, ticking) for c in conditions]
        vectors: Dict[Tuple[bool, ...], Assignment] = {}
        for i, assignment in enumerate(points):
            ticking.tick()
            vector = tuple(bool(m >> i & 1) for m in masks)
            if vector not in vectors:
                vectors[vector] = assignment
        return vectors

    def _cache_token(
        self, conditions: Tuple[Condition, ...]
    ) -> Optional[Tuple[object, ...]]:
        """Fingerprint parts identifying this space, or None (no caching)."""
        return None


class StoreConditionSpace(ConditionSpace):
    """Assignments over the columns of one store table."""

    def __init__(
        self,
        store_schema: StoreSchema,
        table_name: str,
        conditions: Iterable[Condition],
    ) -> None:
        super().__init__()
        self.table = store_schema.table(table_name)
        self.conditions = tuple(conditions)
        constants = collect_constants(self.conditions)
        self._mentioned: List[str] = [
            c for c in self.table.column_names if c in constants
        ]
        self._candidates: Dict[str, Tuple[object, ...]] = {}
        for column_name in self._mentioned:
            column = self.table.column(column_name)
            self._candidates[column_name] = value_candidates(
                column.domain, column.nullable, constants[column_name]
            )
        self._defaults = {
            c.name: (None if c.nullable else default_value(c.domain))
            for c in self.table.columns
            if c.name not in self._mentioned
        }

    def assignments(self, budget: Optional[WorkBudget] = None) -> Iterator[Assignment]:
        budget = ensure_budget(budget)
        pools = [self._candidates[name] for name in self._mentioned]
        for combo in itertools.product(*pools):
            budget.tick()
            values = dict(self._defaults)
            values.update(zip(self._mentioned, combo))
            yield Assignment(None, values, None)

    def _cache_token(
        self, conditions: Tuple[Condition, ...]
    ) -> Optional[Tuple[object, ...]]:
        return ("store-space", self.table, self.conditions, conditions)


class ClientConditionSpace(ConditionSpace):
    """Assignments over the entities of one client entity set.

    Enumerates (concrete type, attribute values) pairs.  Only attributes
    mentioned by the conditions vary; an attribute is present in an
    assignment exactly when the chosen concrete type has it.
    """

    def __init__(
        self,
        client_schema: ClientSchema,
        set_name: str,
        conditions: Iterable[Condition],
        types: Optional[Sequence[str]] = None,
    ) -> None:
        super().__init__()
        self._type_masks: Dict[str, int] = {}
        self.schema = client_schema
        self.set_name = set_name
        self.conditions = tuple(conditions)
        if types is None:
            self.types: Tuple[str, ...] = client_schema.concrete_types_of_set(set_name)
        else:
            self.types = tuple(types)
        self._constants = collect_constants(self.conditions)

    def _per_type_pools(
        self, type_name: str
    ) -> Tuple[List[str], List[Tuple[object, ...]], Dict[str, object]]:
        mentioned: List[str] = []
        pools: List[Tuple[object, ...]] = []
        defaults: Dict[str, object] = {}
        for attribute in self.schema.attributes_of(type_name):
            if attribute.name in self._constants:
                mentioned.append(attribute.name)
                pools.append(
                    value_candidates(
                        attribute.domain, attribute.nullable, self._constants[attribute.name]
                    )
                )
            else:
                defaults[attribute.name] = (
                    None if attribute.nullable else default_value(attribute.domain)
                )
        return mentioned, pools, defaults

    def assignments(self, budget: Optional[WorkBudget] = None) -> Iterator[Assignment]:
        budget = ensure_budget(budget)
        for type_name in self.types:
            mentioned, pools, defaults = self._per_type_pools(type_name)
            for combo in itertools.product(*pools):
                budget.tick()
                values = dict(defaults)
                values.update(zip(mentioned, combo))
                yield Assignment(type_name, values, self.schema)

    def _cache_token(
        self, conditions: Tuple[Condition, ...]
    ) -> Optional[Tuple[object, ...]]:
        return (
            "client-space",
            self.set_name,
            self.types,
            client_slice_tokens(self.schema, types=self.types),
            self.conditions,
            conditions,
        )

    def assignments_for_type(
        self, type_name: str, budget: Optional[WorkBudget] = None
    ) -> Iterator[Assignment]:
        budget = ensure_budget(budget)
        mentioned, pools, defaults = self._per_type_pools(type_name)
        for combo in itertools.product(*pools):
            budget.tick()
            values = dict(defaults)
            values.update(zip(mentioned, combo))
            yield Assignment(type_name, values, self.schema)

    def tautology_for_type(
        self,
        type_name: str,
        condition: Condition,
        budget: Optional[WorkBudget] = None,
    ) -> bool:
        """Is *condition* true of every possible entity of *type_name*?

        This is the AddEntityPart coverage check of Section 3.3: for the
        Adult/Young partition it decides that ``age ≥ 18 ∨ age < 18`` is a
        tautology, and for the gender example that
        ``gender = M ∨ gender = F`` is one (via the enum domain).
        """
        if type_name not in self.types:
            # the type is outside this space's points: sweep it directly
            for assignment in self.assignments_for_type(type_name, budget):
                if not assignment.satisfies(condition):
                    return False
            return True
        type_mask = self._mask_for_type(type_name, budget)
        return type_mask & (self.mask(condition, budget) ^ self._full_mask) == 0

    def _mask_for_type(
        self, type_name: str, budget: Optional[WorkBudget] = None
    ) -> int:
        cached = self._type_masks.get(type_name)
        if cached is not None:
            return cached
        result = 0
        bit = 1
        for assignment in self.points(budget):
            if assignment.concrete_type == type_name:
                result |= bit
            bit <<= 1
        self._type_masks[type_name] = result
        return result
