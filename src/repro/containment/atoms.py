"""Finite value candidates for deciding conditions over infinite domains.

The fragment condition language compares attributes only against constants
(``A θ c``), tests nullability, and tests type membership.  For such a
language, satisfiability/implication/tautology over an infinite ordered
domain can be decided by evaluating over a *finite* set of candidate
values: the mentioned constants, values just below/between/above them, and
NULL where permitted.  Finite (enum) domains contribute their actual
values, which is what makes the Section 3.3 gender tautology
``gender = M ∨ gender = F`` decidable.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.algebra.conditions import Comparison, Condition, IsNotNull, IsNull
from repro.edm.types import Domain

#: Sentinel distinct from any user value, representing "a fresh value
#: different from every mentioned constant" for equality-only domains.
FRESH = "⁑fresh⁑"


def collect_constants(conditions: Iterable[Condition]) -> dict:
    """Map attribute name → sorted list of constants mentioned for it."""
    constants: dict = {}
    for condition in conditions:
        for atom in condition.atoms():
            if isinstance(atom, Comparison):
                constants.setdefault(atom.attr, set()).add(atom.const)
            elif isinstance(atom, (IsNull, IsNotNull)):
                constants.setdefault(atom.attr, set())
    return {attr: sorted(values, key=repr) for attr, values in constants.items()}


def value_candidates(
    domain: Domain, nullable: bool, constants: Sequence[object]
) -> Tuple[object, ...]:
    """A finite, sufficient set of candidate values for one attribute.

    Sufficiency argument: every atom's truth value depends only on the
    relation of the attribute value to the mentioned constants (equal,
    between two adjacent ones, below all, above all) or on nullness; the
    returned set realises every such region that the domain permits.
    """
    candidates: List[object] = []

    if domain.values is not None:
        candidates.extend(sorted(domain.values, key=repr))
    elif domain.base in ("int", "decimal"):
        numeric = sorted(c for c in constants if isinstance(c, (int, float)))
        for constant in numeric:
            for candidate in (constant - 1, constant, constant + 1):
                if candidate not in candidates:
                    candidates.append(candidate)
        if not numeric:
            candidates.append(0)
        else:
            low, high = numeric[0] - 2, numeric[-1] + 2
            for candidate in (low, high):
                if candidate not in candidates:
                    candidates.append(candidate)
            # midpoints between adjacent integer constants with a gap
            for left, right in zip(numeric, numeric[1:]):
                if isinstance(left, int) and isinstance(right, int) and right - left > 1:
                    mid = left + (right - left) // 2
                    if mid not in candidates:
                        candidates.append(mid)
    else:
        # Equality-only comparable domains (strings, dates, bools):
        # mentioned constants plus one fresh value. Ordered comparisons on
        # strings are rare in mappings; we still include FRESH which sorts
        # arbitrarily — tests for ordered string predicates use enum domains.
        for constant in constants:
            if constant not in candidates:
                candidates.append(constant)
        if domain.base == "bool":
            for candidate in (True, False):
                if candidate not in candidates:
                    candidates.append(candidate)
        else:
            candidates.append(FRESH)

    if nullable:
        candidates.append(None)
    return tuple(candidates)


def default_value(domain: Domain) -> object:
    """A fixed representative for attributes no condition mentions."""
    return domain.sample_values()[0]
