"""Finite value candidates for deciding conditions over infinite domains.

The fragment condition language compares attributes only against constants
(``A θ c``), tests nullability, and tests type membership.  For such a
language, satisfiability/implication/tautology over an infinite ordered
domain can be decided by evaluating over a *finite* set of candidate
values: the mentioned constants, values just below/between/above them, and
NULL where permitted.  Finite (enum) domains contribute their actual
values, which is what makes the Section 3.3 gender tautology
``gender = M ∨ gender = F`` decidable.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.algebra.conditions import Comparison, Condition, IsNotNull, IsNull
from repro.edm.types import Domain

#: Sentinel distinct from any user value, representing "a fresh value
#: different from every mentioned constant" for equality-only domains.
FRESH = "⁑fresh⁑"


def fold_constant(value: object) -> object:
    """Canonicalise numerically equal constants (``2.0`` → ``2``).

    ``2 == 2.0`` already dedupes inside a set, but *which* spelling
    survives depends on insertion order; folding integral floats to ints
    makes the representative — and therefore candidate enumeration order
    and cache fingerprints — deterministic.
    """
    if (
        isinstance(value, float)
        and not isinstance(value, bool)
        and value.is_integer()
    ):
        return int(value)
    return value


def _candidate_sort_key(value: object) -> Tuple[int, object, str]:
    """Total order over mixed-type candidates: numerics first (by value),
    then everything else by ``repr``."""
    if not isinstance(value, bool) and isinstance(value, (int, float)):
        return (0, value, "")
    return (1, 0, repr(value))


def collect_constants(conditions: Iterable[Condition]) -> dict:
    """Map attribute name → deduped, sorted, constant-folded list of the
    constants mentioned for it."""
    constants: dict = {}
    for condition in conditions:
        for atom in condition.atoms():
            if isinstance(atom, Comparison):
                constants.setdefault(atom.attr, set()).add(fold_constant(atom.const))
            elif isinstance(atom, (IsNull, IsNotNull)):
                constants.setdefault(atom.attr, set())
    return {
        attr: sorted(values, key=_candidate_sort_key)
        for attr, values in constants.items()
    }


def value_candidates(
    domain: Domain, nullable: bool, constants: Sequence[object]
) -> Tuple[object, ...]:
    """A finite, sufficient set of candidate values for one attribute.

    Sufficiency argument: every atom's truth value depends only on the
    relation of the attribute value to the mentioned constants (equal,
    between two adjacent ones, below all, above all) or on nullness; the
    returned set realises every such region that the domain permits.
    """
    candidates: List[object] = []
    seen: set = set()

    def add(value: object) -> None:
        value = fold_constant(value)
        if value not in seen:
            seen.add(value)
            candidates.append(value)

    if domain.values is not None:
        for value in sorted(domain.values, key=repr):
            add(value)
    elif domain.base in ("int", "decimal"):
        numeric = sorted(
            {fold_constant(c) for c in constants if isinstance(c, (int, float))}
        )
        for constant in numeric:
            add(constant - 1)
            add(constant)
            add(constant + 1)
        if not numeric:
            add(0)
        else:
            add(numeric[0] - 2)
            add(numeric[-1] + 2)
            # midpoints between adjacent integer constants with a gap
            for left, right in zip(numeric, numeric[1:]):
                if isinstance(left, int) and isinstance(right, int) and right - left > 1:
                    add(left + (right - left) // 2)
        candidates.sort(key=_candidate_sort_key)
    else:
        # Equality-only comparable domains (strings, dates, bools):
        # mentioned constants plus one fresh value. Ordered comparisons on
        # strings are rare in mappings; we still include FRESH which sorts
        # arbitrarily — tests for ordered string predicates use enum domains.
        for constant in constants:
            add(constant)
        if domain.base == "bool":
            add(True)
            add(False)
        else:
            add(FRESH)
        candidates.sort(key=_candidate_sort_key)

    if nullable:
        candidates.append(None)
    return tuple(candidates)


def default_value(domain: Domain) -> object:
    """A fixed representative for attributes no condition mentions."""
    return domain.sample_values()[0]
