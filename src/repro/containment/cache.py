"""Structural fingerprints and a fingerprint-keyed validation cache.

The incremental compiler's whole premise (Section 1.2) is that most of a
mapping survives each SMO unchanged, so most validation work is
re-derivable from earlier compilations.  This module supplies the
machinery for *memoised* validation: a stable structural **fingerprint**
for the inputs of a check (algebra ASTs, conditions, mapping fragments and
the schema neighborhood they read) and a thread-safe cache keyed by those
fingerprints.  A check whose complete input fingerprint is unchanged since
a previous run is a cache hit; any mutation of a fragment, condition,
view or referenced schema element changes the fingerprint and forces a
recomputation — stale results can never be served across a mutation.

The cache is deliberately *value-based*: keys are content hashes, not
object identities, so a structurally identical subproblem posed through
freshly rebuilt condition/query objects (as every SMO re-validation does)
still hits the entry of the original.

Used for :func:`repro.containment.checker.check_containment` results,
:class:`repro.compiler.analysis.SetAnalysis` cell enumerations,
:meth:`repro.containment.spaces.ConditionSpace.truth_vectors`, and the
per-check memos of :mod:`repro.compiler.validation`.  One
:class:`ValidationCache` is held by an ORM session so that re-validation
of untouched neighborhoods across a sequence of SMOs becomes a hit.

The in-memory memo is the **L1**; an optional
:class:`~repro.containment.persist.PersistentCacheStore` plugs in as a
write-through **L2** so the memo outlives the process: a fresh session
(or a second serving process sharing the same ``REPRO_CACHE_DIR``)
starts warm instead of paying a cold compile.  L2 probes happen only on
an L1 miss; L2 writes respect :class:`CacheTransaction` bracketing —
entries computed for a *rejected* candidate model are never flushed to
disk, exactly as they are evicted from L1 on rollback.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, fields, is_dataclass
from enum import Enum
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

T = TypeVar("T")


# ---------------------------------------------------------------------------
# Structural fingerprints
# ---------------------------------------------------------------------------

def _token(obj: object) -> bytes:
    """A canonical byte string for *obj*: equal structures → equal tokens.

    Handles the value types that appear in validation inputs: primitives,
    enums, (frozen) dataclasses — conditions, query nodes, fragments,
    schema elements, views — plus tuples/lists, sets and dicts.  Unknown
    types raise instead of falling back to an unstable ``repr``.
    """
    if obj is None:
        return b"null"
    if isinstance(obj, bool):  # before int: bool is an int subclass
        return b"b1" if obj else b"b0"
    if isinstance(obj, int):
        return b"i" + repr(obj).encode("ascii")
    if isinstance(obj, float):
        return b"f" + repr(obj).encode("ascii")
    if isinstance(obj, str):
        encoded = obj.encode("utf-8")
        return b"s%d:" % len(encoded) + encoded
    if isinstance(obj, bytes):
        return b"y%d:" % len(obj) + obj
    if isinstance(obj, Enum):
        return b"e" + type(obj).__name__.encode("utf-8") + b":" + _token(obj.value)
    if is_dataclass(obj) and not isinstance(obj, type):
        parts = [b"d" + type(obj).__qualname__.encode("utf-8")]
        parts.extend(_token(getattr(obj, f.name)) for f in fields(obj))
        return b"(" + b";".join(parts) + b")"
    if isinstance(obj, (tuple, list)):
        return b"(t" + b";".join(_token(item) for item in obj) + b")"
    if isinstance(obj, (set, frozenset)):
        return b"(S" + b";".join(sorted(_token(item) for item in obj)) + b")"
    if isinstance(obj, dict):
        items = sorted((_token(k), _token(v)) for k, v in obj.items())
        return b"(m" + b";".join(k + b"=" + v for k, v in items) + b")"
    raise TypeError(f"cannot fingerprint {type(obj).__name__!r} value {obj!r}")


def fingerprint(*objects: object) -> str:
    """A stable hex digest over the canonical structure of *objects*."""
    digest = hashlib.sha256()
    for obj in objects:
        digest.update(_token(obj))
        digest.update(b"|")
    return digest.hexdigest()


def store_table_tokens(store_schema, table_name: str) -> Tuple[object, ...]:
    """Everything a per-table check reads from the store schema."""
    return ("table", store_schema.table(table_name))


def client_slice_tokens(
    schema,
    sets: Sequence[str] = (),
    assocs: Sequence[str] = (),
    types: Sequence[str] = (),
) -> Tuple[object, ...]:
    """The schema *neighborhood* a client-side check depends on.

    Covers the named entity sets (with their concrete types), the named
    associations, every association constraining a named set (canonical
    state legality depends on their multiplicity lower bounds), and the
    full attribute chains of every type reached — so any schema mutation
    visible to the check changes the fingerprint.
    """
    set_names = sorted(set(sets))
    type_names = set(types)
    for set_name in set_names:
        type_names.update(schema.concrete_types_of_set(set_name))
    assoc_names = set(assocs)
    for association in schema.associations:
        if association.entity_set1 in set_names or association.entity_set2 in set_names:
            assoc_names.add(association.name)
    for name in sorted(assoc_names):
        association = schema.association(name)
        type_names.add(association.end1.entity_type)
        type_names.add(association.end2.entity_type)

    tokens: list = []
    for set_name in set_names:
        entity_set = schema.entity_set(set_name)
        tokens.append(("set", entity_set, schema.concrete_types_of_set(set_name)))
    for name in sorted(assoc_names):
        tokens.append(("assoc", schema.association(name)))
    for type_name in sorted(type_names):
        tokens.append(
            (
                "type",
                type_name,
                schema.ancestors_or_self(type_name),
                schema.attributes_of(type_name),
                schema.key_of(type_name),
                schema.entity_type(type_name).abstract,
            )
        )
    return tuple(tokens)


# ---------------------------------------------------------------------------
# The cache
# ---------------------------------------------------------------------------

@dataclass
class CacheStats:
    """Hit/miss/eviction counters plus current entry count.

    The ``l2_*`` counters cover the optional persistent store: ``l2_hits``
    are L1 misses answered from disk (also counted in ``hits`` — the
    caller got a memoised value either way), ``l2_misses`` are computes
    that really ran, ``l2_writes``/``l2_errors`` mirror the store's own
    write/failure counters.  All zero when no store is attached.
    """

    hits: int = 0
    misses: int = 0
    entries: int = 0
    evictions: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    l2_writes: int = 0
    l2_errors: int = 0

    def __str__(self) -> str:
        text = (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"entries={self.entries}, evictions={self.evictions}"
        )
        if self.l2_hits or self.l2_misses or self.l2_writes or self.l2_errors:
            text += (
                f", l2={self.l2_hits}h/{self.l2_misses}m"
                f"/{self.l2_writes}w/{self.l2_errors}e"
            )
        return text + ")"


class CacheTransaction:
    """Records the keys inserted while one compilation attempt runs.

    Obtained from :meth:`ValidationCache.begin_transaction`; on
    :meth:`~ValidationCache.rollback` every recorded insertion is evicted.
    Entries computed against a model that was subsequently *rejected*
    (validation abort) are fingerprinted against state that never became
    real — harmless for correctness (a conflicting later model fingerprints
    differently) but they would occupy the cache forever and could be
    served to a byte-identical retry of the rejected evolution.  Rolling
    them back keeps the cache an index over models that actually exist.

    When a persistent L2 store is attached, ``pending`` defers the
    write-through of entries computed inside the transaction: they are
    flushed to disk only on commit (merged outward under nesting), and
    simply discarded on rollback — the on-disk cache indexes only models
    that were actually accepted.
    """

    __slots__ = ("inserted", "pending")

    def __init__(self) -> None:
        self.inserted: set = set()
        self.pending: dict = {}


class ValidationCache:
    """A thread-safe, fingerprint-keyed memo for validation subproblems.

    Entries are namespaced (``"containment"``, ``"truth-vectors"``,
    ``"validation-check"``, ...) so unrelated result types never collide.
    Failed computations (raised exceptions) are never cached: a check that
    fails is always recomputed, and a mutation that *would make* a check
    fail necessarily changes its fingerprint, so a stale success can never
    mask a new failure.

    :meth:`begin_transaction` / :meth:`commit` / :meth:`rollback` bracket
    one compilation attempt: insertions made while a transaction is open
    are recorded, and a rollback (SMO aborted) evicts them, so the cache
    never retains entries fingerprinted against a rejected model.

    The memo is LRU-bounded (*max_entries*, default generous): long-lived
    sessions under sustained SMO traffic shed their least recently touched
    entries instead of growing without limit; ``evictions`` in
    :class:`CacheStats` counts what the bound discarded.
    """

    #: bound on persisted failing states per check fingerprint
    COUNTEREXAMPLES_PER_KEY = 4
    #: bound on the global most-recent pool shared across checks
    RECENT_COUNTEREXAMPLES = 8
    #: default LRU bound — generous (a full customer-scale validation is
    #: a few thousand entries) but finite, so sessions under sustained
    #: SMO traffic cannot grow without limit
    DEFAULT_MAX_ENTRIES = 16384

    def __init__(
        self, max_entries: Optional[int] = None, store=None
    ) -> None:
        self.max_entries = (
            self.DEFAULT_MAX_ENTRIES if max_entries is None else max_entries
        )
        self._entries: "OrderedDict[Tuple[str, str], object]" = OrderedDict()
        self._lock = threading.Lock()
        self._transactions: list = []
        # Failing states per check fingerprint + a small global recency
        # pool.  Deliberately *not* transaction-tracked: a counterexample
        # found while validating a rejected evolution is still genuine
        # evidence (replay re-verifies legality against the live schema),
        # and surviving the rollback is what makes a retried bad SMO
        # fail-fast instead of re-enumerating.
        self._counterexamples: Dict[str, list] = {}
        self._recent_counterexamples: list = []
        #: optional persistent L2 (a PersistentCacheStore); probed on L1
        #: misses, written through on compute (deferred under transactions)
        self.store = store
        #: check fingerprints whose persisted counterexamples were loaded
        self._ce_probed: set = set()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.l2_hits = 0
        self.l2_misses = 0

    def get_or_compute(
        self, namespace: str, key: str, compute: Callable[[], T]
    ) -> T:
        """Return the cached value for (namespace, key), computing on miss.

        ``compute`` runs outside the lock so concurrent workers are never
        serialised on each other's computations; on a race both compute
        and the last write wins (results are deterministic, so the values
        are equal).

        With a persistent store attached, an L1 miss probes the L2 before
        computing.  An L2 hit counts as a *hit* (the value was memoised,
        just not in this process) and is promoted into L1 without being
        transaction-tracked — it is already durable, so a rollback has
        nothing to undo for it.  A genuine compute is written through to
        the L2: immediately when no transaction is open, else deferred
        into the innermost transaction and flushed on commit.
        """
        full_key = (namespace, key)
        with self._lock:
            if full_key in self._entries:
                self.hits += 1
                self._entries.move_to_end(full_key)
                return self._entries[full_key]  # type: ignore[return-value]
        if self.store is not None:
            found, value = self.store.get(namespace, key)
            if found:
                with self._lock:
                    self.hits += 1
                    self.l2_hits += 1
                    self._entries[full_key] = value
                    self._entries.move_to_end(full_key)
                    while len(self._entries) > self.max_entries:
                        self._entries.popitem(last=False)
                        self.evictions += 1
                return value  # type: ignore[return-value]
        value = compute()
        flush = False
        with self._lock:
            self.misses += 1
            if self.store is not None:
                self.l2_misses += 1
            if full_key not in self._entries:
                for transaction in self._transactions:
                    transaction.inserted.add(full_key)
            self._entries[full_key] = value
            self._entries.move_to_end(full_key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
            if self.store is not None:
                if self._transactions:
                    self._transactions[-1].pending[full_key] = value
                else:
                    flush = True
        if flush:
            self.store.put(namespace, key, value)
        return value

    # -- transactional bracketing -----------------------------------
    def begin_transaction(self) -> CacheTransaction:
        transaction = CacheTransaction()
        with self._lock:
            self._transactions.append(transaction)
        return transaction

    def commit(self, transaction: CacheTransaction) -> None:
        """Keep the transaction's insertions; stop recording into it.

        Deferred L2 writes flush to the store now — unless an enclosing
        transaction is still open, in which case they merge outward (the
        outer attempt could still be rolled back)."""
        flush: dict = {}
        with self._lock:
            if transaction in self._transactions:
                self._transactions.remove(transaction)
            if transaction.pending:
                if self._transactions:
                    outer = self._transactions[-1].pending
                    for full_key, value in transaction.pending.items():
                        outer.setdefault(full_key, value)
                else:
                    flush = transaction.pending
                transaction.pending = {}
        if flush and self.store is not None:
            self.store.put_many(
                (namespace, key, value)
                for (namespace, key), value in flush.items()
            )

    def rollback(self, transaction: CacheTransaction) -> None:
        """Evict every entry inserted while the transaction was open.

        Deferred L2 writes are simply dropped: the disk cache never
        learns about entries fingerprinted against a rejected model."""
        with self._lock:
            if transaction in self._transactions:
                self._transactions.remove(transaction)
            for full_key in transaction.inserted:
                self._entries.pop(full_key, None)
            transaction.pending = {}

    # -- counterexample persistence ----------------------------------
    def record_counterexample(
        self, key: str, sets: Sequence[str], assocs: Sequence[str], state: object
    ) -> None:
        """Persist a failing client state for the check fingerprinted *key*.

        ``sets``/``assocs`` name the sources the state populates so replay
        can re-materialise it under a possibly evolved schema.  Newest
        states sit first; per-key and global pools are bounded.

        Written through to the persistent store immediately — never
        transaction-deferred, matching the in-memory pools' deliberate
        rollback survival: a failing state is genuine evidence whichever
        candidate model surfaced it (replay re-verifies legality).
        """
        record = (tuple(sets), tuple(assocs), state)
        with self._lock:
            pool = self._counterexamples.setdefault(key, [])
            pool[:] = [r for r in pool if r[2] is not state]
            pool.insert(0, record)
            del pool[self.COUNTEREXAMPLES_PER_KEY:]
            recent = self._recent_counterexamples
            recent[:] = [r for r in recent if r[2] is not state]
            recent.insert(0, record)
            del recent[self.RECENT_COUNTEREXAMPLES:]
            self._ce_probed.add(key)  # local pool is now authoritative
        if self.store is not None:
            self.store.record_counterexample(
                key, record, self.COUNTEREXAMPLES_PER_KEY
            )

    def counterexamples(
        self, key: str, include_recent: bool = True
    ) -> List[Tuple[Tuple[str, ...], Tuple[str, ...], object]]:
        """Persisted failing states to replay for *key*, most recent first:
        the key's own states, then (with *include_recent*) the global pool
        — states from *other* checks; a schema-legal state failing one FK
        often fails several.  Checks whose failure predicate is not
        state-intrinsic (e.g. roundtrip, which needs the right views in
        scope) should pass ``include_recent=False``.

        The first probe of a key consults the persistent store as well:
        failing states recorded by *other processes* seed this session's
        pool, so a fleet member re-validating a known-broken neighborhood
        fails fast on its very first attempt."""
        probe_store = False
        with self._lock:
            if (
                self.store is not None
                and key not in self._ce_probed
            ):
                self._ce_probed.add(key)
                probe_store = True
        if probe_store:
            loaded = self.store.counterexamples(key)
            with self._lock:
                pool = self._counterexamples.setdefault(key, [])
                for record in loaded:
                    if len(pool) >= self.COUNTEREXAMPLES_PER_KEY:
                        break
                    pool.append(tuple(record))
        with self._lock:
            own = list(self._counterexamples.get(key, ()))
            if not include_recent:
                return own
            seen = {id(record[2]) for record in own}
            extra = [
                record
                for record in self._recent_counterexamples
                if id(record[2]) not in seen
            ]
        return own + extra

    def counterexample_count(self) -> int:
        with self._lock:
            return sum(len(pool) for pool in self._counterexamples.values())

    def stats(self) -> CacheStats:
        store = self.store
        with self._lock:
            return CacheStats(
                hits=self.hits,
                misses=self.misses,
                entries=len(self._entries),
                evictions=self.evictions,
                l2_hits=self.l2_hits,
                l2_misses=self.l2_misses,
                l2_writes=store.writes if store is not None else 0,
                l2_errors=store.errors if store is not None else 0,
            )

    def persistent_stats(self):
        """The attached store's :class:`PersistentCacheStats`, or None."""
        return self.store.stats() if self.store is not None else None

    def clear(self, persistent: bool = False) -> None:
        """Drop every L1 entry; with *persistent*, wipe the L2 file too."""
        with self._lock:
            self._entries.clear()
            self._ce_probed.clear()
        if persistent and self.store is not None:
            self.store.clear()

    def close(self) -> None:
        """Release the persistent store's connection (L1 stays usable)."""
        if self.store is not None:
            self.store.close()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __str__(self) -> str:
        return f"ValidationCache({self.stats()})"
