"""CQC-style query containment over client states.

Checks ``Q1 ⊆ Q2`` for client-side queries (the shape of every validation
check in Sections 3.1.4 and 3.2, after unfolding update views) by
enumerating *canonical client states* and evaluating both queries on each —
the canonical-instance method of Farré et al.'s CQC [9], specialised to the
fragment/view language:

* every entity set scanned by either query contributes zero or one *center*
  entity, sweeping concrete types and candidate values for every attribute
  mentioned in a condition (plus a *partner* entity where a self-set
  association needs one);
* every association set scanned contributes either no tuple or one tuple
  over a compatible pair of present entities;
* states violating multiplicity lower bounds are skipped (containment must
  hold on legal states only).

For the language at hand (project-select with joins against associations,
outer joins, unions, conditions over constants) one output row depends on
one center entity and its incident association tuples, so these small
states are sufficient: any counterexample state can be shrunk to one of
the canonical states.  Worst-case cost is exponential in the number of
sources and mentioned attributes — the NP-hardness the paper cites — and
every state enumeration ticks the work budget.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from repro.algebra.conditions import (
    And,
    Comparison,
    Condition,
    FALSE,
    FalseCond,
    IsNotNull,
    IsNull,
    IsOf,
    IsOfOnly,
    Not,
    Or,
    TRUE,
    TrueCond,
    _compare,
    and_,
    or_,
)
from repro.algebra.evaluate import ClientContext, evaluate_query, output_columns
from repro.algebra.queries import (
    AssociationScan,
    Col,
    Const,
    CtorExpr,
    ProjItem,
    Project,
    Query,
    Select,
    SetScan,
    UnionAll,
    leaf_sources,
    union_all,
)
from repro.algebra.simplify import simplify
from repro.budget import WorkBudget, ensure_budget
from repro.containment.atoms import collect_constants, default_value, value_candidates
from repro.containment.cache import (
    ValidationCache,
    client_slice_tokens,
    fingerprint,
)
from repro.containment.spaces import ClientConditionSpace
from repro.edm.instances import ClientState, Entity
from repro.edm.schema import ClientSchema
from repro.errors import EvaluationError, SchemaError


@dataclass
class ContainmentResult:
    """Outcome of a containment check, with a counterexample on failure.

    ``discharged`` marks a verdict settled purely by the symbolic layer
    (branch subsumption over bitset truth vectors) with zero canonical
    states enumerated; ``branches_discharged``/``branches_pruned`` count
    the Q1 branches covered by implication / dropped as unsatisfiable, and
    ``replayed`` the persisted counterexample states screened first.
    """

    holds: bool
    counterexample: Optional[ClientState] = None
    missing_row: Optional[Dict[str, object]] = None
    states_checked: int = 0
    discharged: bool = False
    branches_discharged: int = 0
    branches_pruned: int = 0
    replayed: int = 0

    def __bool__(self) -> bool:
        return self.holds

    def explain(self) -> str:
        if self.holds:
            if self.discharged:
                return (
                    "containment holds (discharged symbolically: "
                    f"{self.branches_discharged} branch(es) subsumed, "
                    f"{self.branches_pruned} pruned, 0 states)"
                )
            return f"containment holds ({self.states_checked} canonical states)"
        lines = [
            "containment FAILS:",
            f"  row {self.missing_row!r} produced by Q1 but not by Q2 on state:",
        ]
        if self.counterexample is not None:
            lines.extend("  " + line for line in str(self.counterexample).splitlines())
        return "\n".join(lines)


def _conditions_of(query: Query) -> List[Condition]:
    return [node.condition for node in query.walk() if isinstance(node, Select)]


def _sources_of(queries: Sequence[Query]) -> Tuple[List[str], List[str]]:
    sets: List[str] = []
    assocs: List[str] = []
    for query in queries:
        for leaf in leaf_sources(query):
            if isinstance(leaf, SetScan) and leaf.set_name not in sets:
                sets.append(leaf.set_name)
            elif isinstance(leaf, AssociationScan) and leaf.assoc_name not in assocs:
                assocs.append(leaf.assoc_name)
    return sets, assocs


class _EntityCandidateFactory:
    """Generates candidate entities for one entity set."""

    def __init__(
        self,
        schema: ClientSchema,
        set_name: str,
        constants: Dict[str, List[object]],
    ) -> None:
        self.schema = schema
        self.set_name = set_name
        self.constants = constants
        self.types = schema.concrete_types_of_set(set_name)

    def candidates(self, key_seed: int, enumerate_attrs: bool) -> List[Entity]:
        """All candidate entities; *key_seed* keeps keys distinct."""
        result: List[Entity] = []
        for type_name in self.types:
            key = set(self.schema.key_of(type_name))
            mentioned: List[str] = []
            pools: List[Tuple[object, ...]] = []
            base: Dict[str, object] = {}
            for attribute in self.schema.attributes_of(type_name):
                if attribute.name in key and attribute.name not in self.constants:
                    base[attribute.name] = self._key_value(attribute, key_seed)
                elif enumerate_attrs and attribute.name in self.constants:
                    mentioned.append(attribute.name)
                    pools.append(
                        value_candidates(
                            attribute.domain,
                            attribute.nullable and attribute.name not in key,
                            self.constants[attribute.name],
                        )
                    )
                elif attribute.name in key:
                    base[attribute.name] = self._key_value(attribute, key_seed)
                else:
                    base[attribute.name] = (
                        None if attribute.nullable else default_value(attribute.domain)
                    )
            for combo in itertools.product(*pools):
                values = dict(base)
                values.update(zip(mentioned, combo))
                result.append(Entity.of(type_name, **values))
        return result

    def _key_value(self, attribute, key_seed: int) -> object:
        base = attribute.domain.base
        if base in ("int", "decimal"):
            return 900000 + key_seed
        if attribute.domain.values is not None:
            values = sorted(attribute.domain.values, key=repr)
            return values[key_seed % len(values)]
        return f"k{key_seed}"


def _canonical_states(
    schema: ClientSchema,
    sets: Sequence[str],
    assocs: Sequence[str],
    constants: Dict[str, List[object]],
    budget: WorkBudget,
) -> Iterator[ClientState]:
    """Enumerate the canonical states described in the module docstring."""
    factories = {name: _EntityCandidateFactory(schema, name, constants) for name in sets}

    per_set_options: List[List[Tuple[str, Tuple[Entity, ...]]]] = []
    for index, set_name in enumerate(sets):
        factory = factories[set_name]
        options: List[Tuple[str, Tuple[Entity, ...]]] = [(set_name, ())]
        centers = factory.candidates(key_seed=2 * index, enumerate_attrs=True)
        for center in centers:
            options.append((set_name, (center,)))
        if _needs_partner(schema, set_name, assocs):
            partners = factory.candidates(key_seed=2 * index + 1, enumerate_attrs=False)
            for center in centers:
                for partner in partners:
                    options.append((set_name, (center, partner)))
        per_set_options.append(options)

    for combo in itertools.product(*per_set_options):
        entities_by_set = {set_name: list(entities) for set_name, entities in combo}
        assoc_option_pools: List[List[Optional[Tuple[str, Entity, Entity]]]] = []
        for assoc_name in assocs:
            association = schema.association(assoc_name)
            pool: List[Optional[Tuple[str, Entity, Entity]]] = [None]
            for e1 in entities_by_set.get(association.entity_set1, []):
                if not _participates(schema, e1, association.end1.entity_type):
                    continue
                for e2 in entities_by_set.get(association.entity_set2, []):
                    if e1 is e2:
                        continue
                    if not _participates(schema, e2, association.end2.entity_type):
                        continue
                    pool.append((assoc_name, e1, e2))
            assoc_option_pools.append(pool)

        for assoc_combo in itertools.product(*assoc_option_pools):
            budget.tick()
            state = ClientState(schema)
            try:
                for set_name, entity_list in entities_by_set.items():
                    for entity in entity_list:
                        state.add_entity(set_name, entity)
                for option in assoc_combo:
                    if option is None:
                        continue
                    assoc_name, e1, e2 = option
                    association = schema.association(assoc_name)
                    key1 = schema.key_of(association.end1.entity_type)
                    key2 = schema.key_of(association.end2.entity_type)
                    state.add_association(
                        assoc_name, e1.key_tuple(key1), e2.key_tuple(key2)
                    )
            except SchemaError:
                continue  # duplicate keys or multiplicity upper bound: skip
            if not _satisfies_lower_bounds(schema, state):
                continue
            yield state


def _needs_partner(schema: ClientSchema, set_name: str, assocs: Sequence[str]) -> bool:
    """A second entity is needed iff some scanned association is self-set."""
    for assoc_name in assocs:
        association = schema.association(assoc_name)
        if association.entity_set1 == set_name and association.entity_set2 == set_name:
            return True
    return False


def _participates(schema: ClientSchema, entity: Entity, end_type: str) -> bool:
    return end_type in schema.ancestors_or_self(entity.concrete_type)


def _satisfies_lower_bounds(schema: ClientSchema, state: ClientState) -> bool:
    """Check multiplicity-1 (required) ends on the canonical state."""
    for association in schema.associations:
        required1 = association.end1.multiplicity.value == "1"
        required2 = association.end2.multiplicity.value == "1"
        if not (required1 or required2):
            continue
        key1 = schema.key_of(association.end1.entity_type)
        key2 = schema.key_of(association.end2.entity_type)
        pairs = state.associations(association.name)
        len1 = len(key1)
        if required2:
            # every entity participating at end1 needs a partner
            for entity in state.entities(association.entity_set1):
                if not _participates(schema, entity, association.end1.entity_type):
                    continue
                key = entity.key_tuple(key1)
                if not any(pair[:len1] == key for pair in pairs):
                    return False
        if required1:
            for entity in state.entities(association.entity_set2):
                if not _participates(schema, entity, association.end2.entity_type):
                    continue
                key = entity.key_tuple(key2)
                if not any(pair[len1:] == key for pair in pairs):
                    return False
    return True


def canonical_client_states(
    schema: ClientSchema,
    sets: Sequence[str],
    assocs: Sequence[str],
    conditions: Sequence[Condition] = (),
    budget: Optional[WorkBudget] = None,
) -> Iterator[ClientState]:
    """Public enumeration of canonical states over the given sources.

    Used by the full compiler's roundtrip spot-check (step 5 of validation)
    and by property tests.  *conditions* seed the per-attribute value
    candidates.
    """
    budget = ensure_budget(budget)
    constants = collect_constants(conditions)
    yield from _canonical_states(schema, list(sets), list(assocs), constants, budget)


# ---------------------------------------------------------------------------
# Symbolic layer: branch flattening + bitset subsumption
# ---------------------------------------------------------------------------

class _NotFlat(Exception):
    """The query is outside the flattenable single-set project-select-union
    fragment (joins, association scans, dead type tags, out-of-map column
    references): fall back to canonical-state enumeration."""


@dataclass
class _Branch:
    """One union branch of a flattened query: rows of ``SetScan(set_name)``
    filtered by *condition* (over scan attributes and the type tag) and
    rebuilt through *out* (output column -> scan attribute or constant).

    ``tag_alive`` records whether the branch's rows still carry the hidden
    type tag (no projection or union above the scan).  ``presence`` lists
    ``(guard, attrs)`` obligations: whenever *guard* is satisfiable for a
    concrete type, that type must carry all of *attrs* — otherwise the real
    evaluator could raise on a missing projection column or pad a NULL the
    symbolic rewrite did not model, so the check must fall back.
    """

    set_name: str
    condition: Condition
    out: Dict[str, CtorExpr]
    tag_alive: bool
    presence: Tuple[Tuple[Condition, FrozenSet[str]], ...] = ()


def _rewrite_through(condition: Condition, branch: _Branch) -> Condition:
    """Rewrite a Select condition applied *above* the branch's out-map into
    an equivalent condition over the branch's scan tuple, constant-folding
    references to padded/pinned columns exactly as the evaluator would."""
    out = branch.out

    def rewrite(node: Condition) -> Condition:
        if isinstance(node, (TrueCond, FalseCond)):
            return node
        if isinstance(node, (IsOf, IsOfOnly)):
            if not branch.tag_alive:
                raise _NotFlat  # evaluator would raise: type tag is gone
            return node
        if isinstance(node, IsNull):
            expr = out.get(node.attr)
            if expr is None:
                return FALSE  # missing attribute: null-test atoms are false
            if isinstance(expr, Const):
                return TRUE if expr.value is None else FALSE
            return IsNull(expr.name)
        if isinstance(node, IsNotNull):
            expr = out.get(node.attr)
            if expr is None:
                return FALSE
            if isinstance(expr, Const):
                return FALSE if expr.value is None else TRUE
            return IsNotNull(expr.name)
        if isinstance(node, Comparison):
            expr = out.get(node.attr)
            if expr is None:
                return FALSE
            if isinstance(expr, Const):
                if expr.value is None:
                    return FALSE  # NULL θ c is false under WHERE
                return TRUE if _compare(expr.value, node.op, node.const) else FALSE
            return Comparison(expr.name, node.op, node.const)
        if isinstance(node, And):
            return and_(*(rewrite(op) for op in node.operands))
        if isinstance(node, Or):
            return or_(*(rewrite(op) for op in node.operands))
        if isinstance(node, Not):
            return Not(rewrite(node.operand))
        raise _NotFlat

    return rewrite(condition)


def _flatten(query: Query, context: ClientContext) -> List[_Branch]:
    """Decompose *query* into single-set branches, or raise :class:`_NotFlat`."""
    if isinstance(query, SetScan):
        columns = context.scan_columns(query)
        return [
            _Branch(
                query.set_name,
                TRUE,
                {column: Col(column) for column in columns},
                tag_alive=True,
            )
        ]
    if isinstance(query, Select):
        branches = []
        for branch in _flatten(query.source, context):
            rewritten = _rewrite_through(query.condition, branch)
            branches.append(
                _Branch(
                    branch.set_name,
                    simplify(and_(branch.condition, rewritten)),
                    branch.out,
                    branch.tag_alive,
                    branch.presence,
                )
            )
        return branches
    if isinstance(query, Project):
        branches = []
        for branch in _flatten(query.source, context):
            new_out: Dict[str, CtorExpr] = {}
            refs: set = set()
            for item in query.items:
                if isinstance(item.expr, Const):
                    new_out[item.output] = item.expr
                    continue
                mapped = branch.out.get(item.expr.name)
                if mapped is None:
                    raise _NotFlat  # evaluator raises on the missing column
                if isinstance(mapped, Col):
                    refs.add(mapped.name)
                new_out[item.output] = mapped
            branches.append(
                _Branch(
                    branch.set_name,
                    branch.condition,
                    new_out,
                    tag_alive=False,
                    presence=branch.presence
                    + ((branch.condition, frozenset(refs)),),
                )
            )
        return branches
    if isinstance(query, UnionAll):
        all_columns = output_columns(query, context)
        branches = []
        for union_branch in query.branches:
            for branch in _flatten(union_branch, context):
                new_out = {}
                refs = set()
                for column in all_columns:
                    expr = branch.out.get(column, Const(None))
                    if isinstance(expr, Col):
                        refs.add(expr.name)
                    new_out[column] = expr
                branches.append(
                    _Branch(
                        branch.set_name,
                        branch.condition,
                        new_out,
                        tag_alive=False,
                        presence=branch.presence
                        + ((branch.condition, frozenset(refs)),),
                    )
                )
        return branches
    raise _NotFlat  # joins / association scans need real states


@dataclass
class _SymbolicOutcome:
    """What the subsumption pass settled: covered/pruned counts plus the
    residual Q1 branches that still need canonical-state enumeration."""

    branches_discharged: int = 0
    branches_pruned: int = 0
    residual: List[_Branch] = field(default_factory=list)


def _symbolic_cover(
    q1: Query,
    q2: Query,
    schema: ClientSchema,
    context: ClientContext,
    budget: WorkBudget,
) -> Optional[_SymbolicOutcome]:
    """Try to cover every branch of Q1 by a source-compatible branch of Q2
    whose condition it implies (one bitmask test per pair).  Returns None
    when the queries are outside the flattenable fragment or an attribute
    presence obligation fails — the caller falls back to enumeration."""
    try:
        branches1 = _flatten(q1, context)
        branches2 = _flatten(q2, context)
    except _NotFlat:
        return None

    conditions_by_set: Dict[str, List[Condition]] = {}
    for branch in branches1 + branches2:
        conditions_by_set.setdefault(branch.set_name, []).append(branch.condition)
    spaces = {
        set_name: ClientConditionSpace(schema, set_name, conditions)
        for set_name, conditions in conditions_by_set.items()
    }

    # Attribute-presence obligations: the branch semantics above assumed
    # every referenced scan attribute exists on every concrete type that
    # can reach the reference.  Verify per type via the bitset masks.
    for branch in branches1 + branches2:
        space = spaces[branch.set_name]
        out_refs = frozenset(
            expr.name for expr in branch.out.values() if isinstance(expr, Col)
        )
        for guard, refs in branch.presence + ((branch.condition, out_refs),):
            if not refs:
                continue
            guard_mask = space.mask(guard, budget)
            for type_name in space.types:
                budget.tick()
                if guard_mask & space._mask_for_type(type_name, budget) == 0:
                    continue
                if not refs <= set(schema.attribute_names_of(type_name)):
                    return None

    outcome = _SymbolicOutcome()
    for branch1 in branches1:
        space = spaces[branch1.set_name]
        if space.mask(branch1.condition, budget) == 0:
            outcome.branches_pruned += 1  # unsatisfiable: produces no rows
            continue
        covered = False
        for branch2 in branches2:
            budget.tick()
            if branch2.set_name != branch1.set_name:
                continue
            if branch2.tag_alive != branch1.tag_alive:
                continue
            if branch2.out.keys() != branch1.out.keys():
                continue
            if any(branch1.out[c] != branch2.out[c] for c in branch1.out):
                continue
            if space.implies(branch1.condition, branch2.condition, budget):
                covered = True
                break
        if covered:
            outcome.branches_discharged += 1
        else:
            outcome.residual.append(branch1)
    return outcome


def _branch_query(branch: _Branch, column_order: Sequence[str]) -> Query:
    """Rebuild a flattened branch as an equivalent query tree."""
    query: Query = SetScan(branch.set_name)
    if not isinstance(branch.condition, TrueCond):
        query = Select(query, branch.condition)
    if not branch.tag_alive:
        items = tuple(
            ProjItem(column, branch.out[column])
            for column in column_order
            if column in branch.out
        )
        query = Project(query, items)
    return query


# ---------------------------------------------------------------------------
# Counterexample replay
# ---------------------------------------------------------------------------

def _rebuild_state(
    schema: ClientSchema,
    sets: Sequence[str],
    assocs: Sequence[str],
    state: ClientState,
) -> Optional[ClientState]:
    """Re-materialise a persisted counterexample under the *current* schema.

    Returns None unless the rebuilt state is a legal state of *schema*:
    every entity's set/type/attributes must still exist exactly, every
    association tuple must re-insert cleanly, and multiplicity lower
    bounds must hold.  A state that passes is a genuine canonical state of
    the current schema regardless of which check originally produced it.
    """
    rebuilt = ClientState(schema)
    try:
        for set_name in sets:
            for entity in state.entities(set_name):
                expected = {
                    attribute.name
                    for attribute in schema.attributes_of(entity.concrete_type)
                }
                if set(entity.value_map) != expected:
                    return None
                rebuilt.add_entity(set_name, entity)
        for assoc_name in assocs:
            association = schema.association(assoc_name)
            key1 = schema.key_of(association.end1.entity_type)
            len1 = len(key1)
            for pair in state.associations(assoc_name):
                rebuilt.add_association(assoc_name, pair[:len1], pair[len1:])
    except (SchemaError, KeyError):
        return None
    if not _satisfies_lower_bounds(schema, rebuilt):
        return None
    return rebuilt


def _replay_counterexamples(
    q1: Query,
    q2: Query,
    schema: ClientSchema,
    cache: ValidationCache,
    replay_key: str,
) -> Tuple[Optional[ContainmentResult], int]:
    """Screen persisted failing states before any symbolic or enumeration
    work: a state that still exhibits a Q1-row missing from Q2 fails the
    check in O(1) states (counterexample-guided fail-fast across SMOs)."""
    replayed = 0
    for sets, assocs, state in cache.counterexamples(replay_key):
        rebuilt = _rebuild_state(schema, sets, assocs, state)
        if rebuilt is None:
            continue
        replayed += 1
        try:
            context = ClientContext(rebuilt)
            rows1 = evaluate_query(q1, context)
            if not rows1:
                continue
            rows2 = evaluate_query(q2, context)
            available = {tuple(sorted(row.items())) for row in rows2}
            for row in rows1:
                if tuple(sorted(row.items())) not in available:
                    cache.record_counterexample(replay_key, sets, assocs, rebuilt)
                    return (
                        ContainmentResult(
                            holds=False,
                            counterexample=rebuilt,
                            missing_row=row,
                            states_checked=replayed,
                            replayed=replayed,
                        ),
                        replayed,
                    )
        except (EvaluationError, SchemaError, KeyError):
            continue  # the state no longer fits the queries: not evidence
    return None, replayed


# ---------------------------------------------------------------------------
# The check
# ---------------------------------------------------------------------------

def check_containment(
    q1: Query,
    q2: Query,
    schema: ClientSchema,
    budget: Optional[WorkBudget] = None,
    cache: Optional[ValidationCache] = None,
    symbolic: bool = True,
) -> ContainmentResult:
    """Decide ``Q1 ⊆ Q2`` over all legal client states of *schema*.

    Both queries must have the same static output columns (the validation
    code aligns them with renaming projections, as the paper does with
    ``π_{β AS γ}``).

    The layered fast path (``symbolic=True``) first replays any persisted
    counterexample states for this check, then attempts a branch-level
    subsumption proof over bitset truth vectors, and only enumerates
    canonical states for the residual uncovered branches; ``symbolic=False``
    restores the pure enumerator (the pre-symbolic baseline the benchmarks
    compare against).  Both paths return identical verdicts.

    With a *cache*, the result is memoised under a fingerprint of both
    query trees and the schema neighborhood they scan (including every
    association whose multiplicity bounds constrain the canonical states),
    so any mutation that could change the verdict changes the key; failing
    states are additionally persisted under the same key (surviving
    transaction rollbacks) for replay-first re-validation.
    """
    if cache is not None:
        sets, assocs = _sources_of([q1, q2])
        key = fingerprint(
            "containment",
            q1,
            q2,
            client_slice_tokens(schema, sets=sets, assocs=assocs),
            symbolic,
        )
        return cache.get_or_compute(
            "containment",
            key,
            lambda: _check_containment(
                q1, q2, schema, budget, cache=cache, replay_key=key, symbolic=symbolic
            ),
        )
    return _check_containment(q1, q2, schema, budget, symbolic=symbolic)


def _check_containment(
    q1: Query,
    q2: Query,
    schema: ClientSchema,
    budget: Optional[WorkBudget] = None,
    cache: Optional[ValidationCache] = None,
    replay_key: Optional[str] = None,
    symbolic: bool = True,
) -> ContainmentResult:
    budget = ensure_budget(budget)
    probe_state = ClientState(schema)
    probe = ClientContext(probe_state)
    cols1 = set(output_columns(q1, probe))
    cols2 = set(output_columns(q2, probe))
    if cols1 != cols2:
        raise EvaluationError(
            f"containment requires aligned projections; got {sorted(cols1)} "
            f"vs {sorted(cols2)}"
        )

    replayed = 0
    if cache is not None and replay_key is not None:
        failure, replayed = _replay_counterexamples(q1, q2, schema, cache, replay_key)
        if failure is not None:
            return failure

    branches_discharged = 0
    branches_pruned = 0
    q1_effective = q1
    if symbolic:
        outcome = _symbolic_cover(q1, q2, schema, probe, budget)
        if outcome is not None:
            branches_discharged = outcome.branches_discharged
            branches_pruned = outcome.branches_pruned
            if not outcome.residual:
                return ContainmentResult(
                    holds=True,
                    states_checked=0,
                    discharged=True,
                    branches_discharged=branches_discharged,
                    branches_pruned=branches_pruned,
                    replayed=replayed,
                )
            # Enumerate states only for the uncovered branches: the residual
            # query scans fewer sources, so the canonical state space is
            # strictly smaller whenever anything was discharged.
            column_order = output_columns(q1, probe)
            q1_effective = union_all(
                [_branch_query(branch, column_order) for branch in outcome.residual]
            )

    sets, assocs = _sources_of([q1_effective, q2])
    conditions = _conditions_of(q1_effective) + _conditions_of(q2)
    constants = collect_constants(conditions)

    states_checked = 0
    for state in _canonical_states(schema, sets, assocs, constants, budget):
        states_checked += 1
        context = ClientContext(state)
        rows1 = evaluate_query(q1_effective, context)
        if not rows1:
            continue
        rows2 = evaluate_query(q2, context)
        available = {tuple(sorted(row.items())) for row in rows2}
        for row in rows1:
            if tuple(sorted(row.items())) not in available:
                if cache is not None and replay_key is not None:
                    cache.record_counterexample(replay_key, sets, assocs, state)
                return ContainmentResult(
                    holds=False,
                    counterexample=state,
                    missing_row=row,
                    states_checked=states_checked,
                    branches_discharged=branches_discharged,
                    branches_pruned=branches_pruned,
                    replayed=replayed,
                )
    return ContainmentResult(
        holds=True,
        states_checked=states_checked,
        branches_discharged=branches_discharged,
        branches_pruned=branches_pruned,
        replayed=replayed,
    )
