"""CQC-style query containment over client states.

Checks ``Q1 ⊆ Q2`` for client-side queries (the shape of every validation
check in Sections 3.1.4 and 3.2, after unfolding update views) by
enumerating *canonical client states* and evaluating both queries on each —
the canonical-instance method of Farré et al.'s CQC [9], specialised to the
fragment/view language:

* every entity set scanned by either query contributes zero or one *center*
  entity, sweeping concrete types and candidate values for every attribute
  mentioned in a condition (plus a *partner* entity where a self-set
  association needs one);
* every association set scanned contributes either no tuple or one tuple
  over a compatible pair of present entities;
* states violating multiplicity lower bounds are skipped (containment must
  hold on legal states only).

For the language at hand (project-select with joins against associations,
outer joins, unions, conditions over constants) one output row depends on
one center entity and its incident association tuples, so these small
states are sufficient: any counterexample state can be shrunk to one of
the canonical states.  Worst-case cost is exponential in the number of
sources and mentioned attributes — the NP-hardness the paper cites — and
every state enumeration ticks the work budget.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.algebra.conditions import Condition
from repro.algebra.evaluate import ClientContext, evaluate_query, output_columns
from repro.algebra.queries import (
    AssociationScan,
    Query,
    Select,
    SetScan,
    leaf_sources,
)
from repro.budget import WorkBudget, ensure_budget
from repro.containment.atoms import collect_constants, default_value, value_candidates
from repro.containment.cache import (
    ValidationCache,
    client_slice_tokens,
    fingerprint,
)
from repro.edm.instances import ClientState, Entity
from repro.edm.schema import ClientSchema
from repro.errors import EvaluationError, SchemaError


@dataclass
class ContainmentResult:
    """Outcome of a containment check, with a counterexample on failure."""

    holds: bool
    counterexample: Optional[ClientState] = None
    missing_row: Optional[Dict[str, object]] = None
    states_checked: int = 0

    def __bool__(self) -> bool:
        return self.holds

    def explain(self) -> str:
        if self.holds:
            return f"containment holds ({self.states_checked} canonical states)"
        lines = [
            "containment FAILS:",
            f"  row {self.missing_row!r} produced by Q1 but not by Q2 on state:",
        ]
        if self.counterexample is not None:
            lines.extend("  " + line for line in str(self.counterexample).splitlines())
        return "\n".join(lines)


def _conditions_of(query: Query) -> List[Condition]:
    return [node.condition for node in query.walk() if isinstance(node, Select)]


def _sources_of(queries: Sequence[Query]) -> Tuple[List[str], List[str]]:
    sets: List[str] = []
    assocs: List[str] = []
    for query in queries:
        for leaf in leaf_sources(query):
            if isinstance(leaf, SetScan) and leaf.set_name not in sets:
                sets.append(leaf.set_name)
            elif isinstance(leaf, AssociationScan) and leaf.assoc_name not in assocs:
                assocs.append(leaf.assoc_name)
    return sets, assocs


class _EntityCandidateFactory:
    """Generates candidate entities for one entity set."""

    def __init__(
        self,
        schema: ClientSchema,
        set_name: str,
        constants: Dict[str, List[object]],
    ) -> None:
        self.schema = schema
        self.set_name = set_name
        self.constants = constants
        self.types = schema.concrete_types_of_set(set_name)

    def candidates(self, key_seed: int, enumerate_attrs: bool) -> List[Entity]:
        """All candidate entities; *key_seed* keeps keys distinct."""
        result: List[Entity] = []
        for type_name in self.types:
            key = set(self.schema.key_of(type_name))
            mentioned: List[str] = []
            pools: List[Tuple[object, ...]] = []
            base: Dict[str, object] = {}
            for attribute in self.schema.attributes_of(type_name):
                if attribute.name in key and attribute.name not in self.constants:
                    base[attribute.name] = self._key_value(attribute, key_seed)
                elif enumerate_attrs and attribute.name in self.constants:
                    mentioned.append(attribute.name)
                    pools.append(
                        value_candidates(
                            attribute.domain,
                            attribute.nullable and attribute.name not in key,
                            self.constants[attribute.name],
                        )
                    )
                elif attribute.name in key:
                    base[attribute.name] = self._key_value(attribute, key_seed)
                else:
                    base[attribute.name] = (
                        None if attribute.nullable else default_value(attribute.domain)
                    )
            for combo in itertools.product(*pools):
                values = dict(base)
                values.update(zip(mentioned, combo))
                result.append(Entity.of(type_name, **values))
        return result

    def _key_value(self, attribute, key_seed: int) -> object:
        base = attribute.domain.base
        if base in ("int", "decimal"):
            return 900000 + key_seed
        if attribute.domain.values is not None:
            values = sorted(attribute.domain.values, key=repr)
            return values[key_seed % len(values)]
        return f"k{key_seed}"


def _canonical_states(
    schema: ClientSchema,
    sets: Sequence[str],
    assocs: Sequence[str],
    constants: Dict[str, List[object]],
    budget: WorkBudget,
) -> Iterator[ClientState]:
    """Enumerate the canonical states described in the module docstring."""
    factories = {name: _EntityCandidateFactory(schema, name, constants) for name in sets}

    per_set_options: List[List[Tuple[str, Tuple[Entity, ...]]]] = []
    for index, set_name in enumerate(sets):
        factory = factories[set_name]
        options: List[Tuple[str, Tuple[Entity, ...]]] = [(set_name, ())]
        centers = factory.candidates(key_seed=2 * index, enumerate_attrs=True)
        for center in centers:
            options.append((set_name, (center,)))
        if _needs_partner(schema, set_name, assocs):
            partners = factory.candidates(key_seed=2 * index + 1, enumerate_attrs=False)
            for center in centers:
                for partner in partners:
                    options.append((set_name, (center, partner)))
        per_set_options.append(options)

    for combo in itertools.product(*per_set_options):
        entities_by_set = {set_name: list(entities) for set_name, entities in combo}
        assoc_option_pools: List[List[Optional[Tuple[str, Entity, Entity]]]] = []
        for assoc_name in assocs:
            association = schema.association(assoc_name)
            pool: List[Optional[Tuple[str, Entity, Entity]]] = [None]
            for e1 in entities_by_set.get(association.entity_set1, []):
                if not _participates(schema, e1, association.end1.entity_type):
                    continue
                for e2 in entities_by_set.get(association.entity_set2, []):
                    if e1 is e2:
                        continue
                    if not _participates(schema, e2, association.end2.entity_type):
                        continue
                    pool.append((assoc_name, e1, e2))
            assoc_option_pools.append(pool)

        for assoc_combo in itertools.product(*assoc_option_pools):
            budget.tick()
            state = ClientState(schema)
            try:
                for set_name, entity_list in entities_by_set.items():
                    for entity in entity_list:
                        state.add_entity(set_name, entity)
                for option in assoc_combo:
                    if option is None:
                        continue
                    assoc_name, e1, e2 = option
                    association = schema.association(assoc_name)
                    key1 = schema.key_of(association.end1.entity_type)
                    key2 = schema.key_of(association.end2.entity_type)
                    state.add_association(
                        assoc_name, e1.key_tuple(key1), e2.key_tuple(key2)
                    )
            except SchemaError:
                continue  # duplicate keys or multiplicity upper bound: skip
            if not _satisfies_lower_bounds(schema, state):
                continue
            yield state


def _needs_partner(schema: ClientSchema, set_name: str, assocs: Sequence[str]) -> bool:
    """A second entity is needed iff some scanned association is self-set."""
    for assoc_name in assocs:
        association = schema.association(assoc_name)
        if association.entity_set1 == set_name and association.entity_set2 == set_name:
            return True
    return False


def _participates(schema: ClientSchema, entity: Entity, end_type: str) -> bool:
    return end_type in schema.ancestors_or_self(entity.concrete_type)


def _satisfies_lower_bounds(schema: ClientSchema, state: ClientState) -> bool:
    """Check multiplicity-1 (required) ends on the canonical state."""
    for association in schema.associations:
        required1 = association.end1.multiplicity.value == "1"
        required2 = association.end2.multiplicity.value == "1"
        if not (required1 or required2):
            continue
        key1 = schema.key_of(association.end1.entity_type)
        key2 = schema.key_of(association.end2.entity_type)
        pairs = state.associations(association.name)
        len1 = len(key1)
        if required2:
            # every entity participating at end1 needs a partner
            for entity in state.entities(association.entity_set1):
                if not _participates(schema, entity, association.end1.entity_type):
                    continue
                key = entity.key_tuple(key1)
                if not any(pair[:len1] == key for pair in pairs):
                    return False
        if required1:
            for entity in state.entities(association.entity_set2):
                if not _participates(schema, entity, association.end2.entity_type):
                    continue
                key = entity.key_tuple(key2)
                if not any(pair[len1:] == key for pair in pairs):
                    return False
    return True


def canonical_client_states(
    schema: ClientSchema,
    sets: Sequence[str],
    assocs: Sequence[str],
    conditions: Sequence[Condition] = (),
    budget: Optional[WorkBudget] = None,
) -> Iterator[ClientState]:
    """Public enumeration of canonical states over the given sources.

    Used by the full compiler's roundtrip spot-check (step 5 of validation)
    and by property tests.  *conditions* seed the per-attribute value
    candidates.
    """
    budget = ensure_budget(budget)
    constants = collect_constants(conditions)
    yield from _canonical_states(schema, list(sets), list(assocs), constants, budget)


def check_containment(
    q1: Query,
    q2: Query,
    schema: ClientSchema,
    budget: Optional[WorkBudget] = None,
    cache: Optional[ValidationCache] = None,
) -> ContainmentResult:
    """Decide ``Q1 ⊆ Q2`` over all legal client states of *schema*.

    Both queries must have the same static output columns (the validation
    code aligns them with renaming projections, as the paper does with
    ``π_{β AS γ}``).

    With a *cache*, the result is memoised under a fingerprint of both
    query trees and the schema neighborhood they scan (including every
    association whose multiplicity bounds constrain the canonical states),
    so any mutation that could change the verdict changes the key.
    """
    if cache is not None:
        sets, assocs = _sources_of([q1, q2])
        key = fingerprint(
            "containment",
            q1,
            q2,
            client_slice_tokens(schema, sets=sets, assocs=assocs),
        )
        return cache.get_or_compute(
            "containment", key, lambda: _check_containment(q1, q2, schema, budget)
        )
    return _check_containment(q1, q2, schema, budget)


def _check_containment(
    q1: Query,
    q2: Query,
    schema: ClientSchema,
    budget: Optional[WorkBudget] = None,
) -> ContainmentResult:
    budget = ensure_budget(budget)
    sets, assocs = _sources_of([q1, q2])
    conditions = _conditions_of(q1) + _conditions_of(q2)
    constants = collect_constants(conditions)

    probe_state = ClientState(schema)
    probe = ClientContext(probe_state)
    cols1 = set(output_columns(q1, probe))
    cols2 = set(output_columns(q2, probe))
    if cols1 != cols2:
        raise EvaluationError(
            f"containment requires aligned projections; got {sorted(cols1)} "
            f"vs {sorted(cols2)}"
        )

    states_checked = 0
    for state in _canonical_states(schema, sets, assocs, constants, budget):
        states_checked += 1
        context = ClientContext(state)
        rows1 = evaluate_query(q1, context)
        if not rows1:
            continue
        rows2 = evaluate_query(q2, context)
        available = {tuple(sorted(row.items())) for row in rows2}
        for row in rows1:
            if tuple(sorted(row.items())) not in available:
                return ContainmentResult(
                    holds=False,
                    counterexample=state,
                    missing_row=row,
                    states_checked=states_checked,
                )
    return ContainmentResult(holds=True, states_checked=states_checked)
