"""Store states: concrete table contents for a store schema.

Rows are immutable mappings from column name to value.  Update views emit
rows; constraint checking (`repro.relational.constraints`) then verifies
keys and foreign keys — the runtime counterpart of the compiler's symbolic
constraint-preservation checks.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, FrozenSet, List, Mapping, Tuple

from repro.errors import EvaluationError, SchemaError
from repro.relational.schema import StoreSchema

Row = Tuple[Tuple[str, object], ...]


def make_row(**values: object) -> Row:
    """Build a canonical (sorted, hashable) row."""
    return tuple(sorted(values.items()))


def row_from_mapping(values: Mapping[str, object]) -> Row:
    return tuple(sorted(values.items()))


@lru_cache(maxsize=65536)
def _row_dict(row: Row) -> Dict[str, object]:
    """The dict view of a row, memoized by the (hashable) row itself.

    ``row_value`` sits in every evaluation and constraint-check inner
    loop; a linear scan per access made key extraction O(columns) per
    column.  Rows are immutable and repeatedly revisited (constraint
    checks touch each row once per key/FK column, diffs once per key
    column), so one cached dict per distinct row makes every subsequent
    access O(1).  Callers must never mutate the returned dict — use
    :func:`row_map` for a private copy.
    """
    return dict(row)


def row_value(row: Row, column: str) -> object:
    try:
        return _row_dict(row)[column]
    except KeyError:
        raise EvaluationError(f"row has no column {column!r}: {row}") from None


def row_values(row: Row, columns: Tuple[str, ...]) -> Tuple[object, ...]:
    """Extract several columns with a single cached-dict lookup."""
    values = _row_dict(row)
    try:
        return tuple(values[c] for c in columns)
    except KeyError as exc:
        raise EvaluationError(f"row has no column {exc.args[0]!r}: {row}") from None


def row_map(row: Row) -> Dict[str, object]:
    """A fresh, caller-owned dict of the row (safe to mutate)."""
    return _row_dict(row).copy()


def row_view(row: Row) -> Dict[str, object]:
    """The *shared*, memoized dict view of the row.

    Compiled table scans hand these straight to predicate and join
    kernels, skipping :func:`row_map`'s per-scan copy.  Callers must
    treat the result as immutable.
    """
    return _row_dict(row)


class StoreState:
    """An instance of a :class:`StoreSchema`: a bag of rows per table.

    Rows are de-duplicated (set semantics): the view language projects keys
    everywhere, so duplicates never carry information.
    """

    def __init__(self, schema: StoreSchema) -> None:
        self.schema = schema
        # populated lazily: large store schemas must not pay O(tables)
        self._rows: Dict[str, List[Row]] = {}
        # parallel membership sets: bulk loads (10^5-row benchmark
        # stores) must not pay O(rows) per-row list-membership dedup
        self._row_sets: Dict[str, set] = {}
        # lazily-built key indexes, carried across successor states so
        # delta-scoped constraint checks probe instead of re-scan; bucket
        # lists are REPLACED, never mutated, because successors share them
        self._indexes: Dict[Tuple[str, Tuple[str, ...]], Dict[Tuple, List[Row]]] = {}

    def add_row(self, table_name: str, row: Mapping[str, object] | Row) -> Row:
        if table_name not in self._rows:
            if not self.schema.has_table(table_name):
                raise SchemaError(f"unknown table {table_name!r}")
            self._rows[table_name] = []
            self._row_sets[table_name] = set()
        table = self.schema.table(table_name)
        canonical = row_from_mapping(row) if isinstance(row, Mapping) else row
        provided = {name for name, _ in canonical}
        expected = set(table.column_names)
        if provided != expected:
            raise SchemaError(
                f"row for {table_name!r} must assign exactly {sorted(expected)}, "
                f"got {sorted(provided)}"
            )
        for name, value in canonical:
            column = table.column(name)
            if value is None:
                if not column.nullable:
                    raise SchemaError(
                        f"column {name!r} of {table_name!r} is not nullable"
                    )
            elif not column.domain.contains(value):
                raise SchemaError(
                    f"value {value!r} outside domain of {table_name}.{name}"
                )
        if canonical not in self._row_sets[table_name]:
            self._rows[table_name].append(canonical)
            self._row_sets[table_name].add(canonical)
            for (indexed, columns), index in self._indexes.items():
                if indexed == table_name:
                    values = row_values(canonical, columns)
                    bucket = index.get(values)
                    # replace-on-write: buckets may be shared with the
                    # predecessor state this one was carried from
                    index[values] = (
                        [canonical] if bucket is None else bucket + [canonical]
                    )
        return canonical

    def adopt_table(self, other: "StoreState", table_name: str) -> None:
        """Share *other*'s row storage for one table.

        For successor states (delta application): tables the delta does
        not touch are carried over by reference instead of re-validated
        row by row.  Both states then alias one list, so neither may
        ``add_row`` into an adopted table afterwards — successor states
        are immutable once published, which the backends guarantee.
        """
        rows = other._rows.get(table_name)
        if not rows:
            return
        self._rows[table_name] = rows
        self._row_sets[table_name] = other._row_sets[table_name]
        # the rows are aliased, so the indexes can be too
        for key, index in other._indexes.items():
            if key[0] == table_name:
                self._indexes[key] = index

    def carry_rows(self, other: "StoreState", table_name: str, dead) -> None:
        """Copy *other*'s rows for one table, minus the rows in *dead*.

        The carried rows were validated when *other* first added them, so
        this skips :meth:`add_row`'s per-row domain checks — delta
        application over a large table must cost a C-level filter, not a
        Python-level re-validation of every surviving row.  Unlike
        :meth:`adopt_table` the storage is fresh (not aliased), so the
        caller may keep adding rows to the table afterwards.
        """
        if not self.schema.has_table(table_name):
            raise SchemaError(f"unknown table {table_name!r}")
        kept = [r for r in other._rows.get(table_name, ()) if r not in dead]
        self._rows[table_name] = kept
        self._row_sets[table_name] = set(kept)
        # derive the predecessor's indexes in O(|dead|): copy the outer
        # dict, rebuild only the buckets that lost rows
        for (indexed, columns), index in other._indexes.items():
            if indexed != table_name:
                continue
            derived = dict(index)
            for row in dead:
                values = row_values(row, columns)
                bucket = derived.get(values)
                if bucket is None:
                    continue
                remaining = [r for r in bucket if r not in dead]
                if remaining:
                    derived[values] = remaining
                else:
                    del derived[values]
            self._indexes[(indexed, columns)] = derived

    def key_index(
        self, table_name: str, columns: Tuple[str, ...]
    ) -> Dict[Tuple, List[Row]]:
        """The table's rows grouped by their values of *columns*.

        Built lazily (one O(rows) pass), then maintained incrementally:
        :meth:`add_row` appends to buckets (replace-on-write) and
        :meth:`carry_rows` / :meth:`adopt_table` hand the index to
        successor states, adjusted in O(|delta|).  Delta-scoped
        constraint checking (:func:`repro.relational.constraints.
        check_delta`) probes these instead of re-scanning tables, which
        is what keeps incremental saves O(|delta|) warm.  Callers must
        treat the buckets as immutable.
        """
        cache_key = (table_name, columns)
        index = self._indexes.get(cache_key)
        if index is None:
            index = {}
            for row in self._rows.get(table_name, ()):
                index.setdefault(row_values(row, columns), []).append(row)
            self._indexes[cache_key] = index
        return index

    def rows(self, table_name: str) -> Tuple[Row, ...]:
        if table_name not in self._rows:
            if not self.schema.has_table(table_name):
                raise SchemaError(f"unknown table {table_name!r}")
            return ()
        return tuple(self._rows[table_name])

    def populated_tables(self):
        """Tables with at least one row (lazy states: only these can
        violate constraints)."""
        return tuple(
            self.schema.table(name) for name, rows in self._rows.items() if rows
        )

    def row_count(self) -> int:
        return sum(len(rows) for rows in self._rows.values())

    def snapshot(self) -> Dict[str, FrozenSet[Row]]:
        return {name: frozenset(rows) for name, rows in self._rows.items() if rows}

    def equals(self, other: "StoreState") -> bool:
        return self.snapshot() == other.snapshot()

    def __str__(self) -> str:
        lines = ["StoreState:"]
        for table_name, rows in self._rows.items():
            if rows:
                lines.append(f"  {table_name}: {[dict(r) for r in rows]}")
        return "\n".join(lines)
