"""The relational store schema: tables, columns, keys and foreign keys.

A relational schema is "a restricted EDM schema, with no inheritance or
associations" (Section 2).  Each table has a primary key and may have
foreign keys mapping one or more of its columns to the key of another
table; foreign-key preservation is the central validation obligation of
the incremental compiler (Sections 3.1.4 and 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from repro.edm.types import Domain, STRING
from repro.errors import SchemaError


@dataclass(frozen=True)
class Column:
    """A table column: name, domain, nullability."""

    name: str
    domain: Domain = field(default=STRING)
    nullable: bool = True

    def __str__(self) -> str:
        suffix = "?" if self.nullable else ""
        return f"{self.name}: {self.domain}{suffix}"


@dataclass(frozen=True)
class ForeignKey:
    """A foreign key: columns of the owning table → key columns of a target.

    ``columns`` and ``ref_columns`` are positionally aligned.  The paper
    writes this as ``β → γ`` with the semantics ``π_β(R) ⊆ π_γ(S)`` on
    non-null values.
    """

    columns: Tuple[str, ...]
    ref_table: str
    ref_columns: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.columns) != len(self.ref_columns):
            raise SchemaError(
                f"foreign key arity mismatch: {self.columns} vs {self.ref_columns}"
            )
        if not self.columns:
            raise SchemaError("foreign key must have at least one column")

    def __str__(self) -> str:
        return f"FK({', '.join(self.columns)}) -> {self.ref_table}({', '.join(self.ref_columns)})"


@dataclass(frozen=True)
class Table:
    """A store table with a primary key and optional foreign keys."""

    name: str
    columns: Tuple[Column, ...]
    primary_key: Tuple[str, ...]
    foreign_keys: Tuple[ForeignKey, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("table name must be non-empty")
        names = [c.name for c in self.columns]
        if len(names) != len(set(names)):
            raise SchemaError(f"duplicate column names in table {self.name!r}")
        if not self.primary_key:
            raise SchemaError(f"table {self.name!r} must declare a primary key")
        for key_col in self.primary_key:
            column = self._column_or_none(key_col)
            if column is None:
                raise SchemaError(f"primary key column {key_col!r} missing in {self.name!r}")
            if column.nullable:
                raise SchemaError(
                    f"primary key column {key_col!r} of {self.name!r} must not be nullable"
                )
        for foreign_key in self.foreign_keys:
            for col in foreign_key.columns:
                if self._column_or_none(col) is None:
                    raise SchemaError(
                        f"foreign key column {col!r} missing in table {self.name!r}"
                    )

    def _column_or_none(self, name: str) -> Optional[Column]:
        for column in self.columns:
            if column.name == name:
                return column
        return None

    def column(self, name: str) -> Column:
        column = self._column_or_none(name)
        if column is None:
            raise SchemaError(f"table {self.name!r} has no column {name!r}")
        return column

    def has_column(self, name: str) -> bool:
        return self._column_or_none(name) is not None

    @property
    def column_names(self) -> Tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    def __str__(self) -> str:
        cols = ", ".join(str(c) for c in self.columns)
        fks = "; ".join(str(fk) for fk in self.foreign_keys)
        key = ", ".join(self.primary_key)
        rendered = f"{self.name}({cols}) PK({key})"
        return f"{rendered} {fks}" if fks else rendered


class StoreSchema:
    """A mutable registry of tables.

    Mutable because SMOs add tables (e.g. a TPT ``AddEntity`` creates the
    new store table); :meth:`clone` supports rollback on failed validation.
    """

    def __init__(self, tables: Iterable[Table] = ()) -> None:
        self._tables: Dict[str, Table] = {}
        for table in tables:
            self.add_table(table)

    def add_table(self, table: Table) -> Table:
        if table.name in self._tables:
            raise SchemaError(f"table {table.name!r} already exists")
        self._tables[table.name] = table
        return table

    def drop_table(self, name: str) -> Table:
        if name not in self._tables:
            raise SchemaError(f"table {name!r} does not exist")
        for other in self._tables.values():
            if other.name == name:
                continue
            for foreign_key in other.foreign_keys:
                if foreign_key.ref_table == name:
                    raise SchemaError(
                        f"cannot drop {name!r}: {other.name!r} has {foreign_key}"
                    )
        return self._tables.pop(name)

    def replace_table(self, table: Table) -> Table:
        """Swap in a revised definition of an existing table (AddProperty)."""
        if table.name not in self._tables:
            raise SchemaError(f"table {table.name!r} does not exist")
        self._tables[table.name] = table
        return table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise SchemaError(f"unknown table {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    @property
    def tables(self) -> Tuple[Table, ...]:
        return tuple(self._tables.values())

    def validate(self) -> None:
        """Check referential well-formedness of all foreign keys."""
        for table in self._tables.values():
            for foreign_key in table.foreign_keys:
                if foreign_key.ref_table not in self._tables:
                    raise SchemaError(
                        f"{table.name!r}: {foreign_key} references unknown table"
                    )
                target = self._tables[foreign_key.ref_table]
                if tuple(target.primary_key) != tuple(foreign_key.ref_columns):
                    raise SchemaError(
                        f"{table.name!r}: {foreign_key} must reference the primary key "
                        f"of {target.name!r} ({target.primary_key})"
                    )

    def clone(self) -> "StoreSchema":
        other = StoreSchema()
        other._tables = dict(self._tables)
        return other

    def __str__(self) -> str:
        lines = ["StoreSchema:"]
        lines.extend(f"  {t}" for t in self._tables.values())
        return "\n".join(lines)
