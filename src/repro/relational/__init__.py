"""Relational store model: tables, constraints, instances."""

from repro.relational.constraints import (
    ConstraintViolation,
    check_all,
    check_foreign_keys,
    check_primary_keys,
    is_consistent,
)
from repro.relational.instances import (
    Row,
    StoreState,
    make_row,
    row_from_mapping,
    row_map,
    row_value,
)
from repro.relational.schema import Column, ForeignKey, StoreSchema, Table

__all__ = [
    "Column",
    "ConstraintViolation",
    "ForeignKey",
    "Row",
    "StoreSchema",
    "StoreState",
    "Table",
    "check_all",
    "check_foreign_keys",
    "check_primary_keys",
    "is_consistent",
    "make_row",
    "row_from_mapping",
    "row_map",
    "row_value",
]
