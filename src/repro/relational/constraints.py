"""Runtime checking of key and foreign-key constraints on store states.

The compilers check constraint *preservation* symbolically (via query
containment); this module checks constraints on concrete states.  The two
must agree: if a mapping validates, then every store state produced by its
update views from a legal client state satisfies all constraints.  Property
tests enforce that agreement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.relational.instances import StoreState, row_values


@dataclass(frozen=True)
class ConstraintViolation:
    """One violated constraint, with a human-readable description."""

    table: str
    kind: str  # "primary-key" | "foreign-key" | "not-null"
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.table}: {self.detail}"


def check_primary_keys(state: StoreState) -> List[ConstraintViolation]:
    violations: List[ConstraintViolation] = []
    for table in state.populated_tables():
        seen = {}
        for row in state.rows(table.name):
            key = row_values(row, table.primary_key)
            if any(v is None for v in key):
                violations.append(
                    ConstraintViolation(table.name, "not-null", f"null in key {key!r}")
                )
                continue
            if key in seen and seen[key] != row:
                violations.append(
                    ConstraintViolation(
                        table.name, "primary-key", f"duplicate key {key!r}"
                    )
                )
            seen[key] = row
    return violations


def check_foreign_keys(state: StoreState) -> List[ConstraintViolation]:
    violations: List[ConstraintViolation] = []
    for table in state.populated_tables():
        for foreign_key in table.foreign_keys:
            target_keys = {
                row_values(r, foreign_key.ref_columns)
                for r in state.rows(foreign_key.ref_table)
            }
            for row in state.rows(table.name):
                value = row_values(row, foreign_key.columns)
                if any(v is None for v in value):
                    continue  # null foreign keys are vacuously satisfied
                if value not in target_keys:
                    violations.append(
                        ConstraintViolation(
                            table.name,
                            "foreign-key",
                            f"{foreign_key} dangles for value {value!r}",
                        )
                    )
    return violations


def check_all(state: StoreState) -> List[ConstraintViolation]:
    """All primary-key and foreign-key violations of *state*."""
    return check_primary_keys(state) + check_foreign_keys(state)


def is_consistent(state: StoreState) -> bool:
    return not check_all(state)
