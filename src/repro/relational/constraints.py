"""Runtime checking of key and foreign-key constraints on store states.

The compilers check constraint *preservation* symbolically (via query
containment); this module checks constraints on concrete states.  The two
must agree: if a mapping validates, then every store state produced by its
update views from a legal client state satisfies all constraints.  Property
tests enforce that agreement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.relational.instances import Row, StoreState, row_values


@dataclass(frozen=True)
class ConstraintViolation:
    """One violated constraint, with a human-readable description."""

    table: str
    kind: str  # "primary-key" | "foreign-key" | "not-null"
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.table}: {self.detail}"


def check_primary_keys(state: StoreState) -> List[ConstraintViolation]:
    violations: List[ConstraintViolation] = []
    for table in state.populated_tables():
        seen = {}
        for row in state.rows(table.name):
            key = row_values(row, table.primary_key)
            if any(v is None for v in key):
                violations.append(
                    ConstraintViolation(table.name, "not-null", f"null in key {key!r}")
                )
                continue
            if key in seen and seen[key] != row:
                violations.append(
                    ConstraintViolation(
                        table.name, "primary-key", f"duplicate key {key!r}"
                    )
                )
            seen[key] = row
    return violations


def check_foreign_keys(state: StoreState) -> List[ConstraintViolation]:
    violations: List[ConstraintViolation] = []
    for table in state.populated_tables():
        for foreign_key in table.foreign_keys:
            target_keys = {
                row_values(r, foreign_key.ref_columns)
                for r in state.rows(foreign_key.ref_table)
            }
            for row in state.rows(table.name):
                value = row_values(row, foreign_key.columns)
                if any(v is None for v in value):
                    continue  # null foreign keys are vacuously satisfied
                if value not in target_keys:
                    violations.append(
                        ConstraintViolation(
                            table.name,
                            "foreign-key",
                            f"{foreign_key} dangles for value {value!r}",
                        )
                    )
    return violations


def check_all(state: StoreState) -> List[ConstraintViolation]:
    """All primary-key and foreign-key violations of *state*."""
    return check_primary_keys(state) + check_foreign_keys(state)


def check_delta(
    base: StoreState, candidate: StoreState, delta
) -> List[ConstraintViolation]:
    """Violations of *candidate* (= *base* + *delta*), checking only what
    the delta touches.

    Exact — same violations as ``check_all(candidate)``, up to order —
    whenever *base* itself is consistent, which every backend write path
    guarantees (a violating delta is rejected, so the stored state is
    always consistent).  Under that invariant:

    * a **primary-key** violation must involve a new row (old rows were
      mutually consistent), so only new rows probe the key index;
    * an **outgoing foreign-key** violation can only dangle from a new
      row, so only new rows probe the referenced-key index;
    * an **incoming foreign-key** violation can only arise when a
      referenced key is removed, so only keys that actually left the
      store probe the referrers' foreign-key index (new rows are
      skipped — the outgoing pass already covered them).

    All probes go through :meth:`StoreState.key_index`, which successor
    states inherit adjusted in O(|delta|) — so a *warm* check costs
    O(delta); only the first check after a cold load pays one O(rows)
    index build per (table, key) pair.
    """
    schema = candidate.schema
    new_rows: Dict[str, List[Row]] = {}
    removed_rows: Dict[str, List[Row]] = {}
    for table_name, table_delta in delta.tables.items():
        fresh = list(table_delta.inserts) + [new for _, new in table_delta.updates]
        if fresh:
            new_rows[table_name] = fresh
        gone = list(table_delta.deletes) + [old for _, old in table_delta.updates]
        if gone:
            removed_rows[table_name] = gone

    violations: List[ConstraintViolation] = []

    # primary keys: each new row probes the key index for a *different*
    # row sharing its key (old-vs-old duplicates are impossible when the
    # base is consistent, and old rows cannot have null keys)
    for table_name, rows in new_rows.items():
        table = schema.table(table_name)
        index = candidate.key_index(table_name, table.primary_key)
        for row in rows:
            key = row_values(row, table.primary_key)
            if any(v is None for v in key):
                violations.append(
                    ConstraintViolation(table.name, "not-null", f"null in key {key!r}")
                )
                continue
            for other in index.get(key, ()):
                if other != row:
                    violations.append(
                        ConstraintViolation(
                            table.name, "primary-key", f"duplicate key {key!r}"
                        )
                    )
                    break

    # outgoing foreign keys of new rows
    new_row_sets = {name: set(rows) for name, rows in new_rows.items()}
    for table_name, rows in new_rows.items():
        table = schema.table(table_name)
        for foreign_key in table.foreign_keys:
            targets = candidate.key_index(
                foreign_key.ref_table, foreign_key.ref_columns
            )
            for row in rows:
                value = row_values(row, foreign_key.columns)
                if any(v is None for v in value):
                    continue  # null foreign keys are vacuously satisfied
                if value not in targets:
                    violations.append(
                        ConstraintViolation(
                            table_name,
                            "foreign-key",
                            f"{foreign_key} dangles for value {value!r}",
                        )
                    )

    # incoming foreign keys: keys that left the store may strand old rows
    for table in candidate.populated_tables():
        fresh_set = new_row_sets.get(table.name, set())
        for foreign_key in table.foreign_keys:
            removed = removed_rows.get(foreign_key.ref_table)
            if not removed:
                continue
            still_present = candidate.key_index(
                foreign_key.ref_table, foreign_key.ref_columns
            )
            gone_keys = {
                row_values(r, foreign_key.ref_columns) for r in removed
            } - still_present.keys()
            if not gone_keys:
                continue
            referrers = candidate.key_index(table.name, foreign_key.columns)
            for value in gone_keys:
                if any(v is None for v in value):
                    continue
                for row in referrers.get(value, ()):
                    if row in fresh_set:
                        continue  # the outgoing pass already checked it
                    violations.append(
                        ConstraintViolation(
                            table.name,
                            "foreign-key",
                            f"{foreign_key} dangles for value {value!r}",
                        )
                    )
    return violations


def is_consistent(state: StoreState) -> bool:
    return not check_all(state)
