"""Runtime checking of key and foreign-key constraints on store states.

The compilers check constraint *preservation* symbolically (via query
containment); this module checks constraints on concrete states.  The two
must agree: if a mapping validates, then every store state produced by its
update views from a legal client state satisfies all constraints.  Property
tests enforce that agreement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.relational.instances import Row, StoreState, row_values


@dataclass(frozen=True)
class ConstraintViolation:
    """One violated constraint, with a human-readable description."""

    table: str
    kind: str  # "primary-key" | "foreign-key" | "not-null"
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.table}: {self.detail}"


def check_primary_keys(state: StoreState) -> List[ConstraintViolation]:
    violations: List[ConstraintViolation] = []
    for table in state.populated_tables():
        seen = {}
        for row in state.rows(table.name):
            key = row_values(row, table.primary_key)
            if any(v is None for v in key):
                violations.append(
                    ConstraintViolation(table.name, "not-null", f"null in key {key!r}")
                )
                continue
            if key in seen and seen[key] != row:
                violations.append(
                    ConstraintViolation(
                        table.name, "primary-key", f"duplicate key {key!r}"
                    )
                )
            seen[key] = row
    return violations


def check_foreign_keys(state: StoreState) -> List[ConstraintViolation]:
    violations: List[ConstraintViolation] = []
    for table in state.populated_tables():
        for foreign_key in table.foreign_keys:
            target_keys = {
                row_values(r, foreign_key.ref_columns)
                for r in state.rows(foreign_key.ref_table)
            }
            for row in state.rows(table.name):
                value = row_values(row, foreign_key.columns)
                if any(v is None for v in value):
                    continue  # null foreign keys are vacuously satisfied
                if value not in target_keys:
                    violations.append(
                        ConstraintViolation(
                            table.name,
                            "foreign-key",
                            f"{foreign_key} dangles for value {value!r}",
                        )
                    )
    return violations


def check_all(state: StoreState) -> List[ConstraintViolation]:
    """All primary-key and foreign-key violations of *state*."""
    return check_primary_keys(state) + check_foreign_keys(state)


def check_delta(
    base: StoreState, candidate: StoreState, delta
) -> List[ConstraintViolation]:
    """Violations of *candidate* (= *base* + *delta*), checking only what
    the delta touches.

    Exact — same violations as ``check_all(candidate)``, up to order —
    whenever *base* itself is consistent, which every backend write path
    guarantees (a violating delta is rejected, so the stored state is
    always consistent).  Under that invariant:

    * a **primary-key** violation can only appear in a table receiving
      rows, so only those tables are re-scanned;
    * an **outgoing foreign-key** violation can only dangle from a new
      row, so only new rows are checked (against lazily-built referenced
      key sets);
    * an **incoming foreign-key** violation can only arise when a
      referenced key is removed, so referring tables are scanned only
      for keys that actually left the store (new rows are skipped — the
      outgoing pass already covered them).

    Cost is O(delta + affected tables), not O(store).
    """
    schema = candidate.schema
    new_rows: Dict[str, List[Row]] = {}
    removed_rows: Dict[str, List[Row]] = {}
    for table_name, table_delta in delta.tables.items():
        fresh = list(table_delta.inserts) + [new for _, new in table_delta.updates]
        if fresh:
            new_rows[table_name] = fresh
        gone = list(table_delta.deletes) + [old for _, old in table_delta.updates]
        if gone:
            removed_rows[table_name] = gone

    violations: List[ConstraintViolation] = []

    # primary keys: full per-table check, but only for touched tables
    for table_name in new_rows:
        table = schema.table(table_name)
        seen: Dict[Tuple[object, ...], Row] = {}
        for row in candidate.rows(table_name):
            key = row_values(row, table.primary_key)
            if any(v is None for v in key):
                violations.append(
                    ConstraintViolation(table.name, "not-null", f"null in key {key!r}")
                )
                continue
            if key in seen and seen[key] != row:
                violations.append(
                    ConstraintViolation(
                        table.name, "primary-key", f"duplicate key {key!r}"
                    )
                )
            seen[key] = row

    ref_key_cache: Dict[Tuple[str, Tuple[str, ...]], Set] = {}

    def ref_keys(foreign_key) -> Set[Tuple[object, ...]]:
        cache_key = (foreign_key.ref_table, foreign_key.ref_columns)
        cached = ref_key_cache.get(cache_key)
        if cached is None:
            cached = {
                row_values(r, foreign_key.ref_columns)
                for r in candidate.rows(foreign_key.ref_table)
            }
            ref_key_cache[cache_key] = cached
        return cached

    # outgoing foreign keys of new rows
    new_row_sets = {name: set(rows) for name, rows in new_rows.items()}
    for table_name, rows in new_rows.items():
        table = schema.table(table_name)
        for foreign_key in table.foreign_keys:
            targets = ref_keys(foreign_key)
            for row in rows:
                value = row_values(row, foreign_key.columns)
                if any(v is None for v in value):
                    continue  # null foreign keys are vacuously satisfied
                if value not in targets:
                    violations.append(
                        ConstraintViolation(
                            table_name,
                            "foreign-key",
                            f"{foreign_key} dangles for value {value!r}",
                        )
                    )

    # incoming foreign keys: keys that left the store may strand old rows
    for table in candidate.populated_tables():
        fresh_set = new_row_sets.get(table.name, set())
        for foreign_key in table.foreign_keys:
            removed = removed_rows.get(foreign_key.ref_table)
            if not removed:
                continue
            gone_keys = {
                row_values(r, foreign_key.ref_columns) for r in removed
            } - ref_keys(foreign_key)
            if not gone_keys:
                continue
            for row in candidate.rows(table.name):
                if row in fresh_set:
                    continue  # the outgoing pass already checked it
                value = row_values(row, foreign_key.columns)
                if any(v is None for v in value):
                    continue
                if value in gone_keys:
                    violations.append(
                        ConstraintViolation(
                            table.name,
                            "foreign-key",
                            f"{foreign_key} dangles for value {value!r}",
                        )
                    )
    return violations


def is_consistent(state: StoreState) -> bool:
    return not check_all(state)
