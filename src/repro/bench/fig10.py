"""Figure 10: SMO runtimes on the (synthetic) customer model.

The customer model generator matches every published statistic of the
paper's confidential model (230 types, 18 non-trivial hierarchies, depth
≤ 4, largest 95 types, TPT/TPH mix, associations in non-junction tables).
The SMO suite anchors:

* AE-TPT / AE-TPC / AEP at types of a TPT-mapped hierarchy,
* AE-TPH at a type of a TPH-mapped hierarchy (the 95-type one at full
  scale — the paper notes AE-TPH is input-sensitive because update views
  joining association columns make containment checking pricier),
* AA-FK / AA-JT / AP across randomly chosen hierarchies.

Default scale 0.25 (the published 230-type size behind ``REPRO_FULL=1``).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.bench.harness import (
    Measurement,
    env_float,
    full_scale,
    measure,
    point_budget,
    print_table,
    speedup_summary,
)
from repro.bench.smo_suite import standard_suite
from repro.compiler import compile_mapping, generate_views
from repro.incremental import CompiledModel, IncrementalCompiler
from repro.workloads.customer import customer_mapping, _build_hierarchies


def default_scale() -> float:
    if full_scale():
        return 1.0
    return env_float("REPRO_CUSTOMER_SCALE", 0.25)


def build_model(scale: float, seed: int = 7) -> CompiledModel:
    mapping = customer_mapping(scale=scale, seed=seed)
    return CompiledModel(mapping, generate_views(mapping))


def suite_for(scale: float, seed: int = 7):
    rng = random.Random(seed + 1)
    specs = _build_hierarchies(scale, random.Random(seed))
    tpt_specs = [s for s in specs if s.style == "TPT" and len(s.types) > 1]
    tph_specs = [s for s in specs if s.style == "TPH"]
    tpt_parent = rng.choice(tpt_specs).types[0]
    tph_parent = rng.choice(tph_specs).types[0]
    pairs = []
    for _ in range(4):
        s1, s2 = rng.choice(specs), rng.choice(specs)
        t1, t2 = rng.choice(s1.types), rng.choice(s2.types)
        if t1 != t2:
            pairs.append((t1, t2))
    if not pairs:
        pairs = [(specs[0].types[0], specs[1].types[0])]
    return standard_suite(
        tpt_parent=tpt_parent,
        tph_parent=tph_parent,
        assoc_pairs=pairs,
        ap_target=rng.choice(tpt_specs).types[-1],
        aep_parent=tpt_parent,
    )


def run(
    scale: Optional[float] = None,
    budget_seconds: Optional[float] = None,
    repeats: int = 3,
    seed: int = 7,
) -> Dict[str, object]:
    scale = scale if scale is not None else default_scale()
    budget = budget_seconds if budget_seconds is not None else point_budget(
        3600.0 if full_scale() else 180.0
    )
    base = build_model(scale, seed)
    compiler = IncrementalCompiler()

    smo_measurements: List[Measurement] = []
    for label, factory in suite_for(scale, seed):
        def apply_smo(work_budget, factory=factory):
            compiler.budget = work_budget
            compiler.apply(base, factory(base))

        smo_measurements.append(
            measure(label, apply_smo, budget_seconds=budget, repeats=repeats,
                    scale=scale)
        )

    def full_compile(work_budget):
        compile_mapping(customer_mapping(scale=scale, seed=seed), budget=work_budget)

    full_measurement = measure(
        "Full", full_compile, budget_seconds=budget, repeats=1, scale=scale
    )
    return {
        "smos": smo_measurements,
        "full": full_measurement,
        "scale": scale,
        "types": len(base.client_schema.entity_types),
    }


def main() -> None:
    results = run()
    print_table(
        f"Figure 10 — customer model (scale {results['scale']}, "
        f"{results['types']} entity types)",
        list(results["smos"]) + [results["full"]],
    )
    print("\n  speedup vs full recompilation:")
    speedup_summary(results["full"], results["smos"])


if __name__ == "__main__":
    main()
