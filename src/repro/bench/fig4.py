"""Figure 4: full compilation time of the "hub and rim" model.

Sweeps the fan-out M for each spine depth N and full-compiles the TPH
mapping at every grid point, with a per-point time budget (censored points
are printed as ``>Xs``, as one must when re-running the figure's largest
points — the paper's own top out near 10⁵ seconds).  Also runs the
Section 1.1 contrast: the same client schema mapped table-per-type
compiles quickly at every point.

Default grid (laptop scale): N ∈ 1..3, M ∈ 1..6, 20 s budget.
``REPRO_FULL=1`` extends to the paper's N ∈ 1..5, M ∈ 1..15.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.bench.harness import (
    Measurement,
    full_scale,
    measure,
    point_budget,
    print_matrix,
)
from repro.compiler import compile_mapping
from repro.workloads.hub_rim import hub_rim_mapping, type_count


def default_grid() -> Tuple[Sequence[int], Sequence[int]]:
    if full_scale():
        return range(1, 6), range(1, 16)
    return range(1, 4), range(1, 7)


def run_point(n: int, m: int, style: str, budget_seconds: float) -> Measurement:
    mapping = hub_rim_mapping(n, m, style)

    def compile_it(budget):
        compile_mapping(mapping, budget=budget)

    return measure(
        f"{style} N={n} M={m}",
        compile_it,
        budget_seconds=budget_seconds,
        n=n,
        m=m,
        types=type_count(n, m),
        style=style,
    )


def run(
    ns: Optional[Sequence[int]] = None,
    ms: Optional[Sequence[int]] = None,
    budget_seconds: Optional[float] = None,
) -> Dict[str, Dict[Tuple[int, int], Measurement]]:
    """Run the full sweep; returns {'TPH': {...}, 'TPT': {...}} grids."""
    default_ns, default_ms = default_grid()
    ns = list(ns if ns is not None else default_ns)
    ms = list(ms if ms is not None else default_ms)
    budget = budget_seconds if budget_seconds is not None else point_budget(20.0)

    results: Dict[str, Dict[Tuple[int, int], Measurement]] = {"TPH": {}, "TPT": {}}
    for style in ("TPH", "TPT"):
        censored_from: Dict[int, int] = {}
        for n in ns:
            for m in ms:
                # once a row censors, larger M in the same row only gets
                # slower; skip ahead and mark as censored.
                if n in censored_from and m >= censored_from[n]:
                    results[style][(n, m)] = Measurement(
                        f"{style} N={n} M={m}",
                        params={"n": n, "m": m},
                        censored=True,
                        budget_seconds=budget,
                    )
                    continue
                point = run_point(n, m, style, budget)
                results[style][(n, m)] = point
                if point.censored:
                    censored_from[n] = m
    return results


def main() -> None:
    ns, ms = default_grid()
    results = run()
    print_matrix(
        "Figure 4 — full compilation time, hub-and-rim mapped TPH "
        "(one table + discriminator)",
        list(ns),
        list(ms),
        results["TPH"],
    )
    print_matrix(
        "Section 1.1 contrast — same schema mapped TPT "
        "(each type its own table)",
        list(ns),
        list(ms),
        results["TPT"],
    )
    tph_cells = [m for m in results["TPH"].values() if m.seconds is not None]
    tpt_cells = [m for m in results["TPT"].values() if m.seconds is not None]
    if tph_cells and tpt_cells:
        print(
            f"\n  max TPH time {max(m.seconds for m in tph_cells):.2f}s "
            f"(+ {sum(1 for m in results['TPH'].values() if m.censored)} censored) "
            f"vs max TPT time {max(m.seconds for m in tpt_cells):.2f}s"
        )


if __name__ == "__main__":
    main()
