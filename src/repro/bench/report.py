"""One-shot experiment report: run every figure and write a markdown file.

    python -m repro.bench.report [output.md]

Runs Figures 4, 9 and 10 at the configured scale (`REPRO_FULL`,
`REPRO_BUDGET`, ... as for the individual drivers) and writes a
markdown report with the same tables the drivers print — the file to
diff against `EXPERIMENTS.md` when revisiting the reproduction.
"""

from __future__ import annotations

import io
import platform
import sys
import time
from typing import List

from repro.bench import fig4, fig9, fig10
from repro.bench.harness import (
    full_scale,
    print_matrix,
    print_table,
    speedup_summary,
)


def _section(out: List[str], title: str) -> None:
    out.append(f"\n## {title}\n")


def _capture(fn) -> str:
    buffer = io.StringIO()
    fn(lambda line="": buffer.write(str(line) + "\n"))
    return buffer.getvalue()


def generate_report() -> str:
    out: List[str] = []
    out.append("# Reproduction run report")
    out.append("")
    out.append(f"* python: {platform.python_version()} on {platform.platform()}")
    out.append(f"* scale: {'published (REPRO_FULL=1)' if full_scale() else 'default (laptop)'}")
    out.append(f"* started: {time.strftime('%Y-%m-%d %H:%M:%S')}")

    _section(out, "Figure 4 — hub-and-rim full compilation")
    ns, ms = fig4.default_grid()
    results4 = fig4.run()
    out.append("```")
    out.append(
        _capture(
            lambda p: (
                print_matrix("TPH", list(ns), list(ms), results4["TPH"], out=p),
                print_matrix("TPT contrast", list(ns), list(ms), results4["TPT"], out=p),
            )
        )
    )
    out.append("```")

    _section(out, "Figure 9 — chain model")
    results9 = fig9.run()
    out.append("```")
    out.append(
        _capture(
            lambda p: (
                print_table(
                    f"chain ({results9['n_types']} types)",
                    list(results9["smos"]) + [results9["full"]],
                    out=p,
                ),
                speedup_summary(results9["full"], results9["smos"], out=p),
            )
        )
    )
    out.append("```")

    _section(out, "Figure 10 — customer model")
    results10 = fig10.run()
    out.append("```")
    out.append(
        _capture(
            lambda p: (
                print_table(
                    f"customer (scale {results10['scale']}, {results10['types']} types)",
                    list(results10["smos"]) + [results10["full"]],
                    out=p,
                ),
                speedup_summary(results10["full"], results10["smos"], out=p),
            )
        )
    )
    out.append("```")

    out.append("\nSee EXPERIMENTS.md for the paper-vs-measured discussion.")
    return "\n".join(out) + "\n"


def main() -> None:
    target = sys.argv[1] if len(sys.argv) > 1 else "results/report.md"
    report = generate_report()
    try:
        with open(target, "w") as handle:
            handle.write(report)
        print(f"wrote {target}")
    except OSError:
        print(report)


if __name__ == "__main__":
    main()
