"""Benchmark harness: timed measurements, censoring, table rendering.

Every figure driver produces a list of :class:`Measurement` and renders it
with :func:`print_table` / :func:`print_matrix`, so the console output of
``python -m repro.bench.fig4`` (etc.) mirrors the corresponding figure of
the paper.  Exponential points that exceed the per-point budget are
recorded as censored (``>Xs``) instead of hanging, exactly how one would
re-run Figure 4 on a laptop.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.budget import WorkBudget
from repro.errors import CompilationBudgetExceeded, ReproError


@dataclass
class Measurement:
    """One timed point of a sweep."""

    label: str
    params: Dict[str, object] = field(default_factory=dict)
    seconds: Optional[float] = None
    censored: bool = False
    budget_seconds: Optional[float] = None
    error: Optional[str] = None
    #: the SMO's validation rejected the change (Figure 6 scenarios); the
    #: paper reports these runs too — the abort is a timed compilation.
    validation_failed: bool = False
    extra: Dict[str, object] = field(default_factory=dict)

    def cell(self) -> str:
        if self.error:
            return "err"
        if self.censored:
            return f">{self.budget_seconds:.0f}s"
        if self.seconds is None:
            return "-"
        suffix = "!" if self.validation_failed else ""
        if self.seconds >= 100:
            return f"{self.seconds:.0f}s{suffix}"
        if self.seconds >= 1:
            return f"{self.seconds:.1f}s{suffix}"
        return f"{self.seconds * 1000:.1f}ms{suffix}"


def env_flag(name: str, default: bool = False) -> bool:
    value = os.environ.get(name, "")
    if not value:
        return default
    return value.lower() not in ("0", "false", "no")


def env_float(name: str, default: float) -> float:
    value = os.environ.get(name, "")
    try:
        return float(value) if value else default
    except ValueError:
        return default


def env_int(name: str, default: int) -> int:
    value = os.environ.get(name, "")
    try:
        return int(value) if value else default
    except ValueError:
        return default


def full_scale() -> bool:
    """REPRO_FULL=1 runs the published workload sizes."""
    return env_flag("REPRO_FULL")


def point_budget(default: float = 30.0) -> float:
    """Per-point time budget in seconds (REPRO_BUDGET)."""
    return env_float("REPRO_BUDGET", default)


def measure(
    label: str,
    fn: Callable[[Optional[WorkBudget]], object],
    budget_seconds: Optional[float] = None,
    repeats: int = 1,
    **params: object,
) -> Measurement:
    """Run *fn* (passing it a WorkBudget) and record the best of *repeats*.

    The paper averages three runs; we report the minimum by default for
    stability and keep the individual times in ``extra['times']``.
    """
    from repro.errors import ValidationError

    times: List[float] = []
    validation_failed = False
    for _ in range(max(1, repeats)):
        budget = (
            WorkBudget(max_seconds=budget_seconds)
            if budget_seconds is not None
            else None
        )
        started = time.perf_counter()
        try:
            fn(budget)
        except CompilationBudgetExceeded:
            return Measurement(
                label,
                params=dict(params),
                censored=True,
                budget_seconds=budget_seconds,
                extra={"times": times},
            )
        except ValidationError as exc:
            # an abort is a complete (and timed) incremental compilation —
            # the paper's AddEntityTPC/Figure-6 cases land here
            validation_failed = True
            times.append(time.perf_counter() - started)
            continue
        except ReproError as exc:
            return Measurement(
                label, params=dict(params), error=f"{type(exc).__name__}: {exc}"
            )
        times.append(time.perf_counter() - started)
    return Measurement(
        label,
        params=dict(params),
        seconds=min(times),
        validation_failed=validation_failed,
        extra={"times": times},
    )


def print_table(
    title: str, measurements: Sequence[Measurement], out=print
) -> None:
    """One row per measurement: label, time, parameters."""
    out(f"\n== {title} ==")
    width = max((len(m.label) for m in measurements), default=10) + 2
    for m in measurements:
        params = " ".join(f"{k}={v}" for k, v in m.params.items())
        out(f"  {m.label:<{width}} {m.cell():>10}   {params}")


def print_matrix(
    title: str,
    rows: Sequence[object],
    cols: Sequence[object],
    cells: Dict[Tuple[object, object], Measurement],
    row_name: str = "N",
    col_name: str = "M",
    out=print,
) -> None:
    """Figure-4-style matrix: one row per N, one column per M."""
    out(f"\n== {title} ==")
    header = f"  {row_name}\\{col_name}" + "".join(f"{str(c):>10}" for c in cols)
    out(header)
    for row in rows:
        line = f"  {str(row):<5}"
        for col in cols:
            m = cells.get((row, col))
            line += f"{m.cell() if m else '-':>10}"
        out(line)


def speedup_summary(
    full: Measurement, incrementals: Sequence[Measurement], out=print
) -> None:
    """The headline ratio: full compile vs each incremental SMO."""
    if full.seconds is None:
        out("  full compilation censored; speedups are lower bounds")
        base = full.budget_seconds or 0.0
    else:
        base = full.seconds
    for m in incrementals:
        if m.seconds:
            ratio = base / m.seconds
            prefix = ">" if full.seconds is None else ""
            out(f"  {m.label:<14} speedup {prefix}{ratio:,.0f}x")
