"""Benchmark drivers: one module per paper figure, plus the harness.

Run directly:

    python -m repro.bench.fig4
    python -m repro.bench.fig9
    python -m repro.bench.fig10

Environment knobs: REPRO_FULL=1 (published sizes), REPRO_BUDGET=<seconds>
(per-point budget), REPRO_CHAIN_TYPES / REPRO_CUSTOMER_SCALE (overrides).
"""

from repro.bench.harness import (
    Measurement,
    full_scale,
    measure,
    point_budget,
    print_matrix,
    print_table,
    speedup_summary,
)

__all__ = [
    "Measurement",
    "full_scale",
    "measure",
    "point_budget",
    "print_matrix",
    "print_table",
    "speedup_summary",
]
