"""The SMO suite of Section 4.2's experiments.

Builds, for a given compiled model, the same operation mix Figures 9 and
10 report: AE-TPT, AE-TPC, AE-TPH, AA-FK, AA-JT, AP, and AEP-np-TPT for
n = 1..3 (entity sets horizontally partitioned across 2ⁿ tables, each
vertically mapped TPT).  Factories are fresh per call so a suite can be
re-applied to the same base model for repeated timing runs.
"""

from __future__ import annotations

import itertools
from typing import Callable, List, Sequence, Tuple

from repro.algebra.conditions import Comparison, and_
from repro.edm.types import Attribute, INT, STRING
from repro.incremental import (
    AddAssociationFK,
    AddAssociationJT,
    AddEntity,
    AddEntityPart,
    AddEntityTPH,
    AddProperty,
    CompiledModel,
    Partition,
    Smo,
)
from repro.modef.infer import primary_fragment_of, primary_table_of
from repro.relational.schema import ForeignKey

SmoFactory = Callable[[CompiledModel], Smo]

_counter = itertools.count()


def _fresh(prefix: str) -> str:
    return f"{prefix}{next(_counter)}"


def ae_tpt(parent: str) -> SmoFactory:
    def factory(model: CompiledModel) -> Smo:
        name = _fresh("NewTpt")
        fragment = primary_fragment_of(model, parent)
        key = model.client_schema.key_of(parent)
        ref = tuple(fragment.maps_attr(k) or k for k in key)
        return AddEntity.tpt(
            model,
            name,
            parent,
            [Attribute(f"{name}_x", STRING)],
            f"T_{name}",
            table_foreign_keys=[ForeignKey(tuple(key), fragment.store_table, ref)],
        )

    return factory


def ae_tpc(parent: str) -> SmoFactory:
    def factory(model: CompiledModel) -> Smo:
        name = _fresh("NewTpc")
        return AddEntity.tpc(
            model, name, parent, [Attribute(f"{name}_x", STRING)], f"T_{name}"
        )

    return factory


def ae_tph(parent: str, discriminator: str = "Disc") -> SmoFactory:
    def factory(model: CompiledModel) -> Smo:
        name = _fresh("NewTph")
        table = primary_table_of(model, parent)
        return AddEntityTPH.create(
            model,
            name,
            parent,
            [Attribute(f"{name}_x", STRING)],
            table,
            discriminator,
            name,
        )

    return factory


def aa_fk(end1: str, end2: str) -> SmoFactory:
    def factory(model: CompiledModel) -> Smo:
        name = _fresh("NewAssocFK")
        fragment = primary_fragment_of(model, end1)
        schema = model.client_schema
        key1 = schema.key_of(end1)
        key2 = schema.key_of(end2)
        attr_map = {}
        for k in key1:
            attr_map[f"{name}_src.{k}"] = fragment.maps_attr(k) or k
        fk_columns = []
        for k in key2:
            column = f"{name}_{k}"
            attr_map[f"{name}_dst.{k}"] = column
            fk_columns.append(column)
        target = primary_fragment_of(model, end2)
        ref = tuple(target.maps_attr(k) or k for k in key2)
        return AddAssociationFK.create(
            model,
            name,
            end1,
            end2,
            fragment.store_table,
            attr_map,
            mult1="*",
            mult2="0..1",
            role1=f"{name}_src",
            role2=f"{name}_dst",
            new_foreign_keys=[ForeignKey(tuple(fk_columns), target.store_table, ref)],
        )

    return factory


def aa_jt(end1: str, end2: str) -> SmoFactory:
    def factory(model: CompiledModel) -> Smo:
        name = _fresh("NewAssocJT")
        schema = model.client_schema
        key1 = schema.key_of(end1)
        key2 = schema.key_of(end2)
        attr_map = {}
        fks = []
        for role, end, key in ((f"{name}_src", end1, key1), (f"{name}_dst", end2, key2)):
            fragment = primary_fragment_of(model, end)
            columns = []
            for k in key:
                column = f"{role}_{k}"
                attr_map[f"{role}.{k}"] = column
                columns.append(column)
            ref = tuple(fragment.maps_attr(k) or k for k in key)
            fks.append(ForeignKey(tuple(columns), fragment.store_table, ref))
        return AddAssociationJT.create(
            model,
            name,
            end1,
            end2,
            f"J_{name}",
            attr_map,
            table_foreign_keys=fks,
            role1=f"{name}_src",
            role2=f"{name}_dst",
        )

    return factory


def ap(entity_type: str) -> SmoFactory:
    def factory(model: CompiledModel) -> Smo:
        name = _fresh("NewProp")
        table = primary_table_of(model, entity_type)
        return AddProperty(entity_type, Attribute(name, STRING), table, name)

    return factory


def aep_tpt(parent: str, n_splits: int) -> SmoFactory:
    """AddEntityPart across 2ⁿ tables, each with a TPT-style foreign key."""

    def factory(model: CompiledModel) -> Smo:
        name = _fresh("NewPart")
        fragment = primary_fragment_of(model, parent)
        schema = model.client_schema
        key = schema.key_of(parent)
        ref = tuple(fragment.maps_attr(k) or k for k in key)
        part_attr = f"{name}_band"
        parts = 2 ** n_splits
        partitions: List[Partition] = []
        alpha = tuple(key) + (part_attr, f"{name}_x")
        for index in range(parts):
            low, high = index * 10, (index + 1) * 10
            if index == 0:
                condition = Comparison(part_attr, "<", high)
            elif index == parts - 1:
                condition = Comparison(part_attr, ">=", low)
            else:
                condition = and_(
                    Comparison(part_attr, ">=", low),
                    Comparison(part_attr, "<", high),
                )
            partitions.append(
                Partition.of(
                    alpha,
                    condition,
                    f"T_{name}_{index}",
                    table_foreign_keys=[
                        ForeignKey(tuple(key), fragment.store_table, ref)
                    ],
                )
            )
        smo = AddEntityPart(
            name=name,
            parent=parent,
            new_attributes=(Attribute(part_attr, INT), Attribute(f"{name}_x", STRING)),
            anchor=parent,
            partitions=tuple(partitions),
        )
        smo.kind = f"AEP-{n_splits}p-TPT"
        return smo

    return factory


def standard_suite(
    tpt_parent: str,
    tph_parent: str,
    assoc_pairs: Sequence[Tuple[str, str]],
    ap_target: str,
    aep_parent: str,
    aep_splits: Sequence[int] = (1, 2, 3),
) -> List[Tuple[str, SmoFactory]]:
    """The labelled operation mix of Figures 9 and 10."""
    suite: List[Tuple[str, SmoFactory]] = [
        ("AE-TPT", ae_tpt(tpt_parent)),
        ("AE-TPC", ae_tpc(tpt_parent)),
        ("AE-TPH", ae_tph(tph_parent)),
    ]
    pair_cycle = itertools.cycle(assoc_pairs)
    suite.append(("AA-FK", aa_fk(*next(pair_cycle))))
    suite.append(("AA-JT", aa_jt(*next(pair_cycle))))
    suite.append(("AP", ap(ap_target)))
    for n in aep_splits:
        suite.append((f"AEP-{n}p-TPT", aep_tpt(aep_parent, n)))
    return suite
