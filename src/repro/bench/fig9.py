"""Figure 9: SMO runtimes on the synthetic chain model vs full recompilation.

Builds the chain model (Figure 8), compiles its views once as the starting
point, then measures every SMO of the Section 4.2 operation mix applied
*to the same pre-compiled model* — the interactive-development scenario —
and a full recompilation of the model for the baseline bar.

Default size 150 entity types (the full 1002 behind ``REPRO_FULL=1``);
the full-compilation baseline respects the per-point budget and reports a
censored lower bound if the budget trips.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.bench.harness import (
    Measurement,
    env_int,
    full_scale,
    measure,
    point_budget,
    print_table,
    speedup_summary,
)
from repro.bench.smo_suite import standard_suite
from repro.compiler import compile_mapping, generate_views
from repro.incremental import CompiledModel, IncrementalCompiler
from repro.workloads.chain import chain_mapping, entity_name


def default_types() -> int:
    if full_scale():
        return 1002
    return env_int("REPRO_CHAIN_TYPES", 150)


def build_model(n_types: int) -> CompiledModel:
    """The pre-compiled chain model (views generated, known valid)."""
    mapping = chain_mapping(n_types)
    return CompiledModel(mapping, generate_views(mapping))


def suite_for(n_types: int, seed: int = 13):
    """The operation mix, anchored at randomly chosen chain types."""
    rng = random.Random(seed)
    pick = lambda: entity_name(rng.randrange(2, n_types - 1))
    pairs = [(pick(), pick()) for _ in range(4)]
    pairs = [(a, b) for a, b in pairs if a != b] or [
        (entity_name(2), entity_name(5))
    ]
    return standard_suite(
        tpt_parent=pick(),
        tph_parent=pick(),
        assoc_pairs=pairs,
        ap_target=pick(),
        aep_parent=pick(),
    )


def run(
    n_types: Optional[int] = None,
    budget_seconds: Optional[float] = None,
    repeats: int = 3,
    seed: int = 13,
) -> Dict[str, object]:
    n_types = n_types if n_types is not None else default_types()
    budget = budget_seconds if budget_seconds is not None else point_budget(
        1200.0 if full_scale() else 120.0
    )
    base = build_model(n_types)
    compiler = IncrementalCompiler()

    smo_measurements: List[Measurement] = []
    for label, factory in suite_for(n_types, seed):
        def apply_smo(work_budget, factory=factory):
            compiler.budget = work_budget
            compiler.apply(base, factory(base))

        smo_measurements.append(
            measure(label, apply_smo, budget_seconds=budget, repeats=repeats,
                    n_types=n_types)
        )

    def full_compile(work_budget):
        compile_mapping(chain_mapping(n_types), budget=work_budget)

    full_measurement = measure(
        "Full", full_compile, budget_seconds=budget, repeats=1, n_types=n_types
    )
    return {"smos": smo_measurements, "full": full_measurement, "n_types": n_types}


def main() -> None:
    results = run()
    print_table(
        f"Figure 9 — synthetic chain model ({results['n_types']} entity types)",
        list(results["smos"]) + [results["full"]],
    )
    print("\n  speedup vs full recompilation:")
    speedup_summary(results["full"], results["smos"])


if __name__ == "__main__":
    main()
