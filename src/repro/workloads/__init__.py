"""Workload generators: paper example, hub-and-rim, chain, customer model."""

from repro.workloads.paper_example import (
    mapping_stage1,
    mapping_stage2,
    mapping_stage3,
    mapping_stage4,
)

__all__ = [
    "mapping_stage1",
    "mapping_stage2",
    "mapping_stage3",
    "mapping_stage4",
]

from repro.workloads.chain import chain_mapping
from repro.workloads.customer import customer_mapping
from repro.workloads.hub_rim import hub_rim_mapping

__all__ += ["chain_mapping", "customer_mapping", "hub_rim_mapping"]
