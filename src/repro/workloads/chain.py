"""The synthetic chain model of Figure 8.

1002 entity types with no inheritance, each with attributes Id,
EntityAtt2, EntityAtt3, EntityAtt4; each entity type is related by two
associations to the next entity type in the chain.  Mapping fragments are
simple one-to-one: each entity type has its own table, and each
association is mapped to a key/foreign-key relationship (two nullable FK
columns in the upstream type's table).

Deviation noted in EXPERIMENTS.md: Figure 8 draws multiplicities 1—0..1
and 1—*; we use 0..1 lower bounds throughout because a required (1) end
would make every local validation state depend on the whole 1002-link
chain, which neither EF nor this reproduction treats as a *local* check —
compile costs are unaffected.
"""

from __future__ import annotations

from typing import List

from repro.algebra.conditions import IsNotNull, IsOf, TRUE
from repro.edm.builder import ClientSchemaBuilder
from repro.edm.schema import ClientSchema
from repro.edm.types import INT, STRING
from repro.mapping.fragments import Mapping, MappingFragment
from repro.relational.schema import Column, ForeignKey, StoreSchema, Table

DEFAULT_TYPES = 1002


def entity_name(index: int) -> str:
    return f"Entity{index}"


def set_name(index: int) -> str:
    return f"Entities{index}"


def table_name(index: int) -> str:
    return f"T{index}"


def first_assoc(index: int) -> str:
    return f"A{index}a"


def second_assoc(index: int) -> str:
    return f"A{index}b"


def build_client_schema(n_types: int = DEFAULT_TYPES) -> ClientSchema:
    builder = ClientSchemaBuilder()
    for index in range(1, n_types + 1):
        builder.entity(
            entity_name(index),
            key=[("Id", INT)],
            attrs=[("EntityAtt2", STRING), ("EntityAtt3", STRING), ("EntityAtt4", STRING)],
        )
        builder.entity_set(set_name(index), entity_name(index))
    for index in range(1, n_types):
        builder.association(
            first_assoc(index),
            entity_name(index),
            entity_name(index + 1),
            mult1="*",
            mult2="0..1",
        )
        builder.association(
            second_assoc(index),
            entity_name(index),
            entity_name(index + 1),
            mult1="0..1",
            mult2="0..1",
        )
    return builder.build()


def chain_mapping(n_types: int = DEFAULT_TYPES) -> Mapping:
    """The fully 1:1 mapped chain model."""
    schema = build_client_schema(n_types)
    tables: List[Table] = []
    fragments: List[MappingFragment] = []
    for index in range(1, n_types + 1):
        columns = [
            Column("Id", INT, False),
            Column("EntityAtt2", STRING, True),
            Column("EntityAtt3", STRING, True),
            Column("EntityAtt4", STRING, True),
        ]
        foreign_keys = []
        if index < n_types:
            columns.append(Column("NextA", INT, True))
            columns.append(Column("NextB", INT, True))
            foreign_keys.append(
                ForeignKey(("NextA",), table_name(index + 1), ("Id",))
            )
            foreign_keys.append(
                ForeignKey(("NextB",), table_name(index + 1), ("Id",))
            )
        tables.append(
            Table(table_name(index), tuple(columns), ("Id",), tuple(foreign_keys))
        )
        fragments.append(
            MappingFragment(
                client_source=set_name(index),
                is_association=False,
                client_condition=IsOf(entity_name(index)),
                store_table=table_name(index),
                store_condition=TRUE,
                attribute_map=(
                    ("Id", "Id"),
                    ("EntityAtt2", "EntityAtt2"),
                    ("EntityAtt3", "EntityAtt3"),
                    ("EntityAtt4", "EntityAtt4"),
                ),
            )
        )
    for index in range(1, n_types):
        for assoc, column in (
            (first_assoc(index), "NextA"),
            (second_assoc(index), "NextB"),
        ):
            fragments.append(
                MappingFragment(
                    client_source=assoc,
                    is_association=True,
                    client_condition=TRUE,
                    store_table=table_name(index),
                    store_condition=IsNotNull(column),
                    attribute_map=(
                        (f"{entity_name(index)}.Id", "Id"),
                        (f"{entity_name(index + 1)}.Id", column),
                    ),
                )
            )
    return Mapping(schema, StoreSchema(tables), fragments)
