"""Random SMO-expressible mappings, for fuzzing the compilers themselves.

Generates a seeded random client schema (several hierarchies with random
shapes), picks a mapping style per hierarchy (TPT / TPC / TPH), sprinkles
FK- and join-table-mapped associations, and emits the complete
:class:`Mapping`.  Together with :mod:`repro.stategen` this closes the
fuzzing loop: random mapping → compile → random states → roundtrip.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.algebra.conditions import Comparison, IsNotNull, IsOf, IsOfOnly, TRUE
from repro.edm.builder import ClientSchemaBuilder
from repro.edm.schema import ClientSchema
from repro.edm.types import INT, STRING
from repro.mapping.fragments import Mapping, MappingFragment
from repro.relational.schema import Column, ForeignKey, StoreSchema, Table

STYLES = ("TPT", "TPC", "TPH")


def random_mapping(
    seed: int = 0,
    hierarchies: int = 3,
    max_types_per_hierarchy: int = 5,
    max_depth: int = 3,
    associations: int = 3,
    attrs_per_type: int = 2,
) -> Mapping:
    """A random, valid, SMO-expressible mapping."""
    rng = random.Random(seed)
    builder = ClientSchemaBuilder()

    specs: List[Dict] = []
    for h in range(hierarchies):
        size = rng.randrange(1, max_types_per_hierarchy + 1)
        style = rng.choice(STYLES) if size > 1 else "TPT"
        types = [f"H{h}T{i}" for i in range(size)]
        parents: Dict[str, Optional[str]] = {types[0]: None}
        depth = {types[0]: 1}
        for name in types[1:]:
            candidates = [t for t in parents if depth[t] < max_depth]
            parent = rng.choice(candidates)
            parents[name] = parent
            depth[name] = depth[parent] + 1
        specs.append({"types": types, "parents": parents, "style": style, "h": h})

    for spec in specs:
        for name in spec["types"]:
            attrs = [(f"{name}a{i}", STRING) for i in range(attrs_per_type)]
            if spec["parents"][name] is None:
                builder.entity(name, key=[("Id", INT)], attrs=attrs)
            else:
                builder.entity(name, parent=spec["parents"][name], attrs=attrs)
        builder.entity_set(f"Set{spec['h']}", spec["types"][0])

    # associations between random types; FK-mapped into end1's primary
    # table or into a join table, alternating.  An endpoint type is only
    # eligible if its primary table covers its whole subtree's keys: always
    # true for TPT and TPH, but for TPC only when the type is a leaf —
    # otherwise the association would be a Figure 6 violation by
    # construction (the validator rejects such mappings, as it should).
    def endpoint_ok(spec, type_name: str) -> bool:
        if spec["style"] != "TPC":
            return True
        return not any(
            spec["parents"].get(other) == type_name for other in spec["types"]
        )

    planned: List[Tuple[str, str, str, bool]] = []
    fk_used: Dict[str, int] = {}
    attempts = 0
    while len(planned) < associations and attempts < associations * 20:
        attempts += 1
        s1, s2 = rng.choice(specs), rng.choice(specs)
        t1, t2 = rng.choice(s1["types"]), rng.choice(s2["types"])
        if t1 == t2:
            continue
        if not endpoint_ok(s1, t1) or not endpoint_ok(s2, t2):
            continue
        join_table = rng.random() < 0.4
        if not join_table:
            table = _primary_table(specs, t1)
            if fk_used.get(table, 0) >= 3:
                continue
            fk_used[table] = fk_used.get(table, 0) + 1
        name = f"A{len(planned)}"
        planned.append((name, t1, t2, join_table))
        builder.association(
            name, t1, t2, mult1="*", mult2="0..1",
            role1=f"{name}s", role2=f"{name}d",
        )
    schema = builder.build()

    tables: Dict[str, Dict] = {}
    fragments: List[MappingFragment] = []
    for spec in specs:
        _hierarchy_fragments(schema, spec, tables, fragments)

    for name, t1, t2, join_table in planned:
        target_table = _primary_table(specs, t2)
        if join_table:
            jt = f"J_{name}"
            source_table = _primary_table(specs, t1)
            tables[jt] = {
                "columns": [Column("SrcId", INT, False), Column("DstId", INT, False)],
                "pk": ("SrcId",),
                "fks": [
                    ForeignKey(("SrcId",), source_table, ("Id",)),
                    ForeignKey(("DstId",), target_table, ("Id",)),
                ],
            }
            fragments.append(
                MappingFragment(
                    name, True, TRUE, jt, TRUE,
                    ((f"{name}s.Id", "SrcId"), (f"{name}d.Id", "DstId")),
                )
            )
        else:
            table = _primary_table(specs, t1)
            column = f"{name}_fk"
            tables[table]["columns"].append(Column(column, INT, True))
            tables[table]["fks"].append(ForeignKey((column,), target_table, ("Id",)))
            fragments.append(
                MappingFragment(
                    name, True, TRUE, table, IsNotNull(column),
                    ((f"{name}s.Id", "Id"), (f"{name}d.Id", column)),
                )
            )

    store = StoreSchema(
        [
            Table(name, tuple(d["columns"]), d.get("pk", ("Id",)), tuple(d["fks"]))
            for name, d in tables.items()
        ]
    )
    return Mapping(schema, store, fragments)


def _primary_table(specs, type_name: str) -> str:
    for spec in specs:
        if type_name in spec["types"]:
            if spec["style"] == "TPH":
                return f"T{spec['h']}"
            return f"T{spec['h']}_{type_name}"
    raise KeyError(type_name)


def _hierarchy_fragments(schema: ClientSchema, spec, tables, fragments) -> None:
    style = spec["style"]
    if style == "TPH":
        table = f"T{spec['h']}"
        columns = [Column("Id", INT, False), Column("D", STRING, False)]
        for name in spec["types"]:
            for attr in schema.entity_type(name).own_attribute_names:
                if attr != "Id":
                    columns.append(Column(attr, STRING, True))
        tables[table] = {"columns": columns, "fks": []}
        for name in spec["types"]:
            fragments.append(
                MappingFragment(
                    f"Set{spec['h']}", False, IsOfOnly(name), table,
                    Comparison("D", "=", name),
                    tuple((a, a) for a in schema.attribute_names_of(name)),
                )
            )
        return
    for name in spec["types"]:
        table = f"T{spec['h']}_{name}"
        parent = spec["parents"][name]
        if style == "TPC" and parent is not None:
            alpha = list(schema.attribute_names_of(name))
            fks: List[ForeignKey] = []
        else:
            own = [a for a in schema.entity_type(name).own_attribute_names]
            alpha = ["Id"] + [a for a in own if a != "Id"]
            fks = (
                [ForeignKey(("Id",), f"T{spec['h']}_{parent}", ("Id",))]
                if parent is not None
                else []
            )
        columns = [Column("Id", INT, False)]
        columns.extend(Column(a, STRING, True) for a in alpha if a != "Id")
        tables[table] = {"columns": columns, "fks": fks}
        condition = IsOf(name)
        if style == "TPC":
            # TPC siblings are disjoint: every type keeps exactly its own
            # entities (and descendants map their own copies)
            condition = IsOfOnly(name) if schema.children_of(name) else IsOf(name)
        fragments.append(
            MappingFragment(
                f"Set{spec['h']}", False, condition, table, TRUE,
                tuple((a, a) for a in alpha),
            )
        )
