"""A synthetic stand-in for the paper's real customer model (Section 4.2).

The paper reports only shape statistics of the (confidential) model:
230 entity types over 18 non-trivial hierarchies, the deepest with four
levels and the largest with 95 entity types; hierarchies mapped TPT or
TPH; associations mapped to non-junction tables (FK columns in entity
tables).  A full EF compilation took 8 hours.

``customer_mapping(scale=1.0, seed=7)`` generates a deterministic model
matching those statistics (``scale`` shrinks every hierarchy
proportionally for laptop-budget benchmarking; scale=1.0 is the published
size, enabled by REPRO_FULL=1 in the benchmarks).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.algebra.conditions import Comparison, IsNotNull, IsOf, IsOfOnly, TRUE
from repro.edm.builder import ClientSchemaBuilder
from repro.edm.types import INT, STRING
from repro.mapping.fragments import Mapping, MappingFragment
from repro.relational.schema import Column, ForeignKey, StoreSchema, Table

#: hierarchy sizes: 18 non-trivial (>= 2 types) + singleton roots = 230.
HIERARCHY_SIZES = (95, 20, 15, 12, 10, 8, 8, 6, 5, 5, 4, 4, 3, 3, 3, 2, 2, 2)
SINGLETONS = 230 - sum(HIERARCHY_SIZES)  # 23 trivial hierarchies
MAX_DEPTH = 4
ASSOCIATION_COUNT = 60


@dataclass
class HierarchySpec:
    """One generated hierarchy: its types, parents and mapping style."""

    index: int
    style: str  # "TPT" | "TPH"
    types: List[str]
    parents: Dict[str, Optional[str]]


def _scaled_sizes(scale: float) -> List[int]:
    sizes = [max(2, int(round(s * scale))) for s in HIERARCHY_SIZES]
    singletons = max(1, int(round(SINGLETONS * scale)))
    return sizes + [1] * singletons


def _build_hierarchies(scale: float, rng: random.Random) -> List[HierarchySpec]:
    specs: List[HierarchySpec] = []
    for h_index, size in enumerate(_scaled_sizes(scale)):
        # alternate styles; the largest hierarchy is TPH (the paper's
        # slow-compile culprit), singletons trivially TPT.
        if size == 1:
            style = "TPT"
        elif h_index == 0:
            style = "TPH"
        else:
            style = "TPH" if h_index % 2 == 1 else "TPT"
        types = [f"H{h_index}T{i}" for i in range(size)]
        parents: Dict[str, Optional[str]] = {types[0]: None}
        depth: Dict[str, int] = {types[0]: 1}
        for type_name in types[1:]:
            candidates = [t for t in parents if depth[t] < MAX_DEPTH]
            parent = rng.choice(candidates)
            parents[type_name] = parent
            depth[type_name] = depth[parent] + 1
        specs.append(HierarchySpec(h_index, style, types, parents))
    return specs


def customer_mapping(
    scale: float = 1.0,
    seed: int = 7,
    association_count: Optional[int] = None,
    max_assocs_per_table: int = 4,
) -> Mapping:
    """Generate the customer-like model at the given scale."""
    rng = random.Random(seed)
    specs = _build_hierarchies(scale, rng)

    builder = ClientSchemaBuilder()
    for spec in specs:
        for type_name in spec.types:
            parent = spec.parents[type_name]
            if parent is None:
                builder.entity(
                    type_name,
                    key=[("Id", INT)],
                    attrs=[(f"{type_name}_a", STRING), (f"{type_name}_b", STRING)],
                )
            else:
                builder.entity(
                    type_name, parent=parent, attrs=[(f"{type_name}_a", STRING)]
                )
        builder.entity_set(f"Set{spec.index}", spec.types[0])

    # associations between random types of random hierarchies, FK-mapped
    # into the end1 type's primary table (non-junction tables).
    wanted = association_count
    if wanted is None:
        wanted = max(4, int(round(ASSOCIATION_COUNT * scale)))
    planned: List[Tuple[str, str, str]] = []
    fk_load: Dict[str, int] = {}
    attempts = 0
    while len(planned) < wanted and attempts < wanted * 20:
        attempts += 1
        spec1, spec2 = rng.choice(specs), rng.choice(specs)
        t1, t2 = rng.choice(spec1.types), rng.choice(spec2.types)
        if t1 == t2:
            continue
        table_key = _primary_table(specs, t1)
        if fk_load.get(table_key, 0) >= max_assocs_per_table:
            continue
        name = f"Assoc{len(planned)}"
        planned.append((name, t1, t2))
        fk_load[table_key] = fk_load.get(table_key, 0) + 1
        builder.association(
            name, t1, t2, mult1="*", mult2="0..1", role1=f"{name}_src", role2=f"{name}_dst"
        )
    schema = builder.build()

    tables: Dict[str, Dict] = {}
    fragments: List[MappingFragment] = []

    for spec in specs:
        if spec.style == "TPH":
            _tph_fragments(schema, spec, tables, fragments)
        else:
            _tpt_fragments(schema, spec, tables, fragments)

    for name, t1, t2 in planned:
        table_key = _primary_table(specs, t1)
        column = f"{name}_fk"
        tables[table_key]["columns"].append(Column(column, INT, True))
        target = _primary_table(specs, t2)
        tables[table_key]["fks"].append(ForeignKey((column,), target, ("Id",)))
        fragments.append(
            MappingFragment(
                client_source=name,
                is_association=True,
                client_condition=TRUE,
                store_table=table_key,
                store_condition=IsNotNull(column),
                attribute_map=(
                    (f"{name}_src.Id", "Id"),
                    (f"{name}_dst.Id", column),
                ),
            )
        )

    store = StoreSchema(
        [
            Table(name, tuple(spec["columns"]), ("Id",), tuple(spec["fks"]))
            for name, spec in tables.items()
        ]
    )
    return Mapping(schema, store, fragments)


def _primary_table(specs: List[HierarchySpec], type_name: str) -> str:
    for spec in specs:
        if type_name in spec.types:
            if spec.style == "TPH":
                return f"Tab{spec.index}"
            return f"Tab{spec.index}_{type_name}"
    raise KeyError(type_name)


def _tph_fragments(schema, spec, tables, fragments) -> None:
    table = f"Tab{spec.index}"
    columns = [Column("Id", INT, False), Column("Disc", STRING, False)]
    for type_name in spec.types:
        for attr in schema.entity_type(type_name).own_attribute_names:
            if attr != "Id":
                columns.append(Column(attr, STRING, True))
    tables[table] = {"columns": columns, "fks": []}
    for type_name in spec.types:
        attr_map = tuple((a, a) for a in schema.attribute_names_of(type_name))
        fragments.append(
            MappingFragment(
                client_source=f"Set{spec.index}",
                is_association=False,
                client_condition=IsOfOnly(type_name),
                store_table=table,
                store_condition=Comparison("Disc", "=", type_name),
                attribute_map=attr_map,
            )
        )


def _tpt_fragments(schema, spec, tables, fragments) -> None:
    for type_name in spec.types:
        table = f"Tab{spec.index}_{type_name}"
        own = [
            a
            for a in schema.entity_type(type_name).own_attribute_names
            if a != "Id"
        ]
        columns = [Column("Id", INT, False)]
        columns.extend(Column(a, STRING, True) for a in own)
        fks = []
        parent = spec.parents[type_name]
        if parent is not None:
            fks.append(ForeignKey(("Id",), f"Tab{spec.index}_{parent}", ("Id",)))
        tables[table] = {"columns": columns, "fks": fks}
        fragments.append(
            MappingFragment(
                client_source=f"Set{spec.index}",
                is_association=False,
                client_condition=IsOf(type_name),
                store_table=table,
                store_condition=TRUE,
                attribute_map=tuple((a, a) for a in ["Id"] + own),
            )
        )
