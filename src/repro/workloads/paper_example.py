"""The paper's running example (Figures 1 and 5).

Client schema: ``Person(Id, Name)`` with derived ``Employee(Department)``
(mapped TPT to table ``Emp``) and ``Customer(CredScore, BillAddr)``
(mapped TPC to table ``Client``), entity set ``Persons``, association
``Supports`` between Customer and Employee (multiplicity ``* — 0..1``)
mapped to the ``Eid`` foreign-key column of ``Client``.

Builders return progressively evolved stages so tests can replay
Examples 1-7:

* stage 1 — only ``Person`` mapped to ``HR`` (Example 1, Σ1);
* stage 2 — plus ``Employee`` TPT to ``Emp`` (Σ2);
* stage 3 — plus ``Customer`` TPC to ``Client`` (Σ3);
* stage 4 — plus the ``Supports`` association (Σ4, the full Figure 1).
"""

from __future__ import annotations

from typing import Tuple

from repro.algebra.conditions import IsNotNull, IsOf, IsOfOnly, TRUE, or_
from repro.edm.builder import ClientSchemaBuilder
from repro.edm.schema import ClientSchema
from repro.edm.types import INT, STRING
from repro.mapping.fragments import Mapping, MappingFragment
from repro.relational.schema import Column, ForeignKey, StoreSchema, Table


def client_schema_stage1() -> ClientSchema:
    return (
        ClientSchemaBuilder()
        .entity("Person", key=[("Id", INT)], attrs=[("Name", STRING)])
        .entity_set("Persons", "Person")
        .build()
    )


def client_schema_stage2() -> ClientSchema:
    return (
        ClientSchemaBuilder()
        .entity("Person", key=[("Id", INT)], attrs=[("Name", STRING)])
        .entity("Employee", parent="Person", attrs=[("Department", STRING)])
        .entity_set("Persons", "Person")
        .build()
    )


def client_schema_stage3() -> ClientSchema:
    return (
        ClientSchemaBuilder()
        .entity("Person", key=[("Id", INT)], attrs=[("Name", STRING)])
        .entity("Employee", parent="Person", attrs=[("Department", STRING)])
        .entity(
            "Customer",
            parent="Person",
            attrs=[("CredScore", INT), ("BillAddr", STRING)],
        )
        .entity_set("Persons", "Person")
        .build()
    )


def client_schema_stage4() -> ClientSchema:
    schema = (
        ClientSchemaBuilder()
        .entity("Person", key=[("Id", INT)], attrs=[("Name", STRING)])
        .entity("Employee", parent="Person", attrs=[("Department", STRING)])
        .entity(
            "Customer",
            parent="Person",
            attrs=[("CredScore", INT), ("BillAddr", STRING)],
        )
        .entity_set("Persons", "Person")
        .association("Supports", "Customer", "Employee", mult1="*", mult2="0..1")
        .build()
    )
    return schema


def store_schema(stage: int = 4) -> StoreSchema:
    """HR / Emp / Client tables (Figure 1 right-hand side)."""
    tables = [
        Table("HR", (Column("Id", INT, False), Column("Name", STRING)), ("Id",))
    ]
    if stage >= 2:
        tables.append(
            Table(
                "Emp",
                (Column("Id", INT, False), Column("Dept", STRING)),
                ("Id",),
                (ForeignKey(("Id",), "HR", ("Id",)),),
            )
        )
    if stage >= 3:
        client_fks: Tuple[ForeignKey, ...] = ()
        if stage >= 2:
            client_fks = (ForeignKey(("Eid",), "Emp", ("Id",)),)
        tables.append(
            Table(
                "Client",
                (
                    Column("Cid", INT, False),
                    Column("Eid", INT, True),
                    Column("Name", STRING),
                    Column("Score", INT, True),
                    Column("Addr", STRING, True),
                ),
                ("Cid",),
                client_fks,
            )
        )
    return StoreSchema(tables)


def fragment_phi1() -> MappingFragment:
    """ϕ1 of Example 1: all Persons (and derived) into HR."""
    return MappingFragment(
        client_source="Persons",
        is_association=False,
        client_condition=IsOf("Person"),
        store_table="HR",
        store_condition=TRUE,
        attribute_map=(("Id", "Id"), ("Name", "Name")),
    )


def fragment_phi1_adapted() -> MappingFragment:
    """ϕ′1 of Example 5: Customers no longer flow into HR."""
    return MappingFragment(
        client_source="Persons",
        is_association=False,
        client_condition=or_(IsOfOnly("Person"), IsOf("Employee")),
        store_table="HR",
        store_condition=TRUE,
        attribute_map=(("Id", "Id"), ("Name", "Name")),
    )


def fragment_phi2() -> MappingFragment:
    """ϕ2: Employee's own attributes TPT into Emp."""
    return MappingFragment(
        client_source="Persons",
        is_association=False,
        client_condition=IsOf("Employee"),
        store_table="Emp",
        store_condition=TRUE,
        attribute_map=(("Id", "Id"), ("Department", "Dept")),
    )


def fragment_phi3() -> MappingFragment:
    """ϕ3: Customer TPC into Client."""
    return MappingFragment(
        client_source="Persons",
        is_association=False,
        client_condition=IsOf("Customer"),
        store_table="Client",
        store_condition=TRUE,
        attribute_map=(
            ("Id", "Cid"),
            ("Name", "Name"),
            ("CredScore", "Score"),
            ("BillAddr", "Addr"),
        ),
    )


def fragment_phi4() -> MappingFragment:
    """ϕ4 of Example 7: Supports mapped to the Eid FK column of Client."""
    return MappingFragment(
        client_source="Supports",
        is_association=True,
        client_condition=TRUE,
        store_table="Client",
        store_condition=IsNotNull("Eid"),
        attribute_map=(("Customer.Id", "Cid"), ("Employee.Id", "Eid")),
    )


def mapping_stage1() -> Mapping:
    return Mapping(client_schema_stage1(), store_schema(1), [fragment_phi1()])


def mapping_stage2() -> Mapping:
    return Mapping(
        client_schema_stage2(), store_schema(2), [fragment_phi1(), fragment_phi2()]
    )


def mapping_stage3() -> Mapping:
    return Mapping(
        client_schema_stage3(),
        store_schema(3),
        [fragment_phi1_adapted(), fragment_phi2(), fragment_phi3()],
    )


def mapping_stage4() -> Mapping:
    """Σ4 — the complete Figure 1 mapping."""
    return Mapping(
        client_schema_stage4(),
        store_schema(4),
        [fragment_phi1_adapted(), fragment_phi2(), fragment_phi3(), fragment_phi4()],
    )
