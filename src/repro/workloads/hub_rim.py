"""The "hub and rim" model of Figure 3 — the full compiler's nightmare.

N spine entity types in a chain of inheritance (HubK inherits from
Hub(K-1)); each spine type has M rim subtypes and M associations to them;
the entire hierarchy of N + N·M (+ rims) entity types is mapped into one
table with a discriminator column (TPH).  Association sets are FK-mapped
into the same table, contributing one independent nullable column each —
the source of the exponential cell/validation blow-up of Figure 4.

``hub_rim_mapping(n, m, style="TPH")`` builds the whole mapping;
``style="TPT"`` maps every entity type to its own table and every
association to a join table — the contrast the paper reports compiling in
under 0.2 seconds.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.algebra.conditions import Comparison, IsNotNull, IsOf, IsOfOnly, TRUE
from repro.edm.builder import ClientSchemaBuilder
from repro.edm.schema import ClientSchema
from repro.edm.types import INT, STRING
from repro.errors import SchemaError
from repro.mapping.fragments import Mapping, MappingFragment
from repro.relational.schema import Column, ForeignKey, StoreSchema, Table

SET_NAME = "Hubs"
TABLE_NAME = "Big"
DISC = "Disc"


def hub_name(level: int) -> str:
    return f"Hub{level}"


def rim_name(level: int, index: int) -> str:
    return f"Rim{level}_{index}"


def assoc_name(level: int, index: int) -> str:
    return f"Link{level}_{index}"


def rim_fk_column(level: int, index: int) -> str:
    return f"fk{level}_{index}"


def build_client_schema(n: int, m: int) -> ClientSchema:
    """Spine of depth *n*, *m* rim subtypes + associations per level."""
    if n < 1 or m < 0:
        raise SchemaError("hub-and-rim needs n >= 1 and m >= 0")
    builder = ClientSchemaBuilder()
    builder.entity(hub_name(1), key=[("Id", INT)], attrs=[("HubAtt1", STRING)])
    for level in range(2, n + 1):
        builder.entity(
            hub_name(level), parent=hub_name(level - 1), attrs=[(f"HubAtt{level}", STRING)]
        )
    for level in range(1, n + 1):
        for index in range(1, m + 1):
            builder.entity(
                rim_name(level, index),
                parent=hub_name(level),
                attrs=[(f"RimAtt{level}_{index}", STRING)],
            )
    builder.entity_set(SET_NAME, hub_name(1))
    for level in range(1, n + 1):
        for index in range(1, m + 1):
            builder.association(
                assoc_name(level, index),
                hub_name(level),
                rim_name(level, index),
                mult1="*",
                mult2="0..1",
            )
    return builder.build()


def _all_types(n: int, m: int) -> List[Tuple[str, List[str]]]:
    """(type name, own non-key attribute names) for every type."""
    result: List[Tuple[str, List[str]]] = []
    for level in range(1, n + 1):
        result.append((hub_name(level), [f"HubAtt{level}"]))
    for level in range(1, n + 1):
        for index in range(1, m + 1):
            result.append((rim_name(level, index), [f"RimAtt{level}_{index}"]))
    return result


def _inherited_attrs(schema: ClientSchema, type_name: str) -> List[str]:
    return [a for a in schema.attribute_names_of(type_name)]


def hub_rim_mapping(n: int, m: int, style: str = "TPH") -> Mapping:
    """The complete hub-and-rim mapping in the given style."""
    schema = build_client_schema(n, m)
    if style == "TPH":
        return _tph_mapping(schema, n, m)
    if style == "TPT":
        return _tpt_mapping(schema, n, m)
    raise SchemaError(f"unknown hub-and-rim style {style!r}")


def _tph_mapping(schema: ClientSchema, n: int, m: int) -> Mapping:
    columns: List[Column] = [
        Column("Id", INT, False),
        Column(DISC, STRING, False),
    ]
    fragments: List[MappingFragment] = []
    for type_name, _ in _all_types(n, m):
        for attr in schema.entity_type(type_name).own_attribute_names:
            if attr != "Id":
                columns.append(Column(attr, STRING, True))
    for level in range(1, n + 1):
        for index in range(1, m + 1):
            columns.append(Column(rim_fk_column(level, index), INT, True))

    foreign_keys = tuple(
        ForeignKey((rim_fk_column(level, index),), TABLE_NAME, ("Id",))
        for level in range(1, n + 1)
        for index in range(1, m + 1)
    )
    store = StoreSchema(
        [Table(TABLE_NAME, tuple(columns), ("Id",), foreign_keys)]
    )

    for type_name, _ in _all_types(n, m):
        attr_map = tuple((a, a) for a in schema.attribute_names_of(type_name))
        fragments.append(
            MappingFragment(
                client_source=SET_NAME,
                is_association=False,
                client_condition=IsOfOnly(type_name),
                store_table=TABLE_NAME,
                store_condition=Comparison(DISC, "=", type_name),
                attribute_map=attr_map,
            )
        )
    for level in range(1, n + 1):
        for index in range(1, m + 1):
            column = rim_fk_column(level, index)
            fragments.append(
                MappingFragment(
                    client_source=assoc_name(level, index),
                    is_association=True,
                    client_condition=TRUE,
                    store_table=TABLE_NAME,
                    store_condition=IsNotNull(column),
                    attribute_map=(
                        (f"{hub_name(level)}.Id", "Id"),
                        (f"{rim_name(level, index)}.Id", column),
                    ),
                )
            )
    return Mapping(schema, store, fragments)


def _tpt_mapping(schema: ClientSchema, n: int, m: int) -> Mapping:
    """Each type in its own table; associations in join tables."""
    tables: List[Table] = []
    fragments: List[MappingFragment] = []

    for type_name, _ in _all_types(n, m):
        entity_type = schema.entity_type(type_name)
        own = [a for a in entity_type.own_attribute_names]
        columns = [Column("Id", INT, False)]
        columns.extend(Column(a, STRING, True) for a in own if a != "Id")
        fks: Tuple[ForeignKey, ...] = ()
        if entity_type.parent is not None:
            fks = (ForeignKey(("Id",), f"T_{entity_type.parent}", ("Id",)),)
        tables.append(Table(f"T_{type_name}", tuple(columns), ("Id",), fks))
        alpha = ["Id"] + [a for a in own if a != "Id"]
        fragments.append(
            MappingFragment(
                client_source=SET_NAME,
                is_association=False,
                client_condition=IsOf(type_name),
                store_table=f"T_{type_name}",
                store_condition=TRUE,
                attribute_map=tuple((a, a) for a in alpha),
            )
        )
    for level in range(1, n + 1):
        for index in range(1, m + 1):
            name = assoc_name(level, index)
            hub, rim = hub_name(level), rim_name(level, index)
            tables.append(
                Table(
                    f"J_{name}",
                    (Column("HubId", INT, False), Column("RimId", INT, False)),
                    ("HubId", "RimId"),
                    (
                        ForeignKey(("HubId",), f"T_{hub}", ("Id",)),
                        ForeignKey(("RimId",), f"T_{rim}", ("Id",)),
                    ),
                )
            )
            fragments.append(
                MappingFragment(
                    client_source=name,
                    is_association=True,
                    client_condition=TRUE,
                    store_table=f"J_{name}",
                    store_condition=TRUE,
                    attribute_map=(
                        (f"{hub}.Id", "HubId"),
                        (f"{rim}.Id", "RimId"),
                    ),
                )
            )
    return Mapping(schema, StoreSchema(tables), fragments)


def type_count(n: int, m: int) -> int:
    """N + N·M entity types (the paper's size parameter)."""
    return n + n * m
