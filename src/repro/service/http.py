"""A thin HTTP/JSON facade over :class:`~repro.service.core.SessionService`.

Stdlib only (:mod:`http.server`): a ``ThreadingHTTPServer`` gives every
request its own thread, which is exactly the concurrency the epoch
engine is built for — queries from many threads race evolutions safely,
and SQLite tenants serve reads through the backend's connection pool.

Routes (all bodies and responses are JSON):

====== ============================== ==========================================
GET    ``/health``                    liveness + registered tenants
PUT    ``/tenants/<t>``               register/replace a tenant; body carries
                                      ``model`` (compiled or mapping document),
                                      optional ``backend`` / ``pool_size``
DELETE ``/tenants/<t>``               drop a tenant, close its backend
POST   ``/tenants/<t>/query``         ``{"set", "where"?, "project"?}``
POST   ``/tenants/<t>/load``          whole object view
POST   ``/tenants/<t>/save``          ``{"state": ..., "merge"?}``
POST   ``/tenants/<t>/save_delta``    ``{"ops": [...]}`` — incremental save
POST   ``/tenants/<t>/evolve``        ``{"target": <client schema>, "style"?}``
POST   ``/tenants/<t>/undo``          roll back the last evolution
GET    ``/tenants/<t>/stats``         serving / engine / cache counters
====== ============================== ==========================================

Every data response carries ``epoch`` and ``fingerprint`` — the
consistency token the concurrent benchmark asserts on.  Errors map to
status codes: unknown tenant → 404, malformed payload or a
:class:`~repro.errors.ReproError` → 400, anything else → 500.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.errors import ReproError
from repro.service.core import SessionService, UnknownTenant


class ServiceHTTPServer(ThreadingHTTPServer):
    """One HTTP endpoint bound to one :class:`SessionService`."""

    daemon_threads = True

    def __init__(self, address, service: SessionService) -> None:
        super().__init__(address, ServiceRequestHandler)
        self.service = service


class ServiceRequestHandler(BaseHTTPRequestHandler):
    server: ServiceHTTPServer
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # quiet by default; stats are the observability surface

    def _reply(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return {}
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ReproError(f"request body is not valid JSON: {exc}")
        if not isinstance(payload, dict):
            raise ReproError("request body must be a JSON object")
        return payload

    def _route(self) -> Tuple[Optional[str], Optional[str]]:
        """(tenant, verb) from ``/tenants/<t>[/verb]``; (None, None)
        otherwise."""
        parts = [p for p in self.path.split("?", 1)[0].split("/") if p]
        if len(parts) >= 2 and parts[0] == "tenants":
            tenant = parts[1]
            verb = parts[2] if len(parts) > 2 else None
            return tenant, verb
        return None, None

    def _dispatch(self, handler) -> None:
        try:
            self._reply(200, handler())
        except UnknownTenant as exc:
            self._reply(404, {"error": str(exc)})
        except ReproError as exc:
            self._reply(400, {"error": str(exc)})
        except Exception as exc:  # noqa: BLE001 — facade boundary
            self._reply(500, {"error": f"{type(exc).__name__}: {exc}"})

    # -- verbs ---------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802
        service = self.server.service
        if self.path.split("?", 1)[0] in ("/health", "/"):
            self._dispatch(
                lambda: {"ok": True, "tenants": service.tenants()}
            )
            return
        tenant, verb = self._route()
        if tenant and verb == "stats":
            self._dispatch(lambda: service.stats(tenant))
            return
        self._reply(404, {"error": f"no route for GET {self.path}"})

    def do_PUT(self) -> None:  # noqa: N802
        tenant, verb = self._route()
        if tenant and verb is None:
            service = self.server.service

            def create():
                payload = self._body()
                model = payload.get("model", payload)
                return service.create_tenant(
                    tenant,
                    model,
                    backend=payload.get("backend"),
                    pool_size=payload.get("pool_size"),
                )

            self._dispatch(create)
            return
        self._reply(404, {"error": f"no route for PUT {self.path}"})

    def do_DELETE(self) -> None:  # noqa: N802
        tenant, verb = self._route()
        if tenant and verb is None:
            service = self.server.service
            self._dispatch(lambda: service.drop_tenant(tenant))
            return
        self._reply(404, {"error": f"no route for DELETE {self.path}"})

    def do_POST(self) -> None:  # noqa: N802
        tenant, verb = self._route()
        service = self.server.service
        if tenant and verb == "query":
            self._dispatch(lambda: service.query(tenant, self._body()))
        elif tenant and verb == "load":
            self._dispatch(lambda: service.load(tenant))
        elif tenant and verb == "save":
            self._dispatch(lambda: service.save(tenant, self._body()))
        elif tenant and verb == "save_delta":
            self._dispatch(lambda: service.save_delta(tenant, self._body()))
        elif tenant and verb == "evolve":
            self._dispatch(lambda: service.evolve(tenant, self._body()))
        elif tenant and verb == "undo":
            self._dispatch(lambda: service.undo(tenant))
        else:
            self._reply(404, {"error": f"no route for POST {self.path}"})


def make_server(
    service: SessionService, host: str = "127.0.0.1", port: int = 0
) -> ServiceHTTPServer:
    """A bound (not yet serving) server; ``port=0`` picks a free port —
    the tests and the bench harness read ``server.server_address``."""
    return ServiceHTTPServer((host, port), service)


def serve(
    service: SessionService, host: str = "127.0.0.1", port: int = 8123
) -> None:
    """Serve until interrupted (the CLI ``serve`` verb)."""
    server = make_server(service, host, port)
    bound_host, bound_port = server.server_address[:2]
    print(f"repro session service on http://{bound_host}:{bound_port}")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.close()
