"""The multi-tenant session service: one epoch-engine session per
tenant database behind a stdlib HTTP/JSON facade.

:mod:`repro.service.core` is the thread-safe registry + verb surface,
:mod:`repro.service.wire` the JSON wire format, and
:mod:`repro.service.http` the ``ThreadingHTTPServer`` facade the CLI's
``serve`` verb runs.
"""

from repro.service.core import SessionService, UnknownTenant

__all__ = ["SessionService", "UnknownTenant"]
