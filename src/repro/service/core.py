"""The multi-tenant session service.

One :class:`SessionService` owns one :class:`~repro.session.OrmSession`
per *tenant* — a logical database with its own compiled model, store
backend and epoch chain.  Tenants are fully isolated: each has its own
schema, data, plan cache and journal, and evolving one tenant never
touches another's epochs.

The service is the thread-safe core under the HTTP facade
(:mod:`repro.service.http`), but it is equally usable in-process — the
tests drive it directly.  Its verb methods speak the JSON wire format of
:mod:`repro.service.wire` on both sides, so a facade only moves bytes.

Concurrency model: the tenant registry has its own lock (create / drop /
lookup are rare and cheap); everything per-tenant rides on the epoch
engine's reader/writer coordination — ``query`` calls are lock-free on
snapshot backends and seqlock-validated on live ones, writers serialize
inside the engine.  SQLite tenants get a reader connection pool
(``pool_size``) because SQLite connections are thread-affine: each
pooled connection is leased to exactly one request at a time and its
statement cache never crosses threads.
"""

from __future__ import annotations

import os
import re
import threading
from typing import Any, Dict, List, Optional

from repro.compiler import compile_mapping
from repro.errors import MappingError, SchemaError
from repro.incremental.model import CompiledModel
from repro.msl import client_schema_from_json, load_mapping, load_model
from repro.service import wire
from repro.session import OrmSession


class UnknownTenant(SchemaError):
    """The request named a tenant the service has never seen."""


class SessionService:
    """A registry of per-tenant ORM sessions plus the verb surface."""

    def __init__(
        self,
        default_backend: Optional[str] = None,
        db_dir: Optional[str] = None,
        pool_size: int = 4,
        cache_dir: Optional[str] = None,
        result_cache_budget: Optional[int] = None,
    ) -> None:
        self.default_backend = default_backend
        self.db_dir = db_dir
        self.pool_size = pool_size
        #: shared persistent validation cache for every tenant session
        #: (None defers to REPRO_CACHE_DIR inside the session)
        self.cache_dir = cache_dir
        #: per-tenant materialized result tier budget in cells
        #: (None = session default, 0 = disabled)
        self.result_cache_budget = result_cache_budget
        self._tenants: Dict[str, OrmSession] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Tenant registry
    # ------------------------------------------------------------------
    def tenants(self) -> List[str]:
        with self._lock:
            return sorted(self._tenants)

    def session(self, tenant: str) -> OrmSession:
        with self._lock:
            try:
                return self._tenants[tenant]
            except KeyError:
                raise UnknownTenant(f"unknown tenant {tenant!r}") from None

    def create_tenant(
        self,
        tenant: str,
        model_document: Dict[str, Any],
        backend: Optional[str] = None,
        pool_size: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Register *tenant* with a model document (compiled, or a
        mapping document which is compiled on the spot).  Re-PUTting an
        existing tenant replaces its session wholesale."""
        model = self._load_model(model_document)
        backend_name = backend or self.default_backend
        db_path = None
        if self.db_dir and (backend_name or "").lower() == "sqlite":
            if not re.fullmatch(r"[\w.-]+", tenant) or ".." in tenant:
                raise SchemaError(
                    f"tenant name {tenant!r} is not usable as a file name"
                )
            os.makedirs(self.db_dir, exist_ok=True)
            db_path = os.path.join(self.db_dir, f"{tenant}.db")
        session = OrmSession.create(
            model,
            backend=backend_name,
            db_path=db_path,
            pool_size=self.pool_size if pool_size is None else pool_size,
            cache_dir=self.cache_dir,
            result_cache_budget=self.result_cache_budget,
        )
        with self._lock:
            previous = self._tenants.get(tenant)
            self._tenants[tenant] = session
        if previous is not None:
            previous.engine.close()
        epoch = session.epoch
        return {
            "tenant": tenant,
            "backend": session.backend.name,
            "epoch": epoch.epoch_id,
            "fingerprint": epoch.fingerprint,
        }

    def drop_tenant(self, tenant: str) -> Dict[str, Any]:
        with self._lock:
            try:
                session = self._tenants.pop(tenant)
            except KeyError:
                raise UnknownTenant(f"unknown tenant {tenant!r}") from None
        session.engine.close()
        return {"tenant": tenant, "dropped": True}

    @staticmethod
    def _load_model(document: Dict[str, Any]) -> CompiledModel:
        if not isinstance(document, dict):
            raise SchemaError("model document must be a JSON object")
        try:
            return load_model(document)
        except MappingError:
            if "views" in document:
                raise
        # a mapping-only document: compile it here (validated)
        mapping = load_mapping(document)
        result = compile_mapping(mapping)
        return CompiledModel(mapping, result.views)

    # ------------------------------------------------------------------
    # Verbs (wire JSON in, wire JSON out)
    # ------------------------------------------------------------------
    def query(self, tenant: str, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Serve one entity query; the response names the epoch it is
        consistent with (the torn-read assertion token)."""
        session = self.session(tenant)
        query = wire.query_from_json(payload)
        rows, epoch = session.engine.query_with_epoch(query)
        return {
            "rows": [wire.encode_result(r) for r in rows],
            "count": len(rows),
            "epoch": epoch.epoch_id,
            "fingerprint": epoch.fingerprint,
        }

    def load(self, tenant: str) -> Dict[str, Any]:
        """The whole object view of a tenant's database."""
        session = self.session(tenant)
        state = session.load()
        epoch = session.epoch
        return {
            "state": wire.client_state_to_json(state),
            "epoch": epoch.epoch_id,
            "fingerprint": epoch.fingerprint,
        }

    def save(self, tenant: str, payload: Dict[str, Any]) -> Dict[str, Any]:
        """SaveChanges: the payload's ``state`` replaces the object view.

        With ``{"merge": true}`` the payload is applied on top of the
        current view instead (add-only convenience for load generators).
        """
        session = self.session(tenant)
        engine = session.engine
        state_payload = payload.get("state")
        if state_payload is None:
            raise SchemaError("save payload must carry a 'state' object")
        if payload.get("merge"):
            state = engine.load()
            for set_name, entities in (
                state_payload.get("entities") or {}
            ).items():
                for entity in entities:
                    state.add_entity(set_name, wire.entity_from_json(entity))
            for assoc_name, pairs in (
                state_payload.get("associations") or {}
            ).items():
                for pair in pairs:
                    state.add_association(
                        assoc_name, tuple(pair[0]), tuple(pair[1])
                    )
        else:
            state = wire.client_state_from_json(
                engine.epoch.model.client_schema, state_payload
            )
        delta = engine.save(state)
        epoch = engine.epoch
        return {
            "applied": delta.statement_count(),
            "epoch": epoch.epoch_id,
            "fingerprint": epoch.fingerprint,
        }

    def save_delta(
        self, tenant: str, payload: Dict[str, Any]
    ) -> Dict[str, Any]:
        """Incremental SaveChanges: the payload's ``ops`` replay onto the
        tenant's cached object view and push through compiled update-view
        delta rules — cost proportional to the script, not the database.
        The response reports the store statements actually emitted."""
        session = self.session(tenant)
        script = wire.delta_script_from_json(payload)
        delta = session.save_delta(script)
        epoch = session.epoch
        return {
            "ops": len(script),
            "applied": delta.statement_count(),
            "epoch": epoch.epoch_id,
            "fingerprint": epoch.fingerprint,
        }

    def evolve(self, tenant: str, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Evolve a tenant online: diff its model against the payload's
        ``target`` client schema and apply the implied SMOs as one batch
        while queries keep flowing."""
        session = self.session(tenant)
        engine = session.engine
        target_document = payload.get("target")
        if target_document is None:
            raise SchemaError("evolve payload must carry a 'target' schema")
        from repro.modef import smos_from_diff

        target = client_schema_from_json(
            target_document.get("clientSchema", target_document)
        )
        smos = smos_from_diff(
            engine.epoch.model,
            target,
            style_overrides=wire.style_overrides(payload),
        )
        if not smos:
            epoch = engine.epoch
            return {
                "applied": [],
                "epoch": epoch.epoch_id,
                "fingerprint": epoch.fingerprint,
            }
        engine.evolve_many(smos, label=payload.get("label"))
        entry = engine.journal[-1]
        epoch = engine.epoch
        return {
            "applied": [smo.describe() for smo in entry.smos],
            "delta_ops": len(entry.delta),
            "scheduled_checks": entry.scheduled_checks,
            "epoch": epoch.epoch_id,
            "fingerprint": epoch.fingerprint,
        }

    def undo(self, tenant: str) -> Dict[str, Any]:
        session = self.session(tenant)
        entry = session.engine.undo()
        epoch = session.engine.epoch
        return {
            "undone": entry.label,
            "epoch": epoch.epoch_id,
            "fingerprint": epoch.fingerprint,
        }

    def stats(self, tenant: str) -> Dict[str, Any]:
        session = self.session(tenant)
        serving = wire.stats_to_json(session.serving_stats())
        serving["journal"] = [str(entry) for entry in session.journal]
        serving["validation_cache"] = wire.stats_to_json(
            session.cache_stats()
        )
        return serving

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop every tenant and release its backend (idempotent)."""
        with self._lock:
            sessions = list(self._tenants.values())
            self._tenants.clear()
        for session in sessions:
            session.engine.close()
