"""The JSON wire format of the session service.

Everything the HTTP facade reads or writes goes through here, so the
encoding is defined exactly once and the CLI (``--where`` parsing) and
the service agree on it:

* **conditions** are the CLI's one-atom syntax (``Attr OP literal``);
* **queries** are ``{"set": ..., "where": ..., "project": [...]}``;
* **entities** travel as ``{"type": ..., "values": {...}}``;
* **client states** (the ``save`` payload) as
  ``{"entities": {set: [entity, ...]}, "associations": {name: [[key1,
  key2], ...]}}`` — association keys are role-ordered lists, split/joined
  with the schema's key lengths;
* **delta scripts** (the ``save_delta`` payload) as ``{"ops": [...]}`` —
  ordered entity/association mutations, entity inserts/updates carrying
  the entity, deletes carrying only the key;
* **stats** dataclasses are flattened recursively to plain dicts.

Wire decoding raises :class:`~repro.errors.SchemaError` on malformed
payloads, which the HTTP layer maps to a 400.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Any, Dict, List, Optional

from repro.algebra.conditions import (
    TRUE,
    Comparison,
    Condition,
    IsNotNull,
    IsNull,
)
from repro.edm.instances import ClientState, Entity
from repro.edm.schema import ClientSchema
from repro.errors import SchemaError
from repro.ivm import AssociationOp, DeltaScript, EntityOp
from repro.query.language import EntityQuery

_WHERE_PATTERN = r"^\s*(\w+)\s*(=|!=|<=|>=|<|>)\s*(.+?)\s*$"


def parse_condition(text: str) -> Condition:
    """A single comparison atom: ``Attr OP literal`` (ints, quoted or
    bare strings, ``null``)."""
    match = re.match(_WHERE_PATTERN, text)
    if not match:
        raise SchemaError(
            f"cannot parse condition {text!r}: expected 'Attr OP literal'"
        )
    attr, op, literal = match.groups()
    if literal.lower() == "null":
        if op == "=":
            return IsNull(attr)
        if op == "!=":
            return IsNotNull(attr)
        raise SchemaError(f"cannot order-compare against null: {text!r}")
    if (literal.startswith("'") and literal.endswith("'")) or (
        literal.startswith('"') and literal.endswith('"')
    ):
        return Comparison(attr, op, literal[1:-1])
    try:
        return Comparison(attr, op, int(literal))
    except ValueError:
        return Comparison(attr, op, literal)


def query_from_json(payload: Dict[str, Any]) -> EntityQuery:
    """``{"set": "Persons", "where": "Id>1", "project": ["Name"]}``."""
    if not isinstance(payload, dict) or "set" not in payload:
        raise SchemaError("query payload must be an object with a 'set' key")
    condition = TRUE
    where = payload.get("where")
    if where:
        condition = parse_condition(where)
    projection = payload.get("project")
    if projection is not None:
        projection = tuple(projection)
    return EntityQuery(payload["set"], condition, projection)


def entity_to_json(entity: Entity) -> Dict[str, Any]:
    return {"type": entity.concrete_type, "values": entity.value_map}


def entity_from_json(payload: Dict[str, Any]) -> Entity:
    if not isinstance(payload, dict) or "type" not in payload:
        raise SchemaError(
            "entity payload must be an object with 'type' and 'values'"
        )
    return Entity.of(payload["type"], **payload.get("values", {}))


def encode_result(result: object) -> object:
    """One query-response row: an entity or a projected attribute dict."""
    if isinstance(result, Entity):
        return entity_to_json(result)
    return result


def _key_width(schema: ClientSchema, set_name: str) -> int:
    root = schema.entity_set(set_name).root_type
    return len(schema.entity_type(root).key)


def client_state_to_json(state: ClientState) -> Dict[str, Any]:
    schema = state.schema
    entities = {
        entity_set.name: [
            entity_to_json(e) for e in state.entities(entity_set.name)
        ]
        for entity_set in schema.entity_sets
    }
    associations: Dict[str, List[List[List[object]]]] = {}
    for association in schema.associations:
        width = _key_width(schema, association.entity_set1)
        pairs = []
        for flat in state.associations(association.name):
            pairs.append([list(flat[:width]), list(flat[width:])])
        associations[association.name] = pairs
    return {"entities": entities, "associations": associations}


def client_state_from_json(
    schema: ClientSchema, payload: Dict[str, Any]
) -> ClientState:
    if not isinstance(payload, dict):
        raise SchemaError("state payload must be an object")
    state = ClientState(schema)
    for set_name, entities in (payload.get("entities") or {}).items():
        for entity in entities:
            state.add_entity(set_name, entity_from_json(entity))
    for assoc_name, pairs in (payload.get("associations") or {}).items():
        for pair in pairs:
            if not isinstance(pair, (list, tuple)) or len(pair) != 2:
                raise SchemaError(
                    f"association tuple in {assoc_name!r} must be a "
                    f"[key1, key2] pair"
                )
            state.add_association(assoc_name, tuple(pair[0]), tuple(pair[1]))
    return state


def delta_script_to_json(script: DeltaScript) -> Dict[str, Any]:
    """``{"ops": [...]}`` — entity inserts/updates carry the entity,
    deletes carry the key; association ops carry both end keys."""
    ops: List[Dict[str, Any]] = []
    for op in script.ops:
        if isinstance(op, EntityOp):
            encoded: Dict[str, Any] = {"op": op.op, "set": op.set_name}
            if op.entity is not None:
                encoded["entity"] = entity_to_json(op.entity)
            if op.key is not None:
                encoded["key"] = list(op.key)
            ops.append(encoded)
        elif isinstance(op, AssociationOp):
            ops.append(
                {
                    "op": op.op,
                    "assoc": op.assoc_name,
                    "key1": list(op.key1),
                    "key2": list(op.key2),
                }
            )
        else:
            raise SchemaError(f"cannot encode delta op {op!r}")
    return {"ops": ops}


def delta_script_from_json(payload: Dict[str, Any]) -> DeltaScript:
    if not isinstance(payload, dict) or not isinstance(payload.get("ops"), list):
        raise SchemaError("delta payload must be an object with an 'ops' list")
    ops: List[object] = []
    for encoded in payload["ops"]:
        if not isinstance(encoded, dict) or "op" not in encoded:
            raise SchemaError("each delta op must be an object with an 'op' key")
        if "set" in encoded:
            entity = encoded.get("entity")
            key = encoded.get("key")
            ops.append(
                EntityOp(
                    op=str(encoded["op"]),
                    set_name=str(encoded["set"]),
                    entity=entity_from_json(entity) if entity is not None else None,
                    key=tuple(key) if key is not None else None,
                )
            )
        elif "assoc" in encoded:
            ops.append(
                AssociationOp(
                    op=str(encoded["op"]),
                    assoc_name=str(encoded["assoc"]),
                    key1=tuple(encoded.get("key1") or ()),
                    key2=tuple(encoded.get("key2") or ()),
                )
            )
        else:
            raise SchemaError(
                "delta op must name a 'set' (entity op) or an 'assoc'"
            )
    return DeltaScript(tuple(ops))


def stats_to_json(stats: object) -> object:
    """Flatten the nested stats dataclasses to JSON-able dicts."""
    if dataclasses.is_dataclass(stats) and not isinstance(stats, type):
        return {
            field.name: stats_to_json(getattr(stats, field.name))
            for field in dataclasses.fields(stats)
        }
    if isinstance(stats, dict):
        return {str(k): stats_to_json(v) for k, v in stats.items()}
    if isinstance(stats, (list, tuple)):
        return [stats_to_json(v) for v in stats]
    if stats is None or isinstance(stats, (bool, int, float, str)):
        return stats
    return str(stats)


def style_overrides(payload: Dict[str, Any]) -> Optional[Dict[str, str]]:
    """The evolve payload's optional ``{"style": {"Type": "TPT"}}``."""
    overrides = payload.get("style")
    if overrides is None:
        return None
    if not isinstance(overrides, dict):
        raise SchemaError("'style' must map type names to TPT|TPC|TPH")
    return {str(k): str(v) for k, v in overrides.items()}
