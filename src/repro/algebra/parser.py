"""A parser for the paper's Entity-SQL fragment syntax (Figure 5).

Mapping fragments in the paper are written as equations between two
SELECT blocks::

    SELECT p.Id, p.Name
    FROM Persons p
    WHERE p IS OF Person
    =
    SELECT Id, Name
    FROM HR

This module parses that syntax into :class:`MappingFragment` objects, so
mappings can be authored as text.  Supported WHERE grammar (Section 2.1):

    condition := disjunct (OR disjunct)*
    disjunct  := conjunct (AND conjunct)*
    conjunct  := NOT conjunct | '(' condition ')' | atom
    atom      := [alias.] IS OF [(ONLY] Type [)]
               | attr IS [NOT] NULL
               | attr op literal          (op ∈ =, <>, !=, <, <=, >, >=)

Literals: integers, single-quoted strings ('' escapes a quote), TRUE,
FALSE, NULL.  The client side may prefix attributes with the FROM alias;
the store side must not use IS OF atoms.  α→β correspondence is
positional across the two SELECT lists, as in the paper's figures.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional

from repro.algebra.conditions import (
    Comparison,
    Condition,
    IsNotNull,
    IsNull,
    IsOf,
    IsOfOnly,
    Not,
    TRUE,
    and_,
    or_,
)
from repro.errors import MappingError
from repro.mapping.fragments import MappingFragment

_TOKEN_RE = re.compile(
    r"""
    (?P<string>'(?:[^']|'')*')
  | (?P<number>-?\d+)
  | (?P<op><>|!=|<=|>=|=|<|>)
  | (?P<punct>[(),.])
  | (?P<word>[A-Za-z_][A-Za-z_0-9]*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "SELECT", "FROM", "WHERE", "IS", "OF", "ONLY", "NOT", "NULL",
    "AND", "OR", "AS", "TRUE", "FALSE", "VALUE",
}


@dataclass(frozen=True)
class _Token:
    kind: str  # 'string' | 'number' | 'op' | 'punct' | 'word' | 'kw'
    text: str
    position: int


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    index = 0
    while index < len(text):
        if text[index].isspace():
            index += 1
            continue
        match = _TOKEN_RE.match(text, index)
        if match is None:
            raise MappingError(f"cannot tokenize fragment text at {text[index:index+20]!r}")
        kind = match.lastgroup or ""
        value = match.group()
        if kind == "word" and value.upper() in _KEYWORDS:
            tokens.append(_Token("kw", value.upper(), index))
        else:
            tokens.append(_Token(kind, value, index))
        index = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: List[_Token]) -> None:
        self.tokens = tokens
        self.index = 0

    # -- token helpers --------------------------------------------------
    def peek(self, offset: int = 0) -> Optional[_Token]:
        position = self.index + offset
        return self.tokens[position] if position < len(self.tokens) else None

    def next(self) -> _Token:
        token = self.peek()
        if token is None:
            raise MappingError("unexpected end of fragment text")
        self.index += 1
        return token

    def expect_kw(self, keyword: str) -> None:
        token = self.next()
        if token.kind != "kw" or token.text != keyword:
            raise MappingError(f"expected {keyword}, got {token.text!r}")

    def accept_kw(self, keyword: str) -> bool:
        token = self.peek()
        if token is not None and token.kind == "kw" and token.text == keyword:
            self.index += 1
            return True
        return False

    def accept_punct(self, char: str) -> bool:
        token = self.peek()
        if token is not None and token.kind == "punct" and token.text == char:
            self.index += 1
            return True
        return False

    def expect_word(self) -> str:
        token = self.next()
        if token.kind != "word":
            raise MappingError(f"expected identifier, got {token.text!r}")
        return token.text

    # -- grammar ---------------------------------------------------------
    def parse_select_block(self, alias_allowed: bool):
        """Returns (attributes, source, condition, alias)."""
        self.expect_kw("SELECT")
        self.accept_kw("VALUE")
        attributes = [self._attr_ref()]
        while self.accept_punct(","):
            attributes.append(self._attr_ref())
        self.expect_kw("FROM")
        source = self.expect_word()
        alias = None
        token = self.peek()
        if token is not None and token.kind == "word":
            alias = self.next().text
        condition: Condition = TRUE
        if self.accept_kw("WHERE"):
            condition = self._condition(alias)
        attributes = [self._strip_alias(a, alias) for a in attributes]
        return attributes, source, condition, alias

    def _attr_ref(self) -> str:
        name = self.expect_word()
        while self.accept_punct("."):
            name += "." + self.expect_word()
        return name

    def _strip_alias(self, attr: str, alias: Optional[str]) -> str:
        if alias and attr.startswith(alias + "."):
            return attr[len(alias) + 1 :]
        return attr

    def _condition(self, alias: Optional[str]) -> Condition:
        left = self._conjunction(alias)
        parts = [left]
        while self.accept_kw("OR"):
            parts.append(self._conjunction(alias))
        return or_(*parts)

    def _conjunction(self, alias: Optional[str]) -> Condition:
        parts = [self._unary(alias)]
        while self.accept_kw("AND"):
            parts.append(self._unary(alias))
        return and_(*parts)

    def _unary(self, alias: Optional[str]) -> Condition:
        if self.accept_kw("NOT"):
            return Not(self._unary(alias))
        if self.accept_punct("("):
            inner = self._condition(alias)
            if not self.accept_punct(")"):
                raise MappingError("missing closing parenthesis in condition")
            return inner
        return self._atom(alias)

    def _atom(self, alias: Optional[str]) -> Condition:
        # "<alias> IS OF ..." or "<attr> IS [NOT] NULL" or "<attr> op lit"
        token = self.peek()
        if token is None:
            raise MappingError("unexpected end of condition")
        if token.kind == "kw" and token.text == "IS":
            # bare "IS OF T" with no subject
            return self._is_clause(None)
        name = self._attr_ref()
        name = self._strip_alias(name, alias)
        token = self.peek()
        if token is not None and token.kind == "kw" and token.text == "IS":
            if name == (alias or ""):
                return self._is_clause(None)
            return self._is_clause(name)
        operator = self.next()
        if operator.kind != "op":
            raise MappingError(f"expected comparison operator, got {operator.text!r}")
        op = "!=" if operator.text == "<>" else operator.text
        literal = self._literal()
        return Comparison(name, op, literal)

    def _is_clause(self, subject: Optional[str]) -> Condition:
        self.expect_kw("IS")
        if self.accept_kw("NOT"):
            self.expect_kw("NULL")
            if subject is None:
                raise MappingError("IS NOT NULL needs an attribute")
            return IsNotNull(subject)
        if self.accept_kw("NULL"):
            if subject is None:
                raise MappingError("IS NULL needs an attribute")
            return IsNull(subject)
        self.expect_kw("OF")
        if self.accept_punct("("):
            self.expect_kw("ONLY")
            type_name = self.expect_word()
            if not self.accept_punct(")"):
                raise MappingError("missing ')' after IS OF (ONLY ...)")
            return IsOfOnly(type_name)
        type_name = self.expect_word()
        return IsOf(type_name)

    def _literal(self):
        token = self.next()
        if token.kind == "string":
            return token.text[1:-1].replace("''", "'")
        if token.kind == "number":
            return int(token.text)
        if token.kind == "kw" and token.text == "TRUE":
            return True
        if token.kind == "kw" and token.text == "FALSE":
            return False
        if token.kind == "kw" and token.text == "NULL":
            return None
        raise MappingError(f"expected literal, got {token.text!r}")


def parse_fragment(text: str, is_association: bool = False) -> MappingFragment:
    """Parse one ``SELECT ... = SELECT ...`` fragment equation."""
    if "=" not in text:
        raise MappingError("a fragment needs '=' between its two sides")
    parser = _Parser(_tokenize(text))
    client_attrs, client_source, client_condition, _ = parser.parse_select_block(
        alias_allowed=True
    )
    token = parser.next()
    if token.kind != "op" or token.text != "=":
        raise MappingError(f"expected '=' between the two sides, got {token.text!r}")
    store_cols, store_table, store_condition, _ = parser.parse_select_block(
        alias_allowed=True
    )
    if parser.peek() is not None:
        raise MappingError(f"trailing input after fragment: {parser.peek().text!r}")
    if len(client_attrs) != len(store_cols):
        raise MappingError(
            f"the two sides project different arities: {client_attrs} vs {store_cols}"
        )
    from repro.algebra.conditions import referenced_types

    if referenced_types(store_condition):
        raise MappingError("store-side conditions cannot contain IS OF atoms")
    return MappingFragment(
        client_source=client_source,
        is_association=is_association,
        client_condition=client_condition,
        store_table=store_table,
        store_condition=store_condition,
        attribute_map=tuple(zip(client_attrs, store_cols)),
    )


def parse_fragments(text: str) -> List[MappingFragment]:
    """Parse a whole mapping: fragments separated by blank lines or ';'.

    Lines starting with ``--`` are comments.  A fragment whose client
    attributes are all role-qualified (``Role.Attr``) is treated as an
    association fragment.
    """
    blocks: List[str] = []
    current: List[str] = []
    for line in text.splitlines():
        stripped = line.strip()
        if stripped.startswith("--"):
            continue
        if not stripped or stripped == ";":
            if current:
                blocks.append("\n".join(current))
                current = []
            continue
        current.append(line)
    if current:
        blocks.append("\n".join(current))

    fragments = []
    for block in blocks:
        fragment = parse_fragment(block)
        if fragment.alpha and all("." in attr for attr in fragment.alpha):
            fragment = MappingFragment(
                client_source=fragment.client_source,
                is_association=True,
                client_condition=fragment.client_condition,
                store_table=fragment.store_table,
                store_condition=fragment.store_condition,
                attribute_map=fragment.attribute_map,
            )
        fragments.append(fragment)
    return fragments
