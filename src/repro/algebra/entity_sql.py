"""Rendering queries, conditions and views as Entity-SQL-style text.

The output follows the paper's notation (Figures 2 and 5): ``SELECT``
blocks with ``IS OF`` predicates, ``CASE WHEN`` chains for entity
constructors, ``NATURAL LEFT OUTER JOIN`` for the outer joins Algorithm 1
produces.  The printer is for humans and golden tests; the parser in
:mod:`repro.algebra.parser` reads a compatible fragment syntax back.
"""

from __future__ import annotations

from typing import List

from repro.algebra.conditions import (
    And,
    Comparison,
    Condition,
    FalseCond,
    IsNotNull,
    IsNull,
    IsOf,
    IsOfOnly,
    Not,
    Or,
    TrueCond,
)
from repro.algebra.constructors import (
    AssociationCtor,
    Constructor,
    EntityCtor,
    IfCtor,
    RowCtor,
)
from repro.algebra.queries import (
    AssociationScan,
    Col,
    FullOuterJoin,
    Join,
    LeftOuterJoin,
    Project,
    Query,
    Select,
    SetScan,
    TableScan,
    UnionAll,
)
from repro.errors import EvaluationError

_INDENT = "  "


def condition_to_sql(condition: Condition) -> str:
    if isinstance(condition, TrueCond):
        return "TRUE"
    if isinstance(condition, FalseCond):
        return "FALSE"
    if isinstance(condition, IsOf):
        return f"IS OF {condition.type_name}"
    if isinstance(condition, IsOfOnly):
        return f"IS OF (ONLY {condition.type_name})"
    if isinstance(condition, IsNull):
        return f"{condition.attr} IS NULL"
    if isinstance(condition, IsNotNull):
        return f"{condition.attr} IS NOT NULL"
    if isinstance(condition, Comparison):
        return f"{condition.attr} {condition.op} {_literal(condition.const)}"
    if isinstance(condition, And):
        return "(" + " AND ".join(condition_to_sql(op) for op in condition.operands) + ")"
    if isinstance(condition, Or):
        return "(" + " OR ".join(condition_to_sql(op) for op in condition.operands) + ")"
    if isinstance(condition, Not):
        return f"NOT ({condition_to_sql(condition.operand)})"
    raise EvaluationError(f"unknown condition node {condition!r}")


def _literal(value: object) -> str:
    if value is None:
        return "NULL"
    if value is True:
        return "True"
    if value is False:
        return "False"
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    return str(value)


def query_to_sql(query: Query, indent: int = 0) -> str:
    """Render *query* as nested SELECT blocks."""
    pad = _INDENT * indent
    if isinstance(query, SetScan):
        return f"{pad}{query.set_name}"
    if isinstance(query, AssociationScan):
        return f"{pad}{query.assoc_name}"
    if isinstance(query, TableScan):
        return f"{pad}{query.table_name}"
    if isinstance(query, Project):
        items = ", ".join(_item_sql(item) for item in query.items)
        source, where = _peel_select(query.source)
        lines = [f"{pad}SELECT {items}", f"{pad}FROM"]
        lines.append(query_to_sql(source, indent + 1))
        if where is not None:
            lines.append(f"{pad}WHERE {condition_to_sql(where)}")
        return "\n".join(lines)
    if isinstance(query, Select):
        lines = [f"{pad}SELECT *", f"{pad}FROM"]
        lines.append(query_to_sql(query.source, indent + 1))
        lines.append(f"{pad}WHERE {condition_to_sql(query.condition)}")
        return "\n".join(lines)
    if isinstance(query, Join):
        return _binary_sql(query, "NATURAL JOIN", indent)
    if isinstance(query, LeftOuterJoin):
        return _binary_sql(query, "NATURAL LEFT OUTER JOIN", indent)
    if isinstance(query, FullOuterJoin):
        return _binary_sql(query, "NATURAL FULL OUTER JOIN", indent)
    if isinstance(query, UnionAll):
        blocks = [query_to_sql(branch, indent + 1) for branch in query.branches]
        separator = f"\n{pad}UNION ALL\n"
        return separator.join(f"{pad}(\n{block}\n{pad})" for block in blocks)
    raise EvaluationError(f"unknown query node {query!r}")


def _item_sql(item) -> str:
    if isinstance(item.expr, Col):
        if item.expr.name == item.output:
            return item.output
        return f"{item.expr.name} AS {item.output}"
    return f"{_literal(item.expr.value)} AS {item.output}"


def _peel_select(query: Query):
    """Merge a directly-nested Select into the enclosing SELECT's WHERE."""
    if isinstance(query, Select):
        return query.source, query.condition
    return query, None


def _binary_sql(query, keyword: str, indent: int) -> str:
    pad = _INDENT * indent
    left = query_to_sql(query.left, indent + 1)
    right = query_to_sql(query.right, indent + 1)
    return f"{pad}(\n{left}\n{pad}) {keyword} (\n{right}\n{pad})"


def constructor_to_sql(constructor: Constructor, indent: int = 0) -> str:
    """Render a τ as a CASE WHEN chain (Figure 2 style)."""
    pad = _INDENT * indent
    branches: List[str] = []
    node = constructor
    while isinstance(node, IfCtor):
        branches.append(
            f"{pad}{_INDENT}WHEN {condition_to_sql(node.condition)} "
            f"THEN {_ctor_call(node.then_ctor)}"
        )
        node = node.else_ctor
    if not branches:
        return f"{pad}{_ctor_call(node)}"
    lines = [f"{pad}CASE"] + branches
    lines.append(f"{pad}{_INDENT}ELSE {_ctor_call(node)}")
    lines.append(f"{pad}END")
    return "\n".join(lines)


def _ctor_call(constructor: Constructor) -> str:
    if isinstance(constructor, (EntityCtor, RowCtor, AssociationCtor)):
        return str(constructor)
    if isinstance(constructor, IfCtor):
        return "(" + constructor_to_sql(constructor).replace("\n", " ") + ")"
    raise EvaluationError(f"unknown constructor {constructor!r}")


def view_to_sql(name: str, query: Query, constructor: Constructor) -> str:
    """Render a complete ``(Q | τ)`` view definition."""
    lines = [f"{name} =", "SELECT VALUE"]
    lines.append(constructor_to_sql(constructor, indent=1))
    lines.append("FROM (")
    lines.append(query_to_sql(query, indent=1))
    lines.append(")")
    return "\n".join(lines)
